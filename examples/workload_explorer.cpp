// Workload explorer: generate an SDSS-like trace and report the
// statistical properties the paper's §6.1 analysis rests on — the query
// class mix, yield distribution, schema locality, and the (absent) query
// containment that rules out semantic caching.

#include <cstdio>
#include <iostream>
#include <map>

#include "catalog/sdss.h"
#include "common/bytes.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "query/yield.h"
#include "workload/generator.h"
#include "workload/trace_stats.h"

int main() {
  using namespace byc;
  auto catalog = catalog::MakeSdssEdrCatalog();
  workload::TraceGenerator gen(&catalog, workload::MakeEdrOptions());
  workload::Trace trace = gen.Generate();

  std::printf("EDR-shaped trace: %zu queries, sequence cost %s GB "
              "(paper: 27663 queries, 1216.94 GB)\n\n",
              trace.queries.size(),
              FormatGB(gen.SequenceCost(trace)).c_str());

  // Query class mix and per-class yield contributions.
  query::YieldEstimator estimator(&catalog);
  std::map<workload::QueryClass, StatAccumulator> by_class;
  QuantileSketch yield_quantiles;
  for (const workload::TraceQuery& tq : trace.queries) {
    double yield = estimator.EstimateResultRows(tq.query) *
                   estimator.OutputRowWidth(tq.query);
    by_class[tq.klass].Add(yield);
    yield_quantiles.Add(yield);
  }
  TablePrinter mix({"class", "queries", "share", "mean_yield",
                    "total_yield_gb"});
  for (const auto& [klass, acc] : by_class) {
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  100.0 * static_cast<double>(acc.count()) /
                      static_cast<double>(trace.queries.size()));
    mix.AddRow({std::string(workload::QueryClassName(klass)),
                std::to_string(acc.count()), share,
                FormatBytes(acc.mean()), FormatGB(acc.sum())});
  }
  mix.Print(std::cout);

  std::printf("\nyield distribution: p10=%s p50=%s p90=%s p99=%s max=%s\n",
              FormatBytes(yield_quantiles.Quantile(0.10)).c_str(),
              FormatBytes(yield_quantiles.Quantile(0.50)).c_str(),
              FormatBytes(yield_quantiles.Quantile(0.90)).c_str(),
              FormatBytes(yield_quantiles.Quantile(0.99)).c_str(),
              FormatBytes(yield_quantiles.Quantile(1.0)).c_str());

  // Schema locality at both granularities.
  for (auto granularity :
       {catalog::Granularity::kTable, catalog::Granularity::kColumn}) {
    workload::LocalityStats stats =
        workload::AnalyzeSchemaLocality(catalog, trace, granularity);
    const char* label =
        granularity == catalog::Granularity::kTable ? "tables" : "columns";
    std::printf("\n%s: %zu touched, %zu untouched; 90%% of references in "
                "%zu objects; hottest object %s with %llu references\n",
                label, stats.usage.size(), stats.untouched_objects,
                stats.objects_for_90pct,
                stats.usage.empty()
                    ? "-"
                    : stats.usage[0].object.ToString(catalog).c_str(),
                stats.usage.empty()
                    ? 0ull
                    : static_cast<unsigned long long>(
                          stats.usage[0].accesses));
  }

  // Containment (the semantic-caching question).
  workload::ContainmentStats containment =
      workload::AnalyzeContainment(trace, 50);
  std::printf("\nquery containment (window 50): %zu of %zu region queries "
              "fully contained (%.2f%%), mean overlap %.4f\n",
              containment.fully_contained, containment.num_queries,
              100.0 * static_cast<double>(containment.fully_contained) /
                  static_cast<double>(containment.num_queries
                                          ? containment.num_queries
                                          : 1),
              containment.mean_overlap);
  std::printf("\nconclusion (matches §6.1): heavy schema locality, no "
              "query containment — cache schema objects, not query "
              "results.\n");
  return 0;
}
