// Yield validation walkthrough: materialize a small SDSS instance with
// the execution engine, run the paper's example query for real, and
// compare the executed result size against the analytic yield estimate
// that drives every caching decision.
//
// This is the simulation's ground-truth loop: the paper measured yields
// by "re-executing the traces with the server"; here the executor plays
// the server.

#include <cstdio>
#include <memory>
#include <vector>

#include "catalog/sdss.h"
#include "common/bytes.h"
#include "common/check.h"
#include "exec/executor.h"
#include "query/binder.h"
#include "query/parser.h"
#include "query/selectivity.h"
#include "query/yield.h"

int main() {
  using namespace byc;

  // A 1%-scale instance keeps materialization instant.
  auto catalog = catalog::MakeSdssCatalog("EDR-1pct", 0.01);
  int photo = *catalog.FindTable("PhotoObj");
  int spec = *catalog.FindTable("SpecObj");
  uint64_t photo_rows = catalog.table(photo).row_count();

  std::printf("materializing %s: PhotoObj %llu rows, SpecObj %llu rows\n",
              catalog.name().c_str(),
              static_cast<unsigned long long>(photo_rows),
              static_cast<unsigned long long>(
                  catalog.table(spec).row_count()));

  std::vector<std::unique_ptr<exec::TableData>> storage;
  std::vector<const exec::TableData*> data(
      static_cast<size_t>(catalog.num_tables()), nullptr);
  auto materialize = [&](int t, std::vector<std::pair<int, uint64_t>> fks) {
    const catalog::Table& table = catalog.table(t);
    storage.push_back(std::make_unique<exec::TableData>(
        exec::TableData::Synthesize(table, table.row_count(),
                                    7000 + static_cast<uint64_t>(t), fks)));
    data[static_cast<size_t>(t)] = storage.back().get();
  };
  materialize(photo, {});
  materialize(spec,
              {{catalog.table(spec).FindColumn("objID"), photo_rows}});
  exec::Executor executor(data);

  // Bind with histogram statistics so estimates derive from the actual
  // literal values.
  query::HistogramSelectivityModel stats;
  query::Binder binder(&catalog, &stats);
  query::YieldEstimator estimator(&catalog);

  const char* queries[] = {
      "select p.objID, p.ra, p.dec, p.modelMag_g from PhotoObj p "
      "where p.modelMag_g > 21.0",
      "select p.objID, p.ra, s.z as redshift from SpecObj s, PhotoObj p "
      "where p.objID = s.objID and s.zConf > 0.5 and s.z < 0.3",
      "select count(p.objID), avg(p.modelMag_r) from PhotoObj p "
      "where p.ra < 180",
  };

  std::printf("\n%-14s %-14s %-14s %s\n", "estimated", "executed",
              "ratio", "query");
  for (const char* sql : queries) {
    auto parsed = query::ParseSelect(sql);
    BYC_CHECK(parsed.ok());
    auto bound = binder.Bind(*parsed);
    BYC_CHECK(bound.ok());

    double estimated_bytes = estimator.EstimateResultRows(*bound) *
                             estimator.OutputRowWidth(*bound);
    auto executed = executor.Execute(*bound);
    BYC_CHECK(executed.ok());

    double ratio =
        executed->result_bytes > 0 ? estimated_bytes / executed->result_bytes
                                   : 0;
    std::printf("%-14s %-14s %-14.3f %s\n",
                FormatBytes(estimated_bytes).c_str(),
                FormatBytes(executed->result_bytes).c_str(), ratio, sql);
    if (!executed->aggregates.empty()) {
      std::printf("  aggregate values:");
      for (double v : executed->aggregates) std::printf(" %.3f", v);
      std::printf("\n");
    }
  }

  std::printf(
      "\nratios near 1.0 confirm the analytic yield model: the bypass "
      "cache's economics\nrun on estimates that match what executing the "
      "queries actually ships.\n");
  return 0;
}
