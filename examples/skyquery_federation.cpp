// SkyQuery-style federation walkthrough: a three-site World-Wide
// Telescope federation with heterogeneous WAN links, mediator-side query
// splitting, and an altruistic bypass-yield cache at the mediator.
//
// Demonstrates:
//  * Federation::MultiSite with per-site link costs,
//  * Mediator::Split (sub-queries evaluated in parallel at member sites),
//  * per-site WAN traffic with and without the bypass-yield cache.

#include <cstdio>
#include <vector>

#include "catalog/sdss.h"
#include "common/bytes.h"
#include "core/rate_profile_policy.h"
#include "federation/mediator.h"
#include "query/binder.h"
#include "sim/simulator.h"
#include "workload/generator.h"

int main() {
  using namespace byc;

  // The federation: a photometric archive (fast link), a spectroscopic
  // archive (mid link), and remote cross-match archives (slow link).
  auto catalog = catalog::MakeSdssEdrCatalog();
  std::vector<int> table_site(static_cast<size_t>(catalog.num_tables()), 2);
  auto assign = [&](const char* name, int site) {
    auto idx = catalog.FindTable(name);
    if (idx.ok()) table_site[static_cast<size_t>(*idx)] = site;
  };
  for (const char* t : {"PhotoObj", "PhotoZ", "Field", "Frame",
                        "PhotoProfile", "Mask", "Tiles"}) {
    assign(t, 0);
  }
  for (const char* t : {"SpecObj", "PlateX", "Neighbors"}) assign(t, 1);
  // First / Rosat / USNO stay at site 2 (remote surveys).
  auto fed_result = federation::Federation::MultiSite(
      std::move(catalog), table_site, {1.0, 2.0, 6.0});
  if (!fed_result.ok()) {
    std::printf("federation setup failed: %s\n",
                fed_result.status().ToString().c_str());
    return 1;
  }
  federation::Federation& fed = *fed_result;

  std::printf("World-Wide Telescope federation:\n");
  for (int s = 0; s < fed.num_sites(); ++s) {
    uint64_t bytes = 0;
    for (int t : fed.site(s).tables) {
      bytes += fed.catalog().table(t).size_bytes();
    }
    std::printf("  site %d (%s): %zu tables, %s\n", s,
                fed.site(s).name.c_str(), fed.site(s).tables.size(),
                FormatBytes(static_cast<double>(bytes)).c_str());
  }

  // Mediation: split a cross-archive query into per-site sub-queries.
  const char* sql =
      "select p.objID, p.ra, p.dec, s.z, n.distance "
      "from PhotoObj p, SpecObj s, Neighbors n "
      "where p.objID = s.objID and p.objID = n.objID "
      "and s.zConf > 0.9 and n.distance < 2.0";
  auto bound = query::ParseAndBind(fed.catalog(), sql);
  if (!bound.ok()) {
    std::printf("bind failed: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  federation::Mediator mediator(&fed, catalog::Granularity::kTable);
  std::printf("\nmediator splits the federation query across sites:\n");
  for (const federation::SubQuery& sub : mediator.Split(*bound)) {
    std::printf("  site %d evaluates %zu table slot(s), ships %s of results\n",
                sub.site, sub.table_slots.size(),
                FormatBytes(sub.result_bytes).c_str());
  }

  // Replay an EDR-shaped workload and compare per-decision WAN flows
  // with and without the cache.
  workload::GeneratorOptions options = workload::MakeEdrOptions();
  options.num_queries = 8000;
  options.target_sequence_cost *= 8000.0 / 27663.0;
  workload::TraceGenerator gen(&fed.catalog(), options);
  workload::Trace trace = gen.Generate();

  sim::Simulator simulator(&fed, catalog::Granularity::kColumn);
  auto queries = simulator.DecomposeTrace(trace);

  double uncached = 0;
  for (const auto& q : queries) {
    for (const auto& a : q) uncached += a.bypass_cost;
  }

  core::RateProfilePolicy::Options cache_options;
  cache_options.capacity_bytes = fed.catalog().total_size_bytes() * 3 / 10;
  core::RateProfilePolicy cache(cache_options);
  sim::SimResult cached = simulator.Run(cache, queries);

  std::printf("\nreplaying %zu queries (column caching, cache = 30%% of "
              "DB):\n", trace.queries.size());
  std::printf("  without cache: %s GB of cost-weighted WAN traffic\n",
              FormatGB(uncached).c_str());
  std::printf("  with bypass-yield cache: %s GB "
              "(bypass %s + loads %s), a %.1fx reduction\n",
              FormatGB(cached.totals.total_wan()).c_str(),
              FormatGB(cached.totals.bypass_cost).c_str(),
              FormatGB(cached.totals.fetch_cost).c_str(),
              uncached / cached.totals.total_wan());
  std::printf("  federation still evaluated %llu of %llu accesses at the "
              "data sources\n  (parallelism and filtering preserved for "
              "everything the cache bypassed).\n",
              static_cast<unsigned long long>(cached.totals.bypasses),
              static_cast<unsigned long long>(cached.totals.accesses));
  return 0;
}
