// Quickstart: the bypass-yield caching pipeline in one page.
//
//   1. Build an SDSS-like catalog and a single-site federation.
//   2. Parse and bind the paper's example SQL query.
//   3. Estimate its yield and decompose it onto cacheable objects.
//   4. Run accesses through a Rate-Profile bypass-yield cache and watch
//      the bypass / load / serve decisions minimize WAN traffic.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "catalog/sdss.h"
#include "common/check.h"
#include "common/bytes.h"
#include "core/rate_profile_policy.h"
#include "federation/federation.h"
#include "federation/mediator.h"
#include "query/binder.h"
#include "query/yield.h"

int main() {
  using namespace byc;

  // 1. Catalog + federation. The EDR catalog models the Sloan Digital
  //    Sky Survey's Early Data Release (~700 MB).
  auto federation =
      federation::Federation::SingleSite(catalog::MakeSdssEdrCatalog());
  const catalog::Catalog& catalog = federation.catalog();
  std::printf("catalog %s: %d tables, %d columns, %s total\n\n",
              catalog.name().c_str(), catalog.num_tables(),
              catalog.total_columns(),
              FormatBytes(static_cast<double>(catalog.total_size_bytes()))
                  .c_str());

  // 2. The paper's running example query (§6).
  const char* sql =
      "select p.objID, p.ra, p.dec, p.modelMag_g, s.z as redshift "
      "from SpecObj s, PhotoObj p "
      "where p.objID = s.objID and s.specClass = 2 and s.zConf > 0.95 "
      "and p.modelMag_g > 17.0 and s.z < 0.01";
  Result<query::ResolvedQuery> bound = query::ParseAndBind(catalog, sql);
  if (!bound.ok()) {
    std::printf("bind failed: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", sql);

  // 3. Yield estimation and per-object decomposition (column caching).
  query::YieldEstimator estimator(&catalog);
  query::QueryYield yield =
      estimator.Estimate(*bound, catalog::Granularity::kColumn);
  std::printf("estimated result: %.0f rows, %s\n", yield.result_rows,
              FormatBytes(yield.total_bytes).c_str());
  std::printf("yield decomposition onto referenced columns:\n");
  for (const query::ObjectYield& oy : yield.per_object) {
    std::printf("  %-22s %10s  (%.1f%% of the result)\n",
                oy.object.ToString(catalog).c_str(),
                FormatBytes(oy.yield_bytes).c_str(),
                100.0 * oy.yield_bytes / yield.total_bytes);
  }

  // 4. A bypass-yield cache in action. Replay the query a few times: the
  //    cache bypasses until each column's episode has earned its fetch
  //    cost, then loads it and serves later queries for free.
  federation::Mediator mediator(&federation, catalog::Granularity::kColumn);
  core::RateProfilePolicy::Options options;
  options.capacity_bytes = catalog.total_size_bytes() / 4;
  core::RateProfilePolicy cache(options);

  std::printf("\nreplaying the query 6 times through a bypass-yield cache "
              "(cache = 25%% of DB):\n");
  double wan = 0;
  for (int round = 1; round <= 6; ++round) {
    double bypassed = 0, loaded = 0, served = 0;
    for (const core::Access& access : mediator.Decompose(*bound)) {
      core::Decision d = cache.OnAccess(access);
      switch (d.action) {
        case core::Action::kBypass:
          bypassed += access.bypass_cost;
          break;
        case core::Action::kLoadAndServe:
          loaded += access.fetch_cost;
          served += access.bypass_cost;
          break;
        case core::Action::kServeFromCache:
          served += access.bypass_cost;
          break;
      }
    }
    wan += bypassed + loaded;
    std::printf(
        "  round %d: bypassed %10s   loaded %10s   served-in-cache %10s\n",
        round, FormatBytes(bypassed).c_str(), FormatBytes(loaded).c_str(),
        FormatBytes(served).c_str());
  }
  std::printf("\ntotal WAN traffic: %s (uncached: %s) — a selective point "
              "query keeps being\nbypassed: caching its columns would cost "
              "far more bandwidth than it saves.\n",
              FormatBytes(wan).c_str(),
              FormatBytes(6 * yield.total_bytes).c_str());

  // 5. A bulk survey query is a different story: its yield quickly
  //    overcomes the columns' fetch costs, so the cache invests in a
  //    load and serves every following round for free.
  const char* survey_sql =
      "select p.objID, p.ra, p.dec, p.modelMag_r, p.psfMag_r "
      "from PhotoObj p where p.modelMag_r > 14.0";
  Result<query::ResolvedQuery> survey =
      query::ParseAndBind(catalog, survey_sql);
  BYC_CHECK(survey.ok());
  survey->filters[0].selectivity = 0.6;  // a bulk export, not a trickle

  std::printf("\nreplaying a bulk survey scan 4 times:\n  %s\n",
              survey_sql);
  double survey_wan = 0;
  double survey_yield = 0;
  for (int round = 1; round <= 4; ++round) {
    double bypassed = 0, loaded = 0, served = 0;
    for (const core::Access& access : mediator.Decompose(*survey)) {
      survey_yield += access.bypass_cost;
      core::Decision d = cache.OnAccess(access);
      switch (d.action) {
        case core::Action::kBypass:
          bypassed += access.bypass_cost;
          break;
        case core::Action::kLoadAndServe:
          loaded += access.fetch_cost;
          served += access.bypass_cost;
          break;
        case core::Action::kServeFromCache:
          served += access.bypass_cost;
          break;
      }
    }
    survey_wan += bypassed + loaded;
    std::printf(
        "  round %d: bypassed %10s   loaded %10s   served-in-cache %10s\n",
        round, FormatBytes(bypassed).c_str(), FormatBytes(loaded).c_str(),
        FormatBytes(served).c_str());
  }
  std::printf("\nsurvey WAN traffic: %s (uncached: %s) — the cache earns "
              "back its load\ninvestment and every further scan is free.\n",
              FormatBytes(survey_wan).c_str(),
              FormatBytes(survey_yield).c_str());
  return 0;
}
