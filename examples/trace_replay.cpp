// Trace replay CLI: generate or load an SDSS-like trace, replay it
// through a chosen algorithm, and print the paper-style cost breakdown.
//
// Usage:
//   example_trace_replay [--release edr|dr1] [--granularity table|column]
//                        [--policy rate|online|space|gds|gdsp|lru|lfu|
//                                  static|none]
//                        [--cache-pct N] [--queries N]
//                        [--save-trace FILE | --load-trace FILE]
//
// Examples:
//   example_trace_replay --policy rate --granularity column --cache-pct 30
//   example_trace_replay --save-trace /tmp/edr.trace --queries 5000
//   example_trace_replay --load-trace /tmp/edr.trace --policy online

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "catalog/sdss.h"
#include "common/bytes.h"
#include "core/policy_factory.h"
#include "core/static_policy.h"
#include "federation/federation.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

using namespace byc;

struct Args {
  std::string release = "edr";
  std::string granularity = "column";
  std::string policy = "rate";
  int cache_pct = 30;
  size_t queries = 0;  // 0: the release's published count
  std::string save_trace;
  std::string load_trace;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--release" && (value = next())) {
      args.release = value;
    } else if (flag == "--granularity" && (value = next())) {
      args.granularity = value;
    } else if (flag == "--policy" && (value = next())) {
      args.policy = value;
    } else if (flag == "--cache-pct" && (value = next())) {
      args.cache_pct = std::atoi(value);
    } else if (flag == "--queries" && (value = next())) {
      args.queries = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--save-trace" && (value = next())) {
      args.save_trace = value;
    } else if (flag == "--load-trace" && (value = next())) {
      args.load_trace = value;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

Result<core::PolicyKind> PolicyFromName(const std::string& name) {
  if (name == "rate") return core::PolicyKind::kRateProfile;
  if (name == "online") return core::PolicyKind::kOnlineBy;
  if (name == "space") return core::PolicyKind::kSpaceEffBy;
  if (name == "gds") return core::PolicyKind::kGds;
  if (name == "gdsp") return core::PolicyKind::kGdsp;
  if (name == "lru") return core::PolicyKind::kLru;
  if (name == "lfu") return core::PolicyKind::kLfu;
  if (name == "static") return core::PolicyKind::kStatic;
  if (name == "none") return core::PolicyKind::kNoCache;
  return Status::InvalidArgument("unknown policy '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) return 2;

  bool dr1 = args.release == "dr1";
  auto catalog =
      dr1 ? catalog::MakeSdssDr1Catalog() : catalog::MakeSdssEdrCatalog();

  workload::Trace trace;
  if (!args.load_trace.empty()) {
    std::ifstream in(args.load_trace);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.load_trace.c_str());
      return 1;
    }
    auto read = workload::ReadTrace(catalog, in);
    if (!read.ok()) {
      std::fprintf(stderr, "trace parse error: %s\n",
                   read.status().ToString().c_str());
      return 1;
    }
    trace = std::move(read).value();
    std::printf("loaded %zu queries from %s\n", trace.queries.size(),
                args.load_trace.c_str());
  } else {
    workload::GeneratorOptions options =
        dr1 ? workload::MakeDr1Options() : workload::MakeEdrOptions();
    if (args.queries != 0) {
      options.target_sequence_cost *= static_cast<double>(args.queries) /
                                      static_cast<double>(options.num_queries);
      options.num_queries = args.queries;
    }
    workload::TraceGenerator gen(&catalog, options);
    trace = gen.Generate();
    std::printf("generated %zu %s-shaped queries (sequence cost %s GB)\n",
                trace.queries.size(), catalog.name().c_str(),
                FormatGB(gen.SequenceCost(trace)).c_str());
  }

  if (!args.save_trace.empty()) {
    std::ofstream out(args.save_trace);
    Status s = workload::WriteTrace(trace, out);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("saved trace to %s\n", args.save_trace.c_str());
  }

  auto kind = PolicyFromName(args.policy);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }
  catalog::Granularity granularity = args.granularity == "table"
                                         ? catalog::Granularity::kTable
                                         : catalog::Granularity::kColumn;

  auto federation = federation::Federation::SingleSite(std::move(catalog));
  sim::Simulator simulator(&federation, granularity);
  auto queries = simulator.DecomposeTrace(trace);
  uint64_t capacity = federation.catalog().total_size_bytes() *
                      static_cast<uint64_t>(args.cache_pct) / 100;

  core::PolicyConfig config;
  config.kind = *kind;
  config.capacity_bytes = capacity;
  if (config.kind == core::PolicyKind::kStatic) {
    config.static_contents = core::SelectStaticSet(
        sim::Simulator::Flatten(queries), capacity);
  }
  auto policy = core::MakePolicy(config);
  sim::SimResult result = simulator.Run(*policy, queries);

  std::printf(
      "\n%s, %s caching, cache = %d%% of DB (%s)\n"
      "  bypass cost : %9s GB  (%llu accesses shipped to servers)\n"
      "  fetch cost  : %9s GB  (%llu object loads, %llu evictions)\n"
      "  total WAN   : %9s GB\n"
      "  served      : %9s GB out of the cache (%llu hits)\n",
      result.policy_name.c_str(), args.granularity.c_str(), args.cache_pct,
      FormatBytes(static_cast<double>(capacity)).c_str(),
      FormatGB(result.totals.bypass_cost).c_str(),
      static_cast<unsigned long long>(result.totals.bypasses),
      FormatGB(result.totals.fetch_cost).c_str(),
      static_cast<unsigned long long>(result.totals.loads),
      static_cast<unsigned long long>(result.totals.evictions),
      FormatGB(result.totals.total_wan()).c_str(),
      FormatGB(result.totals.served_cost).c_str(),
      static_cast<unsigned long long>(result.totals.hits));
  return 0;
}
