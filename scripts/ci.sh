#!/usr/bin/env bash
# Full CI sweep: release + asan + tsan builds, each preset's ctest
# selection, then two smoke tests — a manifest-emission check (one bench
# binary runs with BYC_MANIFEST set, output validated against the
# documented schema by scripts/validate_manifest.py) and a loopback
# federation-service check (svc_loopback_replay must report a service
# ledger byte-identical to the simulator, under a hard timeout so a
# wedged socket can never hang CI).
#
# Usage: scripts/ci.sh [preset ...]
#   scripts/ci.sh                 # release asan tsan (the full sweep)
#   scripts/ci.sh release         # just the release leg
#
# Knobs:
#   CI_JOBS      parallel build jobs (default: nproc)
#   CI_SKIP_MANIFEST=1  skip the manifest smoke test (e.g. for tsan-only
#                       iterating on a race)
#   CI_SKIP_SERVICE=1   skip the loopback service smoke test
#   CI_SVC_TIMEOUT      seconds before the service smoke test is killed
#                       (default 300)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${CI_JOBS:-$(nproc)}"
PRESETS=("$@")
if [ "${#PRESETS[@]}" -eq 0 ]; then
  PRESETS=(release asan tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==> [$preset] ctest"
  ctest --preset "$preset" -j "$JOBS"
done

if [ "${CI_SKIP_MANIFEST:-0}" != "1" ]; then
  # The smoke test needs a release bench binary; build one even if the
  # caller only asked for sanitizer presets.
  bench=build/bench/fig9_cache_size_tables
  if [ ! -x "$bench" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target fig9_cache_size_tables
  fi
  manifest="$(mktemp -t byc_manifest.XXXXXX.json)"
  trap 'rm -f "$manifest"' EXIT
  echo "==> manifest smoke test ($bench)"
  BYC_MANIFEST="$manifest" "$bench" >/dev/null
  python3 scripts/validate_manifest.py "$manifest"
fi

if [ "${CI_SKIP_SERVICE:-0}" != "1" ]; then
  svc=build/bench/svc_loopback_replay
  if [ ! -x "$svc" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target svc_loopback_replay
  fi
  svc_manifest="$(mktemp -t byc_svc_manifest.XXXXXX.json)"
  trap 'rm -f "${manifest:-}" "$svc_manifest"' EXIT
  echo "==> service loopback smoke test ($svc)"
  # `timeout` guards against a wedged socket path: the binary itself
  # exits nonzero on any simulator/ledger mismatch.
  BYC_MANIFEST="$svc_manifest" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$svc" --queries 300
  python3 scripts/validate_manifest.py --require-service "$svc_manifest"
fi

echo "==> CI OK (${PRESETS[*]})"
