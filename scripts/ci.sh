#!/usr/bin/env bash
# Full CI sweep: release + asan + tsan builds, each preset's ctest
# selection, then three smoke tests — a manifest-emission check (one
# bench binary runs with BYC_MANIFEST set, output validated against the
# documented schema by scripts/validate_manifest.py), a loopback
# federation-service check (svc_loopback_replay must report a service
# ledger byte-identical to the simulator, under a hard timeout so a
# wedged socket can never hang CI), and a concurrent-load check
# (svc_concurrent_load: N clients interleaving on the mediator must
# conserve the ledger bitwise — in both per-query and kQueryBatch
# framing — and the manifest must carry the load fields
# validate_manifest.py --require-load demands, including the
# svc.batch_frames counter; the run is probed, so the manifest also
# proves kMetricsDump answered mid-load). A wire micro stage
# (svc_wire_micro) records batch codec throughput gauges in its own
# manifest. A final observability stage reruns the load with request
# tracing, a zero-threshold slow-query log, and the metrics probe all
# on at once, then diffs its ledger file against the untraced run's —
# the two must be bitwise IDENTICAL (observability never moves a ledger
# byte) — and python-parses every slow-log JSONL line. A final
# sharded-fleet stage (svc_sharded_load) drives the front-end router
# over per-shard mediators and proves the per-shard ledgers conserve
# the single-mediator ledger (bitwise on shard-local traffic, within an
# asserted reassociation bound across splits); its manifest is checked
# by validate_manifest.py --require-shard. A scenario-matrix stage runs
# bench/scenario_matrix --quick twice and diffs the BENCH_scenarios.json
# cells modulo the timing fields (two same-seed runs must agree on every
# ledger byte); its manifest is checked by validate_manifest.py
# --require-scenario.
#
# Usage: scripts/ci.sh [preset ...]
#   scripts/ci.sh                 # release asan tsan (the full sweep)
#   scripts/ci.sh release         # just the release leg
#
# Knobs:
#   CI_JOBS      parallel build jobs (default: nproc)
#   CI_SKIP_MANIFEST=1  skip the manifest smoke test (e.g. for tsan-only
#                       iterating on a race)
#   CI_SKIP_SERVICE=1   skip the loopback service smoke test
#   CI_SKIP_LOAD=1      skip the concurrent-load smoke test
#   CI_SKIP_WIRE=1      skip the wire codec micro smoke test
#   CI_SKIP_OBS=1       skip the traced-load observability smoke test
#   CI_SKIP_WARM=1      skip the warm-restart / crash-recovery smoke test
#   CI_SKIP_SCENARIO=1  skip the scenario-matrix determinism smoke test
#   CI_SKIP_SHARD=1     skip the sharded-fleet smoke test
#   CI_SVC_TIMEOUT      seconds before a service smoke test is killed
#                       (default 300, applies to all service stages)
#   CI_LOAD_CLIENTS     concurrent clients for the load smoke (default 4)
#   CI_LOAD_BATCH       queries per kQueryBatch frame in the load smoke's
#                       batched cases (default 16)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${CI_JOBS:-$(nproc)}"
PRESETS=("$@")
if [ "${#PRESETS[@]}" -eq 0 ]; then
  PRESETS=(release asan tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==> [$preset] ctest"
  ctest --preset "$preset" -j "$JOBS"
done

if [ "${CI_SKIP_MANIFEST:-0}" != "1" ]; then
  # The smoke test needs a release bench binary; build one even if the
  # caller only asked for sanitizer presets.
  bench=build/bench/fig9_cache_size_tables
  if [ ! -x "$bench" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target fig9_cache_size_tables
  fi
  manifest="$(mktemp -t byc_manifest.XXXXXX.json)"
  trap 'rm -f "$manifest"' EXIT
  echo "==> manifest smoke test ($bench)"
  BYC_MANIFEST="$manifest" "$bench" >/dev/null
  python3 scripts/validate_manifest.py "$manifest"
fi

if [ "${CI_SKIP_SERVICE:-0}" != "1" ]; then
  svc=build/bench/svc_loopback_replay
  if [ ! -x "$svc" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target svc_loopback_replay
  fi
  svc_manifest="$(mktemp -t byc_svc_manifest.XXXXXX.json)"
  trap 'rm -f "${manifest:-}" "$svc_manifest"' EXIT
  echo "==> service loopback smoke test ($svc)"
  # `timeout` guards against a wedged socket path: the binary itself
  # exits nonzero on any simulator/ledger mismatch.
  BYC_MANIFEST="$svc_manifest" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$svc" --queries 300
  python3 scripts/validate_manifest.py --require-service "$svc_manifest"
fi

if [ "${CI_SKIP_LOAD:-0}" != "1" ]; then
  load=build/bench/svc_concurrent_load
  if [ ! -x "$load" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target svc_concurrent_load
  fi
  load_manifest="$(mktemp -t byc_load_manifest.XXXXXX.json)"
  load_json="$(mktemp -t byc_load_bench.XXXXXX.json)"
  trap 'rm -f "${manifest:-}" "${svc_manifest:-}" "$load_manifest" "$load_json"' EXIT
  echo "==> concurrent load smoke test ($load)"
  # The binary exits nonzero if the N-client aggregate ledger diverges
  # from the single-client order by even one bit; `timeout` guards
  # against a wedged admission stage. --probe scrapes kMetricsDump from
  # a live session throughout, so the manifest carries the admin-plane
  # counters and live gauges --require-load now demands.
  BYC_MANIFEST="$load_manifest" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$load" --queries 300 \
    --clients "${CI_LOAD_CLIENTS:-4}" --batch "${CI_LOAD_BATCH:-16}" \
    --probe --out "$load_json"
  python3 scripts/validate_manifest.py --require-service --require-load \
    "$load_manifest"
fi

if [ "${CI_SKIP_WIRE:-0}" != "1" ]; then
  wire=build/bench/svc_wire_micro
  if [ ! -x "$wire" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target svc_wire_micro
  fi
  wire_manifest="$(mktemp -t byc_wire_manifest.XXXXXX.json)"
  trap 'rm -f "${manifest:-}" "${svc_manifest:-}" "${load_manifest:-}" "${load_json:-}" "$wire_manifest"' EXIT
  echo "==> wire codec micro smoke test ($wire)"
  # Exits nonzero if a batch round-trip decodes wrong; the manifest
  # records the codec throughput gauges (wire.*).
  BYC_MANIFEST="$wire_manifest" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$wire" --iters 2000
  python3 scripts/validate_manifest.py "$wire_manifest"
fi

if [ "${CI_SKIP_OBS:-0}" != "1" ]; then
  load=build/bench/svc_concurrent_load
  if [ ! -x "$load" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target svc_concurrent_load
  fi
  obs_dir="$(mktemp -d -t byc_obs.XXXXXX)"
  trap 'rm -f "${manifest:-}" "${svc_manifest:-}" "${load_manifest:-}" "${load_json:-}" "${wire_manifest:-}"; rm -rf "${obs_dir:-}"' EXIT
  echo "==> observability smoke test ($load, traced vs untraced)"
  # Baseline: the plain load path, no tracing, no probe, no slow log —
  # exactly what PR 6 shipped, plus the ledger text file.
  timeout "${CI_SVC_TIMEOUT:-300}" "$load" --queries 300 \
    --clients "${CI_LOAD_CLIENTS:-4}" --batch "${CI_LOAD_BATCH:-16}" \
    --ledger "$obs_dir/plain.ledger" --out "$obs_dir/plain_bench.json" \
    >/dev/null
  # The fully observed run: every query traced on the wire, every query
  # slow-logged (threshold 0), and the admin endpoint scraped mid-load.
  BYC_MANIFEST="$obs_dir/traced_manifest.json" \
  BYC_SVC_TRACE=1 BYC_SVC_SLOW_MS=0 \
  BYC_SVC_SLOW_LOG="$obs_dir/slow.jsonl" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$load" --queries 300 \
    --clients "${CI_LOAD_CLIENTS:-4}" --batch "${CI_LOAD_BATCH:-16}" \
    --probe --ledger "$obs_dir/traced.ledger" \
    --out "$obs_dir/traced_bench.json"
  python3 scripts/validate_manifest.py --require-service --require-load \
    "$obs_dir/traced_manifest.json"
  # The whole point of the plane: observing the service must not move a
  # single ledger byte.
  if ! cmp "$obs_dir/plain.ledger" "$obs_dir/traced.ledger"; then
    echo "ci.sh: traced ledger diverged from the untraced baseline" >&2
    diff "$obs_dir/plain.ledger" "$obs_dir/traced.ledger" >&2 || true
    exit 1
  fi
  echo "    traced and untraced ledgers are bitwise identical"
  # Every slow-log line is one well-formed JSON record.
  python3 - "$obs_dir/slow.jsonl" <<'EOF'
import json, sys
path = sys.argv[1]
n = 0
with open(path, encoding="utf-8") as f:
    for i, line in enumerate(f, 1):
        rec = json.loads(line)
        for key in ("trace_id", "total_ms", "backend_ms", "accesses"):
            if key not in rec:
                sys.exit(f"{path}:{i}: missing {key!r}")
        n += 1
if n == 0:
    sys.exit(f"{path}: zero-threshold slow log is empty")
print(f"    slow log OK ({n} JSONL records)")
EOF
fi

if [ "${CI_SKIP_WARM:-0}" != "1" ]; then
  warm=build/bench/svc_warm_restart
  if [ ! -x "$warm" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target svc_warm_restart
  fi
  warm_manifest="$(mktemp -t byc_warm_manifest.XXXXXX.json)"
  trap 'rm -f "${manifest:-}" "${svc_manifest:-}" "${load_manifest:-}" "${load_json:-}" "${wire_manifest:-}" "$warm_manifest"; rm -rf "${obs_dir:-}"' EXIT
  echo "==> warm-restart smoke test ($warm, all policies)"
  # Snapshot mid-trace, simulate a crash, restore, finish the trace: the
  # resumed ledger must be byte-identical to the uninterrupted run for
  # every policy kind at both granularities (plus the torn-write and
  # corrupted-snapshot fault cases). The binary exits nonzero on any
  # single-bit divergence.
  BYC_MANIFEST="$warm_manifest" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$warm" --queries 300
  python3 scripts/validate_manifest.py --require-snapshot "$warm_manifest"
  echo "==> warm-restart SIGKILL smoke test ($warm --sigkill)"
  # The real thing: kill -9 the serving process mid-trace (the kill races
  # the 25 ms checkpointer, landing mid-write some of the time), restart
  # from whatever snapshot survived, and compare the resumed ledger
  # bitwise against the uninterrupted baseline.
  timeout "${CI_SVC_TIMEOUT:-300}" "$warm" --queries 400 --sigkill --repeat 3
fi

if [ "${CI_SKIP_SCENARIO:-0}" != "1" ]; then
  matrix=build/bench/scenario_matrix
  if [ ! -x "$matrix" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target scenario_matrix
  fi
  scn_dir="$(mktemp -d -t byc_scenario.XXXXXX)"
  trap 'rm -f "${manifest:-}" "${svc_manifest:-}" "${load_manifest:-}" "${load_json:-}" "${wire_manifest:-}" "${warm_manifest:-}"; rm -rf "${obs_dir:-}" "${scn_dir:-}"' EXIT
  echo "==> scenario matrix smoke test ($matrix --quick, run twice)"
  # The full scenario x policy x capacity grid in --quick form (every
  # builtin scenario scaled down, one granularity, one capacity). The
  # binary itself exits nonzero if the parallel matrix diverges from the
  # serial one by a bit; CI additionally runs it TWICE into fresh output
  # files and diffs the JSON modulo the timing fields (qps, wall_ms) —
  # two same-seed runs must agree on every ledger byte.
  BYC_MANIFEST="$scn_dir/manifest.json" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$matrix" --quick \
    --out "$scn_dir/run_a.json" >/dev/null
  timeout "${CI_SVC_TIMEOUT:-300}" "$matrix" --quick \
    --out "$scn_dir/run_b.json" >/dev/null
  python3 - "$scn_dir/run_a.json" "$scn_dir/run_b.json" <<'EOF'
import json, sys
def strip(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    for row in rows:
        row.pop("qps", None)
        row.pop("wall_ms", None)
    return rows
a, b = strip(sys.argv[1]), strip(sys.argv[2])
if a != b:
    sys.exit("scenario matrix output differs between same-seed runs "
             "(modulo timing fields)")
print(f"    scenario matrix deterministic ({len(a)} cells)")
EOF
  python3 scripts/validate_manifest.py --require-scenario \
    "$scn_dir/manifest.json"
fi

if [ "${CI_SKIP_SHARD:-0}" != "1" ]; then
  sharded=build/bench/svc_sharded_load
  if [ ! -x "$sharded" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target svc_sharded_load
  fi
  shard_manifest="$(mktemp -t byc_shard_manifest.XXXXXX.json)"
  shard_json="$(mktemp -t byc_shard_bench.XXXXXX.json)"
  trap 'rm -f "${manifest:-}" "${svc_manifest:-}" "${load_manifest:-}" "${load_json:-}" "${wire_manifest:-}" "${warm_manifest:-}" "$shard_manifest" "$shard_json"; rm -rf "${obs_dir:-}" "${scn_dir:-}"' EXIT
  echo "==> sharded-fleet smoke test ($sharded, router + per-shard ledgers)"
  # Router scatter/gather over M=2 shard mediators: the binary exits
  # nonzero if any per-shard ledger diverges from its per-shard
  # simulator replay by one bit, if the merged kStats ledger differs
  # from the ascending-shard-order fold, or if the cross-shard cost
  # deviation exceeds the asserted reassociation bound. The M-scaling
  # perf leg then records {shards, qps, p50/p90/p99} rows; the manifest
  # must carry the router fanout counters, per-shard qps gauges, and
  # merged ledger fields --require-shard demands.
  BYC_MANIFEST="$shard_manifest" \
    timeout "${CI_SVC_TIMEOUT:-300}" "$sharded" --queries 200 \
    --clients "${CI_LOAD_CLIENTS:-4}" --batch "${CI_LOAD_BATCH:-16}" \
    --out "$shard_json"
  python3 scripts/validate_manifest.py --require-shard "$shard_manifest"
fi

echo "==> CI OK (${PRESETS[*]})"
