#!/usr/bin/env bash
# Full CI sweep: release + asan + tsan builds, each preset's ctest
# selection, then a manifest-emission smoke test — one bench binary runs
# with BYC_MANIFEST set and the output is validated against the
# documented schema (scripts/validate_manifest.py).
#
# Usage: scripts/ci.sh [preset ...]
#   scripts/ci.sh                 # release asan tsan (the full sweep)
#   scripts/ci.sh release         # just the release leg
#
# Knobs:
#   CI_JOBS      parallel build jobs (default: nproc)
#   CI_SKIP_MANIFEST=1  skip the manifest smoke test (e.g. for tsan-only
#                       iterating on a race)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${CI_JOBS:-$(nproc)}"
PRESETS=("$@")
if [ "${#PRESETS[@]}" -eq 0 ]; then
  PRESETS=(release asan tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==> [$preset] ctest"
  ctest --preset "$preset" -j "$JOBS"
done

if [ "${CI_SKIP_MANIFEST:-0}" != "1" ]; then
  # The smoke test needs a release bench binary; build one even if the
  # caller only asked for sanitizer presets.
  bench=build/bench/fig9_cache_size_tables
  if [ ! -x "$bench" ]; then
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$JOBS" --target fig9_cache_size_tables
  fi
  manifest="$(mktemp -t byc_manifest.XXXXXX.json)"
  trap 'rm -f "$manifest"' EXIT
  echo "==> manifest smoke test ($bench)"
  BYC_MANIFEST="$manifest" "$bench" >/dev/null
  python3 scripts/validate_manifest.py "$manifest"
fi

echo "==> CI OK (${PRESETS[*]})"
