#!/usr/bin/env python3
"""Validate a run manifest against schema_version 2.

The schema is documented in src/telemetry/manifest.h and emitted by
bench::BenchRun (any bench binary run with BYC_MANIFEST or
BYC_MANIFEST_DIR set). Stdlib only.

Manifests written by service benches (svc_loopback_replay,
svc_concurrent_load) additionally carry the BYC_SVC_* configuration
("svc.deadline_ms", "svc.retries") and svc.* metrics; those fields are
validated whenever present, and --require-service makes their absence an
error (the CI service smoke stage passes it so a silently-unconfigured
run cannot slip through).

--require-load additionally demands the concurrent-load fields of
svc_concurrent_load: a positive "svc.sessions" counter, a positive
"svc.qps" gauge, a present "svc.batch_frames" counter (the generic
counter rule already enforces >= 0; the load run must record how many
kQueryBatch frames it served, even when that is zero), and a sane
"svc.request_ms" latency histogram (count >= 1 and p50 <= p90 <= p99).
Since schema_version 2 it also demands the observability plane of a
probed load run: a positive "wire.metrics_dump" counter (the admin
endpoint really served scrapes) and the "svc.admission_queue_depth"
live gauge (refreshed on every kMetricsDump). The CI load smoke stage
passes it and runs svc_concurrent_load with --probe.

--require-snapshot demands the persistence fields of a warm-restart run
(svc_warm_restart, or any persisting mediator): a "svc.snapshot_writes"
counter >= 1, a positive "svc.snapshot_bytes" gauge, and the restore
outcome counters ("svc.snapshot_restores", "svc.snapshot_restore_failed")
present — so a CI warm-restart stage that silently never snapshotted or
never restored cannot pass.

--require-shard demands the sharded-router fields of an svc_sharded_load
run: the router plane ("svc.router.queries" and "svc.router.fanout"
counters >= 1, a "svc.router.shards" gauge >= 1, the
"svc.router.cross_shard" split counter present), a per-shard throughput
gauge ("svc.shard<N>.qps") for every shard of the widest fleet with
positive aggregate throughput, and the merged conservation ledger
gauges ("svc.merged.queries" > 0, "svc.merged.wan_cost",
"svc.merged.served_cost" present) — so a CI sharded stage whose router
silently served nothing, or whose gather stage dropped the merged
ledger, cannot pass.

--require-scenario demands the scenario-matrix fields of a
scenario_matrix run: per-cell "scn.<scenario>.<granularity>.<policy>.
<capacity_pct>.{D_S,D_L,qps}" gauges where every cell carries both WAN
ledger components (D_S, D_L, numbers >= 0) and a positive qps, a
"scn.cells" gauge matching the number of distinct cells, and coverage
of at least 2 distinct scenarios and 3 distinct policies — so a CI
matrix stage that silently collapsed to one scenario or one policy
cannot pass.

Usage: validate_manifest.py [--require-service] [--require-load]
                            [--require-snapshot] [--require-shard]
                            [--require-scenario]
                            <manifest.json> [...]
Exits nonzero with a message per violation.
"""

import json
import sys

HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")


def fail(path, message, errors):
    errors.append(f"{path}: {message}")


def is_number(value):
    # bool is an int subclass in Python; manifests never use booleans for
    # numeric fields.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_manifest(doc, path, errors):
    if not isinstance(doc, dict):
        fail(path, "top level is not a JSON object", errors)
        return

    def expect(key, predicate, description):
        if key not in doc:
            fail(path, f"missing key {key!r}", errors)
            return None
        if not predicate(doc[key]):
            fail(path, f"{key!r} is not {description}: {doc[key]!r}", errors)
            return None
        return doc[key]

    expect("schema_version", lambda v: v == 2, "the literal 2")
    expect("name", lambda v: isinstance(v, str) and v != "",
           "a non-empty string")
    expect("git_describe", lambda v: isinstance(v, str) and v != "",
           "a non-empty string")
    expect("threads", lambda v: isinstance(v, int) and not isinstance(v, bool)
           and v >= 1, "an integer >= 1")

    config = expect("config", lambda v: isinstance(v, dict), "an object")
    if config is not None:
        for key, value in config.items():
            if not isinstance(value, str):
                fail(path, f"config[{key!r}] is not a string: {value!r}",
                     errors)

    metrics = expect("metrics", lambda v: isinstance(v, dict), "an object")
    if metrics is not None:
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                fail(path, f"metrics missing {section!r}", errors)
                continue
            if not isinstance(metrics[section], dict):
                fail(path, f"metrics[{section!r}] is not an object", errors)
        counters = metrics.get("counters", {})
        if isinstance(counters, dict):
            for name, value in counters.items():
                if not (isinstance(value, int)
                        and not isinstance(value, bool)) or value < 0:
                    fail(path,
                         f"counter {name!r} is not a non-negative integer: "
                         f"{value!r}", errors)
        gauges = metrics.get("gauges", {})
        if isinstance(gauges, dict):
            for name, value in gauges.items():
                if not is_number(value):
                    fail(path, f"gauge {name!r} is not a number: {value!r}",
                         errors)
        histograms = metrics.get("histograms", {})
        if isinstance(histograms, dict):
            for name, summary in histograms.items():
                if not isinstance(summary, dict):
                    fail(path, f"histogram {name!r} is not an object", errors)
                    continue
                for field in HISTOGRAM_FIELDS:
                    if field not in summary:
                        fail(path, f"histogram {name!r} missing {field!r}",
                             errors)
                    elif not is_number(summary[field]):
                        fail(path,
                             f"histogram {name!r}[{field!r}] is not a "
                             f"number: {summary[field]!r}", errors)
                extra = set(summary) - set(HISTOGRAM_FIELDS)
                if extra:
                    fail(path,
                         f"histogram {name!r} has unknown fields: "
                         f"{sorted(extra)}", errors)

    spans = expect("spans", lambda v: isinstance(v, list), "an array")
    if spans is not None:
        for i, span in enumerate(spans):
            if not isinstance(span, dict):
                fail(path, f"spans[{i}] is not an object", errors)
                continue
            if not isinstance(span.get("name"), str) or not span["name"]:
                fail(path, f"spans[{i}] missing a non-empty 'name'", errors)
            if not is_number(span.get("wall_ms")) or span["wall_ms"] < 0:
                fail(path,
                     f"spans[{i}] 'wall_ms' is not a non-negative number",
                     errors)

    known = {"schema_version", "name", "config", "git_describe", "threads",
             "metrics", "spans"}
    extra = set(doc) - known
    if extra:
        fail(path, f"unknown top-level keys: {sorted(extra)}", errors)


def is_strict_int(text):
    """The strict-integer convention of common/env.h: decimal digits with
    at most one leading '-', no sign prefix '+', no whitespace."""
    if not isinstance(text, str) or not text:
        return False
    body = text[1:] if text[0] == "-" else text
    return body.isdigit() and body.isascii()


def validate_service_fields(doc, path, errors, required):
    """Checks the service-layer additions of a svc_* bench manifest."""
    config = doc.get("config") if isinstance(doc, dict) else None
    config = config if isinstance(config, dict) else {}
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    metrics = metrics if isinstance(metrics, dict) else {}
    counters = metrics.get("counters", {})
    counters = counters if isinstance(counters, dict) else {}
    histograms = metrics.get("histograms", {})
    histograms = histograms if isinstance(histograms, dict) else {}

    # A sharded-router manifest carries svc.router.* counters but no
    # mediator replay ledger; the mediator-level schema keys on the
    # replay counter itself so router-only manifests are validated by
    # --require-shard instead.
    has_service = any(key.startswith("svc.") for key in config) or (
        "svc.queries" in counters)
    if not has_service:
        if required:
            fail(path, "no svc.* config or metrics found "
                 "(--require-service)", errors)
        return

    for key in ("svc.deadline_ms", "svc.retries"):
        if key not in config:
            fail(path, f"service manifest missing config[{key!r}]", errors)
        elif not is_strict_int(config[key]):
            fail(path, f"config[{key!r}] is not a strict integer: "
                 f"{config[key]!r}", errors)
    if "svc.deadline_ms" in config and is_strict_int(
            config["svc.deadline_ms"]) and int(config["svc.deadline_ms"]) < 1:
        fail(path, "config['svc.deadline_ms'] must be >= 1", errors)

    for name in ("svc.queries", "svc.accesses"):
        if name not in counters:
            fail(path, f"service manifest missing counter {name!r}", errors)
        elif isinstance(counters[name], int) and counters[name] < 1:
            fail(path, f"counter {name!r} must be >= 1 for a completed "
                 f"replay: {counters[name]!r}", errors)

    hist = histograms.get("svc.request_ms")
    if hist is None:
        fail(path, "service manifest missing histogram 'svc.request_ms'",
             errors)
    elif isinstance(hist, dict) and is_number(hist.get("count")):
        queries = counters.get("svc.queries")
        if isinstance(queries, int) and hist["count"] != queries:
            fail(path, f"histogram 'svc.request_ms' count {hist['count']!r} "
                 f"!= counter 'svc.queries' {queries!r}", errors)


def validate_load_fields(doc, path, errors, required):
    """Checks the concurrent-load additions of an svc_concurrent_load
    manifest: live sessions, aggregate throughput, and a sane
    client-visible latency distribution."""
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    metrics = metrics if isinstance(metrics, dict) else {}
    counters = metrics.get("counters", {})
    counters = counters if isinstance(counters, dict) else {}
    gauges = metrics.get("gauges", {})
    gauges = gauges if isinstance(gauges, dict) else {}
    histograms = metrics.get("histograms", {})
    histograms = histograms if isinstance(histograms, dict) else {}

    has_load = "svc.qps" in gauges
    if not has_load:
        if required:
            fail(path, "no 'svc.qps' gauge found (--require-load)", errors)
        return

    sessions = counters.get("svc.sessions")
    if sessions is None:
        fail(path, "load manifest missing counter 'svc.sessions'", errors)
    elif isinstance(sessions, int) and sessions < 1:
        fail(path, f"counter 'svc.sessions' must be >= 1 for a completed "
             f"load run: {sessions!r}", errors)

    qps = gauges["svc.qps"]
    if not is_number(qps) or qps <= 0:
        fail(path, f"gauge 'svc.qps' must be a positive number: {qps!r}",
             errors)

    if "svc.batch_frames" not in counters:
        fail(path, "load manifest missing counter 'svc.batch_frames' "
             "(the mediator records batch framing even when unused)",
             errors)

    if required:
        # The CI load smoke runs with --probe: the manifest must prove
        # the admin metrics plane answered mid-load and refreshed the
        # live admission gauges.
        dumps = counters.get("wire.metrics_dump")
        if dumps is None:
            fail(path, "load manifest missing counter 'wire.metrics_dump' "
                 "(--require-load expects a probed run)", errors)
        elif isinstance(dumps, int) and dumps < 1:
            fail(path, f"counter 'wire.metrics_dump' must be >= 1 for a "
                 f"probed load run: {dumps!r}", errors)
        if "svc.admission_queue_depth" not in gauges:
            fail(path, "load manifest missing gauge "
                 "'svc.admission_queue_depth' (refreshed on every "
                 "kMetricsDump scrape)", errors)

    hist = histograms.get("svc.request_ms")
    if hist is None:
        fail(path, "load manifest missing histogram 'svc.request_ms'",
             errors)
    elif isinstance(hist, dict):
        if is_number(hist.get("count")) and hist["count"] < 1:
            fail(path, "histogram 'svc.request_ms' is empty in a load run",
                 errors)
        quantiles = [hist.get(q) for q in ("p50", "p90", "p99")]
        if all(is_number(q) for q in quantiles):
            p50, p90, p99 = quantiles
            if not (0 <= p50 <= p90 <= p99):
                fail(path, f"histogram 'svc.request_ms' quantiles are not "
                     f"monotone: p50={p50!r} p90={p90!r} p99={p99!r}",
                     errors)


def validate_snapshot_fields(doc, path, errors, required):
    """Checks the persistence additions of a warm-restart manifest: the
    snapshot write/restore counters a persisting mediator maintains."""
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    metrics = metrics if isinstance(metrics, dict) else {}
    counters = metrics.get("counters", {})
    counters = counters if isinstance(counters, dict) else {}
    gauges = metrics.get("gauges", {})
    gauges = gauges if isinstance(gauges, dict) else {}

    has_snapshot = "svc.snapshot_writes" in counters
    if not has_snapshot:
        if required:
            fail(path, "no 'svc.snapshot_writes' counter found "
                 "(--require-snapshot)", errors)
        return

    writes = counters["svc.snapshot_writes"]
    if required and isinstance(writes, int) and writes < 1:
        fail(path, f"counter 'svc.snapshot_writes' must be >= 1 for a "
             f"warm-restart run: {writes!r}", errors)

    size = gauges.get("svc.snapshot_bytes")
    if size is None:
        fail(path, "snapshot manifest missing gauge 'svc.snapshot_bytes'",
             errors)
    elif required and is_number(size) and size <= 0:
        fail(path, f"gauge 'svc.snapshot_bytes' must be positive after a "
             f"snapshot write: {size!r}", errors)

    for name in ("svc.snapshot_restores", "svc.snapshot_restore_failed"):
        if name not in counters:
            fail(path, f"snapshot manifest missing counter {name!r} "
                 f"(restore outcomes must be recorded)", errors)


def validate_shard_fields(doc, path, errors, required):
    """Checks the sharded-router additions of an svc_sharded_load
    manifest: the scatter/gather plane, per-shard throughput, and the
    merged conservation ledger."""
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    metrics = metrics if isinstance(metrics, dict) else {}
    counters = metrics.get("counters", {})
    counters = counters if isinstance(counters, dict) else {}
    gauges = metrics.get("gauges", {})
    gauges = gauges if isinstance(gauges, dict) else {}

    has_shard = "svc.router.queries" in counters
    if not has_shard:
        if required:
            fail(path, "no 'svc.router.queries' counter found "
                 "(--require-shard)", errors)
        return

    for name in ("svc.router.queries", "svc.router.fanout"):
        value = counters.get(name)
        if value is None:
            fail(path, f"shard manifest missing counter {name!r}", errors)
        elif isinstance(value, int) and value < 1:
            fail(path, f"counter {name!r} must be >= 1 for a completed "
                 f"sharded run: {value!r}", errors)
    if "svc.router.cross_shard" not in counters:
        fail(path, "shard manifest missing counter 'svc.router.cross_shard' "
             "(split accounting must be recorded even when zero)", errors)

    shards = gauges.get("svc.router.shards")
    if shards is None:
        fail(path, "shard manifest missing gauge 'svc.router.shards'",
             errors)
        return
    if not is_number(shards) or shards < 1:
        fail(path, f"gauge 'svc.router.shards' must be >= 1: {shards!r}",
             errors)
        return

    # Per-shard throughput of the widest fleet: every shard must have
    # reported, and the fleet as a whole must have moved queries. (An
    # individual shard may legitimately see ~no traffic on a skewed
    # catalog, but all of them idle means the router never scattered.)
    total_qps = 0.0
    for n in range(int(shards)):
        name = f"svc.shard{n}.qps"
        qps = gauges.get(name)
        if qps is None:
            fail(path, f"shard manifest missing gauge {name!r}", errors)
        elif not is_number(qps) or qps < 0:
            fail(path, f"gauge {name!r} is not a non-negative number: "
                 f"{qps!r}", errors)
        else:
            total_qps += qps
    if total_qps <= 0:
        fail(path, "per-shard qps gauges sum to zero "
             "(the fleet served no traffic)", errors)

    merged_queries = gauges.get("svc.merged.queries")
    if merged_queries is None:
        fail(path, "shard manifest missing gauge 'svc.merged.queries'",
             errors)
    elif not is_number(merged_queries) or merged_queries <= 0:
        fail(path, f"gauge 'svc.merged.queries' must be positive: "
             f"{merged_queries!r}", errors)
    for name in ("svc.merged.wan_cost", "svc.merged.served_cost"):
        if name not in gauges:
            fail(path, f"shard manifest missing gauge {name!r} "
                 f"(merged ledger fields)", errors)


def validate_scenario_fields(doc, path, errors, required):
    """Checks the scenario-matrix additions of a scenario_matrix
    manifest: the per-cell scn.* ledger gauges and the coverage floor
    of the scenario x policy grid."""
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    metrics = metrics if isinstance(metrics, dict) else {}
    gauges = metrics.get("gauges", {})
    gauges = gauges if isinstance(gauges, dict) else {}

    cell_gauges = {name: value for name, value in gauges.items()
                   if name.startswith("scn.") and name != "scn.cells"}
    if not cell_gauges:
        if required:
            fail(path, "no scn.* cell gauges found (--require-scenario)",
                 errors)
        return

    # Gauge name: scn.<scenario>.<granularity>.<policy>.<cap_pct>.<field>
    # (scenario and policy names never contain dots).
    cells = {}
    for name, value in cell_gauges.items():
        parts = name.split(".")
        if len(parts) != 6:
            fail(path, f"malformed scenario gauge name {name!r} "
                 f"(want scn.<scenario>.<gran>.<policy>.<cap>.<field>)",
                 errors)
            continue
        _, scenario, gran, policy, cap, field = parts
        if gran not in ("table", "column"):
            fail(path, f"gauge {name!r} has unknown granularity {gran!r}",
                 errors)
            continue
        if not cap.isdigit():
            fail(path, f"gauge {name!r} capacity {cap!r} is not an integer "
                 f"percentage", errors)
            continue
        cells.setdefault((scenario, gran, policy, cap), {})[field] = value

    for key, fields in sorted(cells.items()):
        label = "/".join(key)
        for field in ("D_S", "D_L"):
            if field not in fields:
                fail(path, f"scenario cell {label} missing gauge field "
                     f"{field!r}", errors)
            elif not is_number(fields[field]) or fields[field] < 0:
                fail(path, f"scenario cell {label} field {field!r} is not a "
                     f"non-negative number: {fields[field]!r}", errors)
        if "qps" not in fields:
            fail(path, f"scenario cell {label} missing gauge field 'qps'",
                 errors)
        elif not is_number(fields["qps"]) or fields["qps"] <= 0:
            fail(path, f"scenario cell {label} field 'qps' must be positive: "
                 f"{fields['qps']!r}", errors)
        extra = set(fields) - {"D_S", "D_L", "qps"}
        if extra:
            fail(path, f"scenario cell {label} has unknown fields: "
                 f"{sorted(extra)}", errors)

    count = gauges.get("scn.cells")
    if count is None:
        fail(path, "scenario manifest missing gauge 'scn.cells'", errors)
    elif not is_number(count) or int(count) != len(cells):
        fail(path, f"gauge 'scn.cells' {count!r} != {len(cells)} distinct "
             f"cells in the manifest", errors)

    if required:
        scenarios = {key[0] for key in cells}
        policies = {key[2] for key in cells}
        if len(scenarios) < 2:
            fail(path, f"scenario coverage too narrow: {sorted(scenarios)} "
                 f"(--require-scenario wants >= 2 scenarios)", errors)
        if len(policies) < 3:
            fail(path, f"policy coverage too narrow: {sorted(policies)} "
                 f"(--require-scenario wants >= 3 policies)", errors)


def main(argv):
    args = argv[1:]
    require_service = "--require-service" in args
    require_load = "--require-load" in args
    require_snapshot = "--require-snapshot" in args
    require_shard = "--require-shard" in args
    require_scenario = "--require-scenario" in args
    flags = ("--require-service", "--require-load", "--require-snapshot",
             "--require-shard", "--require-scenario")
    paths = [a for a in args if a not in flags]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, f"unreadable or invalid JSON: {e}", errors)
            continue
        validate_manifest(doc, path, errors)
        validate_service_fields(doc, path, errors, require_service)
        validate_load_fields(doc, path, errors, require_load)
        validate_snapshot_fields(doc, path, errors, require_snapshot)
        validate_shard_fields(doc, path, errors, require_shard)
        validate_scenario_fields(doc, path, errors, require_scenario)
    if errors:
        for error in errors:
            print(f"validate_manifest: {error}", file=sys.stderr)
        return 1
    print(f"validate_manifest: {len(paths)} manifest(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
