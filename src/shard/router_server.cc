#include "shard/router_server.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "persist/snapshot.h"
#include "service/ledger_diff.h"
#include "telemetry/manifest.h"
#include "telemetry/metrics.h"
#include "workload/trace.h"

namespace byc::shard {

namespace {

using service::Deadline;
using service::Frame;
using service::FrameType;
using service::MakeErrorFrame;
using service::QueryReply;
using service::ReadFrame;
using service::ReplyTicket;
using service::Socket;
using service::StatsReply;
using service::WireCode;
using service::WriteFrame;

void InterruptibleSleep(int total_ms, const std::atomic<bool>& stop) {
  using namespace std::chrono;
  auto until = std::chrono::steady_clock::now() + milliseconds(total_ms);
  while (!stop.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(10));
  }
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Encodes `frame` into a recycled buffer and completes the slot.
void CompleteWithFrame(ReplyTicket& ticket, const Frame& frame,
                       bool close_after = false) {
  std::vector<uint8_t> out = ticket.TakeBuffer();
  EncodeFrameInto(out, frame);
  ticket.Complete(std::move(out), close_after);
}

/// Router snapshot section ids (router.snap; DESIGN.md §13). Disjoint
/// file from mediator.snap, so ids are a fresh namespace.
constexpr uint32_t kRouterSectionMap = 1;      // ShardMap::Serialize bytes
constexpr uint32_t kRouterSectionCursors = 2;  // admission + sub-seq cursors

/// Field-wise sum of one per-shard delta into the merged reply. Order of
/// calls is the association order of the doubles, so callers MUST
/// accumulate in ascending shard order.
void AccumulateDelta(QueryReply& into, const QueryReply& delta) {
  into.accesses += delta.accesses;
  into.hits += delta.hits;
  into.bypasses += delta.bypasses;
  into.loads += delta.loads;
  into.evictions += delta.evictions;
  into.degraded += delta.degraded;
  into.served_cost += delta.served_cost;
  into.bypass_cost += delta.bypass_cost;
  into.fetch_cost += delta.fetch_cost;
  into.degraded_cost += delta.degraded_cost;
}

}  // namespace

RouterServer::RouterServer(const federation::Federation* federation,
                           catalog::Granularity granularity, ShardMap map,
                           std::vector<service::BackendAddress> shard_addrs,
                           Options options)
    : federation_(federation),
      mediator_(federation, granularity),
      map_(std::move(map)),
      shard_addrs_(std::move(shard_addrs)),
      options_(std::move(options)),
      fingerprint_(0) {
  fingerprint_ = map_.Fingerprint();
}

Status RouterServer::Start() {
  BYC_CHECK(federation_ != nullptr);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("router already running");
  }
  const int num_shards = map_.num_shards();
  if (static_cast<int>(shard_addrs_.size()) < num_shards) {
    return Status::InvalidArgument(
        "need one shard address per shard: got " +
        std::to_string(shard_addrs_.size()) + " for " +
        std::to_string(num_shards) + " shards");
  }

  routed_queries_.store(0, std::memory_order_relaxed);
  fanout_.store(0, std::memory_order_relaxed);
  cross_shard_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  reconnects_.store(0, std::memory_order_relaxed);
  snapshot_writes_.store(0, std::memory_order_relaxed);
  live_sessions_.store(0, std::memory_order_relaxed);
  sessions_rejected_.store(0, std::memory_order_relaxed);
  admission_skips_.store(0, std::memory_order_relaxed);
  admission_next_ = 0;
  unstamped_.clear();
  stamped_.clear();
  q_draining_ = false;
  next_sub_seq_.assign(static_cast<size_t>(num_shards), 0);
  lanes_.clear();
  for (int s = 0; s < num_shards; ++s) {
    lanes_.push_back(std::make_unique<ShardLane>());
    lanes_.back()->rng =
        Rng(options_.config.retry_seed + static_cast<uint64_t>(s) + 1);
  }
  admin_.clear();
  admin_.resize(static_cast<size_t>(num_shards));

#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    // Touch the router family so any manifest written for this run
    // records the sharded topology even before traffic flows.
    telemetry::MetricsRegistry& reg = *options_.metrics;
    reg.gauge("svc.router.shards").Set(static_cast<double>(num_shards));
    reg.gauge("svc.router.map_version")
        .Set(static_cast<double>(map_.version()));
    reg.counter("svc.router.queries").Increment(0);
    reg.counter("svc.router.fanout").Increment(0);
    reg.counter("svc.router.cross_shard").Increment(0);
    reg.counter("svc.router.batches").Increment(0);
    reg.counter("svc.router.retries").Increment(0);
    reg.counter("svc.router.reconnects").Increment(0);
  }
#endif

  if (!options_.config.snapshot_dir.empty()) {
    ::mkdir(options_.config.snapshot_dir.c_str(), 0755);
    Status restored = TryRestoreSnapshot();
    if (!restored.ok() && !restored.IsNotFound()) {
      // Damaged router snapshot: cold-start the cursors. Shard ledgers
      // live in the shards' own snapshots, so nothing else is lost.
      admission_next_ = 0;
      routed_queries_.store(0, std::memory_order_relaxed);
      next_sub_seq_.assign(static_cast<size_t>(num_shards), 0);
    }
  }

  service::Reactor::Options ropts;
  ropts.io_threads = options_.config.io_threads;
  ropts.io_deadline_ms = options_.config.deadline_ms;
  ropts.max_inflight = static_cast<size_t>(options_.config.max_inflight);
  ropts.metrics = options_.metrics;
  service::Reactor::Callbacks callbacks;
  callbacks.admit = [this]() -> service::Reactor::AdmitDecision {
    if (live_sessions_.load(std::memory_order_acquire) >=
        options_.config.max_sessions) {
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.sessions_rejected").Increment();
      }
#endif
      return service::Reactor::AdmitDecision::Reject(MakeErrorFrame(
          WireCode::kBusy,
          "session cap " + std::to_string(options_.config.max_sessions) +
              " reached; retry later"));
    }
    live_sessions_.fetch_add(1, std::memory_order_acq_rel);
#if BYC_TELEMETRY_ENABLED
    if (options_.metrics != nullptr) {
      options_.metrics->counter("svc.sessions").Increment();
      options_.metrics->gauge("svc.sessions_live")
          .Set(static_cast<double>(
              live_sessions_.load(std::memory_order_relaxed)));
    }
#endif
    return service::Reactor::AdmitDecision::Accept();
  };
  callbacks.on_frame = [this](FrameType type, const uint8_t* payload,
                              size_t payload_len, ReplyTicket ticket) {
    OnFrame(type, payload, payload_len, std::move(ticket));
  };
  callbacks.on_close = [this](uint64_t frames, double ms_open) {
    live_sessions_.fetch_sub(1, std::memory_order_acq_rel);
#if BYC_TELEMETRY_ENABLED
    if (options_.metrics != nullptr) {
      options_.metrics->gauge("svc.sessions_live")
          .Set(static_cast<double>(
              live_sessions_.load(std::memory_order_relaxed)));
      options_.metrics->histogram("svc.session_ms").Observe(ms_open);
      options_.metrics->histogram("svc.session_requests")
          .Observe(static_cast<double>(frames));
    }
#endif
  };
  reactor_ =
      std::make_unique<service::Reactor>(ropts, std::move(callbacks));
  Status started = reactor_->Start(options_.config.port);
  if (!started.ok()) {
    reactor_.reset();
    return started;
  }
  port_ = reactor_->port();

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  route_thread_ = std::thread([this] { RouteLoop(); });
  forwarders_.clear();
  for (int s = 0; s < num_shards; ++s) {
    forwarders_.emplace_back([this, s] { ForwardLoop(s); });
  }
  return Status::OK();
}

void RouterServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Phase 1: stop frame delivery; admitted queries keep flowing.
  reactor_->BeginDrain();
  // Phase 2: the route thread converts everything admitted into
  // outbound items, then exits.
  {
    std::lock_guard<std::mutex> lock(qmu_);
    q_draining_ = true;
  }
  qcv_.notify_all();
  if (route_thread_.joinable()) route_thread_.join();
  // Phase 3: forwarders flush their lanes, then exit.
  for (std::unique_ptr<ShardLane>& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lock(lane->mu);
      lane->draining = true;
    }
    lane->cv.notify_all();
  }
  for (std::thread& t : forwarders_) {
    if (t.joinable()) t.join();
  }
  // Phase 4: join the I/O threads, then answer stragglers an I/O thread
  // enqueued after the route loop observed empty queues. The forwarders
  // are gone, so every straggler fails typed instead of routing.
  reactor_->Join();
  std::deque<RouteEntry> leftover;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    leftover.swap(unstamped_);
    for (auto& [seq, entry] : stamped_) {
      leftover.push_back(std::move(entry));
    }
    stamped_.clear();
  }
  for (RouteEntry& entry : leftover) {
    entry.parse_error =
        Status::Unavailable("router stopped before routing this query");
    RouteEntryNow(entry);
  }
  // The final snapshot: queues drained, cursors quiescent (the stopping
  // thread owns them now — route thread has joined).
  if (!options_.config.snapshot_dir.empty()) {
    (void)WriteSnapshotNow();
  }
  RefreshLiveGauges();
  reactor_->Stop(/*flush_pending=*/true);
  reactor_.reset();
  for (std::unique_ptr<ShardLane>& lane : lanes_) lane->sock.Close();
  std::lock_guard<std::mutex> lock(admin_mu_);
  for (AdminChannel& ch : admin_) ch.sock.Close();
}

void RouterServer::OnFrame(FrameType type, const uint8_t* payload,
                           size_t payload_len, ReplyTicket ticket) {
  switch (type) {
    case FrameType::kQuery: {
      Result<service::TraceExt> ext =
          service::StripTraceExt(payload, payload_len, 0);
      if (!ext.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(ext.status()));
        return;
      }
      std::string_view line(reinterpret_cast<const char*>(payload),
                            ext->base_len);
      EnqueueQuery(std::nullopt, line, ext->trace_id, std::move(ticket),
                   nullptr, 0);
      return;
    }
    case FrameType::kQueryAt: {
      Result<service::TraceExt> ext =
          service::StripTraceExt(payload, payload_len, 8);
      if (!ext.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(ext.status()));
        return;
      }
      service::PayloadReader r(payload, ext->base_len);
      Result<uint64_t> seq = r.ReadU64();
      if (!seq.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(seq.status()));
        return;
      }
      Result<std::string_view> line = r.ReadView(r.remaining());
      EnqueueQuery(*seq, *line, ext->trace_id, std::move(ticket), nullptr,
                   0);
      return;
    }
    case FrameType::kQueryBatch: {
      std::vector<service::QueryBatchItem> items;
      uint64_t base_trace_id = service::kNoTraceId;
      Status parsed = service::ParseQueryBatchInto(payload, payload_len,
                                                   &items, &base_trace_id);
      if (!parsed.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(parsed));
        return;
      }
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.batch_frames").Increment();
      }
#endif
      if (items.empty()) {
        std::vector<uint8_t> out = ticket.TakeBuffer();
        EncodeFrameHeaderInto(out, FrameType::kQueryBatchReply, 4);
        service::AppendU32(out, 0);
        ticket.Complete(std::move(out));
        return;
      }
      auto batch = std::make_shared<ClientBatch>();
      batch->ticket = std::move(ticket);
      batch->deltas.resize(items.size());
      batch->remaining.store(items.size(), std::memory_order_relaxed);
      for (size_t i = 0; i < items.size(); ++i) {
        uint64_t item_id = base_trace_id == service::kNoTraceId
                               ? service::kNoTraceId
                               : base_trace_id + static_cast<uint64_t>(i);
        EnqueueQuery(items[i].seq, items[i].line, item_id, ReplyTicket(),
                     batch, i);
      }
      return;
    }
    case FrameType::kStats: {
      Result<StatsReply> merged = MergedStats();
      if (!merged.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(merged.status()));
        return;
      }
      CompleteWithFrame(ticket, service::MakeStatsReplyFrame(*merged));
      return;
    }
    case FrameType::kShardStats: {
      Result<std::vector<service::ShardStatsEntry>> entries =
          PerShardStats();
      if (!entries.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(entries.status()));
        return;
      }
      CompleteWithFrame(ticket, service::MakeShardStatsReplyFrame(
                                    entries->data(), entries->size()));
      return;
    }
    case FrameType::kMetricsDump: {
      HandleMetricsDump(ticket);
      return;
    }
    case FrameType::kSnapshot: {
      if (options_.config.snapshot_dir.empty()) {
        CompleteWithFrame(
            ticket,
            MakeErrorFrame(WireCode::kFailedPrecondition,
                           "router was started without a snapshot "
                           "directory (BYC_SVC_SNAPSHOT_DIR)"));
        return;
      }
      // Routed through the route queue as a control entry, so the cut
      // always lands between routed queries.
      RouteEntry entry;
      entry.snapshot_request = true;
      entry.ticket = std::move(ticket);
      entry.enqueued = Clock::now();
      {
        std::lock_guard<std::mutex> lock(qmu_);
        unstamped_.push_back(std::move(entry));
      }
      qcv_.notify_one();
      return;
    }
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      CompleteWithFrame(ticket, pong);
      return;
    }
    case FrameType::kHello: {
      Frame frame;
      frame.type = FrameType::kHello;
      frame.payload.assign(payload, payload + payload_len);
      Result<uint32_t> version = service::ParseHello(frame);
      if (!version.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(version.status()));
        return;
      }
      if (*version < service::kMinProtocolVersion ||
          *version > service::kProtocolVersion) {
        CompleteWithFrame(
            ticket,
            MakeErrorFrame(
                WireCode::kVersionMismatch,
                "server speaks protocol versions " +
                    std::to_string(service::kMinProtocolVersion) + ".." +
                    std::to_string(service::kProtocolVersion) +
                    ", client sent " + std::to_string(*version)),
            /*close_after=*/true);
        return;
      }
      CompleteWithFrame(ticket, service::MakeHelloReplyFrame(*version));
      return;
    }
    default:
      CompleteWithFrame(
          ticket,
          MakeErrorFrame(Status::InvalidArgument(
              "frame type " + std::to_string(static_cast<int>(type)) +
              " is not served by the router")));
      return;
  }
}

void RouterServer::EnqueueQuery(std::optional<uint64_t> seq,
                                std::string_view line, uint64_t trace_id,
                                ReplyTicket ticket,
                                std::shared_ptr<ClientBatch> batch,
                                size_t batch_index) {
  RouteEntry entry;
  entry.seq = seq;
  entry.trace_id = trace_id;
  entry.ticket = std::move(ticket);
  entry.batch = std::move(batch);
  entry.batch_index = batch_index;
  entry.line.assign(line.data(), line.size());
  Result<workload::TraceQuery> tq =
      workload::ParseTraceQuery(federation_->catalog(), line);
  if (!tq.ok()) {
    // A malformed stamped query still owns its slot in the total order.
    entry.parse_error = tq.status();
  } else {
    // Decompose on the I/O thread (memoized; its own lock) and reduce
    // to the touched-shard set — the only thing the route thread needs.
    std::vector<core::Access> accesses = mediator_.Decompose(tq->query);
    for (const core::Access& access : accesses) {
      int s = map_.ShardOf(access.object);
      bool seen = false;
      for (int t : entry.touched) {
        if (t == s) {
          seen = true;
          break;
        }
      }
      if (!seen) entry.touched.push_back(s);
    }
    std::sort(entry.touched.begin(), entry.touched.end());
  }
  entry.enqueued = Clock::now();
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (entry.seq.has_value()) {
      stamped_.emplace(*entry.seq, std::move(entry));
    } else {
      unstamped_.push_back(std::move(entry));
    }
  }
  qcv_.notify_one();
}

void RouterServer::RouteLoop() {
  const auto gap =
      std::chrono::milliseconds(options_.config.reorder_timeout_ms);
  std::unique_lock<std::mutex> qlock(qmu_);
  for (;;) {
    if (unstamped_.empty() && stamped_.empty()) {
      if (q_draining_) return;
      qcv_.wait(qlock);
      continue;
    }
    RouteEntry entry;
    if (!unstamped_.empty()) {
      entry = std::move(unstamped_.front());
      unstamped_.pop_front();
    } else {
      auto it = stamped_.begin();
      if (it->first > admission_next_ && !q_draining_ &&
          !stop_.load(std::memory_order_acquire)) {
        // Same gap-skip rule as the single mediator's admission stage:
        // wait for the missing sequence numbers, then skip an abandoned
        // gap so the order stays live.
        auto deadline = it->second.enqueued + gap;
        if (Clock::now() < deadline) {
          qcv_.wait_until(qlock, deadline);
          continue;
        }
        admission_next_ = it->first;
        admission_skips_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
        if (options_.metrics != nullptr) {
          options_.metrics->counter("svc.admission_skips").Increment();
        }
#endif
      }
      entry = std::move(it->second);
      stamped_.erase(it);
      if (*entry.seq >= admission_next_) admission_next_ = *entry.seq + 1;
    }
    qlock.unlock();
    RouteEntryNow(entry);
    qlock.lock();
  }
}

void RouterServer::RouteEntryNow(RouteEntry& entry) {
  if (entry.snapshot_request) {
    service::SnapshotReply ack;
    ack.queries = routed_queries_.load(std::memory_order_relaxed);
    Result<uint64_t> written = WriteSnapshotNow();
    if (entry.ticket.valid()) {
      if (!written.ok()) {
        CompleteWithFrame(entry.ticket, MakeErrorFrame(written.status()));
      } else {
        ack.snapshot_bytes = *written;
        ack.persisted = 1;
        CompleteWithFrame(entry.ticket,
                          service::MakeSnapshotReplyFrame(ack));
      }
    }
    return;
  }

  if (!entry.parse_error.ok()) {
    CompleteClient(entry.ticket, entry.batch, entry.batch_index,
                   QueryReply{}, entry.parse_error);
    return;
  }

  routed_queries_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.router.queries").Increment();
  }
#endif
  if (entry.touched.empty()) {
    // A valid query whose decomposition touches nothing (or an empty
    // line): it is admitted — it owns its slot in the total order and
    // counts as routed — but there is nothing to scatter.
    CompleteClient(entry.ticket, entry.batch, entry.batch_index,
                   QueryReply{}, Status::OK());
    return;
  }

  const size_t n = entry.touched.size();
  fanout_.fetch_add(n, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.router.fanout")
        .Increment(static_cast<uint64_t>(n));
    if (n > 1) {
      options_.metrics->counter("svc.router.cross_shard").Increment();
    }
  }
#endif
  if (n > 1) cross_shard_.fetch_add(1, std::memory_order_relaxed);

  auto gather = std::make_shared<GatherState>();
  gather->line = std::move(entry.line);
  gather->shards = std::move(entry.touched);
  gather->deltas.resize(n);
  gather->remaining.store(n, std::memory_order_relaxed);
  gather->ticket = std::move(entry.ticket);
  gather->batch = std::move(entry.batch);
  gather->batch_index = entry.batch_index;
  gather->enqueued = entry.enqueued;
  for (size_t slot = 0; slot < gather->shards.size(); ++slot) {
    const int s = gather->shards[slot];
    OutboundItem item;
    // The dense per-shard stamp, assigned here — in global admission
    // order, by the one route thread — is what keeps each shard's
    // admission a gap-free total order.
    item.sub_seq = next_sub_seq_[static_cast<size_t>(s)]++;
    item.gather = gather;
    item.slot = slot;
    ShardLane& lane = *lanes_[static_cast<size_t>(s)];
    {
      std::lock_guard<std::mutex> lock(lane.mu);
      lane.queue.push_back(std::move(item));
    }
    lane.cv.notify_one();
  }
}

void RouterServer::ForwardLoop(int shard) {
  ShardLane& lane = *lanes_[static_cast<size_t>(shard)];
  std::unique_lock<std::mutex> lk(lane.mu);
  for (;;) {
    if (lane.queue.empty()) {
      if (lane.draining) return;
      lane.cv.wait(lk);
      continue;
    }
    // Natural coalescing: everything queued since the last round trip
    // rides one kQueryBatch frame, capped by what one reply can answer.
    std::vector<OutboundItem> items;
    const size_t take = std::min(
        lane.queue.size(), static_cast<size_t>(service::kMaxQueryBatchItems));
    items.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      items.push_back(std::move(lane.queue.front()));
      lane.queue.pop_front();
    }
    lk.unlock();
    SendBatch(shard, items);
    lk.lock();
  }
}

Status RouterServer::EnsureChannel(int shard, ShardLane& lane) {
  if (lane.sock.valid() && lane.hello_done) return Status::OK();
  const service::RetryPolicy& retry = options_.config.retry;
  const service::BackendAddress& addr =
      shard_addrs_[static_cast<size_t>(shard)];
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      InterruptibleSleep(retry.DelayMs(attempt - 1, lane.rng), stop_);
      retries_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.router.retries").Increment();
      }
#endif
    }
    Deadline deadline = Deadline::After(options_.config.deadline_ms);
    if (!lane.sock.valid()) {
      Result<Socket> sock = Socket::Connect(addr.host, addr.port, deadline);
      if (!sock.ok()) {
        last = sock.status();
        continue;
      }
      lane.sock = std::move(sock).value();
      lane.hello_done = false;
      if (lane.connected_once) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
        if (options_.metrics != nullptr) {
          options_.metrics->counter("svc.router.reconnects").Increment();
        }
#endif
      }
      lane.connected_once = true;
    }
    // Membership handshake: the shard proves it serves this shard id of
    // this exact map (version AND content fingerprint) before any query
    // rides the channel.
    service::ShardHello hello;
    hello.shard_id = static_cast<uint32_t>(shard);
    hello.map_version = map_.version();
    hello.map_fingerprint = fingerprint_;
    Status sent =
        WriteFrame(lane.sock, service::MakeShardHelloFrame(hello), deadline);
    if (!sent.ok()) {
      lane.sock.Close();
      last = sent;
      continue;
    }
    Result<Frame> reply = ReadFrame(lane.sock, deadline);
    if (!reply.ok()) {
      lane.sock.Close();
      last = reply.status();
      continue;
    }
    if (reply->type == FrameType::kError) {
      // Semantic rejection (kShardMapMismatch, kBusy, ...): the shard is
      // alive and said no. Retrying cannot help.
      lane.sock.Close();
      return service::ParseErrorFrame(*reply);
    }
    if (reply->type != FrameType::kShardHelloReply) {
      lane.sock.Close();
      last = Status::Internal(
          "shard " + std::to_string(shard) +
          " answered kShardHello with frame type " +
          std::to_string(static_cast<int>(reply->type)));
      continue;
    }
    Result<service::ShardHello> echo = service::ParseShardHelloReply(*reply);
    if (!echo.ok()) {
      lane.sock.Close();
      last = echo.status();
      continue;
    }
    if (echo->shard_id != hello.shard_id ||
        echo->map_version != hello.map_version) {
      lane.sock.Close();
      return Status::FailedPrecondition(
          "shard hello echo mismatch: asked shard " +
          std::to_string(hello.shard_id) + " v" +
          std::to_string(hello.map_version) + ", got shard " +
          std::to_string(echo->shard_id) + " v" +
          std::to_string(echo->map_version));
    }
    lane.hello_done = true;
    return Status::OK();
  }
  return Status(last.code(), "shard " + std::to_string(shard) + " after " +
                                 std::to_string(retry.max_attempts) +
                                 " attempts: " + last.message());
}

void RouterServer::SendBatch(int shard, std::vector<OutboundItem>& items) {
  ShardLane& lane = *lanes_[static_cast<size_t>(shard)];
  Status ready = EnsureChannel(shard, lane);
  if (!ready.ok()) {
    FailItems(items, ready);
    return;
  }
  std::vector<uint8_t> payload;
  service::QueryBatchBuilder batch(&payload);
  for (const OutboundItem& item : items) {
    batch.Add(item.sub_seq, item.gather->line);
  }
  batch.Finish();
  Frame frame;
  frame.type = FrameType::kQueryBatch;
  frame.payload = std::move(payload);
  // The batch deadline scales with its size: the shard serves every item
  // through its ordered stage (with backend round trips), so a full
  // frame legitimately takes longer than one query.
  Deadline deadline = Deadline::After(
      options_.config.deadline_ms +
      static_cast<int64_t>(items.size()) * options_.config.deadline_ms /
          16);
  Status sent = WriteFrame(lane.sock, frame, deadline);
  if (!sent.ok()) {
    // The shard may have received (part of) the batch before the
    // failure; a resend could admit — and ledger — the same access
    // twice. Fail typed instead; conservation beats availability here.
    lane.sock.Close();
    lane.hello_done = false;
    FailItems(items, Status::Unavailable(
                         "send to shard " + std::to_string(shard) +
                         " failed (not resent: the shard may have "
                         "processed it): " +
                         sent.message()));
    return;
  }
  Result<Frame> reply = ReadFrame(lane.sock, deadline);
  if (!reply.ok()) {
    lane.sock.Close();
    lane.hello_done = false;
    FailItems(items, Status::Unavailable(
                         "shard " + std::to_string(shard) +
                         " reply failed (not resent: the shard may have "
                         "processed it): " +
                         reply.status().message()));
    return;
  }
  if (reply->type == FrameType::kError) {
    FailItems(items, service::ParseErrorFrame(*reply));
    return;
  }
  if (reply->type != FrameType::kQueryBatchReply) {
    lane.sock.Close();
    lane.hello_done = false;
    FailItems(items, Status::Internal(
                         "shard " + std::to_string(shard) +
                         " answered kQueryBatch with frame type " +
                         std::to_string(static_cast<int>(reply->type))));
    return;
  }
  std::vector<QueryReply> deltas;
  Status parsed = service::ParseQueryBatchReplyInto(*reply, &deltas);
  if (!parsed.ok() || deltas.size() != items.size()) {
    lane.sock.Close();
    lane.hello_done = false;
    FailItems(items,
              !parsed.ok()
                  ? parsed
                  : Status::Internal(
                        "shard batch reply carries " +
                        std::to_string(deltas.size()) + " deltas for " +
                        std::to_string(items.size()) + " queries"));
    return;
  }
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.router.batches").Increment();
  }
#endif
  for (size_t i = 0; i < items.size(); ++i) {
    FinishGatherSlot(items[i].gather, items[i].slot, deltas[i],
                     Status::OK());
  }
}

void RouterServer::FailItems(std::vector<OutboundItem>& items,
                             const Status& status) {
  for (OutboundItem& item : items) {
    FinishGatherSlot(item.gather, item.slot, QueryReply{}, status);
  }
}

void RouterServer::FinishGatherSlot(
    const std::shared_ptr<GatherState>& gather, size_t slot,
    const QueryReply& delta, const Status& status) {
  GatherState& g = *gather;
  if (status.ok()) {
    g.deltas[slot] = delta;
  } else {
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.error.ok()) g.error = status;
  }
  if (g.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    CompleteGather(g);
  }
}

void RouterServer::CompleteGather(GatherState& gather) {
  // All slots resolved: merge in ascending shard order (gather.deltas is
  // parallel to gather.shards, which is sorted) — a deterministic
  // association, so a cross-shard reply is reproducible run to run.
  QueryReply merged;
  for (const QueryReply& delta : gather.deltas) {
    AccumulateDelta(merged, delta);
  }
  Status error;
  {
    std::lock_guard<std::mutex> lock(gather.mu);
    error = gather.error;
  }
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr && error.ok()) {
    options_.metrics->histogram("svc.request_ms")
        .Observe(MsSince(gather.enqueued));
  }
#endif
  CompleteClient(gather.ticket, gather.batch, gather.batch_index, merged,
                 error);
}

void RouterServer::CompleteClient(service::ReplyTicket& ticket,
                                  const std::shared_ptr<ClientBatch>& batch,
                                  size_t batch_index,
                                  const service::QueryReply& merged,
                                  const Status& status) {
  if (batch != nullptr) {
    ClientBatch& b = *batch;
    b.deltas[batch_index] = merged;
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(b.mu);
      if (b.error.ok()) b.error = status;
    }
    if (b.remaining.fetch_sub(1, std::memory_order_acq_rel) > 1) return;
    Status batch_error;
    {
      std::lock_guard<std::mutex> lock(b.mu);
      batch_error = b.error;
    }
    if (!batch_error.ok()) {
      CompleteWithFrame(b.ticket, MakeErrorFrame(batch_error));
      return;
    }
    std::vector<uint8_t> out = b.ticket.TakeBuffer();
    EncodeFrameHeaderInto(
        out, FrameType::kQueryBatchReply,
        static_cast<uint32_t>(
            4 + b.deltas.size() * service::kQueryReplyWireBytes));
    service::EncodeQueryBatchReplyInto(out, b.deltas.data(),
                                       b.deltas.size());
    b.ticket.Complete(std::move(out));
    return;
  }
  if (!status.ok()) {
    CompleteWithFrame(ticket, MakeErrorFrame(status));
    return;
  }
  std::vector<uint8_t> out = ticket.TakeBuffer();
  EncodeFrameHeaderInto(
      out, FrameType::kQueryReply,
      static_cast<uint32_t>(service::kQueryReplyWireBytes));
  service::EncodeQueryReplyInto(out, merged);
  ticket.Complete(std::move(out));
}

Result<Frame> RouterServer::CallShardAdmin(int shard,
                                           const Frame& request) {
  AdminChannel& ch = admin_[static_cast<size_t>(shard)];
  const service::BackendAddress& addr =
      shard_addrs_[static_cast<size_t>(shard)];
  Status last = Status::Unavailable("no attempt made");
  // Two attempts: a stale pooled connection gets one reconnect, a shard
  // that is actually down surfaces its typed error.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Deadline deadline = Deadline::After(options_.config.deadline_ms);
    if (!ch.sock.valid()) {
      Result<Socket> sock = Socket::Connect(addr.host, addr.port, deadline);
      if (!sock.ok()) {
        last = sock.status();
        continue;
      }
      ch.sock = std::move(sock).value();
    }
    Status sent = WriteFrame(ch.sock, request, deadline);
    if (!sent.ok()) {
      ch.sock.Close();
      last = sent;
      continue;
    }
    Result<Frame> reply = ReadFrame(ch.sock, deadline);
    if (!reply.ok()) {
      ch.sock.Close();
      last = reply.status();
      continue;
    }
    if (reply->type == FrameType::kError) {
      return service::ParseErrorFrame(*reply);
    }
    return reply;
  }
  return Status(last.code(), "shard " + std::to_string(shard) +
                                 " admin call failed: " + last.message());
}

Result<StatsReply> RouterServer::MergedStats() {
  std::lock_guard<std::mutex> lock(admin_mu_);
  StatsReply merged;
  Frame request;
  request.type = FrameType::kStats;
  for (int s = 0; s < map_.num_shards(); ++s) {
    BYC_ASSIGN_OR_RETURN(Frame reply, CallShardAdmin(s, request));
    if (reply.type != FrameType::kStatsReply) {
      return Status::Internal("shard " + std::to_string(s) +
                              " answered kStats with frame type " +
                              std::to_string(static_cast<int>(reply.type)));
    }
    BYC_ASSIGN_OR_RETURN(StatsReply stats,
                         service::ParseStatsReply(reply));
    // Ascending shard order: the association of the cost doubles is
    // fixed, so the merged ledger is reproducible scrape to scrape.
    AccumulateStats(merged, stats);
  }
  // A cross-shard query is ONE query however many shards it touched;
  // the per-shard `queries` counters sum to the router's fanout, not its
  // query count. The router is the authority on what was admitted.
  merged.queries = routed_queries_.load(std::memory_order_relaxed);
  // The router's own channel maintenance stacks on top of whatever the
  // shards' backend channels did.
  merged.retries += retries_.load(std::memory_order_relaxed);
  merged.reconnects += reconnects_.load(std::memory_order_relaxed);
  return merged;
}

Result<std::vector<service::ShardStatsEntry>> RouterServer::PerShardStats() {
  std::lock_guard<std::mutex> lock(admin_mu_);
  std::vector<service::ShardStatsEntry> all;
  all.reserve(static_cast<size_t>(map_.num_shards()));
  Frame request = service::MakeShardStatsFrame();
  std::vector<service::ShardStatsEntry> entries;
  for (int s = 0; s < map_.num_shards(); ++s) {
    BYC_ASSIGN_OR_RETURN(Frame reply, CallShardAdmin(s, request));
    BYC_RETURN_IF_ERROR(
        service::ParseShardStatsReplyInto(reply, &entries));
    for (const service::ShardStatsEntry& entry : entries) {
      all.push_back(entry);
    }
  }
  return all;
}

void RouterServer::HandleMetricsDump(ReplyTicket& ticket) {
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("wire.metrics_dump").Increment();
    RefreshLiveGauges();
    std::string json =
        telemetry::MetricsSnapshotToJson(options_.metrics->Snapshot());
    if (json.size() > service::kMaxPayload) {
      CompleteWithFrame(
          ticket,
          MakeErrorFrame(WireCode::kCapacityExceeded,
                         "metrics snapshot is " +
                             std::to_string(json.size()) +
                             " bytes; wire frames cap at " +
                             std::to_string(service::kMaxPayload)));
      return;
    }
    CompleteWithFrame(ticket, service::MakeMetricsDumpReplyFrame(json));
    return;
  }
#endif
  CompleteWithFrame(
      ticket, MakeErrorFrame(WireCode::kFailedPrecondition,
                             "router was started without a metrics "
                             "registry; kMetricsDump has nothing to dump"));
}

void RouterServer::RefreshLiveGauges() {
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics == nullptr) return;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    depth = unstamped_.size() + stamped_.size();
  }
  size_t lane_depth = 0;
  for (std::unique_ptr<ShardLane>& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    lane_depth += lane->queue.size();
  }
  telemetry::MetricsRegistry& reg = *options_.metrics;
  reg.gauge("svc.admission_queue_depth").Set(static_cast<double>(depth));
  reg.gauge("svc.router.lane_depth").Set(static_cast<double>(lane_depth));
  reg.gauge("svc.router.shards")
      .Set(static_cast<double>(map_.num_shards()));
  reg.gauge("svc.router.map_version")
      .Set(static_cast<double>(map_.version()));
  if (reactor_ != nullptr) {
    service::Reactor::LiveStats live = reactor_->Sample();
    reg.gauge("svc.reactor.connections")
        .Set(static_cast<double>(live.connections));
    reg.gauge("svc.reactor.pending_slots")
        .Set(static_cast<double>(live.pending_slots));
    reg.gauge("svc.reactor.backlog_bytes")
        .Set(static_cast<double>(live.backlog_bytes));
    reg.gauge("svc.reactor.parked_reads")
        .Set(static_cast<double>(live.parked_reads));
  }
#endif
}

std::string RouterServer::SnapshotPath() const {
  BYC_CHECK(!options_.config.snapshot_dir.empty());
  return options_.config.snapshot_dir + "/router.snap";
}

Result<uint64_t> RouterServer::WriteSnapshotNow() {
  persist::SnapshotWriter writer;
  {
    // The map section pins what the cursors mean: a restore under a
    // different map is rejected, not misapplied.
    writer.AddSection(kRouterSectionMap, map_.Serialize());
  }
  {
    std::vector<uint8_t> bytes;
    uint64_t next = 0;
    {
      std::lock_guard<std::mutex> lock(qmu_);
      next = admission_next_;
    }
    service::AppendU64(bytes, next);
    service::AppendU64(bytes,
                       routed_queries_.load(std::memory_order_relaxed));
    service::AppendU32(bytes,
                       static_cast<uint32_t>(next_sub_seq_.size()));
    for (uint64_t cursor : next_sub_seq_) {
      service::AppendU64(bytes, cursor);
    }
    writer.AddSection(kRouterSectionCursors, bytes);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  BYC_RETURN_IF_ERROR(persist::WriteFileAtomic(SnapshotPath(), bytes));
  snapshot_writes_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.snapshot_writes").Increment();
    options_.metrics->gauge("svc.snapshot_bytes")
        .Set(static_cast<double>(bytes.size()));
  }
#endif
  return static_cast<uint64_t>(bytes.size());
}

Status RouterServer::TryRestoreSnapshot() {
  BYC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       persist::ReadFile(SnapshotPath()));
  BYC_ASSIGN_OR_RETURN(std::vector<persist::SnapshotSection> sections,
                       persist::ParseSnapshot(bytes));
  const std::vector<uint8_t>* map_bytes = nullptr;
  const std::vector<uint8_t>* cursors = nullptr;
  for (const persist::SnapshotSection& section : sections) {
    const std::vector<uint8_t>** slot = nullptr;
    switch (section.id) {
      case kRouterSectionMap:
        slot = &map_bytes;
        break;
      case kRouterSectionCursors:
        slot = &cursors;
        break;
      default:
        return Status::ParseError("router snapshot: unknown section id " +
                                  std::to_string(section.id));
    }
    if (*slot != nullptr) {
      return Status::ParseError("router snapshot: duplicate section id " +
                                std::to_string(section.id));
    }
    *slot = &section.payload;
  }
  if (map_bytes == nullptr || cursors == nullptr) {
    return Status::ParseError("router snapshot: missing section");
  }
  if (*map_bytes != map_.Serialize()) {
    // Byte equality, not just fingerprint equality: the cursors are only
    // meaningful under the exact map that produced them.
    return Status::ParseError(
        "router snapshot was taken under a different shard map");
  }
  persist::ByteReader r(*cursors);
  BYC_ASSIGN_OR_RETURN(uint64_t next, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(uint64_t routed, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count != next_sub_seq_.size()) {
    return Status::ParseError(
        "router snapshot has " + std::to_string(count) +
        " sub-sequence cursors for " +
        std::to_string(next_sub_seq_.size()) + " shards");
  }
  std::vector<uint64_t> sub(count, 0);
  for (uint32_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(sub[i], r.ReadU64());
  }
  if (r.remaining() != 0) {
    return Status::ParseError(
        "router snapshot: trailing bytes after cursors");
  }
  admission_next_ = next;
  routed_queries_.store(routed, std::memory_order_relaxed);
  next_sub_seq_ = std::move(sub);
  return Status::OK();
}

}  // namespace byc::shard
