#ifndef BYC_SHARD_ROUTER_SERVER_H_
#define BYC_SHARD_ROUTER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "federation/mediator.h"
#include "service/config.h"
#include "service/mediator_server.h"
#include "service/reactor.h"
#include "service/socket.h"
#include "service/wire.h"
#include "shard/shard_map.h"

namespace byc::telemetry {
class Counter;
class MetricsRegistry;
}  // namespace byc::telemetry

namespace byc::shard {

/// The front end of the sharded mediator fleet (DESIGN.md §13): speaks
/// the ordinary client protocol (kQueryAt / kQueryBatch / kStats /
/// kMetricsDump / kShardStats / kSnapshot) on the epoll Reactor, and
/// scatters each admitted query to the downstream shard MediatorServers
/// that own its objects.
///
/// Routing model. An I/O thread parses each query line and decomposes
/// it with the router's own federation::Mediator (the memoized
/// decomposition the shards will repeat), reducing it to its *touched
/// shard set* under the ShardMap. One route thread then admits queries
/// in the global total order (same stamped/unstamped ordering and
/// gap-skip rules as the single mediator) and, per touched shard,
/// stamps the query with that shard's next dense sub-sequence number.
/// Because each shard's sub-sequence is dense (0,1,2,...) and delivered
/// over a single ordered connection, every shard admits immediately and
/// its admission stage remains a total order — which is what keeps each
/// per-shard ledger bitwise-reproducible.
///
/// Scatter carries the WHOLE query line (the wire format is unchanged);
/// each shard keeps only the accesses the map assigns to it, so every
/// access is decided and ledgered by exactly one shard. Per-shard
/// forwarder threads coalesce routed queries into kQueryBatch frames
/// (QueryBatchBuilder) over one pooled channel per shard, opened with a
/// kShardHello membership handshake — a shard serving a different map
/// answers kError{kShardMapMismatch} and the affected queries fail
/// typed instead of landing on the wrong shard. A send that may already
/// have been processed is never resent (a resend would double-ledger);
/// the affected queries fail as typed Unavailable.
///
/// Gather: the per-shard reply deltas of one query are summed in
/// ascending shard order — a deterministic association, so the
/// client-visible QueryReply for a cross-shard query is reproducible.
/// kStats is answered by scraping every shard and summing field-wise in
/// shard order, with `queries` taken from the router's own routed count
/// (a cross-shard query is one query, however many shards it touched);
/// kShardStats exposes the unmerged per-shard ledgers so the split is
/// observable. kSnapshot persists the router's own cut (shard map +
/// admission cursor + per-shard sub-sequence cursors); shard mediators
/// snapshot their own state through their own admin ports.
class RouterServer {
 public:
  struct Options {
    /// Router service knobs: port / session caps / reorder timeout /
    /// io_threads / deadline / retry apply to the router itself;
    /// snapshot_dir (if set) holds router.snap.
    service::ServiceConfig config;
    /// Optional run metrics (svc.router.* counters/gauges). Must
    /// outlive the server.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  /// `shard_addrs[s]` is the address of the MediatorServer serving
  /// shard s; must cover map.num_shards(). `granularity` must match the
  /// shards' decomposition granularity (the router reduces each query
  /// to its touched-shard set with the same decomposition).
  RouterServer(const federation::Federation* federation,
               catalog::Granularity granularity, ShardMap map,
               std::vector<service::BackendAddress> shard_addrs,
               Options options);
  ~RouterServer() { Stop(); }

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  /// Binds the listener and starts the reactor, the route thread, and
  /// one forwarder thread per shard.
  Status Start();

  /// Graceful drain: stop frame delivery, route everything admitted,
  /// flush every forwarder queue, answer stragglers typed, persist the
  /// router snapshot (when configured), tear the reactor down.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  const ShardMap& map() const { return map_; }

  /// Queries admitted and routed (the `queries` field of the merged
  /// ledger).
  uint64_t routed_queries() const {
    return routed_queries_.load(std::memory_order_relaxed);
  }
  /// Sub-queries scattered to shards (>= routed_queries; the excess is
  /// the cross-shard split count).
  uint64_t fanout() const {
    return fanout_.load(std::memory_order_relaxed);
  }
  /// Queries whose touched-shard set had more than one member.
  uint64_t cross_shard_queries() const {
    return cross_shard_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Client-side batch reply state (mirrors MediatorServer::BatchState,
  /// but slots complete from forwarder threads, so counts are atomic
  /// and the error is mutex-guarded).
  struct ClientBatch {
    service::ReplyTicket ticket;
    std::vector<service::QueryReply> deltas;
    std::mutex mu;
    Status error = Status::OK();
    std::atomic<size_t> remaining{0};
  };

  /// Scatter/gather state of one routed query: one delta slot per
  /// touched shard, merged in ascending shard order by the last
  /// forwarder to answer.
  struct GatherState {
    std::string line;
    std::vector<int> shards;  // touched, ascending
    std::vector<service::QueryReply> deltas;  // parallel to `shards`
    std::atomic<size_t> remaining{0};
    std::mutex mu;
    Status error = Status::OK();
    /// Exactly one of ticket/batch is set.
    service::ReplyTicket ticket;
    std::shared_ptr<ClientBatch> batch;
    size_t batch_index = 0;
    Clock::time_point enqueued{};
  };

  /// One query waiting for the route thread, already parsed and reduced
  /// to its touched-shard set on an I/O thread.
  struct RouteEntry {
    bool snapshot_request = false;
    std::optional<uint64_t> seq;
    Status parse_error = Status::OK();
    std::string line;
    std::vector<int> touched;  // ascending unique shard ids
    service::ReplyTicket ticket;
    std::shared_ptr<ClientBatch> batch;
    size_t batch_index = 0;
    Clock::time_point enqueued{};
    uint64_t trace_id = 0;
  };

  /// One sub-query bound for a shard, stamped with that shard's dense
  /// sub-sequence number.
  struct OutboundItem {
    uint64_t sub_seq = 0;
    std::shared_ptr<GatherState> gather;
    size_t slot = 0;  // index into gather->shards/deltas
  };

  /// Per-shard forwarder lane: its queue and its pooled data channel.
  /// The socket is owned by the forwarder thread (Start connects
  /// lazily, Stop closes after the join) and needs no lock; the queue
  /// is guarded by `mu`.
  struct ShardLane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutboundItem> queue;
    bool draining = false;
    service::Socket sock;
    bool connected_once = false;
    bool hello_done = false;
    /// Jitter source of this lane's retry schedule (forwarder-thread
    /// private; seeded retry_seed + shard so schedules are deterministic
    /// and distinct per lane).
    Rng rng{0};
  };

  /// Mutex-guarded admin channel to one shard (kStats / kShardStats
  /// scrapes from I/O threads; independent of the forwarder channel so
  /// an admin scrape never interleaves with a data batch).
  struct AdminChannel {
    service::Socket sock;
  };

  void OnFrame(service::FrameType type, const uint8_t* payload,
               size_t payload_len, service::ReplyTicket ticket);
  /// Parses one query line, reduces it to its touched-shard set, and
  /// enqueues it for the route thread.
  void EnqueueQuery(std::optional<uint64_t> seq, std::string_view line,
                    uint64_t trace_id, service::ReplyTicket ticket,
                    std::shared_ptr<ClientBatch> batch, size_t batch_index);
  /// The global ordering point: admits queries in total order, stamps
  /// per-shard sub-sequences, hands sub-queries to the forwarder lanes.
  void RouteLoop();
  void RouteEntryNow(RouteEntry& entry);
  /// Per-shard forwarder: drains its lane into kQueryBatch frames.
  void ForwardLoop(int shard);
  /// Sends one batch to `shard` and resolves every item (success,
  /// typed failure, or Unavailable after a possibly-processed send).
  void SendBatch(int shard, std::vector<OutboundItem>& items);
  /// Connects + kShardHello-handshakes the lane's channel if needed.
  Status EnsureChannel(int shard, ShardLane& lane);
  /// Fails every item of `items` with `status` (no resend semantics).
  void FailItems(std::vector<OutboundItem>& items, const Status& status);
  /// Resolves one gather slot; the last slot merges in shard order and
  /// completes the client reply.
  void FinishGatherSlot(const std::shared_ptr<GatherState>& gather,
                        size_t slot, const service::QueryReply& delta,
                        const Status& status);
  void CompleteGather(GatherState& gather);
  /// Completes one client slot (parse errors, zero-shard queries, and
  /// merged gather results all land here). For a batch slot, the LAST
  /// slot to resolve encodes the whole kQueryBatchReply.
  void CompleteClient(service::ReplyTicket& ticket,
                      const std::shared_ptr<ClientBatch>& batch,
                      size_t batch_index,
                      const service::QueryReply& merged,
                      const Status& status);

  /// One admin round trip to shard `s` (connect on demand, no retry
  /// past one reconnect; admin_mu_ held by the caller).
  Result<service::Frame> CallShardAdmin(int shard,
                                        const service::Frame& request);
  /// Scrapes every shard's ledger and merges field-wise in shard order;
  /// `queries` comes from the router's own routed count, and the
  /// router's forwarder retries/reconnects are added on top.
  Result<service::StatsReply> MergedStats();
  /// Scrapes every shard's kShardStats entry, concatenated in shard
  /// order.
  Result<std::vector<service::ShardStatsEntry>> PerShardStats();
  void HandleMetricsDump(service::ReplyTicket& ticket);
  void RefreshLiveGauges();

  std::string SnapshotPath() const;
  /// Persists the shard map + routing cursors (route thread or
  /// post-join stopping thread only).
  Result<uint64_t> WriteSnapshotNow();
  /// Restores the routing cursors; the snapshot's map bytes must equal
  /// the configured map exactly.
  Status TryRestoreSnapshot();

  const federation::Federation* federation_;
  federation::Mediator mediator_;
  ShardMap map_;
  std::vector<service::BackendAddress> shard_addrs_;
  Options options_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};
  std::unique_ptr<service::Reactor> reactor_;
  std::thread route_thread_;
  std::vector<std::thread> forwarders_;

  std::atomic<int> live_sessions_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> admission_skips_{0};
  std::atomic<uint64_t> routed_queries_{0};
  std::atomic<uint64_t> fanout_{0};
  std::atomic<uint64_t> cross_shard_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> snapshot_writes_{0};

  /// Route queue: filled by I/O threads, drained by the route thread
  /// (same ordering rules as MediatorServer's admission queue).
  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<RouteEntry> unstamped_;
  std::multimap<uint64_t, RouteEntry> stamped_;
  uint64_t admission_next_ = 0;
  bool q_draining_ = false;

  /// Route-thread-owned cursors: the next sub-sequence each shard
  /// receives (dense per shard, assigned in global admission order).
  std::vector<uint64_t> next_sub_seq_;

  std::vector<std::unique_ptr<ShardLane>> lanes_;

  std::mutex admin_mu_;
  std::vector<AdminChannel> admin_;

  /// map_.Fingerprint() computed once at construction (sent in every
  /// kShardHello handshake).
  uint64_t fingerprint_ = 0;
};

}  // namespace byc::shard

#endif  // BYC_SHARD_ROUTER_SERVER_H_
