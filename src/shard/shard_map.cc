#include "shard/shard_map.h"

#include <algorithm>

#include "common/check.h"
#include "persist/codec.h"
#include "persist/snapshot.h"

namespace byc::shard {

namespace {

/// Fixed 64-bit mix (splitmix64 finalizer). Chosen over std::hash
/// because its output is pinned by the standard's *absence*: two
/// processes, two builds, two machines all agree, which is what lets a
/// router and a shard validate placement by fingerprint alone.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Ring key of a table: the table id mixed under a domain tag so table
/// keys and vnode points draw from unrelated streams.
uint64_t TablePoint(int32_t table) {
  return Mix64(0x7461626C65ull ^ (static_cast<uint64_t>(
                                      static_cast<uint32_t>(table))
                                  << 16));
}

/// Ring point of vnode `v` of shard `s`.
uint64_t VnodePoint(int shard, int vnode) {
  return Mix64((static_cast<uint64_t>(static_cast<uint32_t>(shard)) << 32) |
               static_cast<uint32_t>(vnode));
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

}  // namespace

ShardMap::ShardMap(int num_shards, uint32_t version, int vnodes_per_shard)
    : num_shards_(num_shards),
      version_(version),
      vnodes_per_shard_(vnodes_per_shard) {
  BYC_CHECK_GE(num_shards_, 1);
  BYC_CHECK_GE(vnodes_per_shard_, 1);
  BuildRing();
}

void ShardMap::BuildRing() {
  ring_.clear();
  ring_.reserve(static_cast<size_t>(num_shards_) *
                static_cast<size_t>(vnodes_per_shard_));
  for (int s = 0; s < num_shards_; ++s) {
    for (int v = 0; v < vnodes_per_shard_; ++v) {
      ring_.push_back(RingPoint{VnodePoint(s, v), s});
    }
  }
  // Tie-break equal points by shard id so the ring order is a pure
  // function of the membership, not of insertion order.
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.point != b.point ? a.point < b.point
                                        : a.shard < b.shard;
            });
}

void ShardMap::SetOverride(catalog::ObjectId object, int shard) {
  BYC_CHECK_GE(shard, 0);
  BYC_CHECK_LT(shard, num_shards_);
  overrides_[{object.table, object.column}] = static_cast<uint32_t>(shard);
}

int ShardMap::ShardOf(catalog::ObjectId object) const {
  if (!overrides_.empty()) {
    auto exact = overrides_.find({object.table, object.column});
    if (exact != overrides_.end()) return static_cast<int>(exact->second);
    if (!object.is_table()) {
      auto table = overrides_.find({object.table, catalog::ObjectId::kWholeTable});
      if (table != overrides_.end()) return static_cast<int>(table->second);
    }
  }
  uint64_t key = TablePoint(object.table);
  auto it = std::upper_bound(ring_.begin(), ring_.end(), key,
                             [](uint64_t k, const RingPoint& p) {
                               return k < p.point;
                             });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->shard;
}

void ShardMap::EncodeInto(std::vector<uint8_t>& out) const {
  persist::AppendU32(out, version_);
  persist::AppendU32(out, static_cast<uint32_t>(num_shards_));
  persist::AppendU32(out, static_cast<uint32_t>(vnodes_per_shard_));
  persist::AppendU32(out, static_cast<uint32_t>(overrides_.size()));
  for (const auto& [key, shard] : overrides_) {
    persist::AppendI32(out, key.first);
    persist::AppendI32(out, key.second);
    persist::AppendU32(out, shard);
  }
}

std::vector<uint8_t> ShardMap::Serialize() const {
  std::vector<uint8_t> out;
  EncodeInto(out);
  return out;
}

Result<ShardMap> ShardMap::Parse(const uint8_t* data, size_t size) {
  persist::ByteReader r(data, size);
  BYC_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  BYC_ASSIGN_OR_RETURN(uint32_t num_shards, r.ReadU32());
  BYC_ASSIGN_OR_RETURN(uint32_t vnodes, r.ReadU32());
  BYC_ASSIGN_OR_RETURN(uint32_t override_count, r.ReadU32());
  if (num_shards == 0 || num_shards > 4096) {
    return Status::ParseError("shard map: bad shard count " +
                              std::to_string(num_shards));
  }
  if (vnodes == 0 || vnodes > 65536) {
    return Status::ParseError("shard map: bad vnode count " +
                              std::to_string(vnodes));
  }
  ShardMap map(static_cast<int>(num_shards), version,
               static_cast<int>(vnodes));
  std::pair<int32_t, int32_t> prev{0, 0};
  for (uint32_t i = 0; i < override_count; ++i) {
    BYC_ASSIGN_OR_RETURN(int32_t table, r.ReadI32());
    BYC_ASSIGN_OR_RETURN(int32_t column, r.ReadI32());
    BYC_ASSIGN_OR_RETURN(uint32_t shard, r.ReadU32());
    if (shard >= num_shards) {
      return Status::ParseError("shard map: override shard " +
                                std::to_string(shard) + " out of range");
    }
    std::pair<int32_t, int32_t> key{table, column};
    if (i > 0 && !(prev < key)) {
      // Only the canonical sorted form is accepted; this is what makes
      // Parse(Serialize(m)) byte-identical rather than merely equivalent.
      return Status::ParseError("shard map: overrides not in canonical order");
    }
    prev = key;
    map.overrides_[key] = shard;
  }
  if (r.remaining() != 0) {
    return Status::ParseError("shard map: trailing bytes");
  }
  return map;
}

Result<ShardMap> ShardMap::Parse(const std::vector<uint8_t>& bytes) {
  return Parse(bytes.data(), bytes.size());
}

uint64_t ShardMap::Fingerprint() const {
  std::vector<uint8_t> bytes = Serialize();
  uint64_t h = kFnvOffset;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

Result<ShardMap> LoadShardMapFile(const std::string& path) {
  BYC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, persist::ReadFile(path));
  return ShardMap::Parse(bytes);
}

}  // namespace byc::shard
