#ifndef BYC_SHARD_SHARD_MAP_H_
#define BYC_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "catalog/object_id.h"
#include "common/result.h"

namespace byc::shard {

/// Deterministic ObjectId -> shard assignment for the sharded mediator
/// fleet.
///
/// Placement is catalog-aware: the consistent-hash ring is keyed by the
/// object's TABLE, so a table and all of its columns land on the same
/// shard whatever granularity the mediators decompose at. That keeps a
/// column-granularity query touching one table on one shard, and makes
/// rebalancing a table-sized move. The override table refines the ring
/// per table or per individual column (exact object beats table-level
/// beats ring), which is how operators pin a hot table to a dedicated
/// shard without renumbering anything.
///
/// Determinism is the load-bearing property: every process that holds
/// the same (version, num_shards, vnodes, overrides) tuple must place
/// every object identically, across builds and machines. The ring
/// therefore uses a fixed pure-arithmetic 64-bit mix (no std::hash,
/// whose result is implementation-defined), and serialization is
/// canonical — overrides are stored sorted, the ring is derived rather
/// than serialized, and Parse(Serialize(m)) reproduces the exact input
/// bytes. Fingerprint() (FNV-1a over the serialized form) is what
/// routers and shard mediators compare in the kShardHello handshake.
class ShardMap {
 public:
  /// Default virtual nodes per shard. 128 points per shard keeps the
  /// ring's load spread within a few percent and an added shard's move
  /// fraction near the ideal 1/(M+1).
  static constexpr int kDefaultVnodes = 128;

  /// A uniform map: `num_shards` shards, ring only, no overrides.
  ShardMap(int num_shards, uint32_t version = 1,
           int vnodes_per_shard = kDefaultVnodes);

  int num_shards() const { return num_shards_; }
  uint32_t version() const { return version_; }
  int vnodes_per_shard() const { return vnodes_per_shard_; }
  size_t num_overrides() const { return overrides_.size(); }

  /// Pins `object` to `shard`. A whole-table id (ObjectId::ForTable)
  /// installs a table-level override covering every column of that
  /// table; a column id installs an exact override that beats the
  /// table-level one. Re-pinning replaces the previous entry.
  void SetOverride(catalog::ObjectId object, int shard);

  /// Where `object` lives. Precedence: exact object override, then
  /// whole-table override, then the consistent-hash ring keyed by the
  /// object's table.
  int ShardOf(catalog::ObjectId object) const;

  /// Canonical serialization through the persist codec:
  ///   u32 version | u32 num_shards | u32 vnodes | u32 override_count |
  ///   override_count x { i32 table, i32 column, u32 shard }
  /// with overrides in ascending (table, column) order. The ring is
  /// derived from (num_shards, vnodes), never serialized.
  void EncodeInto(std::vector<uint8_t>& out) const;
  std::vector<uint8_t> Serialize() const;

  /// Inverse of Serialize. Rejects trailing bytes, shard ids outside
  /// [0, num_shards), zero shards/vnodes, and out-of-order or duplicate
  /// overrides (the canonical form is the only accepted form, so a
  /// round trip is byte-identical by construction).
  static Result<ShardMap> Parse(const uint8_t* data, size_t size);
  static Result<ShardMap> Parse(const std::vector<uint8_t>& bytes);

  /// FNV-1a 64 over the canonical serialization — the membership token
  /// carried in kShardHello and stamped into shard snapshots.
  uint64_t Fingerprint() const;

 private:
  /// One point on the consistent-hash ring.
  struct RingPoint {
    uint64_t point = 0;
    int shard = 0;
  };

  void BuildRing();

  int num_shards_;
  uint32_t version_;
  int vnodes_per_shard_;
  /// (table, column) -> shard; column == ObjectId::kWholeTable entries
  /// are table-level overrides. std::map keeps the canonical order.
  std::map<std::pair<int32_t, int32_t>, uint32_t> overrides_;
  std::vector<RingPoint> ring_;  // sorted by point
};

/// Reads and parses a serialized ShardMap from `path` (the
/// BYC_SVC_SHARD_MAP file).
Result<ShardMap> LoadShardMapFile(const std::string& path);

}  // namespace byc::shard

#endif  // BYC_SHARD_SHARD_MAP_H_
