#ifndef BYC_CORE_LANDLORD_H_
#define BYC_CORE_LANDLORD_H_

#include <unordered_map>

#include "cache/cache_store.h"
#include "cache/indexed_heap.h"
#include "core/bypass_object_cache.h"

namespace byc::core {

/// Young's Landlord algorithm for file caching, adapted to bypass-object
/// caching with mandatory admission: every (fitting) requested object is
/// loaded; space is made by the Landlord credit rule — each resident
/// object holds credit (initialized and refreshed to its fetch cost);
/// eviction repeatedly charges every resident object rent proportional to
/// its size (uniformly decreasing credit/size) and evicts objects whose
/// credit reaches zero.
///
/// The uniform rent charge is implemented with a global inflation offset
/// over normalized credit (credit/size), so evictions cost O(log n)
/// rather than touching every object.
///
/// Landlord is k/(k-h+1)-competitive for file caching; as the A_obj
/// inside OnlineBY it keeps state only for resident objects, which is the
/// property SpaceEffBY's O(1)-extra-space claim relies on.
class LandlordCache : public BypassObjectCache {
 public:
  explicit LandlordCache(uint64_t capacity_bytes) : store_(capacity_bytes) {}

  std::string_view name() const override { return "Landlord"; }
  RequestOutcome OnRequest(const catalog::ObjectId& id, uint64_t size_bytes,
                           double fetch_cost) override;
  bool Contains(const catalog::ObjectId& id) const override {
    return store_.Contains(id);
  }
  PolicyStats stats() const override {
    return {store_.used_bytes(), store_.capacity_bytes(), 0,
            store_.num_objects()};
  }

  /// Current credit of a resident object (tests). Precondition: resident.
  double CreditOf(const catalog::ObjectId& id) const;

  void SaveState(std::vector<uint8_t>& out) const final;
  Status LoadState(persist::ByteReader& in) final;

 protected:
  /// Subclass extras appended after the inflation/store/heap state
  /// (RentToBuy's rent ledger); defaults to none.
  virtual void SaveSide(std::vector<uint8_t>& out) const;
  virtual Status LoadSide(persist::ByteReader& in);

  /// Evicts minimum normalized-credit objects until `needed` bytes are
  /// free, appending victims to `out`.
  void MakeSpace(uint64_t needed, std::vector<catalog::ObjectId>& out);

  /// Inserts with full credit. Precondition: enough free space.
  void Admit(const catalog::ObjectId& id, uint64_t size_bytes,
             double fetch_cost);

  /// Refreshes a resident object's credit to its fetch cost.
  void Refresh(const catalog::ObjectId& id, uint64_t size_bytes,
               double fetch_cost);

  cache::CacheStore store_;

 private:
  // Heap priority = credit/size + inflation at insert time; effective
  // normalized credit = priority - inflation_.
  cache::IndexedMinHeap<catalog::ObjectId, catalog::ObjectIdHash> heap_;
  double inflation_ = 0;
};

/// Optional-caching variant: classical rent-to-buy admission on top of
/// Landlord eviction. A request to a non-resident object is bypassed
/// until the accumulated bypass cost matches the fetch cost ("rent skis
/// as long as the total paid in rental costs does not match or exceed the
/// purchase cost, then buy for the next trip", §5.1); only then is the
/// object admitted. Rent resets on eviction.
class RentToBuyCache : public LandlordCache {
 public:
  explicit RentToBuyCache(uint64_t capacity_bytes)
      : LandlordCache(capacity_bytes) {}

  std::string_view name() const override { return "RentToBuy"; }
  RequestOutcome OnRequest(const catalog::ObjectId& id, uint64_t size_bytes,
                           double fetch_cost) override;
  PolicyStats stats() const override {
    PolicyStats stats = LandlordCache::stats();
    stats.metadata_entries = rent_paid_.size();
    return stats;
  }

 protected:
  void SaveSide(std::vector<uint8_t>& out) const override;
  Status LoadSide(persist::ByteReader& in) override;

 private:
  std::unordered_map<uint64_t, double> rent_paid_;  // by ObjectId::Key()
};

}  // namespace byc::core

#endif  // BYC_CORE_LANDLORD_H_
