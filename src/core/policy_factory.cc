#include "core/policy_factory.h"

#include "common/check.h"
#include "core/inline_policies.h"
#include "core/no_cache_policy.h"
#include "core/rate_profile_policy.h"
#include "core/space_eff_by_policy.h"
#include "core/static_policy.h"

namespace byc::core {

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoCache:
      return "NoCache";
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kLruK:
      return "LRU-K";
    case PolicyKind::kLfu:
      return "LFU";
    case PolicyKind::kGds:
      return "GDS";
    case PolicyKind::kGdsp:
      return "GDSP";
    case PolicyKind::kStatic:
      return "StaticCache";
    case PolicyKind::kRateProfile:
      return "Rate-Profile";
    case PolicyKind::kOnlineBy:
      return "OnlineBY";
    case PolicyKind::kSpaceEffBy:
      return "SpaceEffBY";
  }
  return "?";
}

std::unique_ptr<CachePolicy> MakePolicy(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::kNoCache:
      return std::make_unique<NoCachePolicy>();
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>(config.capacity_bytes);
    case PolicyKind::kLruK:
      return std::make_unique<LruKPolicy>(config.capacity_bytes,
                                          config.lru_k);
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>(config.capacity_bytes);
    case PolicyKind::kGds:
      return std::make_unique<GdsPolicy>(config.capacity_bytes);
    case PolicyKind::kGdsp:
      return std::make_unique<GdspPolicy>(config.capacity_bytes);
    case PolicyKind::kStatic: {
      StaticPolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.charge_initial_load = config.static_charge_initial_load;
      return std::make_unique<StaticPolicy>(options, config.static_contents);
    }
    case PolicyKind::kRateProfile: {
      RateProfilePolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.episode = config.episode;
      return std::make_unique<RateProfilePolicy>(options);
    }
    case PolicyKind::kOnlineBy: {
      OnlineByPolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.aobj = config.online_aobj;
      return std::make_unique<OnlineByPolicy>(options);
    }
    case PolicyKind::kSpaceEffBy: {
      SpaceEffByPolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.aobj = config.space_eff_aobj;
      options.seed = config.seed;
      return std::make_unique<SpaceEffByPolicy>(options);
    }
  }
  BYC_CHECK(false);
  return nullptr;
}

}  // namespace byc::core
