#include "core/policy_factory.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "core/inline_policies.h"
#include "core/no_cache_policy.h"
#include "core/rate_profile_policy.h"
#include "core/space_eff_by_policy.h"
#include "core/static_policy.h"

namespace byc::core {

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoCache:
      return "NoCache";
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kLruK:
      return "LRU-K";
    case PolicyKind::kLfu:
      return "LFU";
    case PolicyKind::kGds:
      return "GDS";
    case PolicyKind::kGdsp:
      return "GDSP";
    case PolicyKind::kStatic:
      return "StaticCache";
    case PolicyKind::kRateProfile:
      return "Rate-Profile";
    case PolicyKind::kOnlineBy:
      return "OnlineBY";
    case PolicyKind::kSpaceEffBy:
      return "SpaceEffBY";
  }
  return "?";
}

std::optional<PolicyKind> ParsePolicyKind(std::string_view name) {
  static constexpr PolicyKind kAll[] = {
      PolicyKind::kNoCache, PolicyKind::kLru,         PolicyKind::kLruK,
      PolicyKind::kLfu,     PolicyKind::kGds,         PolicyKind::kGdsp,
      PolicyKind::kStatic,  PolicyKind::kRateProfile, PolicyKind::kOnlineBy,
      PolicyKind::kSpaceEffBy};
  for (PolicyKind kind : kAll) {
    if (name == PolicyKindName(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<AobjKind> ParseAobjKind(std::string_view name) {
  static constexpr AobjKind kAll[] = {AobjKind::kLandlord, AobjKind::kRentToBuy,
                                      AobjKind::kIraniSizeClass};
  for (AobjKind kind : kAll) {
    if (name == AobjKindName(kind)) return kind;
  }
  return std::nullopt;
}

namespace {

// %.17g prints a double with enough digits that strtod reproduces the
// exact bit pattern — required so a parsed config replays bit-identically
// to the original (the whole repo's determinism contract).
void AppendDouble(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.17g", key, value);
  out += buf;
}

void AppendU64(std::string& out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, value);
  out += buf;
}

Result<uint64_t> ParseU64Value(std::string_view key, std::string_view text) {
  std::string owned(text);
  if (owned.empty() || owned[0] == '-' || owned[0] == '+') {
    return Status::InvalidArgument("PolicyConfig: bad " + std::string(key) +
                                   " value '" + owned + "'");
  }
  errno = 0;
  char* end = nullptr;
  uint64_t value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return Status::InvalidArgument("PolicyConfig: bad " + std::string(key) +
                                   " value '" + owned + "'");
  }
  return value;
}

Result<double> ParseDoubleValue(std::string_view key, std::string_view text) {
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(owned.c_str(), &end);
  if (owned.empty() || errno != 0 || end != owned.c_str() + owned.size()) {
    return Status::InvalidArgument("PolicyConfig: bad " + std::string(key) +
                                   " value '" + owned + "'");
  }
  return value;
}

}  // namespace

std::string FormatPolicyConfig(const PolicyConfig& config) {
  std::string out = "kind=";
  out += PolicyKindName(config.kind);
  AppendU64(out, "capacity", config.capacity_bytes);
  out += " granularity=";
  out += config.granularity == catalog::Granularity::kTable ? "table"
                                                            : "column";
  AppendDouble(out, "c", config.episode.termination_ratio);
  AppendU64(out, "k", config.episode.idle_limit);
  AppendDouble(out, "decay", config.episode.weight_decay);
  AppendU64(out, "max_episodes", config.episode.max_episodes);
  out += " online_aobj=";
  out += AobjKindName(config.online_aobj);
  out += " space_eff_aobj=";
  out += AobjKindName(config.space_eff_aobj);
  AppendU64(out, "seed", config.seed);
  AppendU64(out, "lru_k", static_cast<uint64_t>(config.lru_k));
  out += " static_charge_initial_load=";
  out += config.static_charge_initial_load ? "1" : "0";
  return out;
}

Result<PolicyConfig> ParsePolicyConfig(std::string_view text) {
  PolicyConfig config;
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    size_t end = text.find(' ', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view pair = text.substr(pos, end - pos);
    pos = end;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("PolicyConfig: malformed pair '" +
                                     std::string(pair) + "'");
    }
    std::string_view key = pair.substr(0, eq);
    std::string_view value = pair.substr(eq + 1);
    if (key == "kind") {
      std::optional<PolicyKind> kind = ParsePolicyKind(value);
      if (!kind) {
        return Status::InvalidArgument("PolicyConfig: unknown kind '" +
                                       std::string(value) + "'");
      }
      config.kind = *kind;
    } else if (key == "capacity") {
      BYC_ASSIGN_OR_RETURN(config.capacity_bytes, ParseU64Value(key, value));
    } else if (key == "granularity") {
      if (value == "table") {
        config.granularity = catalog::Granularity::kTable;
      } else if (value == "column") {
        config.granularity = catalog::Granularity::kColumn;
      } else {
        return Status::InvalidArgument("PolicyConfig: unknown granularity '" +
                                       std::string(value) + "'");
      }
    } else if (key == "c") {
      BYC_ASSIGN_OR_RETURN(config.episode.termination_ratio,
                           ParseDoubleValue(key, value));
    } else if (key == "k") {
      BYC_ASSIGN_OR_RETURN(config.episode.idle_limit,
                           ParseU64Value(key, value));
    } else if (key == "decay") {
      BYC_ASSIGN_OR_RETURN(config.episode.weight_decay,
                           ParseDoubleValue(key, value));
    } else if (key == "max_episodes") {
      uint64_t parsed = 0;
      BYC_ASSIGN_OR_RETURN(parsed, ParseU64Value(key, value));
      config.episode.max_episodes = static_cast<size_t>(parsed);
    } else if (key == "online_aobj" || key == "space_eff_aobj") {
      std::optional<AobjKind> aobj = ParseAobjKind(value);
      if (!aobj) {
        return Status::InvalidArgument("PolicyConfig: unknown aobj '" +
                                       std::string(value) + "'");
      }
      (key == "online_aobj" ? config.online_aobj : config.space_eff_aobj) =
          *aobj;
    } else if (key == "seed") {
      BYC_ASSIGN_OR_RETURN(config.seed, ParseU64Value(key, value));
    } else if (key == "lru_k") {
      uint64_t parsed = 0;
      BYC_ASSIGN_OR_RETURN(parsed, ParseU64Value(key, value));
      if (parsed == 0 || parsed > 64) {
        return Status::InvalidArgument("PolicyConfig: lru_k out of range");
      }
      config.lru_k = static_cast<int>(parsed);
    } else if (key == "static_charge_initial_load") {
      if (value != "0" && value != "1") {
        return Status::InvalidArgument(
            "PolicyConfig: static_charge_initial_load must be 0 or 1");
      }
      config.static_charge_initial_load = value == "1";
    } else {
      return Status::InvalidArgument("PolicyConfig: unknown key '" +
                                     std::string(key) + "'");
    }
  }
  return config;
}

std::unique_ptr<CachePolicy> MakePolicy(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::kNoCache:
      return std::make_unique<NoCachePolicy>();
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>(config.capacity_bytes);
    case PolicyKind::kLruK:
      return std::make_unique<LruKPolicy>(config.capacity_bytes,
                                          config.lru_k);
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>(config.capacity_bytes);
    case PolicyKind::kGds:
      return std::make_unique<GdsPolicy>(config.capacity_bytes);
    case PolicyKind::kGdsp:
      return std::make_unique<GdspPolicy>(config.capacity_bytes);
    case PolicyKind::kStatic: {
      StaticPolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.charge_initial_load = config.static_charge_initial_load;
      return std::make_unique<StaticPolicy>(options, config.static_contents);
    }
    case PolicyKind::kRateProfile: {
      RateProfilePolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.episode = config.episode;
      return std::make_unique<RateProfilePolicy>(options);
    }
    case PolicyKind::kOnlineBy: {
      OnlineByPolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.aobj = config.online_aobj;
      return std::make_unique<OnlineByPolicy>(options);
    }
    case PolicyKind::kSpaceEffBy: {
      SpaceEffByPolicy::Options options;
      options.capacity_bytes = config.capacity_bytes;
      options.aobj = config.space_eff_aobj;
      options.seed = config.seed;
      return std::make_unique<SpaceEffByPolicy>(options);
    }
  }
  BYC_CHECK(false);
  return nullptr;
}

}  // namespace byc::core
