#include "core/rate_profile_policy.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "core/policy_state.h"

namespace byc::core {

RateProfilePolicy::RateProfilePolicy(const Options& options)
    : options_(options), store_(options.capacity_bytes) {}

double RateProfilePolicy::RateProfile(const CachedState& state,
                                      uint64_t size_bytes) const {
  uint64_t elapsed = std::max<uint64_t>(now_ - state.load_time, 1);
  return state.yield_sum /
         (static_cast<double>(elapsed) * static_cast<double>(size_bytes));
}

double RateProfilePolicy::RateProfileOf(const catalog::ObjectId& id) const {
  auto it = cached_.find(id);
  BYC_CHECK(it != cached_.end());
  const cache::CacheStore::Entry* entry = store_.Find(id);
  BYC_CHECK(entry != nullptr);
  return RateProfile(it->second, entry->size_bytes);
}

double RateProfilePolicy::LoadAdjustedRateOf(const catalog::ObjectId& id,
                                             uint64_t size_bytes,
                                             double fetch_cost) const {
  auto it = profiles_.find(id);
  if (it == profiles_.end()) {
    return -fetch_cost / static_cast<double>(size_bytes);
  }
  return it->second.LoadAdjustedRate(now_, options_.episode);
}

ObjectProfile& RateProfilePolicy::ProfileFor(const Access& access) {
  auto it = profiles_.find(access.object);
  if (it == profiles_.end()) {
    if (profiles_.size() >= options_.max_profiles) PruneProfiles();
    it = profiles_
             .emplace(access.object,
                      ObjectProfile(access.size_bytes, access.fetch_cost))
             .first;
  }
  return it->second;
}

void RateProfilePolicy::PruneProfiles() {
  // First pass: drop profiles idle for more than twice the episode idle
  // limit — their open episodes are dead and their histories stale.
  uint64_t idle_cut = 2 * options_.episode.idle_limit;
  for (auto it = profiles_.begin(); it != profiles_.end();) {
    if (!store_.Contains(it->first) && now_ > it->second.last_access() &&
        now_ - it->second.last_access() > idle_cut) {
      it = profiles_.erase(it);
    } else {
      ++it;
    }
  }
  if (profiles_.size() < options_.max_profiles) return;
  // Still over: drop the single oldest profile to admit the newcomer.
  auto oldest = profiles_.end();
  for (auto it = profiles_.begin(); it != profiles_.end(); ++it) {
    if (store_.Contains(it->first)) continue;
    if (oldest == profiles_.end() ||
        it->second.last_access() < oldest->second.last_access()) {
      oldest = it;
    }
  }
  if (oldest != profiles_.end()) profiles_.erase(oldest);
}

void RateProfilePolicy::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
  persist::AppendU64(out, now_);
  state::SaveStore(out, store_);
  // Both side maps in sorted-key order for a canonical encoding.
  std::vector<std::pair<catalog::ObjectId, CachedState>> cached(
      cached_.begin(), cached_.end());
  std::sort(cached.begin(), cached.end(), [](const auto& a, const auto& b) {
    return a.first.Key() < b.first.Key();
  });
  persist::AppendU64(out, cached.size());
  for (const auto& [id, s] : cached) {
    state::SaveObjectId(out, id);
    persist::AppendF64(out, s.yield_sum);
    persist::AppendU64(out, s.load_time);
    persist::AppendF64(out, s.fetch_cost);
  }
  std::vector<std::pair<catalog::ObjectId, const ObjectProfile*>> profiles;
  profiles.reserve(profiles_.size());
  for (const auto& [id, p] : profiles_) profiles.emplace_back(id, &p);
  std::sort(profiles.begin(), profiles.end(),
            [](const auto& a, const auto& b) {
              return a.first.Key() < b.first.Key();
            });
  persist::AppendU64(out, profiles.size());
  for (const auto& [id, p] : profiles) {
    state::SaveObjectId(out, id);
    p->SaveState(out);
  }
}

Status RateProfilePolicy::LoadState(persist::ByteReader& in) {
  BYC_RETURN_IF_ERROR(state::LoadHeader(in));
  BYC_ASSIGN_OR_RETURN(now_, in.ReadU64());
  BYC_RETURN_IF_ERROR(state::LoadStore(in, store_));
  BYC_ASSIGN_OR_RETURN(uint64_t cached_count, in.ReadU64());
  cached_.clear();
  for (uint64_t i = 0; i < cached_count; ++i) {
    BYC_ASSIGN_OR_RETURN(catalog::ObjectId id, state::LoadObjectId(in));
    CachedState s;
    BYC_ASSIGN_OR_RETURN(s.yield_sum, in.ReadF64());
    BYC_ASSIGN_OR_RETURN(s.load_time, in.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.fetch_cost, in.ReadF64());
    if (!cached_.emplace(id, s).second) {
      return Status::ParseError("RateProfile state: duplicate cached entry");
    }
  }
  BYC_ASSIGN_OR_RETURN(uint64_t profile_count, in.ReadU64());
  profiles_.clear();
  for (uint64_t i = 0; i < profile_count; ++i) {
    BYC_ASSIGN_OR_RETURN(catalog::ObjectId id, state::LoadObjectId(in));
    BYC_ASSIGN_OR_RETURN(ObjectProfile profile, ObjectProfile::LoadFrom(in));
    if (!profiles_.emplace(id, profile).second) {
      return Status::ParseError("RateProfile state: duplicate profile");
    }
  }
  return Status::OK();
}

Decision RateProfilePolicy::OnAccess(const Access& access) {
  ++now_;

  if (store_.Contains(access.object)) {
    // Cache hit: the yield adds to the object's realized savings (Eq. 3).
    cached_[access.object].yield_sum += access.bypass_cost;
    return Decision{Action::kServeFromCache, {}};
  }

  // Miss: extend the object's query profile with this access.
  ObjectProfile& profile = ProfileFor(access);
  profile.RecordAccess(now_, access.bypass_cost, options_.episode);

  if (!store_.Fits(access.size_bytes)) {
    return Decision{Action::kBypass, {}};
  }

  double lar = profile.LoadAdjustedRate(now_, options_.episode);
  if (lar <= 0) {
    // The expected savings rate does not recover the load cost.
    return Decision{Action::kBypass, {}};
  }

  uint64_t needed = access.size_bytes;
  std::vector<catalog::ObjectId> victims;
  if (store_.free_bytes() < needed) {
    // Gather cached objects whose current savings rate is below the
    // newcomer's expected rate, cheapest first.
    struct Candidate {
      catalog::ObjectId id;
      double rp;
      uint64_t size;
    };
    std::vector<Candidate> candidates;
    store_.ForEach([&](const catalog::ObjectId& id,
                       const cache::CacheStore::Entry& entry) {
      const CachedState& state = cached_.at(id);
      if (options_.protect_unrecovered_loads &&
          state.yield_sum < state.fetch_cost) {
        return;  // still repaying its load investment
      }
      double rp = RateProfile(state, entry.size_bytes);
      if (rp < lar) candidates.push_back({id, rp, entry.size_bytes});
    });
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.rp != b.rp) return a.rp < b.rp;
                return a.id.Key() < b.id.Key();
              });
    uint64_t freeable = store_.free_bytes();
    for (const Candidate& c : candidates) {
      if (freeable >= needed) break;
      victims.push_back(c.id);
      freeable += c.size;
    }
    if (freeable < needed) {
      // Not enough lower-rate objects to displace: bypass, leave the
      // cache untouched (§4.2's conservative eviction).
      return Decision{Action::kBypass, {}};
    }
  }

  Decision decision;
  decision.action = Action::kLoadAndServe;
  decision.utility_score = lar;
  for (const catalog::ObjectId& victim : victims) {
    const cache::CacheStore::Entry* entry = store_.Find(victim);
    BYC_CHECK(entry != nullptr);
    const CachedState& state = cached_.at(victim);
    double final_rp = RateProfile(state, entry->size_bytes);
    uint64_t lifetime = std::max<uint64_t>(now_ - state.load_time, 1);
    BYC_CHECK(store_.Erase(victim).ok());
    cached_.erase(victim);
    // Preserve what the cache lifetime taught us about the object.
    auto pit = profiles_.find(victim);
    if (pit != profiles_.end()) {
      pit->second.OnEvicted(final_rp, lifetime, options_.episode);
    }
    decision.evictions.push_back(victim);
  }

  profile.OnLoaded(options_.episode);
  BYC_CHECK(store_.Insert(access.object, access.size_bytes, now_).ok());
  // The triggering query is served in cache right after the load, so its
  // yield opens the object's realized-savings account.
  cached_[access.object] =
      CachedState{access.bypass_cost, now_, access.fetch_cost};
  return decision;
}

}  // namespace byc::core
