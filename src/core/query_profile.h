#ifndef BYC_CORE_QUERY_PROFILE_H_
#define BYC_CORE_QUERY_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/result.h"
#include "persist/codec.h"

namespace byc::core {

/// Parameters of the episode heuristics (§4.3). Defaults are the paper's
/// experimental values (c = 0.5, k = 1000); the ablation bench sweeps
/// them and confirms the paper's claim that "results are robust to many
/// parameterizations".
struct EpisodeParams {
  /// c: terminate an episode once its LARP falls below c times the
  /// episode's peak LAR (applied once the peak is positive — while the
  /// load penalty is still unrecovered the rate is only climbing).
  double termination_ratio = 0.5;
  /// k: terminate an episode when the object has not been accessed for k
  /// queries.
  uint64_t idle_limit = 1000;
  /// Episode aging for the LAR average (Eq. 6): episode e (counted back
  /// from the most recent) gets weight decay^e, so recent episodes weigh
  /// more heavily.
  double weight_decay = 0.5;
  /// Metadata bound: only this many past episode LARs are retained per
  /// object.
  size_t max_episodes = 8;
};

/// Workload profile of one object that is *not* in the cache: its accesses
/// divided into episodes (clustered bursts), each distilled to its
/// load-adjusted rate of savings (Eq. 5), aggregated by the aged average
/// of Eq. 6. The Rate-Profile algorithm compares this expected savings
/// rate against the measured rate profiles of cached objects.
class ObjectProfile {
 public:
  ObjectProfile(uint64_t size_bytes, double fetch_cost)
      : size_bytes_(size_bytes), fetch_cost_(fetch_cost) {}

  /// Records an access at logical time `t` yielding `yield` bytes,
  /// applying the episode segmentation rules.
  void RecordAccess(uint64_t t, double yield, const EpisodeParams& params);

  /// LAR_i (Eq. 6): the episode-weighted expected rate of savings were
  /// the object loaded now. `t` is the current logical time (a stale
  /// in-progress episode is treated as closed). Returns the rate in
  /// bytes-saved per query per byte of cache; negative means the load
  /// cost is not expected to be recovered.
  double LoadAdjustedRate(uint64_t t, const EpisodeParams& params) const;

  /// LARP of the in-progress episode at time t (Eq. 4); 0 if none.
  double CurrentLarp(uint64_t t) const;

  /// Called when the object is loaded into the cache: the current episode
  /// ends (the object's future accesses are cache hits, tracked by the
  /// rate profile instead).
  void OnLoaded(const EpisodeParams& params);

  /// Called when the object is evicted after measuring `final_rp` over a
  /// cache lifetime of `cache_lifetime` queries. The realized in-cache
  /// rate, less the amortized fetch penalty, is recorded as an episode so
  /// the knowledge survives eviction.
  void OnEvicted(double final_rp, uint64_t cache_lifetime,
                 const EpisodeParams& params);

  uint64_t last_access() const { return last_access_; }
  bool has_open_episode() const { return has_current_; }
  size_t num_past_episodes() const { return past_lars_.size(); }

  /// Serializes the profile (size, fetch cost, open episode, LAR
  /// history) for snapshot/restore; canonical byte encoding.
  void SaveState(std::vector<uint8_t>& out) const;
  /// Inverse of SaveState; typed ParseError on malformed bytes.
  static Result<ObjectProfile> LoadFrom(persist::ByteReader& in);

 private:
  struct Episode {
    uint64_t start = 0;
    double yield_sum = 0;
    double peak_lar = 0;  // max over access times of LARP (Eq. 5)
    bool peak_valid = false;
  };

  double Larp(const Episode& e, uint64_t t) const;
  void CloseEpisode(const EpisodeParams& params);
  void PushPastLar(double lar, const EpisodeParams& params);

  uint64_t size_bytes_;
  double fetch_cost_;
  uint64_t last_access_ = 0;
  bool has_current_ = false;
  Episode current_;
  std::deque<double> past_lars_;  // most recent at the back
};

}  // namespace byc::core

#endif  // BYC_CORE_QUERY_PROFILE_H_
