#ifndef BYC_CORE_GROUPING_H_
#define BYC_CORE_GROUPING_H_

#include <vector>

#include "core/access.h"

namespace byc::core {

/// The sequence transformations from the proof of Theorem 5.1 (§5.2).
/// Given a query sequence σ, the per-object sub-sequences σ_i are divided
/// into consecutive *groups* g_k with Σ_{q∈g_k} y/s = 1 — splitting a
/// query fractionally across group boundaries when necessary — so that
/// bypassing one group costs exactly the fetch cost f_i:
///
///  * object(σ):  one whole-object request per completed group — the
///    sequence OnlineBY feeds to A_obj;
///  * trimmed(σ): σ with the left-over queries (the incomplete trailing
///    group per object) dropped, fractional at the split points;
///  * dropped(σ): exactly those left-over queries.
///
/// Lemma 5.1 relates offline optima across these sequences; the tests
/// verify the relations empirically with the exact offline optimum.
struct GroupedSequences {
  /// Whole-object requests, in group-completion order. Yield equals the
  /// object size (bypass cost equals fetch cost) by construction.
  std::vector<Access> object_sequence;
  /// σ restricted to queries (or query fractions) that belong to some
  /// complete group, in original order.
  std::vector<Access> trimmed;
  /// The dropped remainder: per-object trailing queries whose cumulative
  /// yield never completed a group.
  std::vector<Access> dropped;
};

/// Performs the grouping transformation on an access sequence.
GroupedSequences GroupAccesses(const std::vector<Access>& accesses);

}  // namespace byc::core

#endif  // BYC_CORE_GROUPING_H_
