#ifndef BYC_CORE_POLICY_FACTORY_H_
#define BYC_CORE_POLICY_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/online_by_policy.h"
#include "core/policy.h"
#include "core/query_profile.h"

namespace byc::core {

/// Every cache-management algorithm in the library.
enum class PolicyKind : uint8_t {
  kNoCache,
  kLru,
  kLruK,
  kLfu,
  kGds,
  kGdsp,
  kStatic,
  kRateProfile,
  kOnlineBy,
  kSpaceEffBy,
};

std::string_view PolicyKindName(PolicyKind kind);

/// Inverse of PolicyKindName (exact match); nullopt for unknown names.
std::optional<PolicyKind> ParsePolicyKind(std::string_view name);

/// Inverse of AobjKindName (exact match); nullopt for unknown names.
std::optional<AobjKind> ParseAobjKind(std::string_view name);

/// Common construction recipe used by the benches, examples, and the
/// federation service: one aggregate instead of positional parameters,
/// so a new tuning knob lands here once instead of rippling through
/// every MakePolicy call site. The Rate-Profile episode defaults carry
/// the paper's published constants (termination ratio c = 0.5, idle
/// limit k = 1000 queries; §4).
struct PolicyConfig {
  PolicyKind kind = PolicyKind::kNoCache;
  uint64_t capacity_bytes = 0;
  /// Decomposition granularity the policy's access stream is produced
  /// at. MakePolicy ignores it (policies are granularity-agnostic), but
  /// the simulator/service consume it so one aggregate describes a
  /// whole replay configuration.
  catalog::Granularity granularity = catalog::Granularity::kTable;
  /// Rate-Profile episode parameters.
  EpisodeParams episode;
  /// A_obj for OnlineBY / SpaceEffBY.
  AobjKind online_aobj = AobjKind::kRentToBuy;
  AobjKind space_eff_aobj = AobjKind::kLandlord;
  /// SpaceEffBY randomization seed.
  uint64_t seed = 0x5EEDBEEF;
  /// K for the LRU-K baseline.
  int lru_k = 2;
  /// Static cache contents (object, size); required for kStatic — use
  /// SelectStaticSet() on the flattened access stream.
  std::vector<std::pair<catalog::ObjectId, uint64_t>> static_contents;
  bool static_charge_initial_load = true;
};

/// Builds a fresh policy instance from the config.
std::unique_ptr<CachePolicy> MakePolicy(const PolicyConfig& config);

/// Serializes a config as one line of space-separated key=value pairs
/// ("kind=OnlineBY capacity=1024 granularity=table c=0.5 k=1000 ...").
/// Doubles are printed round-trip exactly; `static_contents` is NOT
/// carried (it is workload-derived — reselect it with SelectStaticSet
/// after parsing). ParsePolicyConfig(FormatPolicyConfig(c)) reproduces
/// every other field bit-for-bit.
std::string FormatPolicyConfig(const PolicyConfig& config);

/// Parses FormatPolicyConfig output (unknown keys, malformed pairs, or
/// out-of-range values are InvalidArgument; omitted keys keep their
/// defaults).
Result<PolicyConfig> ParsePolicyConfig(std::string_view text);

}  // namespace byc::core

#endif  // BYC_CORE_POLICY_FACTORY_H_
