#ifndef BYC_CORE_POLICY_FACTORY_H_
#define BYC_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/online_by_policy.h"
#include "core/policy.h"
#include "core/query_profile.h"

namespace byc::core {

/// Every cache-management algorithm in the library.
enum class PolicyKind : uint8_t {
  kNoCache,
  kLru,
  kLruK,
  kLfu,
  kGds,
  kGdsp,
  kStatic,
  kRateProfile,
  kOnlineBy,
  kSpaceEffBy,
};

std::string_view PolicyKindName(PolicyKind kind);

/// Common construction recipe used by the benches and examples.
struct PolicyConfig {
  PolicyKind kind = PolicyKind::kNoCache;
  uint64_t capacity_bytes = 0;
  /// Rate-Profile episode parameters.
  EpisodeParams episode;
  /// A_obj for OnlineBY / SpaceEffBY.
  AobjKind online_aobj = AobjKind::kRentToBuy;
  AobjKind space_eff_aobj = AobjKind::kLandlord;
  /// SpaceEffBY randomization seed.
  uint64_t seed = 0x5EEDBEEF;
  /// K for the LRU-K baseline.
  int lru_k = 2;
  /// Static cache contents (object, size); required for kStatic — use
  /// SelectStaticSet() on the flattened access stream.
  std::vector<std::pair<catalog::ObjectId, uint64_t>> static_contents;
  bool static_charge_initial_load = true;
};

/// Builds a fresh policy instance from the config.
std::unique_ptr<CachePolicy> MakePolicy(const PolicyConfig& config);

}  // namespace byc::core

#endif  // BYC_CORE_POLICY_FACTORY_H_
