#ifndef BYC_CORE_NO_CACHE_POLICY_H_
#define BYC_CORE_NO_CACHE_POLICY_H_

#include "core/policy.h"

namespace byc::core {

/// Baseline: the uncached SkyQuery federation. Every query ships to the
/// servers; total WAN traffic equals the paper's "sequence cost" — the
/// sum of all query-result sizes.
class NoCachePolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "NoCache"; }

  Decision OnAccess(const Access&) override {
    return Decision{Action::kBypass, {}};
  }

  bool Contains(const catalog::ObjectId&) const override { return false; }
};

}  // namespace byc::core

#endif  // BYC_CORE_NO_CACHE_POLICY_H_
