#include "core/landlord.h"

#include <algorithm>

#include "common/check.h"
#include "core/policy_state.h"

namespace byc::core {

double LandlordCache::CreditOf(const catalog::ObjectId& id) const {
  const cache::CacheStore::Entry* entry = store_.Find(id);
  BYC_CHECK(entry != nullptr);
  double normalized = heap_.PriorityOf(id) - inflation_;
  return normalized * static_cast<double>(entry->size_bytes);
}

void LandlordCache::MakeSpace(uint64_t needed,
                              std::vector<catalog::ObjectId>& out) {
  while (store_.free_bytes() < needed) {
    BYC_CHECK(!heap_.empty());
    // Charge rent: raise the inflation to the minimum normalized credit,
    // zeroing the poorest object, then evict it.
    inflation_ = std::max(inflation_, heap_.PeekMinPriority());
    catalog::ObjectId victim = heap_.PopMin();
    BYC_CHECK(store_.Erase(victim).ok());
    out.push_back(victim);
  }
}

void LandlordCache::Admit(const catalog::ObjectId& id, uint64_t size_bytes,
                          double fetch_cost) {
  BYC_CHECK(store_.Insert(id, size_bytes, 0).ok());
  heap_.Insert(id,
               inflation_ + fetch_cost / static_cast<double>(size_bytes));
}

void LandlordCache::Refresh(const catalog::ObjectId& id, uint64_t size_bytes,
                            double fetch_cost) {
  heap_.Update(id,
               inflation_ + fetch_cost / static_cast<double>(size_bytes));
}

BypassObjectCache::RequestOutcome LandlordCache::OnRequest(
    const catalog::ObjectId& id, uint64_t size_bytes, double fetch_cost) {
  RequestOutcome outcome;
  if (store_.Contains(id)) {
    Refresh(id, size_bytes, fetch_cost);
    return outcome;
  }
  if (!store_.Fits(size_bytes)) {
    return outcome;  // can never be cached; the request is bypassed
  }
  MakeSpace(size_bytes, outcome.evictions);
  Admit(id, size_bytes, fetch_cost);
  outcome.loaded = true;
  return outcome;
}

void LandlordCache::SaveSide(std::vector<uint8_t>&) const {}

Status LandlordCache::LoadSide(persist::ByteReader&) {
  return Status::OK();
}

void LandlordCache::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
  persist::AppendF64(out, inflation_);
  state::SaveStore(out, store_);
  state::SaveHeap(out, heap_);
  SaveSide(out);
}

Status LandlordCache::LoadState(persist::ByteReader& in) {
  BYC_RETURN_IF_ERROR(state::LoadHeader(in));
  BYC_ASSIGN_OR_RETURN(inflation_, in.ReadF64());
  BYC_RETURN_IF_ERROR(state::LoadStore(in, store_));
  BYC_RETURN_IF_ERROR(state::LoadHeap(in, heap_));
  return LoadSide(in);
}

void RentToBuyCache::SaveSide(std::vector<uint8_t>& out) const {
  // The full rent ledger, zero-valued entries included: a "bought" entry
  // stays in the map at rent 0, and metadata_entries must agree after a
  // restore.
  state::SaveF64Map(out, rent_paid_);
}

Status RentToBuyCache::LoadSide(persist::ByteReader& in) {
  return state::LoadF64Map(in, rent_paid_);
}

BypassObjectCache::RequestOutcome RentToBuyCache::OnRequest(
    const catalog::ObjectId& id, uint64_t size_bytes, double fetch_cost) {
  RequestOutcome outcome;
  if (Contains(id)) {
    Refresh(id, size_bytes, fetch_cost);
    return outcome;
  }
  if (!store_.Fits(size_bytes)) {
    return outcome;
  }
  double& rent = rent_paid_[id.Key()];
  if (rent >= fetch_cost) {
    // Rent already covers the purchase: buy for this trip.
    rent = 0;
    MakeSpace(size_bytes, outcome.evictions);
    for (const catalog::ObjectId& victim : outcome.evictions) {
      rent_paid_.erase(victim.Key());  // evicted objects rent afresh
    }
    Admit(id, size_bytes, fetch_cost);
    outcome.loaded = true;
  } else {
    rent += fetch_cost;  // this request is bypassed at cost f_i
  }
  return outcome;
}

}  // namespace byc::core
