#include "core/landlord.h"

#include <algorithm>

#include "common/check.h"

namespace byc::core {

double LandlordCache::CreditOf(const catalog::ObjectId& id) const {
  const cache::CacheStore::Entry* entry = store_.Find(id);
  BYC_CHECK(entry != nullptr);
  double normalized = heap_.PriorityOf(id) - inflation_;
  return normalized * static_cast<double>(entry->size_bytes);
}

void LandlordCache::MakeSpace(uint64_t needed,
                              std::vector<catalog::ObjectId>& out) {
  while (store_.free_bytes() < needed) {
    BYC_CHECK(!heap_.empty());
    // Charge rent: raise the inflation to the minimum normalized credit,
    // zeroing the poorest object, then evict it.
    inflation_ = std::max(inflation_, heap_.PeekMinPriority());
    catalog::ObjectId victim = heap_.PopMin();
    BYC_CHECK(store_.Erase(victim).ok());
    out.push_back(victim);
  }
}

void LandlordCache::Admit(const catalog::ObjectId& id, uint64_t size_bytes,
                          double fetch_cost) {
  BYC_CHECK(store_.Insert(id, size_bytes, 0).ok());
  heap_.Insert(id,
               inflation_ + fetch_cost / static_cast<double>(size_bytes));
}

void LandlordCache::Refresh(const catalog::ObjectId& id, uint64_t size_bytes,
                            double fetch_cost) {
  heap_.Update(id,
               inflation_ + fetch_cost / static_cast<double>(size_bytes));
}

BypassObjectCache::RequestOutcome LandlordCache::OnRequest(
    const catalog::ObjectId& id, uint64_t size_bytes, double fetch_cost) {
  RequestOutcome outcome;
  if (store_.Contains(id)) {
    Refresh(id, size_bytes, fetch_cost);
    return outcome;
  }
  if (!store_.Fits(size_bytes)) {
    return outcome;  // can never be cached; the request is bypassed
  }
  MakeSpace(size_bytes, outcome.evictions);
  Admit(id, size_bytes, fetch_cost);
  outcome.loaded = true;
  return outcome;
}

BypassObjectCache::RequestOutcome RentToBuyCache::OnRequest(
    const catalog::ObjectId& id, uint64_t size_bytes, double fetch_cost) {
  RequestOutcome outcome;
  if (Contains(id)) {
    Refresh(id, size_bytes, fetch_cost);
    return outcome;
  }
  if (!store_.Fits(size_bytes)) {
    return outcome;
  }
  double& rent = rent_paid_[id.Key()];
  if (rent >= fetch_cost) {
    // Rent already covers the purchase: buy for this trip.
    rent = 0;
    MakeSpace(size_bytes, outcome.evictions);
    for (const catalog::ObjectId& victim : outcome.evictions) {
      rent_paid_.erase(victim.Key());  // evicted objects rent afresh
    }
    Admit(id, size_bytes, fetch_cost);
    outcome.loaded = true;
  } else {
    rent += fetch_cost;  // this request is bypassed at cost f_i
  }
  return outcome;
}

}  // namespace byc::core
