#include "core/query_profile.h"

#include <algorithm>

#include "common/check.h"

namespace byc::core {

double ObjectProfile::Larp(const Episode& e, uint64_t t) const {
  BYC_CHECK_GE(t, e.start);
  double elapsed = static_cast<double>(std::max<uint64_t>(t - e.start, 1));
  double size = static_cast<double>(size_bytes_);
  // Eq. 4 with the load penalty amortized over the episode: the rate
  // profile the object would have shown had it been loaded at the
  // episode start, net of the load investment. Positive exactly when the
  // episode's cumulative yield has overcome the fetch cost, matching
  // §4.3's "the rate will always be increasing until the load penalty
  // has been overcome, i.e., until LARP > 0".
  return (e.yield_sum - fetch_cost_) / (elapsed * size);
}

void ObjectProfile::PushPastLar(double lar, const EpisodeParams& params) {
  past_lars_.push_back(lar);
  while (past_lars_.size() > params.max_episodes) past_lars_.pop_front();
}

void ObjectProfile::CloseEpisode(const EpisodeParams& params) {
  if (!has_current_) return;
  PushPastLar(current_.peak_lar, params);
  has_current_ = false;
  current_ = Episode{};
}

void ObjectProfile::RecordAccess(uint64_t t, double yield,
                                 const EpisodeParams& params) {
  // Rule 2: a long idle gap ended the previous episode at its last access.
  if (has_current_ && t > last_access_ &&
      t - last_access_ > params.idle_limit) {
    CloseEpisode(params);
  }
  if (!has_current_) {
    has_current_ = true;
    current_ = Episode{};
    current_.start = t;
  }

  current_.yield_sum += yield;
  double larp = Larp(current_, t);
  if (!current_.peak_valid || larp > current_.peak_lar) {
    current_.peak_lar = larp;
    current_.peak_valid = true;
  }
  last_access_ = t;

  // Rule 1: once the episode has proven profitable (positive peak), a
  // drop below c * peak means the burst is over. While the peak is still
  // negative the rate is only climbing toward recovering the load
  // penalty, so the rule stays dormant (§4.3: "the rate will always be
  // increasing until the load penalty has been overcome").
  if (current_.peak_valid && current_.peak_lar > 0 &&
      larp < params.termination_ratio * current_.peak_lar) {
    CloseEpisode(params);
  }
}

double ObjectProfile::CurrentLarp(uint64_t t) const {
  if (!has_current_) return 0;
  return Larp(current_, t);
}

double ObjectProfile::LoadAdjustedRate(uint64_t /*t*/,
                                       const EpisodeParams& params) const {
  // Episodes, most recent first: the open episode (unless it has gone
  // stale, in which case it counts as merely the most recent closed one),
  // then the history back-to-front.
  double weighted_sum = 0;
  double weight_total = 0;
  double weight = 1.0;
  if (has_current_) {
    // A stale open episode contributes its peak like a closed one; a live
    // open episode contributes its peak so far.
    weighted_sum += weight * current_.peak_lar;
    weight_total += weight;
    weight *= params.weight_decay;
  }
  for (auto it = past_lars_.rbegin(); it != past_lars_.rend(); ++it) {
    weighted_sum += weight * (*it);
    weight_total += weight;
    weight *= params.weight_decay;
  }
  if (weight_total == 0) return -fetch_cost_ / static_cast<double>(size_bytes_);
  return weighted_sum / weight_total;
}

void ObjectProfile::OnLoaded(const EpisodeParams& params) {
  CloseEpisode(params);
}

void ObjectProfile::SaveState(std::vector<uint8_t>& out) const {
  persist::AppendU64(out, size_bytes_);
  persist::AppendF64(out, fetch_cost_);
  persist::AppendU64(out, last_access_);
  persist::AppendU8(out, has_current_ ? 1 : 0);
  persist::AppendU64(out, current_.start);
  persist::AppendF64(out, current_.yield_sum);
  persist::AppendF64(out, current_.peak_lar);
  persist::AppendU8(out, current_.peak_valid ? 1 : 0);
  persist::AppendU64(out, past_lars_.size());
  for (double lar : past_lars_) persist::AppendF64(out, lar);
}

Result<ObjectProfile> ObjectProfile::LoadFrom(persist::ByteReader& in) {
  uint64_t size_bytes = 0;
  double fetch_cost = 0;
  BYC_ASSIGN_OR_RETURN(size_bytes, in.ReadU64());
  BYC_ASSIGN_OR_RETURN(fetch_cost, in.ReadF64());
  ObjectProfile profile(size_bytes, fetch_cost);
  BYC_ASSIGN_OR_RETURN(profile.last_access_, in.ReadU64());
  BYC_ASSIGN_OR_RETURN(uint8_t has_current, in.ReadU8());
  profile.has_current_ = has_current != 0;
  BYC_ASSIGN_OR_RETURN(profile.current_.start, in.ReadU64());
  BYC_ASSIGN_OR_RETURN(profile.current_.yield_sum, in.ReadF64());
  BYC_ASSIGN_OR_RETURN(profile.current_.peak_lar, in.ReadF64());
  BYC_ASSIGN_OR_RETURN(uint8_t peak_valid, in.ReadU8());
  profile.current_.peak_valid = peak_valid != 0;
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(double lar, in.ReadF64());
    profile.past_lars_.push_back(lar);
  }
  return profile;
}

void ObjectProfile::OnEvicted(double final_rp, uint64_t cache_lifetime,
                              const EpisodeParams& params) {
  BYC_CHECK(!has_current_);
  // The cache lifetime acts as one episode whose savings rate was the
  // final RP; as an outside object it would additionally have paid the
  // fetch cost, amortized over the lifetime as in Eq. 4.
  double lifetime = static_cast<double>(std::max<uint64_t>(cache_lifetime, 1));
  PushPastLar(final_rp - fetch_cost_ /
                             (lifetime * static_cast<double>(size_bytes_)),
              params);
}

}  // namespace byc::core
