#ifndef BYC_CORE_STATIC_POLICY_H_
#define BYC_CORE_STATIC_POLICY_H_

#include <unordered_set>
#include <vector>

#include "cache/cache_store.h"
#include "core/policy.h"

namespace byc::core {

/// Baseline: static caching (§6.2) — "a cache is populated with the
/// optimal set of tables, and no cache loading or eviction occurs".
/// Accesses to resident objects are served from cache; everything else is
/// bypassed. The initial population is charged as load traffic on the
/// first access (set charge_initial_load = false to model a pre-warmed
/// cache instead).
class StaticPolicy : public CachePolicy {
 public:
  struct Options {
    uint64_t capacity_bytes = 0;
    bool charge_initial_load = true;
  };

  /// `contents` must fit in the capacity; oversized sets are truncated in
  /// the given order.
  StaticPolicy(const Options& options,
               const std::vector<std::pair<catalog::ObjectId, uint64_t>>&
                   contents);

  std::string_view name() const override { return "StaticCache"; }
  Decision OnAccess(const Access& access) override;
  bool Contains(const catalog::ObjectId& id) const override {
    return store_.Contains(id);
  }
  PolicyStats stats() const override {
    return {store_.used_bytes(), store_.capacity_bytes(), 0,
            store_.num_objects()};
  }

  void SaveState(std::vector<uint8_t>& out) const override;
  Status LoadState(persist::ByteReader& in) override;

 private:
  cache::CacheStore store_;
  bool charge_initial_load_;
  std::unordered_set<catalog::ObjectId, catalog::ObjectIdHash> uncharged_;
};

/// Offline selection of the static cache contents: aggregates each
/// object's total yield over the access sequence and greedily packs the
/// highest yield-per-byte objects into the capacity (the density greedy
/// for the static knapsack). Returns (object, size) pairs.
std::vector<std::pair<catalog::ObjectId, uint64_t>> SelectStaticSet(
    const std::vector<Access>& accesses, uint64_t capacity_bytes);

}  // namespace byc::core

#endif  // BYC_CORE_STATIC_POLICY_H_
