#include "core/static_policy.h"

#include <algorithm>
#include <unordered_map>

#include "core/policy_state.h"

namespace byc::core {

std::string_view ActionName(Action action) {
  switch (action) {
    case Action::kServeFromCache:
      return "serve";
    case Action::kBypass:
      return "bypass";
    case Action::kLoadAndServe:
      return "load";
  }
  return "?";
}

StaticPolicy::StaticPolicy(
    const Options& options,
    const std::vector<std::pair<catalog::ObjectId, uint64_t>>& contents)
    : store_(options.capacity_bytes),
      charge_initial_load_(options.charge_initial_load) {
  for (const auto& [id, size] : contents) {
    if (size > store_.free_bytes()) continue;
    if (!store_.Insert(id, size, /*load_time=*/0).ok()) continue;
    if (charge_initial_load_) uncharged_.insert(id);
  }
}

void StaticPolicy::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
  persist::AppendU8(out, charge_initial_load_ ? 1 : 0);
  state::SaveStore(out, store_);
  std::vector<catalog::ObjectId> uncharged(uncharged_.begin(),
                                           uncharged_.end());
  std::sort(uncharged.begin(), uncharged.end(),
            [](const catalog::ObjectId& a, const catalog::ObjectId& b) {
              return a.Key() < b.Key();
            });
  persist::AppendU64(out, uncharged.size());
  for (const catalog::ObjectId& id : uncharged) state::SaveObjectId(out, id);
}

Status StaticPolicy::LoadState(persist::ByteReader& in) {
  BYC_RETURN_IF_ERROR(state::LoadHeader(in));
  BYC_ASSIGN_OR_RETURN(uint8_t charge, in.ReadU8());
  if ((charge != 0) != charge_initial_load_) {
    return Status::ParseError("Static state: charge_initial_load mismatch");
  }
  // The store rebuild replaces the constructor population, so the restored
  // instance does not depend on the static contents being re-supplied.
  BYC_RETURN_IF_ERROR(state::LoadStore(in, store_));
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  uncharged_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(catalog::ObjectId id, state::LoadObjectId(in));
    if (!uncharged_.insert(id).second) {
      return Status::ParseError("Static state: duplicate uncharged entry");
    }
  }
  return Status::OK();
}

Decision StaticPolicy::OnAccess(const Access& access) {
  if (!store_.Contains(access.object)) {
    return Decision{Action::kBypass, {}};
  }
  // Charge the initial population lazily: the first access to a
  // statically cached object pays its fetch cost, so the static baseline
  // accounts for the bandwidth invested to populate the cache.
  auto it = uncharged_.find(access.object);
  if (it != uncharged_.end()) {
    uncharged_.erase(it);
    return Decision{Action::kLoadAndServe, {}};
  }
  return Decision{Action::kServeFromCache, {}};
}

std::vector<std::pair<catalog::ObjectId, uint64_t>> SelectStaticSet(
    const std::vector<Access>& accesses, uint64_t capacity_bytes) {
  struct Agg {
    double yield = 0;
    uint64_t size = 0;
    double fetch_cost = 0;
  };
  std::unordered_map<catalog::ObjectId, Agg, catalog::ObjectIdHash> totals;
  for (const Access& a : accesses) {
    Agg& agg = totals[a.object];
    agg.yield += a.bypass_cost;
    agg.size = a.size_bytes;
    agg.fetch_cost = a.fetch_cost;
  }

  std::vector<std::pair<catalog::ObjectId, Agg>> items(totals.begin(),
                                                       totals.end());
  // Highest savings per byte of cache first; the yield must also exceed
  // the one-time fetch investment for the object to be worth static
  // placement at all.
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    double da = a.second.yield / static_cast<double>(a.second.size);
    double db = b.second.yield / static_cast<double>(b.second.size);
    if (da != db) return da > db;
    return a.first.Key() < b.first.Key();
  });

  std::vector<std::pair<catalog::ObjectId, uint64_t>> out;
  uint64_t used = 0;
  for (const auto& [id, agg] : items) {
    if (agg.yield <= agg.fetch_cost) continue;
    if (used + agg.size > capacity_bytes) continue;
    out.emplace_back(id, agg.size);
    used += agg.size;
  }
  return out;
}

}  // namespace byc::core
