#ifndef BYC_CORE_SPACE_EFF_BY_POLICY_H_
#define BYC_CORE_SPACE_EFF_BY_POLICY_H_

#include <memory>

#include "common/random.h"
#include "core/online_by_policy.h"
#include "core/policy.h"

namespace byc::core {

/// SpaceEffBY (§5.3): the randomized, space-efficient on-line algorithm.
/// Instead of maintaining a BYU accumulator per object (state for every
/// object in the federation), it presents the object to A_obj with
/// probability y_ij / s_i on each access — the same expected request rate
/// with O(1) extra space beyond A_obj.
///
/// Pair it with the Landlord A_obj (the default here) to keep metadata
/// for resident objects only, realizing the paper's minimal-space claim;
/// rent-to-buy A_obj variants reintroduce per-object admission state.
class SpaceEffByPolicy : public CachePolicy {
 public:
  struct Options {
    uint64_t capacity_bytes = 0;
    AobjKind aobj = AobjKind::kLandlord;
    uint64_t seed = 0x5EEDBEEF;
  };

  explicit SpaceEffByPolicy(const Options& options)
      : aobj_(MakeAobj(options.aobj, options.capacity_bytes)),
        rng_(options.seed) {}

  std::string_view name() const override { return "SpaceEffBY"; }
  Decision OnAccess(const Access& access) override;
  bool Contains(const catalog::ObjectId& id) const override {
    return aobj_->Contains(id);
  }
  PolicyStats stats() const override { return aobj_->stats(); }

  void SaveState(std::vector<uint8_t>& out) const override;
  Status LoadState(persist::ByteReader& in) override;

 private:
  std::unique_ptr<BypassObjectCache> aobj_;
  Rng rng_;
};

}  // namespace byc::core

#endif  // BYC_CORE_SPACE_EFF_BY_POLICY_H_
