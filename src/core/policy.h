#ifndef BYC_CORE_POLICY_H_
#define BYC_CORE_POLICY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "catalog/object_id.h"
#include "common/result.h"
#include "core/access.h"
#include "persist/codec.h"

namespace byc::core {

/// What the cache decided to do with one access.
enum class Action : uint8_t {
  /// The object is resident; the query part is evaluated in the cache at
  /// zero WAN cost (D_C += yield).
  kServeFromCache,
  /// The query part ships to the back-end server and only its result
  /// crosses the WAN (D_S += yield).
  kBypass,
  /// The cache first loads the object (D_L += fetch_cost), evicting the
  /// listed victims, then serves the query locally (D_C += yield).
  kLoadAndServe,
};

std::string_view ActionName(Action action);

/// One coherent snapshot of a policy's cache state. Collapsing the old
/// used_bytes()/capacity_bytes()/metadata_entries() virtual trio into a
/// single call means callers (sweep outcomes, simulator cross-checks,
/// telemetry) read all fields from the same instant, and new fields stop
/// rippling through every policy subclass as fresh virtuals.
struct PolicyStats {
  /// Bytes currently held (0 for cacheless policies).
  uint64_t used_bytes = 0;
  /// Bytes of capacity (0 for cacheless policies).
  uint64_t capacity_bytes = 0;
  /// Count of per-object metadata entries held for objects that are NOT
  /// resident — the state the paper's SpaceEffBY exists to eliminate
  /// ("Both RateProfile and OnlineBY need to store information for all
  /// objects that can be potentially cached", §5). Residency bookkeeping
  /// itself is excluded.
  size_t metadata_entries = 0;
  /// Number of objects currently resident in the cache.
  size_t resident_objects = 0;
};

/// The outcome of one access: the action plus any evictions performed to
/// make room (evictions are WAN-free; they only give up future savings).
struct Decision {
  Action action = Action::kBypass;
  std::vector<catalog::ObjectId> evictions;
  /// Optional policy-reported utility behind the decision (e.g.
  /// Rate-Profile's LAR for a load). Consumed by the telemetry decision
  /// tracer; 0 when the policy does not export one. Never feeds back
  /// into simulation results.
  double utility_score = 0;
};

/// Interface implemented by every cache-management algorithm: the three
/// bypass-yield algorithms (Rate-Profile, OnlineBY, SpaceEffBY) and the
/// baselines (GDS, GDSP, LRU, LFU, static, no-cache).
///
/// The simulator presents accesses in trace order; logical time is the
/// number of accesses seen so far ("Time is relative and measured in
/// number of queries in a workload", §4). Implementations mutate their
/// internal cache state and report the resulting Decision; the simulator
/// does the WAN cost accounting and cross-checks residency.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  virtual std::string_view name() const = 0;

  /// Processes the next access in the stream.
  virtual Decision OnAccess(const Access& access) = 0;

  /// True iff the object is currently resident.
  virtual bool Contains(const catalog::ObjectId& id) const = 0;

  /// Snapshot of the policy's cache state. The default (all zeros) suits
  /// cacheless policies; stateful policies override it wholesale.
  virtual PolicyStats stats() const { return {}; }

  /// Serializes the policy's COMPLETE decision state (residency, utility
  /// metadata, logical clock, randomness) as a versioned binary blob —
  /// a freshly constructed policy of the same configuration restored
  /// with LoadState continues the decision stream bit-identically to the
  /// original. Canonical encoding: save(load(save(p))) == save(p)
  /// byte-for-byte (see core/policy_state.h for the ground rules). The
  /// default writes a bare version header (stateless policies).
  virtual void SaveState(std::vector<uint8_t>& out) const;

  /// Restores state written by SaveState on an identically configured
  /// policy. Malformed or mismatched bytes are a typed error (the policy
  /// may be left partially restored — discard it on failure); the reader
  /// is left positioned after the blob, so blobs compose in streams.
  virtual Status LoadState(persist::ByteReader& in);
};

}  // namespace byc::core

#endif  // BYC_CORE_POLICY_H_
