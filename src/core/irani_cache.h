#ifndef BYC_CORE_IRANI_CACHE_H_
#define BYC_CORE_IRANI_CACHE_H_

#include <map>
#include <unordered_map>

#include "cache/cache_store.h"
#include "core/bypass_object_cache.h"

namespace byc::core {

/// Irani-style optional multi-size caching (the O(lg^2 k)-competitive
/// construction of [Irani, STOC'97] that Corollary 5.2 invokes):
///
///  * objects are partitioned into ~lg k size classes (class j holds
///    sizes in [2^j, 2^(j+1)));
///  * within the shared cache each class runs a marking algorithm —
///    requests mark objects; when eviction is needed and no unmarked
///    object exists, a new phase begins and all marks clear;
///  * the "optional" (bypass) part is a per-object rent-to-buy admission:
///    a non-resident object is bypassed until its accumulated bypass cost
///    matches its fetch cost;
///  * eviction picks the class currently holding the most unmarked bytes
///    and evicts its oldest unmarked object, balancing the classes.
///
/// This follows the published algorithm's structure (size classes x
/// marking x optional admission); see DESIGN.md for the substitution
/// note.
class IraniSizeClassCache : public BypassObjectCache {
 public:
  explicit IraniSizeClassCache(uint64_t capacity_bytes)
      : store_(capacity_bytes) {}

  std::string_view name() const override { return "IraniSizeClass"; }
  RequestOutcome OnRequest(const catalog::ObjectId& id, uint64_t size_bytes,
                           double fetch_cost) override;
  bool Contains(const catalog::ObjectId& id) const override {
    return store_.Contains(id);
  }
  PolicyStats stats() const override {
    return {store_.used_bytes(), store_.capacity_bytes(), rent_paid_.size(),
            store_.num_objects()};
  }

  /// Number of completed marking phases (tests observe phase resets).
  uint64_t phase_count() const { return phase_count_; }

  void SaveState(std::vector<uint8_t>& out) const override;
  Status LoadState(persist::ByteReader& in) override;

 private:
  struct Resident {
    int size_class = 0;
    uint64_t size_bytes = 0;
    uint64_t admit_seq = 0;
    bool marked = false;
  };
  struct SizeClass {
    // Unmarked residents in admission order (oldest first).
    std::map<uint64_t, catalog::ObjectId> unmarked_fifo;
    uint64_t unmarked_bytes = 0;
  };

  static int SizeClassOf(uint64_t size_bytes);
  void Mark(const catalog::ObjectId& id);
  void UnmarkAll();
  void MakeSpace(uint64_t needed, std::vector<catalog::ObjectId>& out);

  cache::CacheStore store_;
  std::unordered_map<catalog::ObjectId, Resident, catalog::ObjectIdHash>
      residents_;
  std::map<int, SizeClass> classes_;
  std::unordered_map<uint64_t, double> rent_paid_;  // by ObjectId::Key()
  uint64_t next_seq_ = 0;
  uint64_t phase_count_ = 0;
};

}  // namespace byc::core

#endif  // BYC_CORE_IRANI_CACHE_H_
