#ifndef BYC_CORE_INLINE_POLICIES_H_
#define BYC_CORE_INLINE_POLICIES_H_

#include <unordered_map>

#include "cache/cache_store.h"
#include "cache/indexed_heap.h"
#include "core/policy.h"

namespace byc::core {

/// Base for classical *in-line* proxy caches: a miss always loads the
/// object and serves the query from the cache — there is no bypass
/// decision (this is precisely why GDS "performs poorly because it caches
/// all requests", §6.2). Objects larger than the whole cache are the one
/// exception: they cannot possibly be cached, so such requests are
/// forwarded (bypassed) as any real proxy would.
///
/// Subclasses define the utility ordering through TouchPriority(), called
/// on every hit and load; eviction removes the minimum-priority object.
class InlineCachePolicy : public CachePolicy {
 public:
  explicit InlineCachePolicy(uint64_t capacity_bytes)
      : store_(capacity_bytes) {}

  Decision OnAccess(const Access& access) final;
  bool Contains(const catalog::ObjectId& id) const final {
    return store_.Contains(id);
  }
  PolicyStats stats() const final {
    return {store_.used_bytes(), store_.capacity_bytes(), 0,
            store_.num_objects()};
  }
  void SaveState(std::vector<uint8_t>& out) const final;
  Status LoadState(persist::ByteReader& in) final;

 protected:
  /// Priority (min evicts first) to assign on this touch.
  virtual double TouchPriority(const Access& access, bool hit) = 0;

  /// Hook invoked when `id` with priority `priority` is evicted.
  virtual void OnEvict(const catalog::ObjectId& id, double priority);

  /// Subclass extras appended after the shared clock/store/heap state
  /// (frequency counts, reference history, inflation); defaults to none.
  virtual void SaveSide(std::vector<uint8_t>& out) const;
  virtual Status LoadSide(persist::ByteReader& in);

  uint64_t now() const { return now_; }

 private:
  uint64_t now_ = 0;
  cache::CacheStore store_;
  cache::IndexedMinHeap<catalog::ObjectId, catalog::ObjectIdHash> heap_;
};

/// Least-recently-used object cache.
class LruPolicy : public InlineCachePolicy {
 public:
  explicit LruPolicy(uint64_t capacity_bytes)
      : InlineCachePolicy(capacity_bytes) {}
  std::string_view name() const override { return "LRU"; }

 protected:
  double TouchPriority(const Access&, bool) override {
    return static_cast<double>(now());
  }
};

/// Least-frequently-used object cache. Frequency counts persist across
/// evictions (perfect-LFU), which suits the trace-replay setting.
class LfuPolicy : public InlineCachePolicy {
 public:
  explicit LfuPolicy(uint64_t capacity_bytes)
      : InlineCachePolicy(capacity_bytes) {}
  std::string_view name() const override { return "LFU"; }

 protected:
  double TouchPriority(const Access& access, bool) override {
    return static_cast<double>(++frequency_[access.object.Key()]);
  }
  void SaveSide(std::vector<uint8_t>& out) const override;
  Status LoadSide(persist::ByteReader& in) override;

 private:
  std::unordered_map<uint64_t, uint64_t> frequency_;
};

/// LRU-K (O'Neil, O'Neil & Weikum, cited in §2 for database disk
/// buffering): evicts the object whose K-th most recent reference is
/// oldest, discriminating frequently from infrequently referenced
/// objects better than plain LRU. Objects with fewer than K references
/// order by -infinity (evicted first), ties falling back to recency via
/// a small epsilon on the last access time.
class LruKPolicy : public InlineCachePolicy {
 public:
  LruKPolicy(uint64_t capacity_bytes, int k)
      : InlineCachePolicy(capacity_bytes), k_(k) {}
  std::string_view name() const override { return "LRU-K"; }

 protected:
  double TouchPriority(const Access& access, bool hit) override;
  void SaveSide(std::vector<uint8_t>& out) const override;
  Status LoadSide(persist::ByteReader& in) override;

 private:
  int k_;
  /// Ring of the last K reference times per object key.
  std::unordered_map<uint64_t, std::vector<uint64_t>> history_;
};

/// Greedy-Dual-Size (Cao & Irani): H = L + cost/size, where L inflates to
/// the H-value of each evicted object, aging out stale entries. The
/// paper's principal in-line baseline ("a system that uses
/// Greedy-Dual-Size (GDS) caching without bypass").
class GdsPolicy : public InlineCachePolicy {
 public:
  explicit GdsPolicy(uint64_t capacity_bytes)
      : InlineCachePolicy(capacity_bytes) {}
  std::string_view name() const override { return "GDS"; }

 protected:
  double TouchPriority(const Access& access, bool) override {
    return inflation_ +
           access.fetch_cost / static_cast<double>(access.size_bytes);
  }
  void OnEvict(const catalog::ObjectId& id, double priority) override;
  void SaveSide(std::vector<uint8_t>& out) const override;
  Status LoadSide(persist::ByteReader& in) override;

 private:
  double inflation_ = 0;  // the "L" value
};

/// GDS-Popularity (Jin & Bestavros): H = L + frequency * cost/size,
/// adding the frequency dimension GDS lacks. Frequencies persist across
/// evictions — the same design choice the paper's rate-based algorithm
/// borrows ("uses frequency count similar to GDSP for all objects in the
/// reference stream, not just those in the cache currently", §2).
class GdspPolicy : public InlineCachePolicy {
 public:
  explicit GdspPolicy(uint64_t capacity_bytes)
      : InlineCachePolicy(capacity_bytes) {}
  std::string_view name() const override { return "GDSP"; }

 protected:
  double TouchPriority(const Access& access, bool) override {
    double freq = static_cast<double>(++frequency_[access.object.Key()]);
    return inflation_ +
           freq * access.fetch_cost / static_cast<double>(access.size_bytes);
  }
  void OnEvict(const catalog::ObjectId& id, double priority) override;
  void SaveSide(std::vector<uint8_t>& out) const override;
  Status LoadSide(persist::ByteReader& in) override;

 private:
  double inflation_ = 0;
  std::unordered_map<uint64_t, uint64_t> frequency_;
};

}  // namespace byc::core

#endif  // BYC_CORE_INLINE_POLICIES_H_
