#include "core/online_by_policy.h"

#include "common/check.h"
#include "core/irani_cache.h"
#include "core/landlord.h"
#include "core/policy_state.h"

namespace byc::core {

std::string_view AobjKindName(AobjKind kind) {
  switch (kind) {
    case AobjKind::kLandlord:
      return "Landlord";
    case AobjKind::kRentToBuy:
      return "RentToBuy";
    case AobjKind::kIraniSizeClass:
      return "IraniSizeClass";
  }
  return "?";
}

std::unique_ptr<BypassObjectCache> MakeAobj(AobjKind kind,
                                            uint64_t capacity_bytes) {
  switch (kind) {
    case AobjKind::kLandlord:
      return std::make_unique<LandlordCache>(capacity_bytes);
    case AobjKind::kRentToBuy:
      return std::make_unique<RentToBuyCache>(capacity_bytes);
    case AobjKind::kIraniSizeClass:
      return std::make_unique<IraniSizeClassCache>(capacity_bytes);
  }
  BYC_CHECK(false);
  return nullptr;
}

OnlineByPolicy::OnlineByPolicy(const Options& options)
    : aobj_(MakeAobj(options.aobj, options.capacity_bytes)) {}

double OnlineByPolicy::ByuOf(const catalog::ObjectId& id) const {
  auto it = byu_.find(id.Key());
  return it == byu_.end() ? 0.0 : it->second;
}

void OnlineByPolicy::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
  state::SaveF64Map(out, byu_);
  // The A_obj blob is embedded mid-stream; LoadState composes the same
  // way, so the reader ends up positioned right after it.
  aobj_->SaveState(out);
}

Status OnlineByPolicy::LoadState(persist::ByteReader& in) {
  BYC_RETURN_IF_ERROR(state::LoadHeader(in));
  BYC_RETURN_IF_ERROR(state::LoadF64Map(in, byu_));
  return aobj_->LoadState(in);
}

Decision OnlineByPolicy::OnAccess(const Access& access) {
  BYC_CHECK_GT(access.size_bytes, 0u);
  double& byu = byu_[access.object.Key()];
  byu += access.bypass_cost / access.fetch_cost;

  Decision decision;
  // Each full unit of BYU is one whole-object request for A_obj. A yield
  // larger than the object (join fan-out) can complete several groups at
  // once; requests after the first hit the then-resident object.
  while (byu >= 1.0) {
    byu -= 1.0;
    BypassObjectCache::RequestOutcome outcome =
        aobj_->OnRequest(access.object, access.size_bytes, access.fetch_cost);
    if (outcome.loaded) {
      decision.action = Action::kLoadAndServe;
      for (auto& v : outcome.evictions) decision.evictions.push_back(v);
    }
  }

  if (decision.action == Action::kLoadAndServe) {
    return decision;  // loaded on this access; the query is served in cache
  }
  decision.action = aobj_->Contains(access.object) ? Action::kServeFromCache
                                                   : Action::kBypass;
  return decision;
}

}  // namespace byc::core
