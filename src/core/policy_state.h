#ifndef BYC_CORE_POLICY_STATE_H_
#define BYC_CORE_POLICY_STATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache_store.h"
#include "cache/indexed_heap.h"
#include "catalog/object_id.h"
#include "common/result.h"
#include "persist/codec.h"

namespace byc::core::state {

/// Shared building blocks for CachePolicy::SaveState/LoadState. The
/// contract every implementation honours:
///
///  * serialization is CANONICAL — hash-map contents are written in
///    sorted-key order, so save(load(save(p))) == save(p) byte-for-byte
///    regardless of the maps' incidental iteration order;
///  * the IndexedMinHeap is the one exception: it is written in its
///    internal ARRAY order and restored by inserting in that same order.
///    Because the source array satisfies the heap invariant, each insert's
///    sift-up is a no-op and the restored array is element-for-element
///    identical — which pins every future PopMin/PeekMin tie-break, the
///    part of the decision state a sorted encoding would lose;
///  * loaders are typed-Result parsers: truncated or inconsistent bytes
///    produce a ParseError, never a crash.

/// Version byte leading every policy state blob.
inline constexpr uint8_t kPolicyStateVersion = 1;

void SaveHeader(std::vector<uint8_t>& out);
Status LoadHeader(persist::ByteReader& in);

void SaveObjectId(std::vector<uint8_t>& out, const catalog::ObjectId& id);
Result<catalog::ObjectId> LoadObjectId(persist::ByteReader& in);

/// Resident set, sorted by ObjectId::Key(). Restoring clears the store;
/// capacity is written and verified so a snapshot can never be loaded
/// into a differently-sized cache.
void SaveStore(std::vector<uint8_t>& out, const cache::CacheStore& store);
Status LoadStore(persist::ByteReader& in, cache::CacheStore& store);

using ObjectHeap =
    cache::IndexedMinHeap<catalog::ObjectId, catalog::ObjectIdHash>;

/// Heap in internal array order (see the contract note above).
void SaveHeap(std::vector<uint8_t>& out, const ObjectHeap& heap);
Status LoadHeap(persist::ByteReader& in, ObjectHeap& heap);

/// Hash maps in sorted-key order. Restoring clears the destination.
void SaveU64Map(std::vector<uint8_t>& out,
                const std::unordered_map<uint64_t, uint64_t>& map);
Status LoadU64Map(persist::ByteReader& in,
                  std::unordered_map<uint64_t, uint64_t>& map);
void SaveF64Map(std::vector<uint8_t>& out,
                const std::unordered_map<uint64_t, double>& map);
Status LoadF64Map(persist::ByteReader& in,
                  std::unordered_map<uint64_t, double>& map);
void SaveU64VecMap(
    std::vector<uint8_t>& out,
    const std::unordered_map<uint64_t, std::vector<uint64_t>>& map);
Status LoadU64VecMap(
    persist::ByteReader& in,
    std::unordered_map<uint64_t, std::vector<uint64_t>>& map);

}  // namespace byc::core::state

#endif  // BYC_CORE_POLICY_STATE_H_
