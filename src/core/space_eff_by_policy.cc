#include "core/space_eff_by_policy.h"

#include <algorithm>

#include "common/check.h"
#include "core/policy_state.h"

namespace byc::core {

void SpaceEffByPolicy::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
  // The xoshiro state pins the coin-flip sequence so a restored run makes
  // bit-identical randomized decisions.
  for (uint64_t word : rng_.state()) persist::AppendU64(out, word);
  aobj_->SaveState(out);
}

Status SpaceEffByPolicy::LoadState(persist::ByteReader& in) {
  BYC_RETURN_IF_ERROR(state::LoadHeader(in));
  std::array<uint64_t, 4> words{};
  for (uint64_t& word : words) {
    BYC_ASSIGN_OR_RETURN(word, in.ReadU64());
  }
  rng_.set_state(words);
  return aobj_->LoadState(in);
}

Decision SpaceEffByPolicy::OnAccess(const Access& access) {
  BYC_CHECK_GT(access.size_bytes, 0u);
  double p =
      access.bypass_cost / access.fetch_cost;

  Decision decision;
  if (rng_.NextBool(std::min(p, 1.0))) {
    BypassObjectCache::RequestOutcome outcome =
        aobj_->OnRequest(access.object, access.size_bytes, access.fetch_cost);
    if (outcome.loaded) {
      decision.action = Action::kLoadAndServe;
      decision.evictions = std::move(outcome.evictions);
      return decision;
    }
  }
  decision.action = aobj_->Contains(access.object) ? Action::kServeFromCache
                                                   : Action::kBypass;
  return decision;
}

}  // namespace byc::core
