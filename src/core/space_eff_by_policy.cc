#include "core/space_eff_by_policy.h"

#include <algorithm>

#include "common/check.h"

namespace byc::core {

Decision SpaceEffByPolicy::OnAccess(const Access& access) {
  BYC_CHECK_GT(access.size_bytes, 0u);
  double p =
      access.bypass_cost / access.fetch_cost;

  Decision decision;
  if (rng_.NextBool(std::min(p, 1.0))) {
    BypassObjectCache::RequestOutcome outcome =
        aobj_->OnRequest(access.object, access.size_bytes, access.fetch_cost);
    if (outcome.loaded) {
      decision.action = Action::kLoadAndServe;
      decision.evictions = std::move(outcome.evictions);
      return decision;
    }
  }
  decision.action = aobj_->Contains(access.object) ? Action::kServeFromCache
                                                   : Action::kBypass;
  return decision;
}

}  // namespace byc::core
