#include "core/inline_policies.h"

#include <algorithm>

#include "common/check.h"
#include "core/policy_state.h"

namespace byc::core {

Decision InlineCachePolicy::OnAccess(const Access& access) {
  ++now_;
  if (store_.Contains(access.object)) {
    heap_.Update(access.object, TouchPriority(access, /*hit=*/true));
    return Decision{Action::kServeFromCache, {}};
  }
  if (!store_.Fits(access.size_bytes)) {
    // The object can never fit; the request is forwarded to the server.
    return Decision{Action::kBypass, {}};
  }

  Decision decision;
  decision.action = Action::kLoadAndServe;
  while (store_.free_bytes() < access.size_bytes) {
    BYC_CHECK(!heap_.empty());
    catalog::ObjectId victim = heap_.PeekMinKey();
    double priority = heap_.PeekMinPriority();
    heap_.Erase(victim);
    BYC_CHECK(store_.Erase(victim).ok());
    OnEvict(victim, priority);
    decision.evictions.push_back(victim);
  }
  BYC_CHECK(store_.Insert(access.object, access.size_bytes, now_).ok());
  heap_.Insert(access.object, TouchPriority(access, /*hit=*/false));
  return decision;
}

void InlineCachePolicy::OnEvict(const catalog::ObjectId&, double) {}

void InlineCachePolicy::SaveSide(std::vector<uint8_t>&) const {}

Status InlineCachePolicy::LoadSide(persist::ByteReader&) {
  return Status::OK();
}

void InlineCachePolicy::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
  persist::AppendU64(out, now_);
  state::SaveStore(out, store_);
  state::SaveHeap(out, heap_);
  SaveSide(out);
}

Status InlineCachePolicy::LoadState(persist::ByteReader& in) {
  BYC_RETURN_IF_ERROR(state::LoadHeader(in));
  BYC_ASSIGN_OR_RETURN(now_, in.ReadU64());
  BYC_RETURN_IF_ERROR(state::LoadStore(in, store_));
  BYC_RETURN_IF_ERROR(state::LoadHeap(in, heap_));
  return LoadSide(in);
}

void LfuPolicy::SaveSide(std::vector<uint8_t>& out) const {
  state::SaveU64Map(out, frequency_);
}

Status LfuPolicy::LoadSide(persist::ByteReader& in) {
  return state::LoadU64Map(in, frequency_);
}

void LruKPolicy::SaveSide(std::vector<uint8_t>& out) const {
  persist::AppendU64(out, static_cast<uint64_t>(k_));
  state::SaveU64VecMap(out, history_);
}

Status LruKPolicy::LoadSide(persist::ByteReader& in) {
  BYC_ASSIGN_OR_RETURN(uint64_t k, in.ReadU64());
  if (k != static_cast<uint64_t>(k_)) {
    return Status::ParseError("LRU-K state: snapshot K " +
                              std::to_string(k) + " != configured K " +
                              std::to_string(k_));
  }
  return state::LoadU64VecMap(in, history_);
}

void GdsPolicy::SaveSide(std::vector<uint8_t>& out) const {
  persist::AppendF64(out, inflation_);
}

Status GdsPolicy::LoadSide(persist::ByteReader& in) {
  BYC_ASSIGN_OR_RETURN(inflation_, in.ReadF64());
  return Status::OK();
}

void GdspPolicy::SaveSide(std::vector<uint8_t>& out) const {
  persist::AppendF64(out, inflation_);
  state::SaveU64Map(out, frequency_);
}

Status GdspPolicy::LoadSide(persist::ByteReader& in) {
  BYC_ASSIGN_OR_RETURN(inflation_, in.ReadF64());
  return state::LoadU64Map(in, frequency_);
}

double LruKPolicy::TouchPriority(const Access& access, bool) {
  std::vector<uint64_t>& refs = history_[access.object.Key()];
  refs.push_back(now());
  if (refs.size() > static_cast<size_t>(k_)) {
    refs.erase(refs.begin());
  }
  if (refs.size() < static_cast<size_t>(k_)) {
    // Backward-K distance is infinite: most eligible for eviction, with
    // recency (scaled down) breaking ties among the under-referenced.
    return -1.0 + static_cast<double>(now()) * 1e-12;
  }
  return static_cast<double>(refs.front());
}

void GdsPolicy::OnEvict(const catalog::ObjectId&, double priority) {
  inflation_ = std::max(inflation_, priority);
}

void GdspPolicy::OnEvict(const catalog::ObjectId&, double priority) {
  inflation_ = std::max(inflation_, priority);
}

}  // namespace byc::core
