#include "core/inline_policies.h"

#include <algorithm>

#include "common/check.h"

namespace byc::core {

Decision InlineCachePolicy::OnAccess(const Access& access) {
  ++now_;
  if (store_.Contains(access.object)) {
    heap_.Update(access.object, TouchPriority(access, /*hit=*/true));
    return Decision{Action::kServeFromCache, {}};
  }
  if (!store_.Fits(access.size_bytes)) {
    // The object can never fit; the request is forwarded to the server.
    return Decision{Action::kBypass, {}};
  }

  Decision decision;
  decision.action = Action::kLoadAndServe;
  while (store_.free_bytes() < access.size_bytes) {
    BYC_CHECK(!heap_.empty());
    catalog::ObjectId victim = heap_.PeekMinKey();
    double priority = heap_.PeekMinPriority();
    heap_.Erase(victim);
    BYC_CHECK(store_.Erase(victim).ok());
    OnEvict(victim, priority);
    decision.evictions.push_back(victim);
  }
  BYC_CHECK(store_.Insert(access.object, access.size_bytes, now_).ok());
  heap_.Insert(access.object, TouchPriority(access, /*hit=*/false));
  return decision;
}

void InlineCachePolicy::OnEvict(const catalog::ObjectId&, double) {}

double LruKPolicy::TouchPriority(const Access& access, bool) {
  std::vector<uint64_t>& refs = history_[access.object.Key()];
  refs.push_back(now());
  if (refs.size() > static_cast<size_t>(k_)) {
    refs.erase(refs.begin());
  }
  if (refs.size() < static_cast<size_t>(k_)) {
    // Backward-K distance is infinite: most eligible for eviction, with
    // recency (scaled down) breaking ties among the under-referenced.
    return -1.0 + static_cast<double>(now()) * 1e-12;
  }
  return static_cast<double>(refs.front());
}

void GdsPolicy::OnEvict(const catalog::ObjectId&, double priority) {
  inflation_ = std::max(inflation_, priority);
}

void GdspPolicy::OnEvict(const catalog::ObjectId&, double priority) {
  inflation_ = std::max(inflation_, priority);
}

}  // namespace byc::core
