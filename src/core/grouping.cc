#include "core/grouping.h"

#include <unordered_map>

#include "common/check.h"

namespace byc::core {

GroupedSequences GroupAccesses(const std::vector<Access>& accesses) {
  GroupedSequences out;

  // Per-object running BYU plus the trailing (incomplete-group) queries.
  struct ObjectState {
    double byu = 0;  // fraction of the current group completed
    std::vector<Access> pending;
  };
  std::unordered_map<uint64_t, ObjectState> state;

  for (const Access& access : accesses) {
    BYC_CHECK_GT(access.size_bytes, 0u);
    ObjectState& s = state[access.object.Key()];
    double unit = access.yield_bytes / static_cast<double>(access.size_bytes);
    double remaining = unit;
    Access rest = access;  // the not-yet-grouped fraction of this query

    while (s.byu + remaining >= 1.0) {
      // This query completes the current group; split it fractionally.
      double used = 1.0 - s.byu;  // units consumed from this query
      double frac = remaining > 0 ? used / unit : 0;
      Access part = access;
      part.yield_bytes = access.yield_bytes * frac;
      part.bypass_cost = access.bypass_cost * frac;

      // The group's members: everything pending plus this fraction.
      for (Access& p : s.pending) out.trimmed.push_back(std::move(p));
      s.pending.clear();
      out.trimmed.push_back(part);

      Access object_request = access;
      object_request.yield_bytes = static_cast<double>(access.size_bytes);
      object_request.bypass_cost = access.fetch_cost;
      out.object_sequence.push_back(object_request);

      remaining -= used;
      rest.yield_bytes -= part.yield_bytes;
      rest.bypass_cost -= part.bypass_cost;
      s.byu = 0;
    }

    if (remaining > 1e-12) {
      s.byu += remaining;
      s.pending.push_back(rest);
    }
  }

  // Whatever never completed a group is dropped(σ).
  for (auto& [key, s] : state) {
    for (Access& p : s.pending) out.dropped.push_back(std::move(p));
  }
  return out;
}

}  // namespace byc::core
