#ifndef BYC_CORE_ONLINE_BY_POLICY_H_
#define BYC_CORE_ONLINE_BY_POLICY_H_

#include <memory>
#include <unordered_map>

#include "core/bypass_object_cache.h"
#include "core/policy.h"

namespace byc::core {

/// Which bypass-object caching algorithm backs OnlineBY / SpaceEffBY.
enum class AobjKind : uint8_t {
  kLandlord,       // mandatory admission, Landlord eviction
  kRentToBuy,      // ski-rental admission + Landlord eviction (default)
  kIraniSizeClass  // size classes x marking x optional admission
};

std::string_view AobjKindName(AobjKind kind);

/// Constructs an A_obj of the given kind.
std::unique_ptr<BypassObjectCache> MakeAobj(AobjKind kind,
                                            uint64_t capacity_bytes);

/// OnlineBY (§5.2): the deterministic on-line algorithm for bypass-yield
/// caching. Per object it accumulates the byte-yield utility
///
///   BYU_i += y_ij / s_i
///
/// and each time the accumulator crosses 1 — i.e. the object's queries
/// have yielded (bypassed) bytes worth its full size, a "group" whose
/// bypass cost equals the fetch cost f_i — it presents the whole object
/// to the underlying bypass-object algorithm A_obj, mirroring its cache
/// exactly. Queries to resident objects are served in cache; all others
/// are bypassed.
///
/// With an α-competitive A_obj this is (4α+2)-competitive (Theorem 5.1);
/// with Irani's O(lg^2 k) algorithm, O(lg^2 k)-competitive (Cor. 5.2).
/// Unlike Rate-Profile it needs no workload assumptions and no training.
class OnlineByPolicy : public CachePolicy {
 public:
  struct Options {
    uint64_t capacity_bytes = 0;
    AobjKind aobj = AobjKind::kRentToBuy;
  };

  explicit OnlineByPolicy(const Options& options);

  std::string_view name() const override { return "OnlineBY"; }
  Decision OnAccess(const Access& access) override;
  bool Contains(const catalog::ObjectId& id) const override {
    return aobj_->Contains(id);
  }
  /// The A_obj's snapshot, with the BYU accumulators added to its own
  /// admission state in metadata_entries.
  PolicyStats stats() const override {
    PolicyStats stats = aobj_->stats();
    stats.metadata_entries += byu_.size();
    return stats;
  }

  /// Current BYU accumulator of an object (tests). 0 when untracked.
  double ByuOf(const catalog::ObjectId& id) const;

  const BypassObjectCache& aobj() const { return *aobj_; }

  void SaveState(std::vector<uint8_t>& out) const override;
  Status LoadState(persist::ByteReader& in) override;

 private:
  std::unique_ptr<BypassObjectCache> aobj_;
  std::unordered_map<uint64_t, double> byu_;  // by ObjectId::Key()
};

}  // namespace byc::core

#endif  // BYC_CORE_ONLINE_BY_POLICY_H_
