#include "core/offline_opt.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"

namespace byc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Instance {
  std::vector<uint64_t> sizes;        // per distinct object
  std::vector<double> fetch_costs;    // per distinct object
  std::vector<int> object_of_access;  // access -> distinct-object index
};

Result<Instance> BuildInstance(const std::vector<Access>& accesses) {
  Instance inst;
  std::unordered_map<uint64_t, int> index_of;
  inst.object_of_access.reserve(accesses.size());
  for (const Access& a : accesses) {
    auto [it, inserted] =
        index_of.emplace(a.object.Key(), static_cast<int>(inst.sizes.size()));
    if (inserted) {
      if (inst.sizes.size() >=
          static_cast<size_t>(kMaxOfflineOptObjects)) {
        return Status::InvalidArgument(
            "offline optimum limited to " +
            std::to_string(kMaxOfflineOptObjects) + " distinct objects");
      }
      inst.sizes.push_back(a.size_bytes);
      inst.fetch_costs.push_back(a.fetch_cost);
    }
    inst.object_of_access.push_back(it->second);
  }
  return inst;
}

/// Total size of the objects in `mask`.
uint64_t MaskSize(const Instance& inst, uint32_t mask) {
  uint64_t total = 0;
  for (size_t i = 0; i < inst.sizes.size(); ++i) {
    if (mask & (1u << i)) total += inst.sizes[i];
  }
  return total;
}

}  // namespace

Result<double> OfflineOptimalCost(const std::vector<Access>& accesses,
                                  uint64_t capacity_bytes) {
  if (accesses.empty()) return 0.0;
  BYC_ASSIGN_OR_RETURN(Instance inst, BuildInstance(accesses));
  const int n = static_cast<int>(inst.sizes.size());
  const uint32_t num_masks = 1u << n;

  // Precompute feasibility; dp[mask] = min cost with cache contents
  // `mask` after the accesses processed so far.
  std::vector<uint64_t> mask_size(num_masks);
  for (uint32_t mask = 0; mask < num_masks; ++mask) {
    mask_size[mask] = MaskSize(inst, mask);
  }
  std::vector<double> dp(num_masks, kInf);
  std::vector<double> ndp(num_masks);
  dp[0] = 0;

  for (size_t t = 0; t < accesses.size(); ++t) {
    const int obj = inst.object_of_access[t];
    const uint32_t bit = 1u << obj;
    const double bypass = accesses[t].bypass_cost;
    const double fetch = inst.fetch_costs[static_cast<size_t>(obj)];
    std::fill(ndp.begin(), ndp.end(), kInf);

    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      double base = dp[mask];
      if (base == kInf) continue;
      if (mask & bit) {
        // Served in cache for free.
        ndp[mask] = std::min(ndp[mask], base);
        continue;
      }
      // Option 1: bypass, cache unchanged.
      ndp[mask] = std::min(ndp[mask], base + bypass);
      // Option 2: load the object now, evicting any subset (an optimal
      // schedule never loads other objects here — they would be loaded
      // right before their own next access instead).
      double loaded = base + fetch;
      uint32_t survivors = mask;
      for (;;) {
        uint32_t next_mask = survivors | bit;
        if (mask_size[next_mask] <= capacity_bytes) {
          ndp[next_mask] = std::min(ndp[next_mask], loaded);
        }
        if (survivors == 0) break;
        survivors = (survivors - 1) & mask;
      }
    }
    dp.swap(ndp);
  }
  double best = kInf;
  for (double v : dp) best = std::min(best, v);
  return best;
}

Result<double> OfflineStaticOptimalCost(const std::vector<Access>& accesses,
                                        uint64_t capacity_bytes) {
  if (accesses.empty()) return 0.0;
  BYC_ASSIGN_OR_RETURN(Instance inst, BuildInstance(accesses));
  const int n = static_cast<int>(inst.sizes.size());
  const uint32_t num_masks = 1u << n;

  // Aggregate bypass cost per object.
  std::vector<double> total_bypass(static_cast<size_t>(n), 0);
  for (size_t t = 0; t < accesses.size(); ++t) {
    total_bypass[static_cast<size_t>(inst.object_of_access[t])] +=
        accesses[t].bypass_cost;
  }

  double best = kInf;
  for (uint32_t mask = 0; mask < num_masks; ++mask) {
    if (MaskSize(inst, mask) > capacity_bytes) continue;
    double cost = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        cost += inst.fetch_costs[static_cast<size_t>(i)];
      } else {
        cost += total_bypass[static_cast<size_t>(i)];
      }
    }
    best = std::min(best, cost);
  }
  return best;
}

}  // namespace byc::core
