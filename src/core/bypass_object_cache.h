#ifndef BYC_CORE_BYPASS_OBJECT_CACHE_H_
#define BYC_CORE_BYPASS_OBJECT_CACHE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "catalog/object_id.h"
#include "common/result.h"
#include "core/policy.h"
#include "persist/codec.h"

namespace byc::core {

/// The bypass-object caching problem (§5.1): a request sequence of whole
/// objects with varying sizes and fetch costs; a request to a resident
/// object is free; otherwise the algorithm either bypasses the request
/// (cost f_i, cache unchanged) or loads the object first (cost f_i,
/// evicting as needed) so future requests are free.
///
/// OnlineBY reduces bypass-yield caching to this problem: it presents an
/// object here each time the object's accumulated yield crosses its size
/// (one "group" of queries whose bypass cost equals the fetch cost).
/// Any α-competitive algorithm A_obj yields a (4α+2)-competitive
/// bypass-yield algorithm (Theorem 5.1).
class BypassObjectCache {
 public:
  /// What one request caused.
  struct RequestOutcome {
    bool loaded = false;
    std::vector<catalog::ObjectId> evictions;
  };

  virtual ~BypassObjectCache() = default;

  virtual std::string_view name() const = 0;

  /// Presents a request for the whole object.
  virtual RequestOutcome OnRequest(const catalog::ObjectId& id,
                                   uint64_t size_bytes, double fetch_cost) = 0;

  virtual bool Contains(const catalog::ObjectId& id) const = 0;

  /// Snapshot of the cache state, sharing the CachePolicy struct so the
  /// OnlineBY/SpaceEffBY wrappers forward it unchanged. metadata_entries
  /// counts per-object state held for non-resident objects (admission
  /// rent, etc.); 0 for algorithms like Landlord that track residents
  /// only.
  virtual PolicyStats stats() const = 0;

  /// Same contract as CachePolicy::SaveState/LoadState: the complete
  /// decision state, canonically encoded; the OnlineBY/SpaceEffBY
  /// wrappers embed their A_obj's blob inside their own.
  virtual void SaveState(std::vector<uint8_t>& out) const;
  virtual Status LoadState(persist::ByteReader& in);
};

}  // namespace byc::core

#endif  // BYC_CORE_BYPASS_OBJECT_CACHE_H_
