#include "core/metrics.h"

namespace byc::core {

double ByteYieldHitRate(const std::vector<QueryStat>& queries,
                        uint64_t size_bytes, double fetch_cost) {
  BYC_CHECK_GT(size_bytes, 0u);
  double size = static_cast<double>(size_bytes);
  double expected_yield = 0;
  for (const QueryStat& q : queries) {
    expected_yield += q.probability * q.yield_bytes;
  }
  return expected_yield * fetch_cost / (size * size);
}

double ByteYieldUtility(const std::vector<QueryStat>& queries,
                        uint64_t size_bytes) {
  BYC_CHECK_GT(size_bytes, 0u);
  double expected_yield = 0;
  for (const QueryStat& q : queries) {
    expected_yield += q.probability * q.yield_bytes;
  }
  return expected_yield / static_cast<double>(size_bytes);
}

}  // namespace byc::core
