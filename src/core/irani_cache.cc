#include "core/irani_cache.h"

#include <algorithm>

#include "common/check.h"
#include "core/policy_state.h"

namespace byc::core {

int IraniSizeClassCache::SizeClassOf(uint64_t size_bytes) {
  BYC_CHECK_GT(size_bytes, 0u);
  int c = 0;
  while (size_bytes > 1) {
    size_bytes >>= 1;
    ++c;
  }
  return c;
}

void IraniSizeClassCache::Mark(const catalog::ObjectId& id) {
  auto it = residents_.find(id);
  BYC_CHECK(it != residents_.end());
  Resident& r = it->second;
  if (r.marked) return;
  r.marked = true;
  SizeClass& sc = classes_[r.size_class];
  sc.unmarked_fifo.erase(r.admit_seq);
  sc.unmarked_bytes -= r.size_bytes;
}

void IraniSizeClassCache::UnmarkAll() {
  ++phase_count_;
  for (auto& [id, r] : residents_) {
    if (!r.marked) continue;
    r.marked = false;
    SizeClass& sc = classes_[r.size_class];
    sc.unmarked_fifo.emplace(r.admit_seq, id);
    sc.unmarked_bytes += r.size_bytes;
  }
}

void IraniSizeClassCache::MakeSpace(uint64_t needed,
                                    std::vector<catalog::ObjectId>& out) {
  while (store_.free_bytes() < needed) {
    // Pick the class holding the most unmarked bytes.
    SizeClass* best = nullptr;
    for (auto& [cls, sc] : classes_) {
      if (sc.unmarked_bytes == 0) continue;
      if (best == nullptr || sc.unmarked_bytes > best->unmarked_bytes) {
        best = &sc;
      }
    }
    if (best == nullptr) {
      // Every resident is marked: the phase is over.
      BYC_CHECK(!residents_.empty());
      UnmarkAll();
      continue;
    }
    auto oldest = best->unmarked_fifo.begin();
    catalog::ObjectId victim = oldest->second;
    const Resident& r = residents_.at(victim);
    best->unmarked_bytes -= r.size_bytes;
    best->unmarked_fifo.erase(oldest);
    residents_.erase(victim);
    BYC_CHECK(store_.Erase(victim).ok());
    rent_paid_.erase(victim.Key());
    out.push_back(victim);
  }
}

void IraniSizeClassCache::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
  persist::AppendU64(out, next_seq_);
  persist::AppendU64(out, phase_count_);
  state::SaveStore(out, store_);
  // Residents in sorted-key order; classes_ is derivable (rebuilt from
  // the unmarked residents on load), so it is not serialized.
  std::vector<std::pair<catalog::ObjectId, Resident>> residents(
      residents_.begin(), residents_.end());
  std::sort(residents.begin(), residents.end(),
            [](const auto& a, const auto& b) {
              return a.first.Key() < b.first.Key();
            });
  persist::AppendU64(out, residents.size());
  for (const auto& [id, r] : residents) {
    state::SaveObjectId(out, id);
    persist::AppendI32(out, r.size_class);
    persist::AppendU64(out, r.size_bytes);
    persist::AppendU64(out, r.admit_seq);
    persist::AppendU8(out, r.marked ? 1 : 0);
  }
  state::SaveF64Map(out, rent_paid_);
}

Status IraniSizeClassCache::LoadState(persist::ByteReader& in) {
  BYC_RETURN_IF_ERROR(state::LoadHeader(in));
  BYC_ASSIGN_OR_RETURN(next_seq_, in.ReadU64());
  BYC_ASSIGN_OR_RETURN(phase_count_, in.ReadU64());
  BYC_RETURN_IF_ERROR(state::LoadStore(in, store_));
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  residents_.clear();
  classes_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(catalog::ObjectId id, state::LoadObjectId(in));
    Resident r;
    BYC_ASSIGN_OR_RETURN(r.size_class, in.ReadI32());
    BYC_ASSIGN_OR_RETURN(r.size_bytes, in.ReadU64());
    BYC_ASSIGN_OR_RETURN(r.admit_seq, in.ReadU64());
    BYC_ASSIGN_OR_RETURN(uint8_t marked, in.ReadU8());
    r.marked = marked != 0;
    if (!residents_.emplace(id, r).second) {
      return Status::ParseError("Irani state: duplicate resident");
    }
    if (!r.marked) {
      SizeClass& sc = classes_[r.size_class];
      sc.unmarked_fifo.emplace(r.admit_seq, id);
      sc.unmarked_bytes += r.size_bytes;
    }
  }
  return state::LoadF64Map(in, rent_paid_);
}

BypassObjectCache::RequestOutcome IraniSizeClassCache::OnRequest(
    const catalog::ObjectId& id, uint64_t size_bytes, double fetch_cost) {
  RequestOutcome outcome;
  if (store_.Contains(id)) {
    Mark(id);
    return outcome;
  }
  if (!store_.Fits(size_bytes)) {
    return outcome;
  }
  double& rent = rent_paid_[id.Key()];
  if (rent < fetch_cost) {
    rent += fetch_cost;  // bypassed request; rent accrues
    return outcome;
  }
  rent = 0;
  MakeSpace(size_bytes, outcome.evictions);
  Resident r;
  r.size_class = SizeClassOf(size_bytes);
  r.size_bytes = size_bytes;
  r.admit_seq = next_seq_++;
  r.marked = true;  // a freshly requested object is marked for this phase
  residents_.emplace(id, r);
  BYC_CHECK(store_.Insert(id, size_bytes, 0).ok());
  outcome.loaded = true;
  return outcome;
}

}  // namespace byc::core
