#include "core/irani_cache.h"

#include "common/check.h"

namespace byc::core {

int IraniSizeClassCache::SizeClassOf(uint64_t size_bytes) {
  BYC_CHECK_GT(size_bytes, 0u);
  int c = 0;
  while (size_bytes > 1) {
    size_bytes >>= 1;
    ++c;
  }
  return c;
}

void IraniSizeClassCache::Mark(const catalog::ObjectId& id) {
  auto it = residents_.find(id);
  BYC_CHECK(it != residents_.end());
  Resident& r = it->second;
  if (r.marked) return;
  r.marked = true;
  SizeClass& sc = classes_[r.size_class];
  sc.unmarked_fifo.erase(r.admit_seq);
  sc.unmarked_bytes -= r.size_bytes;
}

void IraniSizeClassCache::UnmarkAll() {
  ++phase_count_;
  for (auto& [id, r] : residents_) {
    if (!r.marked) continue;
    r.marked = false;
    SizeClass& sc = classes_[r.size_class];
    sc.unmarked_fifo.emplace(r.admit_seq, id);
    sc.unmarked_bytes += r.size_bytes;
  }
}

void IraniSizeClassCache::MakeSpace(uint64_t needed,
                                    std::vector<catalog::ObjectId>& out) {
  while (store_.free_bytes() < needed) {
    // Pick the class holding the most unmarked bytes.
    SizeClass* best = nullptr;
    for (auto& [cls, sc] : classes_) {
      if (sc.unmarked_bytes == 0) continue;
      if (best == nullptr || sc.unmarked_bytes > best->unmarked_bytes) {
        best = &sc;
      }
    }
    if (best == nullptr) {
      // Every resident is marked: the phase is over.
      BYC_CHECK(!residents_.empty());
      UnmarkAll();
      continue;
    }
    auto oldest = best->unmarked_fifo.begin();
    catalog::ObjectId victim = oldest->second;
    const Resident& r = residents_.at(victim);
    best->unmarked_bytes -= r.size_bytes;
    best->unmarked_fifo.erase(oldest);
    residents_.erase(victim);
    BYC_CHECK(store_.Erase(victim).ok());
    rent_paid_.erase(victim.Key());
    out.push_back(victim);
  }
}

BypassObjectCache::RequestOutcome IraniSizeClassCache::OnRequest(
    const catalog::ObjectId& id, uint64_t size_bytes, double fetch_cost) {
  RequestOutcome outcome;
  if (store_.Contains(id)) {
    Mark(id);
    return outcome;
  }
  if (!store_.Fits(size_bytes)) {
    return outcome;
  }
  double& rent = rent_paid_[id.Key()];
  if (rent < fetch_cost) {
    rent += fetch_cost;  // bypassed request; rent accrues
    return outcome;
  }
  rent = 0;
  MakeSpace(size_bytes, outcome.evictions);
  Resident r;
  r.size_class = SizeClassOf(size_bytes);
  r.size_bytes = size_bytes;
  r.admit_seq = next_seq_++;
  r.marked = true;  // a freshly requested object is marked for this phase
  residents_.emplace(id, r);
  BYC_CHECK(store_.Insert(id, size_bytes, 0).ok());
  outcome.loaded = true;
  return outcome;
}

}  // namespace byc::core
