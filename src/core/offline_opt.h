#ifndef BYC_CORE_OFFLINE_OPT_H_
#define BYC_CORE_OFFLINE_OPT_H_

#include <vector>

#include "common/result.h"
#include "core/access.h"

namespace byc::core {

/// Exact offline optimum for the bypass-yield caching problem (the
/// OPT_yield of §5.2): the minimum total WAN cost of servicing an access
/// sequence with full knowledge of the future.
///
/// Computed by dynamic programming over cache states (subsets of the
/// distinct objects that fit in the capacity). Uses the exchange
/// argument that an optimal schedule only loads an object immediately
/// before serving an access to it (evictions are free and loading
/// earlier never helps), giving O(3^n) work per access over n distinct
/// objects. Exponential: intended for instances with at most
/// `kMaxObjects` distinct objects — theory tests and the
/// ext_offline_optimal bench, not production use.
///
/// Returns InvalidArgument when the sequence touches more than
/// kMaxObjects distinct objects.
inline constexpr int kMaxOfflineOptObjects = 14;

Result<double> OfflineOptimalCost(const std::vector<Access>& accesses,
                                  uint64_t capacity_bytes);

/// The offline *static* optimum: the best single cache state held for
/// the whole sequence (load its contents up front, never change). This
/// is the quantity the paper's "optimal-static caching" baseline
/// approximates greedily; exact here by subset enumeration (same object
/// limit as above).
Result<double> OfflineStaticOptimalCost(const std::vector<Access>& accesses,
                                        uint64_t capacity_bytes);

}  // namespace byc::core

#endif  // BYC_CORE_OFFLINE_OPT_H_
