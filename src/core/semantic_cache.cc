#include "core/semantic_cache.h"

#include <algorithm>

#include "common/check.h"

namespace byc::core {

namespace {

/// True iff sorted `needle` is a subset of sorted `haystack`.
bool IsSubset(const std::vector<int64_t>& needle,
              const std::vector<int64_t>& haystack) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

}  // namespace

void SemanticCache::EvictTo(uint64_t needed) {
  while (!entries_.empty() &&
         options_.capacity_bytes - used_bytes_ < needed) {
    auto last = std::prev(entries_.end());
    auto& bucket = by_signature_[last->footprint.schema_signature];
    bucket.erase(std::find(bucket.begin(), bucket.end(), last));
    if (bucket.empty()) by_signature_.erase(last->footprint.schema_signature);
    used_bytes_ -= last->size_bytes;
    entries_.erase(last);
  }
}

bool SemanticCache::OnQuery(const QueryFootprint& query) {
  ++stats_.queries;
  BYC_CHECK(std::is_sorted(query.cells.begin(), query.cells.end()));

  auto bucket_it = by_signature_.find(query.schema_signature);
  if (bucket_it != by_signature_.end()) {
    for (auto entry_it : bucket_it->second) {
      if (IsSubset(query.cells, entry_it->footprint.cells)) {
        // Containment hit: answer from the stored result; refresh LRU.
        entries_.splice(entries_.begin(), entries_, entry_it);
        ++stats_.hits;
        stats_.saved_bytes += query.result_bytes;
        return true;
      }
    }
  }

  // Miss: the result ships from the servers and is stored as it passes.
  stats_.wan_cost += query.result_bytes;
  uint64_t size = static_cast<uint64_t>(query.result_bytes);
  if (size > 0 && size <= options_.capacity_bytes) {
    EvictTo(size);
    entries_.push_front(Entry{query, size});
    used_bytes_ += size;
    by_signature_[query.schema_signature].push_back(entries_.begin());
  }
  return false;
}

}  // namespace byc::core
