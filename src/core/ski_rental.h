#ifndef BYC_CORE_SKI_RENTAL_H_
#define BYC_CORE_SKI_RENTAL_H_

#include "common/check.h"

namespace byc::core {

/// The classical on-line ski-rental (rent-to-buy) primitive (§5.1): rent
/// as long as the total paid in rent is below the purchase cost, then buy.
/// This achieves cost at most twice the offline optimum regardless of the
/// future. OnlineBY runs one instance per object: bypassing a query is
/// renting (cost = the query's yield-scaled bypass cost) and loading the
/// object is buying (cost = f_i).
class SkiRental {
 public:
  /// Precondition: buy_cost > 0.
  explicit SkiRental(double buy_cost) : buy_cost_(buy_cost) {
    BYC_CHECK_GT(buy_cost, 0);
  }

  /// Accumulates one rent payment. Returns true when cumulative rent has
  /// matched or exceeded the buy cost — the signal to buy before the next
  /// trip.
  bool PayRent(double rent) {
    BYC_CHECK_GE(rent, 0);
    paid_ += rent;
    return ShouldBuy();
  }

  bool ShouldBuy() const { return paid_ >= buy_cost_; }

  double paid() const { return paid_; }
  double buy_cost() const { return buy_cost_; }

  /// Starts a fresh rental period (e.g. after the bought object was
  /// evicted and must be re-earned).
  void Reset() { paid_ = 0; }

 private:
  double buy_cost_;
  double paid_ = 0;
};

}  // namespace byc::core

#endif  // BYC_CORE_SKI_RENTAL_H_
