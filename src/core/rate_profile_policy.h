#ifndef BYC_CORE_RATE_PROFILE_POLICY_H_
#define BYC_CORE_RATE_PROFILE_POLICY_H_

#include <unordered_map>

#include "cache/cache_store.h"
#include "core/policy.h"
#include "core/query_profile.h"

namespace byc::core {

/// The paper's workload-driven Rate-Profile algorithm (§4).
///
/// Cached objects carry a rate profile (Eq. 3)
///
///   RP_i = sum_j y_ij / ((t - t_i) * s_i)
///
/// — the measured rate of network savings per byte of cache over the
/// object's cache lifetime. Outside objects carry query profiles divided
/// into episodes, distilled to the load-adjusted rate LAR (Eqs. 4-6) —
/// the expected savings rate were the object loaded now, net of the load
/// penalty.
///
/// On an access to an uncached object, the algorithm loads it when enough
/// cached objects with RP below the object's LAR can be evicted to make
/// space; otherwise the query is bypassed. Cached objects do not pay the
/// (sunk) load cost in their RP, keeping eviction conservative so objects
/// stay long enough to recover the load investment.
class RateProfilePolicy : public CachePolicy {
 public:
  struct Options {
    uint64_t capacity_bytes = 0;
    EpisodeParams episode;
    /// Metadata cap: profiles of long-idle objects are pruned once the
    /// map exceeds this count (§4: "pruning limits the amount of
    /// metadata").
    size_t max_profiles = 65536;
    /// Tuning for very small caches (§6.3: the algorithm "consistently
    /// exchanges objects ... often evicting objects before the load cost
    /// is recovered. We expect that this artifact can be removed by
    /// tuning the algorithm"): when set, a cached object is not eligible
    /// for eviction until its realized savings have repaid its fetch
    /// cost, damping the exchange churn. Off by default (paper-faithful
    /// §4 behaviour).
    bool protect_unrecovered_loads = false;
  };

  explicit RateProfilePolicy(const Options& options);

  std::string_view name() const override { return "Rate-Profile"; }
  Decision OnAccess(const Access& access) override;
  bool Contains(const catalog::ObjectId& id) const override {
    return store_.Contains(id);
  }
  PolicyStats stats() const override {
    return {store_.used_bytes(), store_.capacity_bytes(), profiles_.size(),
            store_.num_objects()};
  }

  /// RP_i of a cached object at the current time; tests use this to check
  /// Eq. 3 directly. Precondition: Contains(id).
  double RateProfileOf(const catalog::ObjectId& id) const;

  /// LAR of an uncached object's profile (0 profile -> load penalty
  /// only). Exposed for tests and the ablation benches.
  double LoadAdjustedRateOf(const catalog::ObjectId& id, uint64_t size_bytes,
                            double fetch_cost) const;

  size_t num_profiles() const { return profiles_.size(); }

  void SaveState(std::vector<uint8_t>& out) const override;
  Status LoadState(persist::ByteReader& in) override;

 private:
  struct CachedState {
    double yield_sum = 0;
    uint64_t load_time = 0;
    double fetch_cost = 0;  // the (sunk) load investment
  };

  double RateProfile(const CachedState& state, uint64_t size_bytes) const;
  ObjectProfile& ProfileFor(const Access& access);
  void PruneProfiles();

  Options options_;
  uint64_t now_ = 0;
  cache::CacheStore store_;
  std::unordered_map<catalog::ObjectId, CachedState, catalog::ObjectIdHash>
      cached_;
  std::unordered_map<catalog::ObjectId, ObjectProfile, catalog::ObjectIdHash>
      profiles_;
};

}  // namespace byc::core

#endif  // BYC_CORE_RATE_PROFILE_POLICY_H_
