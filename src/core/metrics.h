#ifndef BYC_CORE_METRICS_H_
#define BYC_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace byc::core {

/// One query's contribution to an object's access profile: probability of
/// occurrence and yield in bytes.
struct QueryStat {
  double probability = 0;
  double yield_bytes = 0;
};

/// Byte-yield hit rate (Eq. 1):
///
///   BYHR_i = sum_j p_ij * y_ij * f_i / s_i^2
///
/// the rate of network-bandwidth reduction per byte of cache delivered by
/// caching object i, composed of the yield potential (sum_j p_ij y_ij /
/// s_i) and the per-byte refetch penalty (f_i / s_i).
double ByteYieldHitRate(const std::vector<QueryStat>& queries,
                        uint64_t size_bytes, double fetch_cost);

/// Byte-yield utility (Eq. 2): BYU_i = sum_j p_ij * y_ij / s_i — the
/// specialization of BYHR for proportional fetch cost f_i = c * s_i,
/// dropping the constant factor. BYU degenerates to hit rate in the page
/// model (uniform sizes, yield == size) and BYHR to GDSP's utility in the
/// object model (yield == size).
double ByteYieldUtility(const std::vector<QueryStat>& queries,
                        uint64_t size_bytes);

}  // namespace byc::core

#endif  // BYC_CORE_METRICS_H_
