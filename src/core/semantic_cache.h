#ifndef BYC_CORE_SEMANTIC_CACHE_H_
#define BYC_CORE_SEMANTIC_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace byc::core {

/// Semantic (query-result) cache, built for the paper's §6.1 study of
/// what class of objects to cache. It reuses a previous query's stored
/// result when the new query is *contained* in it: identical query schema
/// (signature) and a celestial-object footprint that is a subset of the
/// stored footprint.
///
/// The paper finds this model poorly suited to astronomy workloads —
/// queries rarely repeat or refine one another ("astronomy workloads do
/// not exhibit query reuse and query containment"); the benches confirm
/// the near-zero hit rate on the synthetic traces.
///
/// Note semantic caching lies outside the bypass-yield framework: results
/// are stored as they ship (no extra WAN cost to populate), and a miss
/// always ships the result, so WAN cost = bytes of missed results.
class SemanticCache {
 public:
  struct Options {
    uint64_t capacity_bytes = 0;
  };

  struct QueryFootprint {
    /// Hash of the query's schema shape (tables, projected columns,
    /// predicate columns/operators) — candidate results must match it.
    uint64_t schema_signature = 0;
    /// Sorted, deduplicated identifiers of the celestial objects /
    /// sky cells the query touches.
    std::vector<int64_t> cells;
    /// Result size in bytes.
    double result_bytes = 0;
  };

  struct Stats {
    uint64_t queries = 0;
    uint64_t hits = 0;
    double wan_cost = 0;    // bytes shipped for misses
    double saved_bytes = 0; // bytes served out of cached results
  };

  explicit SemanticCache(const Options& options) : options_(options) {}

  /// Processes the next query; returns true on a containment hit.
  /// Misses store the shipped result, evicting least-recently-used
  /// entries to respect capacity (results larger than the cache are not
  /// stored).
  bool OnQuery(const QueryFootprint& query);

  const Stats& stats() const { return stats_; }
  uint64_t used_bytes() const { return used_bytes_; }
  size_t num_entries() const { return entries_.size(); }

 private:
  struct Entry {
    QueryFootprint footprint;
    uint64_t size_bytes = 0;
  };

  void EvictTo(uint64_t needed);

  Options options_;
  Stats stats_;
  uint64_t used_bytes_ = 0;
  /// LRU list, most recent at the front; the index maps signatures to
  /// entries for candidate lookup.
  std::list<Entry> entries_;
  std::unordered_map<uint64_t, std::vector<std::list<Entry>::iterator>>
      by_signature_;
};

}  // namespace byc::core

#endif  // BYC_CORE_SEMANTIC_CACHE_H_
