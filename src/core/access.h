#ifndef BYC_CORE_ACCESS_H_
#define BYC_CORE_ACCESS_H_

#include <cstdint>

#include "catalog/object_id.h"

namespace byc::core {

/// One object access: the currency of the bypass-yield model. A SQL query
/// referencing several objects is decomposed (by the yield estimator +
/// mediator) into one Access per object, each carrying that object's
/// share of the query's result bytes. This matches OnlineBY's model in
/// which "each query q_j refers to a single object o_i and yields a query
/// result of size y_{i,j}" (§5.2).
struct Access {
  catalog::ObjectId object;
  /// y_{i,j}: result bytes this access ships if bypassed, and saves if
  /// served from cache.
  double yield_bytes = 0;
  /// s_i: bytes of cache space the object occupies.
  uint64_t size_bytes = 0;
  /// f_i: WAN cost of loading the object into the cache. Equals s_i on
  /// uniform networks (cost-per-byte 1); on heterogeneous federations it
  /// is weighted by the owning site's link cost, which is what makes
  /// BYHR differ from BYU.
  double fetch_cost = 0;
  /// WAN cost of bypassing this access: yield_bytes weighted by the
  /// owning site's link cost (== yield_bytes on uniform networks). The
  /// algorithms measure savings in this currency so that expensive links
  /// are preferentially relieved.
  double bypass_cost = 0;
};

}  // namespace byc::core

#endif  // BYC_CORE_ACCESS_H_
