#include "core/policy_state.h"

#include <algorithm>

#include "core/bypass_object_cache.h"
#include "core/policy.h"

namespace byc::core::state {

void SaveHeader(std::vector<uint8_t>& out) {
  persist::AppendU8(out, kPolicyStateVersion);
}

Status LoadHeader(persist::ByteReader& in) {
  BYC_ASSIGN_OR_RETURN(uint8_t version, in.ReadU8());
  if (version != kPolicyStateVersion) {
    return Status::ParseError("policy state: unsupported version " +
                              std::to_string(version));
  }
  return Status::OK();
}

void SaveObjectId(std::vector<uint8_t>& out, const catalog::ObjectId& id) {
  persist::AppendI32(out, id.table);
  persist::AppendI32(out, id.column);
}

Result<catalog::ObjectId> LoadObjectId(persist::ByteReader& in) {
  catalog::ObjectId id;
  BYC_ASSIGN_OR_RETURN(id.table, in.ReadI32());
  BYC_ASSIGN_OR_RETURN(id.column, in.ReadI32());
  return id;
}

void SaveStore(std::vector<uint8_t>& out, const cache::CacheStore& store) {
  persist::AppendU64(out, store.capacity_bytes());
  auto entries = store.Snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.Key() < b.first.Key();
            });
  persist::AppendU64(out, entries.size());
  for (const auto& [id, entry] : entries) {
    SaveObjectId(out, id);
    persist::AppendU64(out, entry.size_bytes);
    persist::AppendU64(out, entry.load_time);
  }
}

Status LoadStore(persist::ByteReader& in, cache::CacheStore& store) {
  BYC_ASSIGN_OR_RETURN(uint64_t capacity, in.ReadU64());
  if (capacity != store.capacity_bytes()) {
    return Status::ParseError(
        "policy state: snapshot capacity " + std::to_string(capacity) +
        " != configured capacity " +
        std::to_string(store.capacity_bytes()));
  }
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  store.Clear();
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(catalog::ObjectId id, LoadObjectId(in));
    BYC_ASSIGN_OR_RETURN(uint64_t size_bytes, in.ReadU64());
    BYC_ASSIGN_OR_RETURN(uint64_t load_time, in.ReadU64());
    Status inserted = store.Insert(id, size_bytes, load_time);
    if (!inserted.ok()) {
      return Status::ParseError("policy state: resident set invalid: " +
                                inserted.ToString());
    }
  }
  return Status::OK();
}

void SaveHeap(std::vector<uint8_t>& out, const ObjectHeap& heap) {
  persist::AppendU64(out, heap.size());
  heap.ForEach([&](const catalog::ObjectId& id, double priority) {
    SaveObjectId(out, id);
    persist::AppendF64(out, priority);
  });
}

Status LoadHeap(persist::ByteReader& in, ObjectHeap& heap) {
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  heap.Clear();
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(catalog::ObjectId id, LoadObjectId(in));
    BYC_ASSIGN_OR_RETURN(double priority, in.ReadF64());
    if (heap.Contains(id)) {
      return Status::ParseError("policy state: duplicate heap key");
    }
    // Entries were written in valid heap-array order, so each insert's
    // sift-up is a no-op and the array is reproduced exactly.
    heap.Insert(id, priority);
  }
  return Status::OK();
}

namespace {

template <typename V>
std::vector<std::pair<uint64_t, V>> SortedByKey(
    const std::unordered_map<uint64_t, V>& map) {
  std::vector<std::pair<uint64_t, V>> items(map.begin(), map.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace

void SaveU64Map(std::vector<uint8_t>& out,
                const std::unordered_map<uint64_t, uint64_t>& map) {
  persist::AppendU64(out, map.size());
  for (const auto& [key, value] : SortedByKey(map)) {
    persist::AppendU64(out, key);
    persist::AppendU64(out, value);
  }
}

Status LoadU64Map(persist::ByteReader& in,
                  std::unordered_map<uint64_t, uint64_t>& map) {
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  map.clear();
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(uint64_t key, in.ReadU64());
    BYC_ASSIGN_OR_RETURN(uint64_t value, in.ReadU64());
    map[key] = value;
  }
  return Status::OK();
}

void SaveF64Map(std::vector<uint8_t>& out,
                const std::unordered_map<uint64_t, double>& map) {
  persist::AppendU64(out, map.size());
  for (const auto& [key, value] : SortedByKey(map)) {
    persist::AppendU64(out, key);
    persist::AppendF64(out, value);
  }
}

Status LoadF64Map(persist::ByteReader& in,
                  std::unordered_map<uint64_t, double>& map) {
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  map.clear();
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(uint64_t key, in.ReadU64());
    BYC_ASSIGN_OR_RETURN(double value, in.ReadF64());
    map[key] = value;
  }
  return Status::OK();
}

void SaveU64VecMap(
    std::vector<uint8_t>& out,
    const std::unordered_map<uint64_t, std::vector<uint64_t>>& map) {
  persist::AppendU64(out, map.size());
  for (const auto& [key, values] : SortedByKey(map)) {
    persist::AppendU64(out, key);
    persist::AppendU64(out, values.size());
    for (uint64_t v : values) persist::AppendU64(out, v);
  }
}

Status LoadU64VecMap(
    persist::ByteReader& in,
    std::unordered_map<uint64_t, std::vector<uint64_t>>& map) {
  BYC_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  map.clear();
  for (uint64_t i = 0; i < count; ++i) {
    BYC_ASSIGN_OR_RETURN(uint64_t key, in.ReadU64());
    BYC_ASSIGN_OR_RETURN(uint64_t n, in.ReadU64());
    std::vector<uint64_t>& values = map[key];
    for (uint64_t j = 0; j < n; ++j) {
      BYC_ASSIGN_OR_RETURN(uint64_t v, in.ReadU64());
      values.push_back(v);
    }
  }
  return Status::OK();
}

}  // namespace byc::core::state

namespace byc::core {

// Defaults for stateless policies (NoCache): a bare version header, so
// every policy kind round-trips through the same snapshot machinery.
void CachePolicy::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
}

Status CachePolicy::LoadState(persist::ByteReader& in) {
  return state::LoadHeader(in);
}

void BypassObjectCache::SaveState(std::vector<uint8_t>& out) const {
  state::SaveHeader(out);
}

Status BypassObjectCache::LoadState(persist::ByteReader& in) {
  return state::LoadHeader(in);
}

}  // namespace byc::core
