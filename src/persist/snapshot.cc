#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace byc::persist {

void SnapshotWriter::AddSection(uint32_t id,
                                const std::vector<uint8_t>& payload) {
  AppendU32(body_, id);
  AppendU32(body_, static_cast<uint32_t>(payload.size()));
  body_.insert(body_.end(), payload.begin(), payload.end());
  AppendU32(body_, Crc32(payload));
  ++count_;
}

std::vector<uint8_t> SnapshotWriter::Finish() const {
  std::vector<uint8_t> out;
  out.reserve(12 + body_.size() + 8);
  AppendU32(out, kSnapshotMagic);
  AppendU32(out, kSnapshotVersion);
  AppendU32(out, count_);
  out.insert(out.end(), body_.begin(), body_.end());
  AppendU32(out, Crc32(out));
  AppendU32(out, kSnapshotEndMarker);
  return out;
}

Result<std::vector<SnapshotSection>> ParseSnapshot(const uint8_t* data,
                                                   size_t size) {
  ByteReader r(data, size);
  BYC_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kSnapshotMagic) {
    return Status::ParseError("snapshot: bad magic");
  }
  BYC_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kSnapshotVersion) {
    return Status::ParseError("snapshot: unsupported version " +
                              std::to_string(version));
  }
  BYC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  // A section costs at least 12 bytes (id + len + crc); a count that
  // promises more than the file can hold is rejected before any reserve.
  if (r.remaining() < 8 ||
      static_cast<uint64_t>(count) * 12 > r.remaining() - 8) {
    return Status::ParseError("snapshot: section count " +
                              std::to_string(count) +
                              " cannot fit in a " + std::to_string(size) +
                              "-byte file");
  }
  std::vector<SnapshotSection> sections;
  sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SnapshotSection section;
    BYC_ASSIGN_OR_RETURN(section.id, r.ReadU32());
    BYC_ASSIGN_OR_RETURN(uint32_t len, r.ReadU32());
    if (r.remaining() < 8 || static_cast<uint64_t>(len) > r.remaining() - 8) {
      // The length must leave room for this section's CRC and the footer:
      // a lying length never reads past the buffer or eats the footer.
      return Status::ParseError("snapshot: section " + std::to_string(i) +
                                " length " + std::to_string(len) +
                                " overruns the file");
    }
    BYC_ASSIGN_OR_RETURN(std::string_view view, r.ReadView(len));
    BYC_ASSIGN_OR_RETURN(uint32_t crc, r.ReadU32());
    const uint8_t* bytes = reinterpret_cast<const uint8_t*>(view.data());
    if (Crc32(bytes, view.size()) != crc) {
      return Status::ParseError("snapshot: section " + std::to_string(i) +
                                " (id " + std::to_string(section.id) +
                                ") failed its CRC check");
    }
    section.payload.assign(bytes, bytes + view.size());
    sections.push_back(std::move(section));
  }
  BYC_ASSIGN_OR_RETURN(uint32_t file_crc, r.ReadU32());
  // Everything before the CRC field itself: the field starts 4 bytes
  // before the current cursor (remaining() is the end-marker's 4 bytes).
  if (Crc32(data, size - r.remaining() - 4) != file_crc) {
    return Status::ParseError("snapshot: footer CRC mismatch");
  }
  BYC_ASSIGN_OR_RETURN(uint32_t end, r.ReadU32());
  if (end != kSnapshotEndMarker) {
    return Status::ParseError("snapshot: missing end marker");
  }
  if (r.remaining() != 0) {
    return Status::ParseError("snapshot: trailing bytes after end marker");
  }
  return sections;
}

Result<std::vector<SnapshotSection>> ParseSnapshot(
    const std::vector<uint8_t>& bytes) {
  return ParseSnapshot(bytes.data(), bytes.size());
}

Status WriteFileDurable(const std::string& path,
                        const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IoError("write " + path + ": " + std::strerror(err));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("fsync " + path + ": " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    return Status::IoError("close " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  std::string tmp = path + ".tmp";
  BYC_RETURN_IF_ERROR(WriteFileDurable(tmp, bytes));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(err));
  }
  // Durability of the rename itself: fsync the containing directory.
  // Best-effort — a failure here only weakens durability, not atomicity.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IoError("read " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace byc::persist
