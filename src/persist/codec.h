#ifndef BYC_PERSIST_CODEC_H_
#define BYC_PERSIST_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace byc::persist {

/// Scalar byte codec shared by the wire protocol (service/wire.h) and the
/// snapshot file format (persist/snapshot.h): fixed-width little-endian
/// integers; doubles travel as their IEEE-754 bit pattern, so a value
/// round-trips byte-exactly — the property both the loopback-equals-
/// simulator guarantee and the warm-restart-equals-uninterrupted
/// guarantee rest on.
///
/// This lives below the service layer on purpose: core policy state
/// serialization (CachePolicy::SaveState) uses the same helpers without
/// dragging sockets into the core dependency graph.

void AppendU8(std::vector<uint8_t>& out, uint8_t v);
void AppendU32(std::vector<uint8_t>& out, uint32_t v);
void AppendU64(std::vector<uint8_t>& out, uint64_t v);
void AppendI32(std::vector<uint8_t>& out, int32_t v);
void AppendF64(std::vector<uint8_t>& out, double v);

/// Sequential bounds-checked reader over a byte range. Every read is a
/// typed Result; running off the end is a ParseError, never UB — the
/// same reader backs both received wire payloads and snapshot sections,
/// so hostile bytes from either source cannot crash the process.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}
  /// Reader over a borrowed byte range (e.g. a frame decoded in place in
  /// a reactor connection's read buffer, or one snapshot section).
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<double> ReadF64();
  /// The next `n` bytes as a borrowed view (no copy).
  Result<std::string_view> ReadView(size_t n);
  /// The rest of the payload as text.
  std::string ReadText();

  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, the zlib polynomial) over a byte range. Guards
/// each snapshot section and the file footer against torn writes and
/// bit rot; table-driven, no external dependency.
uint32_t Crc32(const uint8_t* data, size_t len);
inline uint32_t Crc32(const std::vector<uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

}  // namespace byc::persist

#endif  // BYC_PERSIST_CODEC_H_
