#ifndef BYC_PERSIST_SNAPSHOT_H_
#define BYC_PERSIST_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "persist/codec.h"

namespace byc::persist {

/// Versioned, checksummed snapshot container (little-endian throughout,
/// scalar encoding shared with the wire protocol via persist/codec.h):
///
///   | u32 magic "BYCS" | u32 version | u32 section_count |
///   section x count:  | u32 id | u32 len | len bytes | u32 crc32(bytes) |
///   footer:           | u32 crc32(all preceding bytes) | u32 "SNAP" |
///
/// Section ids are assigned by the producer (see service/mediator_server
/// for the mediator's ids) and opaque to the container. The loader is a
/// typed-Result parser: truncation anywhere, a section length that lies
/// about the remaining bytes, a failed per-section or footer CRC, a
/// missing end marker, or trailing junk each produce a ParseError —
/// never a crash — so a torn or corrupted file degrades to a cold start.
inline constexpr uint32_t kSnapshotMagic = 0x53435942u;      // "BYCS"
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotEndMarker = 0x50414E53u;  // "SNAP"

/// Builds a snapshot file image section by section.
class SnapshotWriter {
 public:
  /// Appends one complete section (id + body + its CRC).
  void AddSection(uint32_t id, const std::vector<uint8_t>& payload);

  size_t section_count() const { return count_; }

  /// Finalizes the image: header + sections + footer CRC + end marker.
  std::vector<uint8_t> Finish() const;

 private:
  std::vector<uint8_t> body_;  // encoded sections, in AddSection order
  uint32_t count_ = 0;
};

/// One decoded section; `payload` owns its bytes (the source buffer may
/// be freed after parsing).
struct SnapshotSection {
  uint32_t id = 0;
  std::vector<uint8_t> payload;
};

/// Validates and decodes a snapshot image. Sections come back in file
/// order; every integrity violation is a typed ParseError.
Result<std::vector<SnapshotSection>> ParseSnapshot(const uint8_t* data,
                                                   size_t size);
Result<std::vector<SnapshotSection>> ParseSnapshot(
    const std::vector<uint8_t>& bytes);

/// Writes `bytes` to `path` durably: write + fsync to `path`.tmp, then
/// rename over `path` and fsync the directory — a crash at any point
/// leaves either the old file or the new one, never a torn mix.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes);

/// Writes + fsyncs `path` directly (no temp/rename). The atomic writer's
/// first half; exposed so fault injection can simulate a crash between
/// the temp write and the rename.
Status WriteFileDurable(const std::string& path,
                        const std::vector<uint8_t>& bytes);

/// Reads a whole file. NotFound when it does not exist; IoError on any
/// other failure.
Result<std::vector<uint8_t>> ReadFile(const std::string& path);

}  // namespace byc::persist

#endif  // BYC_PERSIST_SNAPSHOT_H_
