#include "persist/codec.h"

#include <cstring>

namespace byc::persist {

void AppendU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendI32(std::vector<uint8_t>& out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendF64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

Result<uint8_t> ByteReader::ReadU8() {
  if (size_ - pos_ < 1) return Status::ParseError("payload truncated (u8)");
  return data_[pos_++];
}

Result<uint32_t> ByteReader::ReadU32() {
  if (size_ - pos_ < 4) return Status::ParseError("payload truncated (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (size_ - pos_ < 8) return Status::ParseError("payload truncated (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> ByteReader::ReadI32() {
  BYC_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<double> ByteReader::ReadF64() {
  BYC_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string_view> ByteReader::ReadView(size_t n) {
  if (size_ - pos_ < n) {
    return Status::ParseError("payload truncated (view)");
  }
  std::string_view view(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return view;
}

std::string ByteReader::ReadText() {
  std::string out(reinterpret_cast<const char*>(data_ + pos_), size_ - pos_);
  pos_ = size_;
  return out;
}

namespace {

struct Crc32Table {
  uint32_t t[256];
  constexpr Crc32Table() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

constexpr Crc32Table kCrcTable;

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = kCrcTable.t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace byc::persist
