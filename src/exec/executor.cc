#include "exec/executor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"

namespace byc::exec {

namespace {

bool EvalCmp(double lhs, query::CmpOp op, double rhs) {
  switch (op) {
    case query::CmpOp::kEq:
      return lhs == rhs;
    case query::CmpOp::kNe:
      return lhs != rhs;
    case query::CmpOp::kLt:
      return lhs < rhs;
    case query::CmpOp::kLe:
      return lhs <= rhs;
    case query::CmpOp::kGt:
      return lhs > rhs;
    case query::CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

double OutputRowWidth(const query::ResolvedQuery& query,
                      const std::vector<const TableData*>& slot_data) {
  double width = 0;
  for (const query::ResolvedSelectItem& item : query.select) {
    if (item.aggregate != query::Aggregate::kNone) {
      width += 8.0;
    } else {
      const catalog::Table& t =
          slot_data[static_cast<size_t>(item.column.table_slot)]->table();
      width += t.column(item.column.column).width_bytes();
    }
  }
  return width;
}

}  // namespace

Result<ExecutionResult> Executor::Execute(
    const query::ResolvedQuery& query) const {
  const size_t num_slots = query.tables.size();
  if (num_slots == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  std::vector<const TableData*> slot_data(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    int table_idx = query.tables[slot];
    if (table_idx < 0 ||
        static_cast<size_t>(table_idx) >= tables_.size() ||
        tables_[static_cast<size_t>(table_idx)] == nullptr) {
      return Status::FailedPrecondition(
          "no materialized data for catalog table " +
          std::to_string(table_idx));
    }
    slot_data[slot] = tables_[static_cast<size_t>(table_idx)];
  }

  // Per-slot filter pass: surviving row indices.
  std::vector<std::vector<uint32_t>> surviving(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    const TableData& data = *slot_data[slot];
    std::vector<uint32_t>& rows = surviving[slot];
    for (uint64_t r = 0; r < data.row_count(); ++r) {
      bool pass = true;
      for (const query::ResolvedFilter& f : query.filters) {
        if (static_cast<size_t>(f.column.table_slot) != slot) continue;
        if (!EvalCmp(data.Value(f.column.column, r), f.op, f.value)) {
          pass = false;
          break;
        }
      }
      if (pass) rows.push_back(static_cast<uint32_t>(r));
    }
  }

  // Left-deep join pipeline: tuples hold one row index per joined slot.
  std::vector<size_t> joined_slots = {0};
  std::vector<std::vector<uint32_t>> tuples;
  tuples.reserve(surviving[0].size());
  for (uint32_t r : surviving[0]) tuples.push_back({r});

  auto slot_position = [&](int slot) -> int {
    for (size_t i = 0; i < joined_slots.size(); ++i) {
      if (joined_slots[i] == static_cast<size_t>(slot)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  while (joined_slots.size() < num_slots) {
    // Find a join predicate connecting a new slot to the joined set.
    const query::ResolvedJoin* next_join = nullptr;
    size_t new_slot = 0;
    bool new_on_left = false;
    for (const query::ResolvedJoin& j : query.joins) {
      bool left_in = slot_position(j.left.table_slot) >= 0;
      bool right_in = slot_position(j.right.table_slot) >= 0;
      if (left_in && !right_in) {
        next_join = &j;
        new_slot = static_cast<size_t>(j.right.table_slot);
        new_on_left = false;
        break;
      }
      if (right_in && !left_in) {
        next_join = &j;
        new_slot = static_cast<size_t>(j.left.table_slot);
        new_on_left = true;
        break;
      }
    }

    std::vector<std::vector<uint32_t>> next_tuples;
    if (next_join == nullptr) {
      // No connecting join: cartesian product with the next unjoined
      // slot (legal in the dialect, rare in the workload).
      for (size_t slot = 0; slot < num_slots; ++slot) {
        if (slot_position(static_cast<int>(slot)) < 0) {
          new_slot = slot;
          break;
        }
      }
      uint64_t projected =
          static_cast<uint64_t>(tuples.size()) * surviving[new_slot].size();
      if (projected > kMaxIntermediate) {
        return Status::CapacityExceeded("cartesian product too large");
      }
      for (const auto& tuple : tuples) {
        for (uint32_t r : surviving[new_slot]) {
          auto extended = tuple;
          extended.push_back(r);
          next_tuples.push_back(std::move(extended));
        }
      }
    } else {
      const query::ResolvedColumn& new_col =
          new_on_left ? next_join->left : next_join->right;
      const query::ResolvedColumn& old_col =
          new_on_left ? next_join->right : next_join->left;
      // Build a hash table over the new slot's surviving rows.
      const TableData& new_data = *slot_data[new_slot];
      std::unordered_multimap<double, uint32_t> hash;
      hash.reserve(surviving[new_slot].size());
      for (uint32_t r : surviving[new_slot]) {
        hash.emplace(new_data.Value(new_col.column, r), r);
      }
      // Probe with the joined tuples.
      int old_pos = slot_position(old_col.table_slot);
      BYC_CHECK_GE(old_pos, 0);
      const TableData& old_data =
          *slot_data[static_cast<size_t>(old_col.table_slot)];
      for (const auto& tuple : tuples) {
        double key = old_data.Value(old_col.column,
                                    tuple[static_cast<size_t>(old_pos)]);
        auto [begin, end] = hash.equal_range(key);
        for (auto it = begin; it != end; ++it) {
          if (next_tuples.size() >= kMaxIntermediate) {
            return Status::CapacityExceeded("join result too large");
          }
          auto extended = tuple;
          extended.push_back(it->second);
          next_tuples.push_back(std::move(extended));
        }
      }
    }
    joined_slots.push_back(new_slot);
    tuples.swap(next_tuples);
  }

  // Apply any remaining join predicates among already-joined slots
  // (cycles, e.g. p-s, p-n, s-n).
  for (const query::ResolvedJoin& j : query.joins) {
    int lpos = slot_position(j.left.table_slot);
    int rpos = slot_position(j.right.table_slot);
    BYC_CHECK_GE(lpos, 0);
    BYC_CHECK_GE(rpos, 0);
    const TableData& ldata =
        *slot_data[static_cast<size_t>(j.left.table_slot)];
    const TableData& rdata =
        *slot_data[static_cast<size_t>(j.right.table_slot)];
    std::vector<std::vector<uint32_t>> kept;
    kept.reserve(tuples.size());
    for (auto& tuple : tuples) {
      double lv = ldata.Value(j.left.column, tuple[static_cast<size_t>(lpos)]);
      double rv =
          rdata.Value(j.right.column, tuple[static_cast<size_t>(rpos)]);
      if (lv == rv) kept.push_back(std::move(tuple));
    }
    tuples.swap(kept);
  }

  ExecutionResult result;
  if (query.IsFullyAggregated()) {
    result.result_rows = 1;
    result.result_bytes = OutputRowWidth(query, slot_data);
    for (const query::ResolvedSelectItem& item : query.select) {
      int pos = slot_position(item.column.table_slot);
      BYC_CHECK_GE(pos, 0);
      const TableData& data =
          *slot_data[static_cast<size_t>(item.column.table_slot)];
      double count = static_cast<double>(tuples.size());
      double sum = 0;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const auto& tuple : tuples) {
        double v =
            data.Value(item.column.column, tuple[static_cast<size_t>(pos)]);
        sum += v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      switch (item.aggregate) {
        case query::Aggregate::kCount:
          result.aggregates.push_back(count);
          break;
        case query::Aggregate::kSum:
          result.aggregates.push_back(sum);
          break;
        case query::Aggregate::kAvg:
          result.aggregates.push_back(count == 0 ? 0 : sum / count);
          break;
        case query::Aggregate::kMin:
          result.aggregates.push_back(count == 0 ? 0 : lo);
          break;
        case query::Aggregate::kMax:
          result.aggregates.push_back(count == 0 ? 0 : hi);
          break;
        case query::Aggregate::kNone:
          BYC_CHECK(false);  // IsFullyAggregated excluded this
          break;
      }
    }
  } else {
    result.result_rows = tuples.size();
    result.result_bytes = static_cast<double>(tuples.size()) *
                          OutputRowWidth(query, slot_data);
  }
  return result;
}

}  // namespace byc::exec
