#ifndef BYC_EXEC_EXECUTOR_H_
#define BYC_EXEC_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "exec/table_data.h"
#include "query/resolved.h"

namespace byc::exec {

/// Result of actually executing a query against materialized data.
struct ExecutionResult {
  /// Tuples in the result (1 for fully aggregated queries).
  uint64_t result_rows = 0;
  /// Result size in bytes: rows x output row width — the query's *true*
  /// yield, against which the analytic estimator is validated.
  double result_bytes = 0;
  /// Aggregate values, in SELECT order, when the query is fully
  /// aggregated (empty otherwise).
  std::vector<double> aggregates;
};

/// A miniature query executor over synthesized columnar data: column
/// scans with predicate bitmaps, left-deep in-memory hash joins, and
/// scalar aggregates. The paper's prototype measured yields "by
/// re-executing the traces with the server"; this is that measurement
/// path, at simulation scale.
///
/// The declared filter selectivities of the ResolvedQuery are ignored —
/// predicates are evaluated against the actual values.
class Executor {
 public:
  /// `tables[i]` materializes catalog table index i (nullptr entries are
  /// allowed for tables never queried).
  explicit Executor(std::vector<const TableData*> tables)
      : tables_(std::move(tables)) {}

  /// Executes the query. Errors: a slot's table has no materialized
  /// data, or an intermediate join result exceeds `max_intermediate`.
  Result<ExecutionResult> Execute(const query::ResolvedQuery& query) const;

  /// Cap on intermediate join tuples (guards against accidental
  /// cartesian blow-ups in tests).
  static constexpr uint64_t kMaxIntermediate = 50'000'000;

 private:
  std::vector<const TableData*> tables_;
};

}  // namespace byc::exec

#endif  // BYC_EXEC_EXECUTOR_H_
