#ifndef BYC_EXEC_TABLE_DATA_H_
#define BYC_EXEC_TABLE_DATA_H_

#include <cstdint>
#include <vector>

#include "catalog/table.h"
#include "common/random.h"

namespace byc::exec {

/// In-memory columnar instance of one catalog table. Values are stored
/// as doubles regardless of the declared column type (the query dialect
/// compares numerics only); the declared type still governs storage
/// width for yield accounting.
///
/// Data is synthesized deterministically from the column-distribution
/// models of query/column_stats.h by inverse-CDF sampling, so the
/// executor's measured selectivities statistically agree with the
/// histogram estimator — exactly the property the estimator-validation
/// experiments test.
///
/// Key columns (column 0) hold row identifiers: table rows are keyed
/// 0..row_count-1, and foreign-key columns referencing another table
/// draw uniformly from that table's key range, preserving the FK join
/// semantics of the yield model.
class TableData {
 public:
  /// Materializes `row_count` rows of `table` (the catalog row_count is
  /// usually scaled down for execution; pass the desired count).
  /// `fk_ranges` maps column index -> referenced table's row count for
  /// foreign-key columns; unlisted columns sample their distribution.
  static TableData Synthesize(
      const catalog::Table& table, uint64_t row_count, uint64_t seed,
      const std::vector<std::pair<int, uint64_t>>& fk_ranges = {});

  /// Builds an instance from explicit column vectors (tests and
  /// examples). All columns must have equal, nonzero length and there
  /// must be one per catalog column. `table` must outlive the data.
  static TableData FromColumns(const catalog::Table& table,
                               std::vector<std::vector<double>> columns);

  const catalog::Table& table() const { return *table_; }
  uint64_t row_count() const { return rows_; }

  double Value(int column, uint64_t row) const {
    return columns_[static_cast<size_t>(column)][row];
  }
  const std::vector<double>& Column(int column) const {
    return columns_[static_cast<size_t>(column)];
  }

 private:
  TableData(const catalog::Table* table, uint64_t rows)
      : table_(table), rows_(rows) {}

  const catalog::Table* table_;
  uint64_t rows_;
  std::vector<std::vector<double>> columns_;
};

}  // namespace byc::exec

#endif  // BYC_EXEC_TABLE_DATA_H_
