#include "exec/table_data.h"

#include <algorithm>

#include "common/check.h"
#include "query/column_stats.h"

namespace byc::exec {

TableData TableData::FromColumns(const catalog::Table& table,
                                 std::vector<std::vector<double>> columns) {
  BYC_CHECK_EQ(static_cast<int>(columns.size()), table.num_columns());
  BYC_CHECK(!columns.empty());
  BYC_CHECK(!columns[0].empty());
  for (const auto& column : columns) {
    BYC_CHECK_EQ(column.size(), columns[0].size());
  }
  TableData data(&table, columns[0].size());
  data.columns_ = std::move(columns);
  return data;
}

TableData TableData::Synthesize(
    const catalog::Table& table, uint64_t row_count, uint64_t seed,
    const std::vector<std::pair<int, uint64_t>>& fk_ranges) {
  BYC_CHECK_GT(row_count, 0u);
  TableData data(&table, row_count);
  data.columns_.resize(static_cast<size_t>(table.num_columns()));

  for (int c = 0; c < table.num_columns(); ++c) {
    std::vector<double>& column = data.columns_[static_cast<size_t>(c)];
    column.resize(row_count);
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(c + 1)));

    if (c == 0) {
      // The key column: dense identifiers 0..row_count-1.
      for (uint64_t r = 0; r < row_count; ++r) {
        column[r] = static_cast<double>(r);
      }
      continue;
    }

    auto fk = std::find_if(fk_ranges.begin(), fk_ranges.end(),
                           [&](const auto& p) { return p.first == c; });
    if (fk != fk_ranges.end()) {
      // Foreign key: uniform over the referenced table's key range.
      for (uint64_t r = 0; r < row_count; ++r) {
        column[r] = static_cast<double>(rng.NextUint64(fk->second));
      }
      continue;
    }

    query::ColumnDistribution dist = query::ColumnDistribution::For(table, c);
    for (uint64_t r = 0; r < row_count; ++r) {
      column[r] = dist.Quantile(rng.NextDouble());
    }
  }
  return data;
}

}  // namespace byc::exec
