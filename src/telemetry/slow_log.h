#ifndef BYC_TELEMETRY_SLOW_LOG_H_
#define BYC_TELEMETRY_SLOW_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/telemetry.h"

namespace byc::telemetry {

/// One slow query as the service saw it: identity (trace id + optional
/// global sequence number), the per-stage latency breakdown, the policy
/// decision counts, and the byte flows. The byte fields are the query's
/// ledger delta, so summing them over a complete log (threshold 0)
/// reconciles with the mediator's D_S/D_L/D_C ledger the same way
/// DecisionTracer's running totals do.
struct SlowQueryRecord {
  uint64_t trace_id = 0;
  /// kQueryAt/kQueryBatch queries carry their global sequence number.
  bool has_seq = false;
  uint64_t seq = 0;
  /// Stage timings (see DESIGN.md §10): I/O-thread decode+decompose,
  /// admission-queue wait, summed backend round trips, and the whole
  /// admission-side processing time.
  double decode_us = 0;
  double queue_ms = 0;
  double backend_ms = 0;
  double total_ms = 0;
  /// Decision counts of the query's ledger delta.
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t bypasses = 0;
  uint64_t loads = 0;
  uint64_t evictions = 0;
  uint64_t degraded = 0;
  /// Byte flows of the query's ledger delta (D_C / D_S / D_L / lost).
  double served_cost = 0;
  double bypass_cost = 0;
  double fetch_cost = 0;
  double degraded_cost = 0;
};

/// Serializes one record as a single JSONL line (no trailing newline).
/// Doubles use shortest-round-trip formatting, so the byte fields
/// re-parse to the exact ledger values.
std::string SlowQueryRecordToJson(const SlowQueryRecord& record);

/// Bounded slow-query sink decoupled from the threads that feed it:
/// Record() appends to an in-memory ring and never touches the sink — a
/// dedicated writer thread drains the ring and serializes to JSONL. When
/// the ring is full (the sink cannot keep up), the record is counted in
/// dropped() and discarded; an I/O or admission thread is never blocked
/// by a slow disk. Record() is safe from any thread.
class SlowQueryLog {
 public:
  struct Options {
    /// Records buffered between the producers and the writer thread; a
    /// full ring drops (never blocks).
    size_t ring_capacity = 1024;
    /// JSONL stream, one record per line. Not owned; may be null when
    /// `write_fn` is set.
    std::FILE* sink = nullptr;
    /// Test seam: when set, receives each serialized line (WITHOUT the
    /// trailing newline) instead of `sink`. Called on the writer thread
    /// only.
    std::function<void(const std::string& line)> write_fn;
  };

  explicit SlowQueryLog(Options options);
  /// Drains the ring through the sink, then joins the writer thread.
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Enqueues one record for the writer thread. Takes the ring mutex for
  /// a push/drop only — bounded work, no I/O.
  void Record(const SlowQueryRecord& record);

  /// Blocks until every record accepted so far has been written to the
  /// sink (tests; the destructor implies it).
  void Flush();

  /// Records accepted into the ring / discarded because it was full.
  uint64_t recorded() const;
  uint64_t dropped() const;

 private:
  void WriterLoop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< Wakes the writer.
  std::condition_variable drained_;   ///< Wakes Flush().
  std::deque<SlowQueryRecord> ring_;
  bool stop_ = false;
  bool writing_ = false;  ///< Writer is busy with a drained chunk.
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  std::thread writer_;
};

}  // namespace byc::telemetry

#endif  // BYC_TELEMETRY_SLOW_LOG_H_
