#include "telemetry/trace.h"

#include <algorithm>

#include "common/json_writer.h"

namespace byc::telemetry {

std::string_view TraceActionName(TraceAction action) {
  switch (action) {
    case TraceAction::kServe:
      return "serve";
    case TraceAction::kBypass:
      return "bypass";
    case TraceAction::kLoad:
      return "load";
    case TraceAction::kEvict:
      return "evict";
  }
  return "unknown";
}

std::string TraceEventToJson(const TraceEvent& event) {
  std::string out;
  JsonWriter json(&out, /*pretty=*/false);
  json.BeginObject();
  json.Key("query_seq");
  json.UInt(event.query_seq);
  json.Key("table");
  json.Int(event.object.table);
  json.Key("column");
  json.Int(event.object.column);
  json.Key("action");
  json.String(TraceActionName(event.action));
  json.Key("yield_bytes");
  json.Double(event.yield_bytes);
  json.Key("load_bytes");
  json.Double(event.load_bytes);
  json.Key("utility_score");
  json.Double(event.utility_score);
  json.Key("cache_bytes_after");
  json.UInt(event.cache_bytes_after);
  json.EndObject();
  return out;
}

DecisionTracer::DecisionTracer(const Options& options) : options_(options) {
  ring_.reserve(std::min<size_t>(options_.ring_capacity, 4096));
}

void DecisionTracer::Record(const TraceEvent& event) {
  ++total_recorded_;
  switch (event.action) {
    case TraceAction::kBypass:
      bypass_bytes_ += event.yield_bytes;
      break;
    case TraceAction::kLoad:
      load_bytes_ += event.load_bytes;
      served_bytes_ += event.yield_bytes;
      break;
    case TraceAction::kServe:
      served_bytes_ += event.yield_bytes;
      break;
    case TraceAction::kEvict:
      break;
  }
  if (options_.jsonl != nullptr) {
    std::string line = TraceEventToJson(event);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), options_.jsonl);
  }
  if (options_.ring_capacity == 0) return;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % options_.ring_capacity;
  }
}

std::vector<TraceEvent> DecisionTracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.ring_capacity || next_ == 0) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(next_));
  }
  return out;
}

}  // namespace byc::telemetry
