#include "telemetry/slow_log.h"

#include <utility>
#include <vector>

#include "common/json_writer.h"

namespace byc::telemetry {

std::string SlowQueryRecordToJson(const SlowQueryRecord& record) {
  std::string out;
  JsonWriter json(&out, /*pretty=*/false);
  json.BeginObject();
  json.Key("trace_id");
  json.UInt(record.trace_id);
  json.Key("seq");
  if (record.has_seq) {
    json.UInt(record.seq);
  } else {
    json.Null();
  }
  json.Key("decode_us");
  json.Double(record.decode_us);
  json.Key("queue_ms");
  json.Double(record.queue_ms);
  json.Key("backend_ms");
  json.Double(record.backend_ms);
  json.Key("total_ms");
  json.Double(record.total_ms);
  json.Key("accesses");
  json.UInt(record.accesses);
  json.Key("hits");
  json.UInt(record.hits);
  json.Key("bypasses");
  json.UInt(record.bypasses);
  json.Key("loads");
  json.UInt(record.loads);
  json.Key("evictions");
  json.UInt(record.evictions);
  json.Key("degraded");
  json.UInt(record.degraded);
  json.Key("served_cost");
  json.Double(record.served_cost);
  json.Key("bypass_cost");
  json.Double(record.bypass_cost);
  json.Key("fetch_cost");
  json.Double(record.fetch_cost);
  json.Key("degraded_cost");
  json.Double(record.degraded_cost);
  json.EndObject();
  return out;
}

SlowQueryLog::SlowQueryLog(Options options) : options_(std::move(options)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  writer_ = std::thread([this] { WriterLoop(); });
}

SlowQueryLog::~SlowQueryLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  writer_.join();
}

void SlowQueryLog::Record(const SlowQueryRecord& record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() >= options_.ring_capacity) {
      ++dropped_;
      return;
    }
    ring_.push_back(record);
    ++recorded_;
  }
  cv_.notify_one();
}

void SlowQueryLog::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return ring_.empty() && !writing_; });
}

uint64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t SlowQueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void SlowQueryLog::WriterLoop() {
  std::vector<SlowQueryRecord> chunk;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !ring_.empty(); });
    if (ring_.empty() && stop_) break;
    // Drain the whole ring in one go, then write it unlocked: producers
    // regain ring space immediately and never wait on the sink.
    chunk.assign(ring_.begin(), ring_.end());
    ring_.clear();
    writing_ = true;
    lock.unlock();
    for (const SlowQueryRecord& record : chunk) {
      std::string line = SlowQueryRecordToJson(record);
      if (options_.write_fn) {
        options_.write_fn(line);
      } else if (options_.sink != nullptr) {
        line.push_back('\n');
        std::fwrite(line.data(), 1, line.size(), options_.sink);
      }
    }
    if (options_.sink != nullptr && !options_.write_fn) {
      std::fflush(options_.sink);
    }
    chunk.clear();
    lock.lock();
    writing_ = false;
    drained_.notify_all();
  }
}

}  // namespace byc::telemetry
