#ifndef BYC_TELEMETRY_SPAN_H_
#define BYC_TELEMETRY_SPAN_H_

#include <chrono>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace byc::telemetry {

/// RAII phase timer: records a SpanRecord (and a
/// "span.<name>_ms" histogram observation, so repeated phases get
/// latency quantiles) into the registry when it goes out of scope or
/// Stop() is called, whichever comes first. A null registry makes the
/// span a no-op — the disabled state costs one branch.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, std::string_view name)
      : registry_(registry), name_(name) {
    if (registry_ != nullptr) start_ = Clock::now();
  }

  ~ScopedSpan() { Stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now and disarms the destructor. Returns the
  /// elapsed milliseconds (0 when disabled or already stopped).
  double Stop() {
    if (registry_ == nullptr) return 0;
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start_)
            .count();
    registry_->RecordSpan(name_, ms);
    registry_->histogram("span." + name_ + "_ms").Observe(ms);
    registry_ = nullptr;
    return ms;
  }

 private:
  using Clock = std::chrono::steady_clock;

  MetricsRegistry* registry_;
  std::string name_;
  Clock::time_point start_{};
};

}  // namespace byc::telemetry

#endif  // BYC_TELEMETRY_SPAN_H_
