#ifndef BYC_TELEMETRY_METRICS_H_
#define BYC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "telemetry/telemetry.h"

namespace byc::telemetry {

/// Monotonic event count. Lock-free; safe to increment from any thread.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (memo entry counts, residency
/// bytes, ...). Lock-free.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A LogHistogram sharded per observing thread: Observe() touches only
/// the calling thread's shard, and Merged() combines the shards at
/// scrape time. Each shard has its own mutex so a LIVE scrape (the
/// service's kMetricsDump, taken while observer threads keep running)
/// reads a consistent shard; on the hot path that lock is uncontended —
/// only the observing thread and an occasional scraper ever touch it —
/// so Observe() stays a thread-private cache hit plus one cheap
/// lock/unlock. This is what lets ThreadPool sweep workers record
/// per-config replay latencies concurrently while the admin plane reads.
///
/// Shards are owned by the histogram and live until it is destroyed;
/// threads that exit leave their shard behind for merging. A histogram
/// must outlive every thread that observes into it — registries are
/// expected to be scoped to a whole run (bench binary, test), which
/// outlives its worker pools.
class ShardedHistogram {
 public:
  ShardedHistogram();
  ~ShardedHistogram() = default;

  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  void Observe(double value);

  /// Merges every thread's shard into one summary histogram. Safe to
  /// call while other threads Observe (they serialize per shard, not
  /// against each other).
  LogHistogram Merged() const;

  size_t shard_count() const;

 private:
  struct Shard {
    std::mutex mu;
    LogHistogram hist;
  };

  Shard* LocalShard();

  /// Process-unique id: the thread-local shard cache is keyed by it, so a
  /// histogram allocated at a previously freed address can never alias a
  /// stale cache entry.
  const uint64_t id_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// One timed phase of a run (decompose / replay / sweep-fan-out /
/// report). Spans are few and coarse — they time phases, not operations.
struct SpanRecord {
  std::string name;
  double wall_ms = 0;
};

/// Point-in-time view of a registry, merged across histogram shards and
/// sorted by metric name (deterministic manifest output).
struct HistogramSummary {
  size_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
  std::vector<SpanRecord> spans;  // in recording order
};

/// Named metrics for one run: counters, gauges, log-bucketed histograms,
/// and phase spans. Lookup by name takes the registry mutex — callers on
/// hot paths look up once and keep the returned reference, which stays
/// valid for the registry's lifetime. The returned objects themselves
/// are safe to update from any thread.
///
/// A null MetricsRegistry* is the disabled state everywhere in the
/// library: instrumentation sites check the pointer and skip all work.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  ShardedHistogram& histogram(std::string_view name);

  /// Appends a completed phase span (see ScopedSpan).
  void RecordSpan(std::string_view name, double wall_ms);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // node-based maps: element addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>, std::less<>>
      histograms_;
  std::vector<SpanRecord> spans_;
};

}  // namespace byc::telemetry

#endif  // BYC_TELEMETRY_METRICS_H_
