#ifndef BYC_TELEMETRY_TELEMETRY_H_
#define BYC_TELEMETRY_TELEMETRY_H_

/// Compile-time switch for the telemetry subsystem. Instrumentation
/// sites in hot paths (the simulator's per-access decision hook, the
/// phase spans) are written as
///
///   #if BYC_TELEMETRY_ENABLED
///     if (tracer) tracer->Record(...);
///   #endif
///
/// so the default build pays one predictable null-pointer branch, and a
/// -DBYC_TELEMETRY=OFF build (CMake option) compiles the hooks away
/// entirely. Either way, a run with no registry/tracer attached is a
/// null sink: no allocation, no locking, no output — which is what keeps
/// bench stdout and BENCH_replay.json byte-identical to the
/// pre-telemetry tree.
#ifndef BYC_TELEMETRY_ENABLED
#define BYC_TELEMETRY_ENABLED 1
#endif

#endif  // BYC_TELEMETRY_TELEMETRY_H_
