#include "telemetry/metrics.h"

#include <algorithm>
#include <unordered_map>

namespace byc::telemetry {

namespace {

uint64_t NextHistogramId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ShardedHistogram::ShardedHistogram() : id_(NextHistogramId()) {}

ShardedHistogram::Shard* ShardedHistogram::LocalShard() {
  // Thread-local cache from histogram id to this thread's shard. Keyed by
  // the process-unique id (never by pointer) so entries can go stale but
  // never alias. Entries for destroyed histograms are left behind; the
  // map is bounded by the number of distinct histograms a thread touches.
  thread_local std::unordered_map<uint64_t, Shard*> cache;
  auto it = cache.find(id_);
  if (it != cache.end()) return it->second;
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(shard));
  }
  cache.emplace(id_, raw);
  return raw;
}

void ShardedHistogram::Observe(double value) {
  Shard* shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->hist.Add(value);
}

LogHistogram ShardedHistogram::Merged() const {
  LogHistogram merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    merged.Merge(shard->hist);
  }
  return merged;
}

size_t ShardedHistogram::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

ShardedHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<ShardedHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::RecordSpan(std::string_view name, double wall_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(SpanRecord{std::string(name), wall_ms});
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    LogHistogram merged = histogram->Merged();
    HistogramSummary summary;
    summary.count = merged.count();
    summary.sum = merged.sum();
    summary.min = merged.min();
    summary.max = merged.max();
    summary.mean = merged.mean();
    summary.p50 = merged.p50();
    summary.p90 = merged.p90();
    summary.p99 = merged.p99();
    snapshot.histograms.emplace_back(name, summary);
  }
  snapshot.spans = spans_;
  return snapshot;
}

}  // namespace byc::telemetry
