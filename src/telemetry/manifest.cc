#include "telemetry/manifest.h"

#include <cstdio>

#include "common/json_writer.h"

#ifndef BYC_GIT_DESCRIBE
#define BYC_GIT_DESCRIBE "unknown"
#endif

namespace byc::telemetry {

RunManifest::RunManifest() : git_describe(BYC_GIT_DESCRIBE) {}

RunManifest::RunManifest(std::string run_name) : RunManifest() {
  name = std::move(run_name);
}

namespace {

/// Emits the "counters"/"gauges"/"histograms" keys of an already-open
/// object — shared between the manifest's "metrics" object and the
/// standalone snapshot document so the two never drift.
void WriteMetricsBody(JsonWriter& json, const MetricsSnapshot& metrics) {
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : metrics.counters) {
    json.Key(name);
    json.UInt(value);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : metrics.gauges) {
    json.Key(name);
    json.Double(value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, h] : metrics.histograms) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.UInt(h.count);
    json.Key("sum");
    json.Double(h.sum);
    json.Key("min");
    json.Double(h.min);
    json.Key("max");
    json.Double(h.max);
    json.Key("mean");
    json.Double(h.mean);
    json.Key("p50");
    json.Double(h.p50);
    json.Key("p90");
    json.Double(h.p90);
    json.Key("p99");
    json.Double(h.p99);
    json.EndObject();
  }
  json.EndObject();
}

void WriteSpans(JsonWriter& json, const MetricsSnapshot& metrics) {
  json.Key("spans");
  json.BeginArray();
  for (const SpanRecord& span : metrics.spans) {
    json.BeginObject();
    json.Key("name");
    json.String(span.name);
    json.Key("wall_ms");
    json.Double(span.wall_ms, 3);
    json.EndObject();
  }
  json.EndArray();
}

}  // namespace

std::string ManifestToJson(const RunManifest& manifest,
                           const MetricsSnapshot& metrics) {
  std::string out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("schema_version");
  json.Int(2);
  json.Key("name");
  json.String(manifest.name);
  json.Key("config");
  json.BeginObject();
  for (const auto& [key, value] : manifest.config) {
    json.Key(key);
    json.String(value);
  }
  json.EndObject();
  json.Key("git_describe");
  json.String(manifest.git_describe);
  json.Key("threads");
  json.UInt(manifest.threads);
  json.Key("metrics");
  json.BeginObject();
  WriteMetricsBody(json, metrics);
  json.EndObject();  // metrics
  WriteSpans(json, metrics);
  json.EndObject();
  out.push_back('\n');
  return out;
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& metrics,
                                  bool pretty) {
  std::string out;
  JsonWriter json(&out, pretty);
  json.BeginObject();
  WriteMetricsBody(json, metrics);
  WriteSpans(json, metrics);
  json.EndObject();
  return out;
}

bool WriteManifestFile(const std::string& path, const RunManifest& manifest,
                       const MetricsSnapshot& metrics) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::string json = ManifestToJson(manifest, metrics);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "telemetry: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace byc::telemetry
