#ifndef BYC_TELEMETRY_TRACE_H_
#define BYC_TELEMETRY_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/object_id.h"
#include "telemetry/telemetry.h"

namespace byc::telemetry {

/// What happened to one access (or one eviction within an access). The
/// first three mirror core::Action; kEvict is emitted once per victim of
/// a kLoad decision, before the load event itself.
enum class TraceAction : uint8_t {
  kServe,
  kBypass,
  kLoad,
  kEvict,
};

std::string_view TraceActionName(TraceAction action);

/// One structured decision event. Byte flows reconcile exactly with the
/// simulator's ledger: summing yield_bytes over kBypass events gives
/// D_S, and load_bytes over kLoad events gives D_L (decision_trace_test
/// asserts both).
struct TraceEvent {
  /// 1-based query number in the trace; all accesses a query decomposes
  /// into carry the same query_seq.
  uint64_t query_seq = 0;
  catalog::ObjectId object;
  TraceAction action = TraceAction::kBypass;
  /// WAN result bytes of the access (the access's bypass_cost: shipped
  /// on kBypass, saved on kServe/kLoad). 0 for kEvict.
  double yield_bytes = 0;
  /// WAN bytes spent loading the object (the access's fetch_cost). Only
  /// nonzero for kLoad.
  double load_bytes = 0;
  /// Policy-reported utility of the decision (e.g. Rate-Profile's LAR);
  /// 0 when the policy does not export one.
  double utility_score = 0;
  /// Policy residency after the whole decision (including any evictions)
  /// was applied.
  uint64_t cache_bytes_after = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// Serializes one event as a single JSONL line (no trailing newline).
std::string TraceEventToJson(const TraceEvent& event);

/// Records the per-access decision stream of one replay. Two sinks,
/// usable together:
///
///  * a bounded in-memory ring that keeps the most recent
///    `ring_capacity` events (events() unrolls them in record order;
///    total_recorded() - events().size() were dropped), and
///  * an optional JSONL stream that receives every event as one JSON
///    object per line.
///
/// Running bypass/load byte totals are maintained over *all* events —
/// ring overflow never breaks the D_S/D_L reconciliation.
///
/// A tracer belongs to exactly one replay; it is deliberately not
/// thread-safe. Parallel sweeps give every configuration its own tracer
/// (see sim::SweepRunner), which is what makes the per-config event
/// stream byte-identical at any thread count.
class DecisionTracer {
 public:
  struct Options {
    /// Most-recent events kept in memory; 0 disables the ring.
    size_t ring_capacity = 1 << 16;
    /// When set, every event is appended to this stream as JSONL. Not
    /// owned.
    std::FILE* jsonl = nullptr;
  };

  DecisionTracer() : DecisionTracer(Options{}) {}
  explicit DecisionTracer(const Options& options);

  DecisionTracer(const DecisionTracer&) = delete;
  DecisionTracer& operator=(const DecisionTracer&) = delete;

  void Record(const TraceEvent& event);

  /// Ring contents in record order (oldest kept event first).
  std::vector<TraceEvent> events() const;

  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t dropped() const {
    return total_recorded_ - std::min<uint64_t>(total_recorded_, ring_.size());
  }

  /// Sum of yield_bytes over kBypass events == the replay's D_S.
  double bypass_bytes() const { return bypass_bytes_; }
  /// Sum of load_bytes over kLoad events == the replay's D_L.
  double load_bytes() const { return load_bytes_; }
  /// Sum of yield_bytes over kServe events == the replay's D_C.
  double served_bytes() const { return served_bytes_; }

 private:
  Options options_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;  // ring write position once full
  uint64_t total_recorded_ = 0;
  double bypass_bytes_ = 0;
  double load_bytes_ = 0;
  double served_bytes_ = 0;
};

}  // namespace byc::telemetry

#endif  // BYC_TELEMETRY_TRACE_H_
