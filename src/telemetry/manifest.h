#ifndef BYC_TELEMETRY_MANIFEST_H_
#define BYC_TELEMETRY_MANIFEST_H_

#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace byc::telemetry {

/// Identity of one run of a bench/tool binary. Combined with a
/// MetricsSnapshot it serializes to the run-manifest JSON every exhibit
/// binary can emit next to its stdout output (see bench::BenchRun).
///
/// Manifest schema (schema_version 2, validated by
/// scripts/validate_manifest.py). Version 1 lacked the live-service
/// gauges (svc.admission_queue_depth and friends) and the
/// wire.metrics_dump counter that the observability plane now
/// guarantees in service load manifests; version 2 declares them part
/// of the contract — same JSON shape, richer required content:
///   {
///     "schema_version": 2,
///     "name": "<binary name>",
///     "config": {"<key>": "<value>", ...},
///     "git_describe": "<git describe --always --dirty at configure>",
///     "threads": <default worker count for this run>,
///     "metrics": {
///       "counters":   {"<name>": <uint>, ...},
///       "gauges":     {"<name>": <double>, ...},
///       "histograms": {"<name>": {"count": <uint>, "sum": <double>,
///                                  "min": ..., "max": ..., "mean": ...,
///                                  "p50": ..., "p90": ..., "p99": ...}}
///     },
///     "spans": [{"name": "<phase>", "wall_ms": <double>}, ...]
///   }
struct RunManifest {
  std::string name;
  /// Ordered key/value description of the run's configuration (release,
  /// granularity, sweep shape, CLI flags, ...).
  std::vector<std::pair<std::string, std::string>> config;
  unsigned threads = 1;
  /// Defaults to the tree's `git describe --always --dirty`, baked in at
  /// configure time ("unknown" outside a git checkout).
  std::string git_describe;

  RunManifest();
  explicit RunManifest(std::string run_name);

  void AddConfig(std::string key, std::string value) {
    config.emplace_back(std::move(key), std::move(value));
  }
};

/// Serializes manifest + metrics to the schema above (pretty-printed,
/// trailing newline).
std::string ManifestToJson(const RunManifest& manifest,
                           const MetricsSnapshot& metrics);

/// Serializes one MetricsSnapshot alone — the same "metrics" + "spans"
/// shape the manifest embeds, as a standalone document:
///   {"counters": {...}, "gauges": {...}, "histograms": {...},
///    "spans": [...]}
/// This is the payload of the service's kMetricsDumpReply admin frame
/// (compact, no trailing newline) so a scraped snapshot and a manifest
/// agree field-for-field.
std::string MetricsSnapshotToJson(const MetricsSnapshot& metrics,
                                  bool pretty = false);

/// Writes the manifest JSON to `path`. Returns false (with a message on
/// stderr) if the file cannot be written.
bool WriteManifestFile(const std::string& path, const RunManifest& manifest,
                       const MetricsSnapshot& metrics);

}  // namespace byc::telemetry

#endif  // BYC_TELEMETRY_MANIFEST_H_
