#ifndef BYC_WORKLOAD_DISTRIBUTION_H_
#define BYC_WORKLOAD_DISTRIBUTION_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/random.h"

namespace byc::workload {

/// Shape of a rank-selection distribution. Every place the workload
/// layer picks "which template / which tenant / which hot object" draws
/// ranks through one of these kinds, so a scenario phase and the legacy
/// single-phase generator share the same sampling vocabulary.
enum class DistKind : uint8_t {
  kZipf,     // Zipf(theta) over ranks, rank 0 most popular
  kUniform,  // uniform over all ranks
  kHotspot,  // hot_fraction of the mass on a (possibly drifting) window
};

std::string_view DistKindName(DistKind kind);

/// Inverse of DistKindName (exact match); nullopt for unknown names.
std::optional<DistKind> ParseDistKind(std::string_view name);

/// One rank distribution as a value type: the kind plus every tuning
/// knob any kind uses. Unused knobs keep their defaults so the
/// key=value serialization (scenario specs) round-trips bit-exactly.
struct DistributionSpec {
  DistKind kind = DistKind::kZipf;
  /// Zipf skew (kZipf). theta == 0 degenerates to uniform.
  double theta = 1.1;
  /// kHotspot: probability mass landing on the hot rank window.
  double hot_fraction = 0.9;
  /// kHotspot: fraction of all ranks inside the hot window (>= 1 rank).
  double hot_ranks = 0.1;
  /// kHotspot: ranks the hot window's start advances per unit of phase
  /// progress (0: stationary hotspot; n: one full lap per phase).
  double drift = 0;

  bool operator==(const DistributionSpec&) const = default;
};

/// Samples ranks in [0, n) from a DistributionSpec. Every Sample()
/// consumes exactly one Rng draw (one NextDouble), regardless of kind —
/// the single-draw discipline keeps a generated stream's Rng
/// consumption independent of which distribution a phase picked, and
/// the kZipf path is byte-identical to the pre-existing ZipfSampler the
/// legacy generator used.
class RankSampler {
 public:
  /// Precondition: n >= 1 and every spec knob in range (theta >= 0,
  /// fractions in [0, 1]).
  RankSampler(size_t n, const DistributionSpec& spec);

  /// Draws a rank in [0, n). `progress` in [0, 1] is the position
  /// within the current phase; only kHotspot's drift consumes it.
  size_t Sample(Rng& rng, double progress = 0) const;

  size_t n() const { return n_; }
  const DistributionSpec& spec() const { return spec_; }

 private:
  size_t n_;
  DistributionSpec spec_;
  std::optional<ZipfSampler> zipf_;  // kZipf only
  size_t hot_count_ = 0;             // kHotspot window width in ranks
};

}  // namespace byc::workload

#endif  // BYC_WORKLOAD_DISTRIBUTION_H_
