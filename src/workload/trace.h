#ifndef BYC_WORKLOAD_TRACE_H_
#define BYC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "query/resolved.h"

namespace byc::workload {

/// Query classes present in the SDSS traces (§6: "The SDSS traces include
/// variety of access patterns, such as range queries, spatial searches,
/// identity queries, and aggregate queries"); joins are the multi-table
/// queries the paper's running example shows.
enum class QueryClass : uint8_t {
  kRange,
  kSpatial,
  kIdentity,
  kAggregate,
  kJoin,
};

std::string_view QueryClassName(QueryClass klass);

/// One trace entry: the schema-bound query plus the celestial-object
/// footprint used by the containment analysis (Fig. 4) — the sky cells a
/// region query covers, or the object identifiers an identity query
/// names.
struct TraceQuery {
  query::ResolvedQuery query;
  QueryClass klass = QueryClass::kRange;
  std::vector<int64_t> cells;
};

/// A replayable query trace against one catalog.
struct Trace {
  std::string name;
  std::vector<TraceQuery> queries;
};

/// Serializes a trace to a line-oriented text format (one query per line)
/// that round-trips exactly. The format is documented in trace.cc.
Status WriteTrace(const Trace& trace, std::ostream& out);

/// Parses a trace written by WriteTrace and validates all indices against
/// the catalog.
Result<Trace> ReadTrace(const catalog::Catalog& catalog, std::istream& in);

/// Formats one query as a single trace line (no trailing newline) in the
/// WriteTrace format. Round-trips exactly through ParseTraceQuery — this
/// is also the wire encoding the federation service ships queries in.
std::string FormatTraceQuery(const TraceQuery& tq);

/// Parses one WriteTrace-format line and validates all indices against
/// the catalog (the inverse of FormatTraceQuery).
Result<TraceQuery> ParseTraceQuery(const catalog::Catalog& catalog,
                                   std::string_view line);

}  // namespace byc::workload

#endif  // BYC_WORKLOAD_TRACE_H_
