#include "workload/trace.h"

#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace byc::workload {

// Trace text format, one query per line:
//
//   <class>|<tables>|<select>|<filters>|<joins>|<cells>
//
//   class   : R S I A J
//   tables  : comma-separated catalog table indices (FROM slots in order)
//   select  : comma-separated slot:column:aggcode  (aggcode 0 = none,
//             1..5 = count/sum/avg/min/max)
//   filters : comma-separated slot:column:opcode:value:selectivity
//             (opcode 0..5 = = != < <= > >=; value/selectivity use %.17g)
//   joins   : comma-separated lslot:lcol:rslot:rcol
//   cells   : comma-separated int64 cell / object identifiers
//
// Empty sections stay empty between the pipes. Lines starting with '#'
// and blank lines are ignored on read; the header line "trace <name>"
// carries the trace name.

std::string_view QueryClassName(QueryClass klass) {
  switch (klass) {
    case QueryClass::kRange:
      return "range";
    case QueryClass::kSpatial:
      return "spatial";
    case QueryClass::kIdentity:
      return "identity";
    case QueryClass::kAggregate:
      return "aggregate";
    case QueryClass::kJoin:
      return "join";
  }
  return "?";
}

namespace {

char ClassCode(QueryClass klass) {
  switch (klass) {
    case QueryClass::kRange:
      return 'R';
    case QueryClass::kSpatial:
      return 'S';
    case QueryClass::kIdentity:
      return 'I';
    case QueryClass::kAggregate:
      return 'A';
    case QueryClass::kJoin:
      return 'J';
  }
  return '?';
}

Result<QueryClass> ClassFromCode(char c) {
  switch (c) {
    case 'R':
      return QueryClass::kRange;
    case 'S':
      return QueryClass::kSpatial;
    case 'I':
      return QueryClass::kIdentity;
    case 'A':
      return QueryClass::kAggregate;
    case 'J':
      return QueryClass::kJoin;
    default:
      return Status::ParseError(std::string("unknown query class code '") +
                                c + "'");
  }
}

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

std::vector<std::string_view> SplitView(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

template <typename T>
Result<T> ParseNumber(std::string_view s) {
  T value{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("bad number '" + std::string(s) + "'");
  }
  return value;
}

// std::from_chars for double is available in libstdc++ 11+; keep a
// fallback via strtod for robustness.
Result<double> ParseDouble(std::string_view s) {
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::ParseError("bad double '" + buf + "'");
  }
  return v;
}

}  // namespace

std::string FormatTraceQuery(const TraceQuery& tq) {
  std::string line;
  {
    line += ClassCode(tq.klass);
    line += '|';
    const query::ResolvedQuery& q = tq.query;
    for (size_t i = 0; i < q.tables.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(q.tables[i]);
    }
    line += '|';
    for (size_t i = 0; i < q.select.size(); ++i) {
      if (i > 0) line += ',';
      const auto& s = q.select[i];
      line += std::to_string(s.column.table_slot);
      line += ':';
      line += std::to_string(s.column.column);
      line += ':';
      line += std::to_string(static_cast<int>(s.aggregate));
    }
    line += '|';
    for (size_t i = 0; i < q.filters.size(); ++i) {
      if (i > 0) line += ',';
      const auto& f = q.filters[i];
      line += std::to_string(f.column.table_slot);
      line += ':';
      line += std::to_string(f.column.column);
      line += ':';
      line += std::to_string(static_cast<int>(f.op));
      line += ':';
      AppendDouble(line, f.value);
      line += ':';
      AppendDouble(line, f.selectivity);
    }
    line += '|';
    for (size_t i = 0; i < q.joins.size(); ++i) {
      if (i > 0) line += ',';
      const auto& j = q.joins[i];
      line += std::to_string(j.left.table_slot);
      line += ':';
      line += std::to_string(j.left.column);
      line += ':';
      line += std::to_string(j.right.table_slot);
      line += ':';
      line += std::to_string(j.right.column);
    }
    line += '|';
    for (size_t i = 0; i < tq.cells.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(tq.cells[i]);
    }
  }
  return line;
}

Status WriteTrace(const Trace& trace, std::ostream& out) {
  out << "trace " << trace.name << '\n';
  for (const TraceQuery& tq : trace.queries) {
    out << FormatTraceQuery(tq) << '\n';
  }
  if (!out) return Status::IoError("trace write failed");
  return Status::OK();
}

namespace {

Status ValidateColumn(const catalog::Catalog& catalog,
                      const query::ResolvedQuery& q,
                      const query::ResolvedColumn& col) {
  if (col.table_slot < 0 ||
      static_cast<size_t>(col.table_slot) >= q.tables.size()) {
    return Status::ParseError("table slot out of range");
  }
  const catalog::Table& t =
      catalog.table(q.tables[static_cast<size_t>(col.table_slot)]);
  if (col.column < 0 || col.column >= t.num_columns()) {
    return Status::ParseError("column index out of range");
  }
  return Status::OK();
}

Result<TraceQuery> ParseTraceLine(const catalog::Catalog& catalog,
                                  std::string_view line) {
  std::vector<std::string_view> sections = SplitView(line, '|');
  if (sections.size() != 6) {
    return Status::ParseError("expected 6 '|'-separated sections");
  }
  if (sections[0].size() != 1) {
    return Status::ParseError("bad class section");
  }
  TraceQuery tq;
  BYC_ASSIGN_OR_RETURN(tq.klass, ClassFromCode(sections[0][0]));

  query::ResolvedQuery& q = tq.query;
  if (!sections[1].empty()) {
    for (std::string_view part : SplitView(sections[1], ',')) {
      BYC_ASSIGN_OR_RETURN(int table, ParseNumber<int>(part));
      if (table < 0 || table >= catalog.num_tables()) {
        return Status::ParseError("table index out of range");
      }
      q.tables.push_back(table);
    }
  }
  if (!sections[2].empty()) {
    for (std::string_view part : SplitView(sections[2], ',')) {
      auto fields = SplitView(part, ':');
      if (fields.size() != 3) return Status::ParseError("bad select item");
      query::ResolvedSelectItem item;
      BYC_ASSIGN_OR_RETURN(item.column.table_slot,
                           ParseNumber<int>(fields[0]));
      BYC_ASSIGN_OR_RETURN(item.column.column, ParseNumber<int>(fields[1]));
      BYC_ASSIGN_OR_RETURN(int agg, ParseNumber<int>(fields[2]));
      if (agg < 0 || agg > 5) return Status::ParseError("bad aggregate code");
      item.aggregate = static_cast<query::Aggregate>(agg);
      BYC_RETURN_IF_ERROR(ValidateColumn(catalog, q, item.column));
      q.select.push_back(item);
    }
  }
  if (!sections[3].empty()) {
    for (std::string_view part : SplitView(sections[3], ',')) {
      auto fields = SplitView(part, ':');
      if (fields.size() != 5) return Status::ParseError("bad filter");
      query::ResolvedFilter f;
      BYC_ASSIGN_OR_RETURN(f.column.table_slot, ParseNumber<int>(fields[0]));
      BYC_ASSIGN_OR_RETURN(f.column.column, ParseNumber<int>(fields[1]));
      BYC_ASSIGN_OR_RETURN(int op, ParseNumber<int>(fields[2]));
      if (op < 0 || op > 5) return Status::ParseError("bad op code");
      f.op = static_cast<query::CmpOp>(op);
      BYC_ASSIGN_OR_RETURN(f.value, ParseDouble(fields[3]));
      BYC_ASSIGN_OR_RETURN(f.selectivity, ParseDouble(fields[4]));
      if (!(f.selectivity > 0) || f.selectivity > 1 ||
          !std::isfinite(f.selectivity)) {
        return Status::ParseError("selectivity out of (0,1]");
      }
      BYC_RETURN_IF_ERROR(ValidateColumn(catalog, q, f.column));
      q.filters.push_back(f);
    }
  }
  if (!sections[4].empty()) {
    for (std::string_view part : SplitView(sections[4], ',')) {
      auto fields = SplitView(part, ':');
      if (fields.size() != 4) return Status::ParseError("bad join");
      query::ResolvedJoin j;
      BYC_ASSIGN_OR_RETURN(j.left.table_slot, ParseNumber<int>(fields[0]));
      BYC_ASSIGN_OR_RETURN(j.left.column, ParseNumber<int>(fields[1]));
      BYC_ASSIGN_OR_RETURN(j.right.table_slot, ParseNumber<int>(fields[2]));
      BYC_ASSIGN_OR_RETURN(j.right.column, ParseNumber<int>(fields[3]));
      BYC_RETURN_IF_ERROR(ValidateColumn(catalog, q, j.left));
      BYC_RETURN_IF_ERROR(ValidateColumn(catalog, q, j.right));
      q.joins.push_back(j);
    }
  }
  if (!sections[5].empty()) {
    for (std::string_view part : SplitView(sections[5], ',')) {
      BYC_ASSIGN_OR_RETURN(int64_t cell, ParseNumber<int64_t>(part));
      tq.cells.push_back(cell);
    }
  }
  if (q.tables.empty() || q.select.empty()) {
    return Status::ParseError("query needs tables and a select list");
  }
  return tq;
}

}  // namespace

Result<TraceQuery> ParseTraceQuery(const catalog::Catalog& catalog,
                                   std::string_view line) {
  return ParseTraceLine(catalog, line);
}

Result<Trace> ReadTrace(const catalog::Catalog& catalog, std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("trace ", 0) == 0) {
      trace.name = line.substr(6);
      continue;
    }
    Result<TraceQuery> tq = ParseTraceLine(catalog, line);
    if (!tq.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                tq.status().message());
    }
    trace.queries.push_back(std::move(tq).value());
  }
  return trace;
}

}  // namespace byc::workload
