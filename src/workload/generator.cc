#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "common/check.h"
#include "query/yield.h"

namespace byc::workload {

GeneratorOptions MakeEdrOptions() {
  GeneratorOptions options;
  options.seed = 20050405;
  options.num_queries = 27'663;
  options.target_sequence_cost = 1216.94 * kGB;
  return options;
}

GeneratorOptions MakeDr1Options() {
  GeneratorOptions options;
  options.seed = 20050406;
  options.num_queries = 24'567;
  options.target_sequence_cost = 1980.4 * kGB;
  // DR1's published breakdown shows much higher bypass costs: a more
  // dispersed workload with a heavier cold tail and stronger drift.
  options.mix.p_range = 0.49;
  options.mix.p_spatial = 0.09;
  options.mix.p_identity = 0.14;
  options.mix.p_aggregate = 0.11;
  options.mix.p_join = 0.12;  // remainder (5%) is cold-tail
  options.phase_churn = 0.55;
  options.num_phases = 10;
  options.template_dist.theta = 0.9;
  return options;
}

namespace {

constexpr int kNumClasses = 5;  // range, spatial, identity, aggregate, join

int ClassOf(QueryClass klass) { return static_cast<int>(klass); }

}  // namespace

TraceGenerator::TraceGenerator(const catalog::Catalog* catalog,
                               const GeneratorOptions& options)
    : catalog_(catalog), options_(options) {
  photo_obj_ = catalog_->FindTable("PhotoObj").value();
  spec_obj_ = catalog_->FindTable("SpecObj").value();
  for (const char* name : {"PhotoZ", "Field", "Frame", "PlateX"}) {
    Result<int> idx = catalog_->FindTable(name);
    if (idx.ok()) warm_tables_.push_back(*idx);
  }
  for (const char* name : {"Neighbors", "PhotoProfile", "First", "Rosat",
                           "USNO", "Mask", "Tiles"}) {
    Result<int> idx = catalog_->FindTable(name);
    if (idx.ok()) cold_tables_.push_back(*idx);
  }
  BYC_CHECK(!warm_tables_.empty());
  BYC_CHECK(!cold_tables_.empty());

  // Seed-shuffled column order per table; the hot pool is its prefix, so
  // every trace concentrates on a small, stable slice of the schema.
  Rng rng(options_.seed ^ 0xC01DFACEULL);
  column_order_.resize(static_cast<size_t>(catalog_->num_tables()));
  for (int t = 0; t < catalog_->num_tables(); ++t) {
    auto& order = column_order_[static_cast<size_t>(t)];
    order.resize(static_cast<size_t>(catalog_->table(t).num_columns()));
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    // Keep column 0 (the key) at the front; shuffle the rest.
    std::vector<int> tail(order.begin() + 1, order.end());
    rng.Shuffle(tail);
    std::copy(tail.begin(), tail.end(), order.begin() + 1);
  }
}

std::vector<int> TraceGenerator::PickHotColumns(Rng& rng, int table,
                                                int count) {
  const auto& order = column_order_[static_cast<size_t>(table)];
  int pool = std::min<int>(options_.hot_columns_per_table,
                           static_cast<int>(order.size()));
  count = std::min(count, static_cast<int>(order.size()));
  BYC_CHECK_GE(count, 1);
  if (count >= pool) {
    // Survey-wide selection: the whole hot pool plus the next columns of
    // the (stable) shuffled order.
    return std::vector<int>(order.begin(), order.begin() + count);
  }
  // The key column always participates (astronomy queries carry objID),
  // then Zipf-weighted picks from the hot pool favor its head.
  std::vector<int> picked = {order[0]};
  ZipfSampler zipf(static_cast<size_t>(pool), 0.8);
  while (static_cast<int>(picked.size()) < count) {
    int col = order[zipf.Sample(rng)];
    if (std::find(picked.begin(), picked.end(), col) == picked.end()) {
      picked.push_back(col);
    }
  }
  return picked;
}

TraceGenerator::Template TraceGenerator::MakeRangeTemplate(Rng& rng) {
  Template tmpl;
  tmpl.klass = QueryClass::kRange;
  // Mostly the hot photometric table, sometimes spectra or a warm table.
  int table;
  double r = rng.NextDouble();
  if (r < 0.70) {
    table = photo_obj_;
  } else if (r < 0.85) {
    table = spec_obj_;
  } else {
    table = warm_tables_[rng.NextUint64(warm_tables_.size())];
  }
  query::ResolvedQuery& q = tmpl.skeleton;
  q.tables = {table};
  // Some range templates are survey-wide scans selecting the whole
  // row (the bulk "SELECT p.*"-style exports common in archive traces);
  // the rest project a subset of the hot pool.
  int width = rng.NextBool(0.35)
                  ? catalog_->table(table).num_columns()
                  : static_cast<int>(rng.NextInt64(14, 52));
  for (int col : PickHotColumns(rng, table, width)) {
    q.select.push_back({{0, col}, query::Aggregate::kNone});
  }
  int num_filters = static_cast<int>(rng.NextInt64(1, 2));
  double base_sel = std::clamp(rng.NextLogNormal(std::log(0.65), 0.5), 0.02,
                               1.0);
  std::vector<int> fcols =
      PickHotColumns(rng, table, num_filters + 1);  // [0] is the key
  for (int i = 0; i < num_filters; ++i) {
    query::ResolvedFilter f;
    f.column = {0, fcols[static_cast<size_t>(i + 1)]};
    f.op = rng.NextBool(0.5) ? query::CmpOp::kGt : query::CmpOp::kLt;
    f.value = rng.NextDouble(0, 30);
    f.selectivity = std::pow(base_sel, 1.0 / num_filters);
    q.filters.push_back(f);
  }
  return tmpl;
}

TraceGenerator::Template TraceGenerator::MakeSpatialTemplate(Rng& rng) {
  Template tmpl;
  tmpl.klass = QueryClass::kSpatial;
  Result<int> neighbors = catalog_->FindTable("Neighbors");
  int partner = neighbors.ok() ? *neighbors : cold_tables_[0];
  query::ResolvedQuery& q = tmpl.skeleton;
  q.tables = {photo_obj_, partner};
  for (int col : PickHotColumns(rng, photo_obj_,
                                static_cast<int>(rng.NextInt64(8, 20)))) {
    q.select.push_back({{0, col}, query::Aggregate::kNone});
  }
  const catalog::Table& pt = catalog_->table(partner);
  for (int c = 0; c < std::min(3, pt.num_columns()); ++c) {
    q.select.push_back({{1, c}, query::Aggregate::kNone});
  }
  // Equi-join on the shared object identifier.
  q.joins.push_back({{0, 0}, {1, 0}});
  // Radius cut on the partner plus a photometric cut.
  query::ResolvedFilter radius;
  radius.column = {1, std::min(2, pt.num_columns() - 1)};
  radius.op = query::CmpOp::kLt;
  radius.value = rng.NextDouble(0.5, 5.0);
  radius.selectivity = std::clamp(rng.NextLogNormal(std::log(0.3), 0.4),
                                  0.01, 0.9);
  q.filters.push_back(radius);
  query::ResolvedFilter photo;
  photo.column = {0, PickHotColumns(rng, photo_obj_, 2)[1]};
  photo.op = query::CmpOp::kGt;
  photo.value = rng.NextDouble(14, 24);
  photo.selectivity = std::clamp(rng.NextLogNormal(std::log(0.6), 0.3),
                                 0.05, 0.98);
  q.filters.push_back(photo);
  return tmpl;
}

TraceGenerator::Template TraceGenerator::MakeIdentityTemplate(Rng& rng) {
  Template tmpl;
  tmpl.klass = QueryClass::kIdentity;
  int table = rng.NextBool(0.75) ? photo_obj_ : spec_obj_;
  query::ResolvedQuery& q = tmpl.skeleton;
  q.tables = {table};
  for (int col : PickHotColumns(rng, table,
                                static_cast<int>(rng.NextInt64(6, 14)))) {
    q.select.push_back({{0, col}, query::Aggregate::kNone});
  }
  query::ResolvedFilter f;
  f.column = {0, 0};  // the key column
  f.op = query::CmpOp::kEq;
  f.value = 0;  // instantiation draws the identifier
  f.selectivity =
      1.0 / static_cast<double>(catalog_->table(table).row_count());
  q.filters.push_back(f);
  return tmpl;
}

TraceGenerator::Template TraceGenerator::MakeAggregateTemplate(Rng& rng) {
  Template tmpl;
  tmpl.klass = QueryClass::kAggregate;
  int table;
  double r = rng.NextDouble();
  if (r < 0.55) {
    table = photo_obj_;
  } else if (r < 0.8) {
    table = spec_obj_;
  } else {
    table = warm_tables_[rng.NextUint64(warm_tables_.size())];
  }
  query::ResolvedQuery& q = tmpl.skeleton;
  q.tables = {table};
  std::vector<int> cols =
      PickHotColumns(rng, table, static_cast<int>(rng.NextInt64(2, 4)));
  q.select.push_back({{0, cols[0]}, query::Aggregate::kCount});
  static constexpr query::Aggregate kAggs[] = {query::Aggregate::kAvg,
                                               query::Aggregate::kMin,
                                               query::Aggregate::kMax,
                                               query::Aggregate::kSum};
  for (size_t i = 1; i < cols.size(); ++i) {
    q.select.push_back({{0, cols[i]}, kAggs[rng.NextUint64(4)]});
  }
  query::ResolvedFilter f;
  f.column = {0, PickHotColumns(rng, table, 2)[1]};
  f.op = query::CmpOp::kGt;
  f.value = rng.NextDouble(0, 30);
  f.selectivity = std::clamp(rng.NextLogNormal(std::log(0.4), 0.5), 0.02,
                             0.95);
  q.filters.push_back(f);
  return tmpl;
}

TraceGenerator::Template TraceGenerator::MakeJoinTemplate(Rng& rng) {
  Template tmpl;
  tmpl.klass = QueryClass::kJoin;
  // The paper's running example: SpecObj joined to PhotoObj on objID with
  // spectroscopic and photometric cuts.
  query::ResolvedQuery& q = tmpl.skeleton;
  int partner = rng.NextBool(0.8)
                    ? spec_obj_
                    : warm_tables_[rng.NextUint64(warm_tables_.size())];
  q.tables = {photo_obj_, partner};
  for (int col : PickHotColumns(rng, photo_obj_,
                                static_cast<int>(rng.NextInt64(10, 32)))) {
    q.select.push_back({{0, col}, query::Aggregate::kNone});
  }
  for (int col : PickHotColumns(rng, partner,
                                static_cast<int>(rng.NextInt64(6, 14)))) {
    q.select.push_back({{1, col}, query::Aggregate::kNone});
  }
  q.joins.push_back({{0, 0}, {1, 0}});
  int partner_filters = static_cast<int>(rng.NextInt64(1, 2));
  std::vector<int> pf = PickHotColumns(rng, partner, partner_filters + 1);
  double base_sel = std::clamp(rng.NextLogNormal(std::log(0.55), 0.4), 0.05,
                               0.95);
  for (int i = 0; i < partner_filters; ++i) {
    query::ResolvedFilter f;
    f.column = {1, pf[static_cast<size_t>(i + 1)]};
    f.op = rng.NextBool(0.5) ? query::CmpOp::kGt : query::CmpOp::kLt;
    f.value = rng.NextDouble(0, 30);
    f.selectivity = std::pow(base_sel, 1.0 / partner_filters);
    q.filters.push_back(f);
  }
  query::ResolvedFilter photo;
  photo.column = {0, PickHotColumns(rng, photo_obj_, 2)[1]};
  photo.op = query::CmpOp::kGt;
  photo.value = rng.NextDouble(14, 24);
  photo.selectivity = std::clamp(rng.NextLogNormal(std::log(0.7), 0.3), 0.1,
                                 0.98);
  q.filters.push_back(photo);
  return tmpl;
}

TraceGenerator::Template TraceGenerator::MakeColdTemplate(Rng& rng) {
  Template tmpl;
  tmpl.klass = QueryClass::kRange;  // cold scans are range-shaped
  int table = cold_tables_[rng.NextUint64(cold_tables_.size())];
  const catalog::Table& t = catalog_->table(table);
  query::ResolvedQuery& q = tmpl.skeleton;
  q.tables = {table};
  int width = std::min<int>(t.num_columns(),
                            static_cast<int>(rng.NextInt64(4, 8)));
  for (int c = 0; c < width; ++c) {
    q.select.push_back({{0, c}, query::Aggregate::kNone});
  }
  query::ResolvedFilter f;
  f.column = {0, std::min(1, t.num_columns() - 1)};
  f.op = query::CmpOp::kGt;
  f.value = rng.NextDouble(0, 10);
  f.selectivity = std::clamp(rng.NextLogNormal(std::log(0.45), 0.5), 0.05,
                             1.0);
  q.filters.push_back(f);
  return tmpl;
}

void TraceGenerator::EnsureTemplates() {
  if (hot_templates_.empty()) BuildTemplates();
}

void TraceGenerator::BuildTemplates() {
  Rng rng(options_.seed ^ 0x7E3A17E5ULL);
  class_index_.assign(kNumClasses, {});
  auto add = [&](Template tmpl) {
    class_index_[ClassOf(tmpl.klass)].push_back(
        static_cast<int>(hot_templates_.size()));
    hot_templates_.push_back(std::move(tmpl));
  };
  for (int i = 0; i < options_.templates_per_class; ++i) {
    add(MakeRangeTemplate(rng));
    add(MakeSpatialTemplate(rng));
    add(MakeIdentityTemplate(rng));
    add(MakeAggregateTemplate(rng));
    add(MakeJoinTemplate(rng));
  }
  // A wider, flatter pool of cold templates: no template reuse to speak
  // of, matching the uncachable tail of the real traces.
  int num_cold = 3 * options_.templates_per_class;
  for (int i = 0; i < num_cold; ++i) {
    cold_templates_.push_back(MakeColdTemplate(rng));
  }

  // Phase popularity: each phase reshuffles a churn fraction of every
  // class's template ranking, shifting which schemas are hot.
  phase_class_rank_.resize(static_cast<size_t>(options_.num_phases));
  for (int p = 0; p < options_.num_phases; ++p) {
    auto& ranks = phase_class_rank_[static_cast<size_t>(p)];
    if (p == 0) {
      ranks.assign(class_index_.begin(), class_index_.end());
      continue;
    }
    ranks = phase_class_rank_[static_cast<size_t>(p - 1)];
    for (auto& order : ranks) {
      size_t churn =
          static_cast<size_t>(std::ceil(options_.phase_churn *
                                        static_cast<double>(order.size())));
      // Permute `churn` randomly chosen positions among themselves.
      std::vector<size_t> positions(order.size());
      for (size_t i = 0; i < positions.size(); ++i) positions[i] = i;
      rng.Shuffle(positions);
      positions.resize(std::min(churn, positions.size()));
      std::vector<int> values;
      values.reserve(positions.size());
      for (size_t pos : positions) values.push_back(order[pos]);
      rng.Shuffle(values);
      for (size_t i = 0; i < positions.size(); ++i) {
        order[positions[i]] = values[i];
      }
    }
  }
}

TraceQuery TraceGenerator::Instantiate(const Template& tmpl, Rng& rng,
                                       const SampleWindow& window) {
  TraceQuery tq;
  tq.klass = tmpl.klass;
  tq.query = tmpl.skeleton;

  double combined_sel = 1.0;
  for (query::ResolvedFilter& f : tq.query.filters) {
    bool identity_key =
        f.op == query::CmpOp::kEq && f.column.column == 0;
    if (identity_key) {
      // Fresh identifier: same schema, different data. In a growing
      // repository only the visible row prefix exists yet; the legacy
      // window (visible_fraction == 1) draws over the whole table with
      // the identical NextInt64 call.
      int table = tq.query.tables[static_cast<size_t>(f.column.table_slot)];
      uint64_t rows = catalog_->table(table).row_count();
      int64_t visible = static_cast<int64_t>(rows);
      if (window.visible_fraction < 1.0) {
        visible = std::max<int64_t>(
            1, static_cast<int64_t>(static_cast<double>(rows) *
                                    window.visible_fraction));
      }
      int64_t id = rng.NextInt64(0, visible - 1);
      f.value = static_cast<double>(id);
      tq.cells.push_back(id);
      continue;
    }
    f.value += rng.NextGaussian() * 0.5;  // nudge the literal
    double jitter = rng.NextLogNormal(0.0, options_.selectivity_sigma);
    f.selectivity = std::clamp(f.selectivity * jitter, 1e-7, 1.0);
    combined_sel *= f.selectivity;
  }

  // Region footprint for the containment analysis: a contiguous run of
  // sky cells anchored uniformly, spanning wider for less selective
  // queries. A flash-crowd window pins a pin_fraction of anchors inside
  // its hot region; a growing repository shrinks the anchor universe to
  // the visible prefix.
  if (tmpl.klass == QueryClass::kRange ||
      tmpl.klass == QueryClass::kSpatial) {
    int64_t span = std::clamp<int64_t>(
        static_cast<int64_t>(std::sqrt(combined_sel) * 64.0), 1, 64);
    int64_t anchor;
    if (window.pin_fraction > 0 && rng.NextBool(window.pin_fraction)) {
      int64_t lo = std::clamp<int64_t>(window.region_lo, 0,
                                       options_.num_sky_cells - 1);
      int64_t hi = std::clamp<int64_t>(lo + window.region_span,
                                       lo + 1, options_.num_sky_cells);
      span = std::min(span, hi - lo);
      anchor = lo + rng.NextInt64(0, (hi - lo) - span);
    } else {
      int64_t cells = options_.num_sky_cells;
      if (window.visible_fraction < 1.0) {
        cells = std::clamp<int64_t>(
            static_cast<int64_t>(static_cast<double>(cells) *
                                 window.visible_fraction),
            span, cells);
      }
      anchor = rng.NextInt64(0, cells - span);
    }
    for (int64_t c = 0; c < span; ++c) tq.cells.push_back(anchor + c);
  }
  return tq;
}

TraceQuery TraceGenerator::SampleQuery(Rng& rng, const ClassMix& mix,
                                       const RankSampler& rank,
                                       size_t churn_phase, double progress,
                                       const SampleWindow& window) {
  BYC_CHECK(!phase_class_rank_.empty());  // EnsureTemplates() first
  churn_phase = std::min(churn_phase, phase_class_rank_.size() - 1);
  double p_hot = mix.hot_mass();
  BYC_CHECK_LE(p_hot, 1.0 + 1e-9);

  double r = rng.NextDouble();
  const Template* tmpl;
  if (r >= p_hot) {
    tmpl = &cold_templates_[rng.NextUint64(cold_templates_.size())];
  } else {
    int klass;
    if (r < mix.p_range) {
      klass = ClassOf(QueryClass::kRange);
    } else if (r < mix.p_range + mix.p_spatial) {
      klass = ClassOf(QueryClass::kSpatial);
    } else if (r < mix.p_range + mix.p_spatial + mix.p_identity) {
      klass = ClassOf(QueryClass::kIdentity);
    } else if (r < p_hot - mix.p_join) {
      klass = ClassOf(QueryClass::kAggregate);
    } else {
      klass = ClassOf(QueryClass::kJoin);
    }
    const auto& order =
        phase_class_rank_[churn_phase][static_cast<size_t>(klass)];
    size_t pick = std::min(rank.Sample(rng, progress), order.size() - 1);
    tmpl = &hot_templates_[static_cast<size_t>(order[pick])];
  }
  return Instantiate(*tmpl, rng, window);
}

Trace TraceGenerator::Generate() {
  EnsureTemplates();

  Rng rng(options_.seed);
  Trace trace;
  trace.name = catalog_->name();
  trace.queries.reserve(options_.num_queries);

  RankSampler rank(static_cast<size_t>(options_.templates_per_class),
                   options_.template_dist);
  const SampleWindow window;  // unconstrained
  for (size_t i = 0; i < options_.num_queries; ++i) {
    size_t phase =
        i * static_cast<size_t>(options_.num_phases) / options_.num_queries;
    trace.queries.push_back(
        SampleQuery(rng, options_.mix, rank, phase, 0, window));
  }

  CalibrateTo(trace, options_.target_sequence_cost);
  return trace;
}

double TraceGenerator::SequenceCost(const Trace& trace) const {
  query::YieldEstimator estimator(catalog_);
  double total = 0;
  for (const TraceQuery& tq : trace.queries) {
    total += estimator.EstimateResultRows(tq.query) *
             estimator.OutputRowWidth(tq.query);
  }
  return total;
}

void TraceGenerator::CalibrateTo(Trace& trace, double target_bytes) const {
  if (target_bytes <= 0) return;
  // Rescale non-identity filter selectivities so the sequence cost lands
  // on the published target. Each query's yield is ~linear in a uniform
  // rescaling of its filters' product, so a few multiplicative iterations
  // converge; clamping at 1 (full scans) makes late iterations lean on
  // the remaining headroom.
  for (int iter = 0; iter < 6; ++iter) {
    double actual = SequenceCost(trace);
    double alpha = target_bytes / actual;
    if (std::abs(alpha - 1.0) < 0.01) return;
    for (TraceQuery& tq : trace.queries) {
      int scalable = 0;
      for (const query::ResolvedFilter& f : tq.query.filters) {
        if (!(f.op == query::CmpOp::kEq && f.column.column == 0)) {
          ++scalable;
        }
      }
      if (scalable == 0) continue;
      double per_filter = std::pow(alpha, 1.0 / scalable);
      for (query::ResolvedFilter& f : tq.query.filters) {
        if (f.op == query::CmpOp::kEq && f.column.column == 0) continue;
        f.selectivity = std::clamp(f.selectivity * per_filter, 1e-7, 1.0);
      }
    }
  }
}

}  // namespace byc::workload
