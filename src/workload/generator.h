#ifndef BYC_WORKLOAD_GENERATOR_H_
#define BYC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "workload/trace.h"

namespace byc::workload {

/// Knobs of the synthetic SDSS-like trace generator. Defaults follow the
/// EDR trace's published aggregates; see MakeEdrOptions()/MakeDr1Options()
/// for the two calibrated presets used by the benches.
struct GeneratorOptions {
  uint64_t seed = 20050405;
  /// Number of SQL requests in the trace (EDR: 27,663; DR1: 24,567).
  size_t num_queries = 27'663;
  /// Target sequence cost (sum of all query-result sizes) in bytes; the
  /// generator calibrates filter selectivities to land within ~1% of this
  /// (0 disables calibration). EDR: 1216.94 GB, DR1: 1980.4 GB.
  double target_sequence_cost = 0;

  /// Query-class mix. Must sum to <= 1; the remainder becomes cold-tail
  /// queries against the large rarely-used tables (PhotoProfile,
  /// Neighbors, cross-match tables) — the accesses an altruistic cache
  /// must bypass and an in-line cache fatally loads.
  double p_range = 0.52;
  double p_spatial = 0.07;
  double p_identity = 0.13;
  double p_aggregate = 0.10;
  double p_join = 0.13;

  /// Schema locality: number of templates per hot query class and the
  /// Zipf skew with which queries reuse them. Templates fix the column
  /// sets ("schema reuse: conducting queries with similar schema against
  /// different data", §1.1); instantiation varies literals and region.
  int templates_per_class = 12;
  double template_zipf_theta = 1.1;

  /// Hot-column pool per table: templates draw their columns from the
  /// first `hot_columns_per_table` of a seed-shuffled column order, which
  /// concentrates accesses on a small fraction of the schema (Fig. 5/6).
  int hot_columns_per_table = 32;

  /// Workload drift: the trace is divided into `num_phases` epochs; at
  /// each phase boundary a `phase_churn` fraction of template popularity
  /// ranks reshuffle, creating the bursts/episodes the Rate-Profile
  /// algorithm's episode machinery targets.
  int num_phases = 8;
  double phase_churn = 0.35;

  /// Lognormal sigma for per-query selectivity jitter around a template's
  /// base selectivity.
  double selectivity_sigma = 0.30;

  /// Sky-cell universe for the containment analysis (Fig. 4): region
  /// queries cover short runs of cells anchored uniformly at random, so
  /// object-identifier reuse across queries is rare.
  int64_t num_sky_cells = 262'144;
};

/// EDR-shaped preset: 27,663 queries, 1216.94 GB sequence cost.
GeneratorOptions MakeEdrOptions();

/// DR1-shaped preset: 24,567 queries, 1980.4 GB sequence cost, a more
/// dispersed workload (heavier cold tail, stronger drift) matching the
/// paper's higher DR1 bypass costs.
GeneratorOptions MakeDr1Options();

/// Synthesizes SDSS-like query traces against a catalog. Deterministic
/// given (catalog, options): the same seed always produces the same
/// trace.
class TraceGenerator {
 public:
  TraceGenerator(const catalog::Catalog* catalog,
                 const GeneratorOptions& options);

  /// Generates and (if a target is set) calibrates the trace.
  Trace Generate();

  /// Sum of all query yields in bytes (the sequence cost) under the
  /// library's yield estimator; exposed for tests and calibration checks.
  double SequenceCost(const Trace& trace) const;

 private:
  struct Template {
    QueryClass klass = QueryClass::kRange;
    query::ResolvedQuery skeleton;
  };

  void BuildTemplates();
  Template MakeRangeTemplate(Rng& rng);
  Template MakeSpatialTemplate(Rng& rng);
  Template MakeIdentityTemplate(Rng& rng);
  Template MakeAggregateTemplate(Rng& rng);
  Template MakeJoinTemplate(Rng& rng);
  Template MakeColdTemplate(Rng& rng);

  /// Picks 'count' distinct columns of `table` from its hot pool.
  std::vector<int> PickHotColumns(Rng& rng, int table, int count);

  TraceQuery Instantiate(const Template& tmpl, Rng& rng);
  void Calibrate(Trace& trace);

  const catalog::Catalog* catalog_;
  GeneratorOptions options_;
  int photo_obj_;
  int spec_obj_;
  std::vector<int> warm_tables_;
  std::vector<int> cold_tables_;
  /// Per-table seed-shuffled column order; the hot pool is its prefix.
  std::vector<std::vector<int>> column_order_;
  std::vector<Template> hot_templates_;
  std::vector<Template> cold_templates_;
  /// Hot-template indices grouped by query class (range, spatial,
  /// identity, aggregate, join).
  std::vector<std::vector<int>> class_index_;
  /// phase_class_rank_[phase][class]: popularity-ordered permutation of
  /// class_index_[class] for that phase.
  std::vector<std::vector<std::vector<int>>> phase_class_rank_;
};

}  // namespace byc::workload

#endif  // BYC_WORKLOAD_GENERATOR_H_
