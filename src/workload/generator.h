#ifndef BYC_WORKLOAD_GENERATOR_H_
#define BYC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "workload/distribution.h"
#include "workload/trace.h"

namespace byc::workload {

/// Query-class mix of a workload slice. Must sum to <= 1; the remainder
/// becomes cold-tail queries against the large rarely-used tables
/// (PhotoProfile, Neighbors, cross-match tables) — the accesses an
/// altruistic cache must bypass and an in-line cache fatally loads.
struct ClassMix {
  double p_range = 0.52;
  double p_spatial = 0.07;
  double p_identity = 0.13;
  double p_aggregate = 0.10;
  double p_join = 0.13;

  double hot_mass() const {
    return p_range + p_spatial + p_identity + p_aggregate + p_join;
  }

  bool operator==(const ClassMix&) const = default;
};

/// Per-query sampling constraints a scenario phase imposes on template
/// instantiation. The defaults are the unconstrained legacy behavior —
/// a default window changes neither the draw sequence nor the emitted
/// query, which is what keeps the single-phase path byte-identical.
struct SampleWindow {
  /// Growing-repository mode: only this prefix fraction of each table's
  /// rows (and of the sky-cell universe) exists yet. Identity
  /// identifiers and region anchors are drawn inside the visible
  /// prefix; 1.0 means the whole release exists (legacy behavior).
  double visible_fraction = 1.0;
  /// Flash-crowd mode: with this probability a region query's footprint
  /// is pinned inside [region_lo, region_lo + region_span) instead of
  /// anchored uniformly. 0 disables the pin (and its Rng draw).
  double pin_fraction = 0;
  int64_t region_lo = 0;
  int64_t region_span = 0;

  bool operator==(const SampleWindow&) const = default;
};

/// Knobs of the synthetic SDSS-like trace generator. Defaults follow the
/// EDR trace's published aggregates; see MakeEdrOptions()/MakeDr1Options()
/// for the two calibrated presets used by the benches.
struct GeneratorOptions {
  uint64_t seed = 20050405;
  /// Number of SQL requests in the trace (EDR: 27,663; DR1: 24,567).
  size_t num_queries = 27'663;
  /// Target sequence cost (sum of all query-result sizes) in bytes; the
  /// generator calibrates filter selectivities to land within ~1% of this
  /// (0 disables calibration). EDR: 1216.94 GB, DR1: 1980.4 GB.
  double target_sequence_cost = 0;

  /// Query-class mix (see ClassMix).
  ClassMix mix;

  /// Schema locality: number of templates per hot query class and the
  /// rank distribution with which queries reuse them. Templates fix the
  /// column sets ("schema reuse: conducting queries with similar schema
  /// against different data", §1.1); instantiation varies literals and
  /// region. The default is the Zipf(1.1) reuse the paper-era traces
  /// show; scenario phases swap in uniform or hotspot specs.
  int templates_per_class = 12;
  DistributionSpec template_dist;

  /// Hot-column pool per table: templates draw their columns from the
  /// first `hot_columns_per_table` of a seed-shuffled column order, which
  /// concentrates accesses on a small fraction of the schema (Fig. 5/6).
  int hot_columns_per_table = 32;

  /// Workload drift: the trace is divided into `num_phases` epochs; at
  /// each phase boundary a `phase_churn` fraction of template popularity
  /// ranks reshuffle, creating the bursts/episodes the Rate-Profile
  /// algorithm's episode machinery targets. (These are template-churn
  /// epochs, not scenario phases — a scenario phase spans many churn
  /// epochs and changes the distribution itself.)
  int num_phases = 8;
  double phase_churn = 0.35;

  /// Lognormal sigma for per-query selectivity jitter around a template's
  /// base selectivity.
  double selectivity_sigma = 0.30;

  /// Sky-cell universe for the containment analysis (Fig. 4): region
  /// queries cover short runs of cells anchored uniformly at random, so
  /// object-identifier reuse across queries is rare.
  int64_t num_sky_cells = 262'144;
};

/// EDR-shaped preset: 27,663 queries, 1216.94 GB sequence cost.
GeneratorOptions MakeEdrOptions();

/// DR1-shaped preset: 24,567 queries, 1980.4 GB sequence cost, a more
/// dispersed workload (heavier cold tail, stronger drift) matching the
/// paper's higher DR1 bypass costs.
GeneratorOptions MakeDr1Options();

/// Synthesizes SDSS-like query traces against a catalog. Deterministic
/// given (catalog, options): the same seed always produces the same
/// trace.
///
/// Two entry points share the template machinery:
///  * Generate() — the legacy single-phase path: one call produces the
///    whole calibrated trace.
///  * SampleQuery() — the scenario-engine path: the caller owns the Rng
///    and the per-query mix/distribution/window, and the generator
///    instantiates one query at a time. Generate() is implemented on
///    SampleQuery with the default window, so a one-phase scenario with
///    matching knobs reproduces the legacy trace byte-for-byte.
class TraceGenerator {
 public:
  TraceGenerator(const catalog::Catalog* catalog,
                 const GeneratorOptions& options);

  /// Generates and (if a target is set) calibrates the trace.
  Trace Generate();

  /// Builds the template pool and churn-phase rankings once (idempotent).
  /// SampleQuery callers must invoke this before the first sample;
  /// Generate() does it implicitly.
  void EnsureTemplates();

  /// Number of template-churn epochs (GeneratorOptions::num_phases).
  size_t num_churn_phases() const { return phase_class_rank_.size(); }

  const GeneratorOptions& options() const { return options_; }

  /// Samples one query: class pick from `mix`, template rank from
  /// `rank` (progress drives hotspot drift), template popularity from
  /// churn epoch `churn_phase`, literals/footprint constrained by
  /// `window`. All randomness flows through `rng` — same inputs, same
  /// query.
  TraceQuery SampleQuery(Rng& rng, const ClassMix& mix,
                         const RankSampler& rank, size_t churn_phase,
                         double progress, const SampleWindow& window);

  /// Rescales filter selectivities so SequenceCost(trace) lands within
  /// ~1% of `target_bytes` (no-op when target_bytes <= 0). Exposed so
  /// the scenario engine calibrates a multi-phase trace with the exact
  /// code path the legacy generator uses.
  void CalibrateTo(Trace& trace, double target_bytes) const;

  /// Sum of all query yields in bytes (the sequence cost) under the
  /// library's yield estimator; exposed for tests and calibration checks.
  double SequenceCost(const Trace& trace) const;

 private:
  struct Template {
    QueryClass klass = QueryClass::kRange;
    query::ResolvedQuery skeleton;
  };

  void BuildTemplates();
  Template MakeRangeTemplate(Rng& rng);
  Template MakeSpatialTemplate(Rng& rng);
  Template MakeIdentityTemplate(Rng& rng);
  Template MakeAggregateTemplate(Rng& rng);
  Template MakeJoinTemplate(Rng& rng);
  Template MakeColdTemplate(Rng& rng);

  /// Picks 'count' distinct columns of `table` from its hot pool.
  std::vector<int> PickHotColumns(Rng& rng, int table, int count);

  TraceQuery Instantiate(const Template& tmpl, Rng& rng,
                         const SampleWindow& window);

  const catalog::Catalog* catalog_;
  GeneratorOptions options_;
  int photo_obj_;
  int spec_obj_;
  std::vector<int> warm_tables_;
  std::vector<int> cold_tables_;
  /// Per-table seed-shuffled column order; the hot pool is its prefix.
  std::vector<std::vector<int>> column_order_;
  std::vector<Template> hot_templates_;
  std::vector<Template> cold_templates_;
  /// Hot-template indices grouped by query class (range, spatial,
  /// identity, aggregate, join).
  std::vector<std::vector<int>> class_index_;
  /// phase_class_rank_[phase][class]: popularity-ordered permutation of
  /// class_index_[class] for that phase.
  std::vector<std::vector<std::vector<int>>> phase_class_rank_;
};

}  // namespace byc::workload

#endif  // BYC_WORKLOAD_GENERATOR_H_
