#include "workload/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace byc::workload {

std::string_view DistKindName(DistKind kind) {
  switch (kind) {
    case DistKind::kZipf:
      return "zipf";
    case DistKind::kUniform:
      return "uniform";
    case DistKind::kHotspot:
      return "hotspot";
  }
  return "?";
}

std::optional<DistKind> ParseDistKind(std::string_view name) {
  static constexpr DistKind kAll[] = {DistKind::kZipf, DistKind::kUniform,
                                      DistKind::kHotspot};
  for (DistKind kind : kAll) {
    if (name == DistKindName(kind)) return kind;
  }
  return std::nullopt;
}

RankSampler::RankSampler(size_t n, const DistributionSpec& spec)
    : n_(n), spec_(spec) {
  BYC_CHECK_GE(n, 1u);
  BYC_CHECK_GE(spec.theta, 0.0);
  BYC_CHECK(spec.hot_fraction >= 0.0 && spec.hot_fraction <= 1.0);
  BYC_CHECK(spec.hot_ranks >= 0.0 && spec.hot_ranks <= 1.0);
  BYC_CHECK_GE(spec.drift, 0.0);
  switch (spec_.kind) {
    case DistKind::kZipf:
      zipf_.emplace(n_, spec_.theta);
      break;
    case DistKind::kUniform:
      break;
    case DistKind::kHotspot:
      hot_count_ = std::clamp<size_t>(
          static_cast<size_t>(std::ceil(spec_.hot_ranks *
                                        static_cast<double>(n_))),
          1, n_);
      break;
  }
}

size_t RankSampler::Sample(Rng& rng, double progress) const {
  double u = rng.NextDouble();
  switch (spec_.kind) {
    case DistKind::kZipf:
      // Same cdf search ZipfSampler::Sample runs on the same u, so a
      // kZipf RankSampler is byte-identical to the legacy ZipfSampler.
      return zipf_->RankOf(u);
    case DistKind::kUniform: {
      size_t rank = static_cast<size_t>(u * static_cast<double>(n_));
      return std::min(rank, n_ - 1);
    }
    case DistKind::kHotspot: {
      size_t start = 0;
      if (spec_.drift > 0) {
        double p = std::clamp(progress, 0.0, 1.0);
        start = static_cast<size_t>(spec_.drift * p) % n_;
      }
      size_t cold = n_ - hot_count_;
      bool hot;
      double v;
      if (cold == 0 || u < spec_.hot_fraction) {
        hot = true;
        v = spec_.hot_fraction > 0 ? u / spec_.hot_fraction : u;
      } else {
        hot = false;
        v = (u - spec_.hot_fraction) / (1.0 - spec_.hot_fraction);
      }
      v = std::clamp(v, 0.0, 1.0);
      if (hot) {
        size_t idx = std::min(
            static_cast<size_t>(v * static_cast<double>(hot_count_)),
            hot_count_ - 1);
        return (start + idx) % n_;
      }
      size_t idx = std::min(
          static_cast<size_t>(v * static_cast<double>(cold)), cold - 1);
      return (start + hot_count_ + idx) % n_;
    }
  }
  BYC_CHECK(false);
  return 0;
}

}  // namespace byc::workload
