#ifndef BYC_WORKLOAD_TRACE_STATS_H_
#define BYC_WORKLOAD_TRACE_STATS_H_

#include <cstdint>
#include <vector>

#include "catalog/object_id.h"
#include "workload/trace.h"

namespace byc::workload {

/// Query-containment analysis (Fig. 4): over the region (range/spatial)
/// queries of a trace, how often is a query's celestial-object footprint
/// already covered by the previous `window` such queries — i.e., could a
/// semantic/query cache have answered it from prior results?
struct ContainmentStats {
  size_t window = 50;
  /// Number of region queries analyzed.
  size_t num_queries = 0;
  /// Queries whose entire cell set appeared in the window's union.
  size_t fully_contained = 0;
  /// Mean fraction of a query's cells already present in the window.
  double mean_overlap = 0;
  /// Distinct cells touched across the analyzed queries.
  size_t universe_cells = 0;
  /// (query ordinal, reused-cell count) scatter samples for plotting.
  std::vector<std::pair<uint32_t, uint32_t>> reuse_scatter;
};

ContainmentStats AnalyzeContainment(const Trace& trace, size_t window);

/// Schema-locality analysis (Figs. 5 and 6): per-object access counts and
/// lifetimes at a chosen granularity, plus concentration summaries — the
/// evidence that SDSS workloads reuse schema elements even though they do
/// not reuse data objects.
struct ObjectUsage {
  catalog::ObjectId object;
  uint64_t accesses = 0;
  uint32_t first_query = 0;
  uint32_t last_query = 0;
};

struct LocalityStats {
  std::vector<ObjectUsage> usage;  // sorted by descending access count
  /// Total object-reference events.
  uint64_t total_references = 0;
  /// Objects of the catalog never referenced.
  size_t untouched_objects = 0;
  /// Smallest number of objects covering 90% of references.
  size_t objects_for_90pct = 0;
  /// Mean active span (last - first query) of the ten hottest objects,
  /// as a fraction of the trace length — "heavy and long lasting periods
  /// of reuse".
  double hot_span_fraction = 0;
};

LocalityStats AnalyzeSchemaLocality(const catalog::Catalog& catalog,
                                    const Trace& trace,
                                    catalog::Granularity granularity);

}  // namespace byc::workload

#endif  // BYC_WORKLOAD_TRACE_STATS_H_
