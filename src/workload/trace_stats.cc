#include "workload/trace_stats.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

#include "query/yield.h"

namespace byc::workload {

ContainmentStats AnalyzeContainment(const Trace& trace, size_t window) {
  ContainmentStats stats;
  stats.window = window;

  std::deque<const TraceQuery*> recent;
  std::unordered_map<int64_t, uint32_t> cell_refcount;  // cells in window
  std::set<int64_t> universe;

  uint32_t ordinal = 0;
  double overlap_sum = 0;
  for (const TraceQuery& tq : trace.queries) {
    if (tq.klass != QueryClass::kRange && tq.klass != QueryClass::kSpatial) {
      continue;
    }
    if (tq.cells.empty()) continue;

    uint32_t reused = 0;
    for (int64_t cell : tq.cells) {
      universe.insert(cell);
      if (cell_refcount.count(cell) != 0) ++reused;
    }
    if (ordinal > 0) {
      ++stats.num_queries;
      double overlap =
          static_cast<double>(reused) / static_cast<double>(tq.cells.size());
      overlap_sum += overlap;
      if (reused == tq.cells.size()) ++stats.fully_contained;
      stats.reuse_scatter.emplace_back(ordinal, reused);
    }

    // Slide the window.
    recent.push_back(&tq);
    for (int64_t cell : tq.cells) ++cell_refcount[cell];
    if (recent.size() > window) {
      const TraceQuery* old = recent.front();
      recent.pop_front();
      for (int64_t cell : old->cells) {
        auto it = cell_refcount.find(cell);
        if (--it->second == 0) cell_refcount.erase(it);
      }
    }
    ++ordinal;
  }

  stats.mean_overlap =
      stats.num_queries == 0 ? 0 : overlap_sum / static_cast<double>(stats.num_queries);
  stats.universe_cells = universe.size();
  return stats;
}

LocalityStats AnalyzeSchemaLocality(const catalog::Catalog& catalog,
                                    const Trace& trace,
                                    catalog::Granularity granularity) {
  LocalityStats stats;
  query::YieldEstimator estimator(&catalog);

  std::unordered_map<catalog::ObjectId, ObjectUsage, catalog::ObjectIdHash>
      usage;
  uint32_t qidx = 0;
  for (const TraceQuery& tq : trace.queries) {
    query::QueryYield yields = estimator.Estimate(tq.query, granularity);
    for (const query::ObjectYield& oy : yields.per_object) {
      ObjectUsage& u = usage[oy.object];
      if (u.accesses == 0) {
        u.object = oy.object;
        u.first_query = qidx;
      }
      ++u.accesses;
      u.last_query = qidx;
      ++stats.total_references;
    }
    ++qidx;
  }

  stats.usage.reserve(usage.size());
  for (const auto& [id, u] : usage) stats.usage.push_back(u);
  std::sort(stats.usage.begin(), stats.usage.end(),
            [](const ObjectUsage& a, const ObjectUsage& b) {
              if (a.accesses != b.accesses) return a.accesses > b.accesses;
              return a.object.Key() < b.object.Key();
            });

  size_t total_objects = EnumerateObjects(catalog, granularity).size();
  stats.untouched_objects = total_objects - stats.usage.size();

  uint64_t covered = 0;
  uint64_t threshold =
      static_cast<uint64_t>(0.9 * static_cast<double>(stats.total_references));
  for (const ObjectUsage& u : stats.usage) {
    covered += u.accesses;
    ++stats.objects_for_90pct;
    if (covered >= threshold) break;
  }

  size_t hot = std::min<size_t>(10, stats.usage.size());
  double span_sum = 0;
  for (size_t i = 0; i < hot; ++i) {
    span_sum += static_cast<double>(stats.usage[i].last_query -
                                    stats.usage[i].first_query);
  }
  if (hot > 0 && trace.queries.size() > 1) {
    stats.hot_span_fraction =
        span_sum / static_cast<double>(hot) /
        static_cast<double>(trace.queries.size() - 1);
  }
  return stats;
}

}  // namespace byc::workload
