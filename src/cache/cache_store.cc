#include "cache/cache_store.h"

namespace byc::cache {

Status CacheStore::Insert(const catalog::ObjectId& id, uint64_t size_bytes,
                          uint64_t load_time) {
  if (entries_.count(id) != 0) {
    return Status::AlreadyExists("object already cached");
  }
  if (size_bytes > free_bytes()) {
    return Status::CapacityExceeded("insufficient free cache space");
  }
  entries_.emplace(id, Entry{size_bytes, load_time});
  used_bytes_ += size_bytes;
  return Status::OK();
}

Status CacheStore::Erase(const catalog::ObjectId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("object not cached");
  }
  used_bytes_ -= it->second.size_bytes;
  entries_.erase(it);
  return Status::OK();
}

const CacheStore::Entry* CacheStore::Find(const catalog::ObjectId& id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::pair<catalog::ObjectId, CacheStore::Entry>>
CacheStore::Snapshot() const {
  std::vector<std::pair<catalog::ObjectId, Entry>> out;
  out.reserve(entries_.size());
  for (const auto& kv : entries_) out.push_back(kv);
  return out;
}

}  // namespace byc::cache
