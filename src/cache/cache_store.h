#ifndef BYC_CACHE_CACHE_STORE_H_
#define BYC_CACHE_CACHE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/object_id.h"
#include "common/status.h"

namespace byc::cache {

/// Capacity-managed residency set for cacheable database objects. Policy
/// algorithms layer their utility metadata on top; the store answers
/// hit/miss in O(1) via a hash table (as the paper's prototype does) and
/// enforces the byte-capacity invariant.
class CacheStore {
 public:
  struct Entry {
    uint64_t size_bytes = 0;
    /// Logical time (access index) at which the object was loaded; the
    /// Rate-Profile algorithm's t_i in Eq. 3.
    uint64_t load_time = 0;
  };

  explicit CacheStore(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t free_bytes() const { return capacity_bytes_ - used_bytes_; }
  size_t num_objects() const { return entries_.size(); }

  bool Contains(const catalog::ObjectId& id) const {
    return entries_.count(id) != 0;
  }

  /// True iff the object could ever reside in this cache.
  bool Fits(uint64_t size_bytes) const {
    return size_bytes <= capacity_bytes_;
  }

  /// Inserts an object. Fails with CapacityExceeded when free space is
  /// insufficient (callers evict first) and AlreadyExists on duplicates.
  Status Insert(const catalog::ObjectId& id, uint64_t size_bytes,
                uint64_t load_time);

  /// Removes an object; NotFound if absent.
  Status Erase(const catalog::ObjectId& id);

  /// Looks up an entry; nullptr when absent. The pointer is invalidated
  /// by Insert/Erase.
  const Entry* Find(const catalog::ObjectId& id) const;

  /// Snapshot of resident objects (unspecified order).
  std::vector<std::pair<catalog::ObjectId, Entry>> Snapshot() const;

  /// Visits resident objects.
  template <typename F>
  void ForEach(F&& fn) const {
    for (const auto& [id, entry] : entries_) fn(id, entry);
  }

  /// Empties the store (capacity unchanged) — snapshot restore rebuilds
  /// residency from serialized state.
  void Clear() {
    entries_.clear();
    used_bytes_ = 0;
  }

 private:
  uint64_t capacity_bytes_;
  uint64_t used_bytes_ = 0;
  std::unordered_map<catalog::ObjectId, Entry, catalog::ObjectIdHash>
      entries_;
};

}  // namespace byc::cache

#endif  // BYC_CACHE_CACHE_STORE_H_
