#ifndef BYC_CACHE_INDEXED_HEAP_H_
#define BYC_CACHE_INDEXED_HEAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace byc::cache {

/// Min-heap over (key, priority) pairs with an index from key to heap
/// position, supporting O(log n) insert/update/erase and O(1) peek-min.
/// This is the structure the paper's prototype uses for its utility-ordered
/// cache ("The cache is a binary heap of database objects in which heap
/// ordering is done based on utility value", §6).
///
/// K must be hashable via Hash and equality-comparable.
template <typename K, typename Hash = std::hash<K>>
class IndexedMinHeap {
 public:
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  bool Contains(const K& key) const { return index_.count(key) != 0; }

  /// Pre-sizes the heap and its index for `n` keys, so a replay that
  /// knows its object universe (or a policy that knows its residency
  /// bound) avoids rehash/reallocation churn on the per-access path.
  void Reserve(size_t n) {
    entries_.reserve(n);
    index_.reserve(n);
  }

  /// Inserts a new key. Precondition: !Contains(key).
  void Insert(const K& key, double priority) {
    auto [it, inserted] = index_.try_emplace(key, entries_.size());
    BYC_CHECK(inserted);
    entries_.push_back(Entry{key, priority});
    SiftUp(entries_.size() - 1);
  }

  /// Changes the priority of an existing key. Precondition: Contains(key).
  void Update(const K& key, double priority) {
    auto it = index_.find(key);
    BYC_CHECK(it != index_.end());
    UpdateAt(it->second, priority);
  }

  /// Inserts or updates with a single index lookup.
  void Upsert(const K& key, double priority) {
    auto [it, inserted] = index_.try_emplace(key, entries_.size());
    if (inserted) {
      entries_.push_back(Entry{key, priority});
      SiftUp(entries_.size() - 1);
    } else {
      UpdateAt(it->second, priority);
    }
  }

  /// Removes a key. Precondition: Contains(key).
  void Erase(const K& key) {
    auto it = index_.find(key);
    BYC_CHECK(it != index_.end());
    size_t pos = it->second;
    index_.erase(it);
    size_t last = entries_.size() - 1;
    if (pos != last) {
      entries_[pos] = std::move(entries_[last]);
      index_[entries_[pos].key] = pos;
      entries_.pop_back();
      // The moved entry may need to travel either direction.
      if (pos > 0 &&
          entries_[pos].priority < entries_[(pos - 1) / 2].priority) {
        SiftUp(pos);
      } else {
        SiftDown(pos);
      }
    } else {
      entries_.pop_back();
    }
  }

  /// Key with the smallest priority. Precondition: !empty().
  const K& PeekMinKey() const {
    BYC_CHECK(!empty());
    return entries_[0].key;
  }

  /// Priority of the min entry. Precondition: !empty().
  double PeekMinPriority() const {
    BYC_CHECK(!empty());
    return entries_[0].priority;
  }

  /// Priority of an existing key. Precondition: Contains(key).
  double PriorityOf(const K& key) const {
    auto it = index_.find(key);
    BYC_CHECK(it != index_.end());
    return entries_[it->second].priority;
  }

  /// Removes and returns the min key. Precondition: !empty(). Cheaper
  /// than PeekMinKey() + Erase(): the victim is already at the root, so
  /// no position lookup and no up-or-down case analysis is needed.
  K PopMin() {
    BYC_CHECK(!empty());
    K key = std::move(entries_[0].key);
    index_.erase(key);
    size_t last = entries_.size() - 1;
    if (last != 0) {
      entries_[0] = std::move(entries_[last]);
      index_[entries_[0].key] = 0;
      entries_.pop_back();
      SiftDown(0);
    } else {
      entries_.pop_back();
    }
    return key;
  }

  /// Visits all (key, priority) pairs in the heap's internal array order
  /// (deterministic for a given operation history; snapshot save/restore
  /// relies on reproducing exactly this order).
  template <typename F>
  void ForEach(F&& fn) const {
    for (const Entry& e : entries_) fn(e.key, e.priority);
  }

  /// Empties the heap — snapshot restore rebuilds it from serialized
  /// state.
  void Clear() {
    entries_.clear();
    index_.clear();
  }

  /// Heap-order invariant check, used by tests.
  bool CheckInvariants() const {
    if (index_.size() != entries_.size()) return false;
    for (size_t i = 1; i < entries_.size(); ++i) {
      size_t parent = (i - 1) / 2;
      if (entries_[parent].priority > entries_[i].priority) return false;
    }
    for (const auto& [key, pos] : index_) {
      if (pos >= entries_.size() || !(entries_[pos].key == key)) return false;
    }
    return true;
  }

 private:
  struct Entry {
    K key;
    double priority;
  };

  void UpdateAt(size_t pos, double priority) {
    double old = entries_[pos].priority;
    entries_[pos].priority = priority;
    if (priority < old) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  void SiftUp(size_t pos) {
    while (pos > 0) {
      size_t parent = (pos - 1) / 2;
      if (entries_[parent].priority <= entries_[pos].priority) break;
      SwapEntries(parent, pos);
      pos = parent;
    }
  }

  void SiftDown(size_t pos) {
    for (;;) {
      size_t left = 2 * pos + 1;
      size_t right = left + 1;
      size_t smallest = pos;
      if (left < entries_.size() &&
          entries_[left].priority < entries_[smallest].priority) {
        smallest = left;
      }
      if (right < entries_.size() &&
          entries_[right].priority < entries_[smallest].priority) {
        smallest = right;
      }
      if (smallest == pos) break;
      SwapEntries(smallest, pos);
      pos = smallest;
    }
  }

  void SwapEntries(size_t a, size_t b) {
    std::swap(entries_[a], entries_[b]);
    index_[entries_[a].key] = a;
    index_[entries_[b].key] = b;
  }

  std::vector<Entry> entries_;
  std::unordered_map<K, size_t, Hash> index_;
};

}  // namespace byc::cache

#endif  // BYC_CACHE_INDEXED_HEAP_H_
