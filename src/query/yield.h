#ifndef BYC_QUERY_YIELD_H_
#define BYC_QUERY_YIELD_H_

#include <vector>

#include "catalog/object_id.h"
#include "query/resolved.h"

namespace byc::query {

/// Yield of one cacheable object within a query: the object's share of
/// the query's result bytes, computed by the paper's decomposition rules.
struct ObjectYield {
  catalog::ObjectId object;
  double yield_bytes = 0;
};

/// The schema-shape-dependent part of a yield decomposition: everything
/// Estimate() derives from the query's tables, referenced columns, and
/// aggregates — but not from its literal values or selectivities. For a
/// fixed shape, Estimate(q, g) produces exactly
///
///   total_bytes = EstimateResultRows(q) * row_width
///   yield_i     = total_bytes * numerator_i / denominator_i
///
/// so callers (the mediator's decomposition memo) can cache the skeleton
/// per shape and rescale per query with bit-identical results.
struct YieldSkeleton {
  /// Bytes per result row (selectivity-independent).
  double row_width = 0;
  struct Share {
    catalog::ObjectId object;
    /// Attribute count (table granularity) or column width (column
    /// granularity) of this object among the referenced attributes.
    double numerator = 0;
    /// Total attribute count / total referenced column width.
    double denominator = 0;
  };
  /// Per-object shares in the deterministic order Estimate() emits them.
  std::vector<Share> shares;
};

/// The estimated yield of an entire query.
struct QueryYield {
  /// Estimated result cardinality (rows; 1 for fully aggregated queries).
  double result_rows = 0;
  /// Estimated result size in bytes — the yield `y` of the query, which
  /// is both the cost of bypassing it and the savings of serving it from
  /// cache (§3).
  double total_bytes = 0;
  /// Per-object decomposition at the requested granularity. Shares sum to
  /// total_bytes (modulo floating-point rounding).
  std::vector<ObjectYield> per_object;
};

/// Estimates query yields (result sizes) and decomposes them onto
/// cacheable objects, mirroring the paper's prototype (§6):
///
///  * result size = estimated result rows x output row width, where rows
///    follow an independence-assumption selectivity model and equi-joins
///    use a smallest-relation foreign-key model;
///  * table granularity: "yield for each table or view in a joined query
///    is divided in proportion to the table's contribution to the unique
///    attributes in the query";
///  * column granularity: "query yield is proportional to each attribute
///    based on a ratio of storage size of the attribute to the total
///    storage sizes of all columns referenced in the query" (the paper's
///    example: objID contributes 8/46 of the yield).
class YieldEstimator {
 public:
  explicit YieldEstimator(const catalog::Catalog* catalog)
      : catalog_(catalog) {}

  /// Full estimate with per-object decomposition. Implemented as
  /// EstimateSkeleton() + per-query rescaling, so skeleton-cached callers
  /// reproduce its output bit for bit.
  QueryYield Estimate(const ResolvedQuery& query,
                      catalog::Granularity granularity) const;

  /// The shape-dependent part of Estimate(): referenced objects, their
  /// proportional shares, and the output row width. Equal-shape queries
  /// (same tables, select items, filter columns/ops, joins — see
  /// SameSchemaShape) have equal skeletons.
  YieldSkeleton EstimateSkeleton(const ResolvedQuery& query,
                                 catalog::Granularity granularity) const;

  /// Estimated result cardinality only.
  double EstimateResultRows(const ResolvedQuery& query) const;

  /// Bytes per result row (8 bytes per aggregate output).
  double OutputRowWidth(const ResolvedQuery& query) const;

 private:
  const catalog::Catalog* catalog_;
};

}  // namespace byc::query

#endif  // BYC_QUERY_YIELD_H_
