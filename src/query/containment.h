#ifndef BYC_QUERY_CONTAINMENT_H_
#define BYC_QUERY_CONTAINMENT_H_

#include "query/resolved.h"

namespace byc::query {

/// Sound (but incomplete) query-containment test for the conjunctive
/// SELECT queries of this library: returns true only when every result
/// tuple of `incoming` is certainly derivable from a stored result of
/// `cached`. General conjunctive-query containment is NP-complete
/// (Chandra & Merlin, cited in §6.1); this decidable fragment covers the
/// refinement pattern a semantic cache can actually exploit:
///
///  * identical FROM table multiset (matched slot-by-slot after
///    canonical ordering) and identical join structure;
///  * every column `incoming` projects is projected by `cached`
///    (no aggregates on either side — aggregate results are not
///    decomposable);
///  * `incoming`'s predicates imply `cached`'s: for every filter of
///    `cached` there is a filter of `incoming` on the same column that
///    is at least as restrictive (e.g. cached `mag > 17` is implied by
///    incoming `mag > 19`; cached `z < 0.1` by incoming `z < 0.05`;
///    equality implies any bound it satisfies).
///
/// Returns false whenever containment cannot be established.
bool QueryContains(const ResolvedQuery& cached,
                   const ResolvedQuery& incoming);

/// Single-predicate implication: does `stronger` (on the same column)
/// imply `weaker`? Exposed for tests and reuse.
bool FilterImplies(const ResolvedFilter& stronger,
                   const ResolvedFilter& weaker);

}  // namespace byc::query

#endif  // BYC_QUERY_CONTAINMENT_H_
