#ifndef BYC_QUERY_RESULT_CACHE_H_
#define BYC_QUERY_RESULT_CACHE_H_

#include <cstdint>
#include <list>

#include "query/resolved.h"

namespace byc::query {

/// A semantic query-result cache driven by *real* predicate containment
/// (QueryContains) rather than footprint heuristics: an incoming query is
/// answered from a stored result when the stored query provably contains
/// it. This is the strongest form of the semantic caching the paper's
/// §6.1 weighs against schema-object caching.
///
/// Candidate matching scans the LRU list (bounded by max_candidates):
/// containment can cross schema signatures (a refinement adds
/// predicates), so signature indexing would miss hits.
class ResultCache {
 public:
  struct Options {
    uint64_t capacity_bytes = 0;
    /// Stored results examined per lookup before giving up.
    size_t max_candidates = 128;
  };

  struct Stats {
    uint64_t queries = 0;
    uint64_t hits = 0;
    double wan_cost = 0;
    double saved_bytes = 0;
  };

  explicit ResultCache(const Options& options) : options_(options) {}

  /// Processes a query whose (estimated) result size is `result_bytes`.
  /// Returns true on a containment hit. Misses ship and store the
  /// result, evicting LRU entries to respect capacity.
  bool OnQuery(const ResolvedQuery& query, double result_bytes);

  const Stats& stats() const { return stats_; }
  uint64_t used_bytes() const { return used_bytes_; }
  size_t num_entries() const { return entries_.size(); }

 private:
  struct Entry {
    ResolvedQuery query;
    uint64_t size_bytes = 0;
  };

  Options options_;
  Stats stats_;
  uint64_t used_bytes_ = 0;
  std::list<Entry> entries_;  // most recently used first
};

}  // namespace byc::query

#endif  // BYC_QUERY_RESULT_CACHE_H_
