#include "query/result_cache.h"

#include "query/containment.h"

namespace byc::query {

bool ResultCache::OnQuery(const ResolvedQuery& query, double result_bytes) {
  ++stats_.queries;

  size_t examined = 0;
  for (auto it = entries_.begin();
       it != entries_.end() && examined < options_.max_candidates;
       ++it, ++examined) {
    if (QueryContains(it->query, query)) {
      entries_.splice(entries_.begin(), entries_, it);
      ++stats_.hits;
      stats_.saved_bytes += result_bytes;
      return true;
    }
  }

  stats_.wan_cost += result_bytes;
  uint64_t size = static_cast<uint64_t>(result_bytes);
  if (size > 0 && size <= options_.capacity_bytes) {
    while (!entries_.empty() &&
           options_.capacity_bytes - used_bytes_ < size) {
      used_bytes_ -= entries_.back().size_bytes;
      entries_.pop_back();
    }
    entries_.push_front(Entry{query, size});
    used_bytes_ += size;
  }
  return false;
}

}  // namespace byc::query
