#ifndef BYC_QUERY_AST_H_
#define BYC_QUERY_AST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace byc::query {

/// Comparison operators in WHERE predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CmpOpName(CmpOp op);

/// Aggregate functions in the SELECT list. The SDSS workload mixes plain
/// projections with aggregate queries (§6: "range queries, spatial
/// searches, identity queries, and aggregate queries").
enum class Aggregate : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };

std::string_view AggregateName(Aggregate agg);

/// An unresolved column reference: optional table alias + column name.
struct ColumnRef {
  std::string table_alias;  // empty when unqualified
  std::string column;

  std::string ToString() const {
    return table_alias.empty() ? column : table_alias + "." + column;
  }
};

/// One item of the SELECT list: a column, optionally aggregated and
/// optionally aliased ("s.z as redshift").
struct SelectItem {
  ColumnRef column;
  Aggregate aggregate = Aggregate::kNone;
  std::string alias;  // empty when none
};

/// One entry of the FROM list: table name with optional alias
/// ("SpecObj s").
struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name
};

/// One conjunct of the WHERE clause. Either a filter (column op literal)
/// or an equi-join (column = column).
struct Predicate {
  enum class Kind : uint8_t { kFilter, kJoin };

  Kind kind = Kind::kFilter;
  ColumnRef lhs;
  CmpOp op = CmpOp::kEq;
  double value = 0;  // filter literal
  ColumnRef rhs;     // join partner
};

/// A parsed (but not yet schema-bound) SELECT query in the dialect the
/// paper's trace queries use: projections with aggregates and aliases,
/// a comma-join FROM list, and an AND-conjunction WHERE clause.
struct SelectQuery {
  std::vector<SelectItem> select;
  std::vector<TableRef> from;
  std::vector<Predicate> where;

  /// Round-trips the query back to SQL text (for logs and examples).
  std::string ToString() const;
};

}  // namespace byc::query

#endif  // BYC_QUERY_AST_H_
