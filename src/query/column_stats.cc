#include "query/column_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace byc::query {

namespace {

bool NameContains(const std::string& name, const char* needle) {
  return name.find(needle) != std::string::npos;
}

bool IsKeyLike(const std::string& name) {
  return name.size() >= 2 &&
         (name.compare(name.size() - 2, 2, "ID") == 0 ||
          name.compare(name.size() - 2, 2, "Id") == 0 ||
          name.compare(name.size() - 2, 2, "id") == 0);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace

ColumnDistribution ColumnDistribution::For(const catalog::Table& table,
                                           int column) {
  const catalog::Column& col = table.column(column);
  const std::string& name = col.name;
  ColumnDistribution d;

  if (IsKeyLike(name) || col.type == catalog::ColumnType::kInt64) {
    d.shape_ = Shape::kUniform;
    d.min_ = 0;
    d.max_ = static_cast<double>(std::max<uint64_t>(table.row_count(), 2));
    d.distinct_ = static_cast<double>(std::max<uint64_t>(table.row_count(), 1));
  } else if (NameContains(name, "Mag") || NameContains(name, "extinction") ||
             NameContains(name, "dered")) {
    d.shape_ = Shape::kNormal;
    d.min_ = 12;
    d.max_ = 28;
    d.mu_ = 20;
    d.sigma_ = 2.2;
    d.distinct_ = 1e5;
  } else if (name == "z" || NameContains(name, "zErr") ||
             NameContains(name, "distance") || NameContains(name, "radius")) {
    d.shape_ = Shape::kExponential;
    d.min_ = 0;
    d.max_ = 6;
    d.rate_ = 1.0 / 0.35;
    d.distinct_ = 1e5;
  } else if (name == "ra") {
    d.shape_ = Shape::kUniform;
    d.min_ = 0;
    d.max_ = 360;
    d.distinct_ = 1e6;
  } else if (name == "dec") {
    d.shape_ = Shape::kUniform;
    d.min_ = -25;
    d.max_ = 85;
    d.distinct_ = 1e6;
  } else if (col.type == catalog::ColumnType::kInt16) {
    // Class/flag codes: a handful of distinct values.
    d.shape_ = Shape::kUniform;
    d.min_ = 0;
    d.max_ = 16;
    d.distinct_ = 16;
  } else {
    d.shape_ = Shape::kUniform;
    d.min_ = 0;
    d.max_ = 30;
    d.distinct_ = 1e4;
  }
  return d;
}

double ColumnDistribution::Cdf(double v) const {
  if (v <= min_) return 0;
  if (v >= max_) return 1;
  switch (shape_) {
    case Shape::kUniform:
      return (v - min_) / (max_ - min_);
    case Shape::kNormal: {
      // Truncated normal on [min, max].
      double lo = NormalCdf((min_ - mu_) / sigma_);
      double hi = NormalCdf((max_ - mu_) / sigma_);
      double at = NormalCdf((v - mu_) / sigma_);
      return (at - lo) / (hi - lo);
    }
    case Shape::kExponential: {
      // Truncated exponential on [min, max] (min is 0 by construction).
      double span = max_ - min_;
      double hi = 1.0 - std::exp(-rate_ * span);
      double at = 1.0 - std::exp(-rate_ * (v - min_));
      return at / hi;
    }
  }
  return 0;
}

double ColumnDistribution::Quantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  double lo = min_;
  double hi = max_;
  for (int i = 0; i < 50; ++i) {
    double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TableHistograms::TableHistograms(const catalog::Table& table, int buckets)
    : buckets_(buckets) {
  BYC_CHECK_GE(buckets, 2);
  columns_.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnDistribution dist = ColumnDistribution::For(table, c);
    ColumnHistogram h;
    h.lo = dist.min();
    h.hi = dist.max();
    h.width = (h.hi - h.lo) / buckets;
    h.distinct = dist.distinct_values();
    h.mass.resize(static_cast<size_t>(buckets));
    double prev = 0;
    for (int b = 0; b < buckets; ++b) {
      double edge = b + 1 == buckets ? h.hi : h.lo + h.width * (b + 1);
      double cdf = dist.Cdf(edge);
      h.mass[static_cast<size_t>(b)] = cdf - prev;
      prev = cdf;
    }
    columns_.push_back(std::move(h));
  }
}

double TableHistograms::BucketMass(int column, int bucket) const {
  return columns_[static_cast<size_t>(column)]
      .mass[static_cast<size_t>(bucket)];
}

double TableHistograms::HistCdf(const ColumnHistogram& h, double v) const {
  if (v <= h.lo) return 0;
  if (v >= h.hi) return 1;
  double pos = (v - h.lo) / h.width;
  int full = static_cast<int>(pos);
  full = std::min(full, buckets_ - 1);
  double cdf = 0;
  for (int b = 0; b < full; ++b) cdf += h.mass[static_cast<size_t>(b)];
  cdf += h.mass[static_cast<size_t>(full)] *
         (pos - static_cast<double>(full));
  return std::clamp(cdf, 0.0, 1.0);
}

double TableHistograms::Selectivity(int column, CmpOp op,
                                    double value) const {
  const ColumnHistogram& h = columns_[static_cast<size_t>(column)];
  double below = HistCdf(h, value);
  double eq = std::clamp(1.0 / h.distinct, 0.0, 1.0);
  double sel;
  switch (op) {
    case CmpOp::kLt:
      sel = below;
      break;
    case CmpOp::kLe:
      sel = below + eq;
      break;
    case CmpOp::kGt:
      sel = 1.0 - below - eq;
      break;
    case CmpOp::kGe:
      sel = 1.0 - below;
      break;
    case CmpOp::kEq:
      sel = eq;
      break;
    case CmpOp::kNe:
      sel = 1.0 - eq;
      break;
    default:
      sel = 0.1;
      break;
  }
  // Selectivities must stay in (0, 1] for the yield model.
  return std::clamp(sel, 1e-9, 1.0);
}

}  // namespace byc::query
