#include "query/binder.h"

#include <unordered_map>

#include "query/parser.h"

namespace byc::query {

namespace {

/// Maps FROM aliases to slots and resolves column references.
class Scope {
 public:
  Scope(const catalog::Catalog& catalog, const ResolvedQuery& resolved)
      : catalog_(catalog), resolved_(resolved) {}

  Status AddAlias(const std::string& alias, int slot) {
    if (!by_alias_.emplace(alias, slot).second) {
      return Status::InvalidArgument("duplicate table alias '" + alias + "'");
    }
    return Status::OK();
  }

  Result<ResolvedColumn> Resolve(const ColumnRef& ref) const {
    if (!ref.table_alias.empty()) {
      auto it = by_alias_.find(ref.table_alias);
      if (it == by_alias_.end()) {
        return Status::NotFound("unknown table alias '" + ref.table_alias +
                                "'");
      }
      int slot = it->second;
      const catalog::Table& table =
          catalog_.table(resolved_.tables[static_cast<size_t>(slot)]);
      int col = table.FindColumn(ref.column);
      if (col < 0) {
        return Status::NotFound("no column '" + ref.column + "' in table " +
                                table.name());
      }
      return ResolvedColumn{slot, col};
    }
    // Unqualified: search all slots; must be unambiguous.
    int found_slot = -1;
    int found_col = -1;
    for (size_t slot = 0; slot < resolved_.tables.size(); ++slot) {
      const catalog::Table& table = catalog_.table(resolved_.tables[slot]);
      int col = table.FindColumn(ref.column);
      if (col >= 0) {
        if (found_slot >= 0) {
          return Status::InvalidArgument("ambiguous column '" + ref.column +
                                         "'");
        }
        found_slot = static_cast<int>(slot);
        found_col = col;
      }
    }
    if (found_slot < 0) {
      return Status::NotFound("unknown column '" + ref.column + "'");
    }
    return ResolvedColumn{found_slot, found_col};
  }

 private:
  const catalog::Catalog& catalog_;
  const ResolvedQuery& resolved_;
  std::unordered_map<std::string, int> by_alias_;
};

}  // namespace

Result<ResolvedQuery> Binder::Bind(const SelectQuery& query) const {
  if (query.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  if (query.select.empty()) {
    return Status::InvalidArgument("query has an empty SELECT list");
  }

  ResolvedQuery resolved;
  Scope scope(*catalog_, resolved);
  for (const TableRef& ref : query.from) {
    BYC_ASSIGN_OR_RETURN(int table_idx, catalog_->FindTable(ref.table));
    int slot = static_cast<int>(resolved.tables.size());
    resolved.tables.push_back(table_idx);
    const std::string& alias = ref.alias.empty() ? ref.table : ref.alias;
    BYC_RETURN_IF_ERROR(scope.AddAlias(alias, slot));
  }

  for (const SelectItem& item : query.select) {
    BYC_ASSIGN_OR_RETURN(ResolvedColumn col, scope.Resolve(item.column));
    resolved.select.push_back(ResolvedSelectItem{col, item.aggregate});
  }

  for (const Predicate& pred : query.where) {
    BYC_ASSIGN_OR_RETURN(ResolvedColumn lhs, scope.Resolve(pred.lhs));
    if (pred.kind == Predicate::Kind::kJoin) {
      BYC_ASSIGN_OR_RETURN(ResolvedColumn rhs, scope.Resolve(pred.rhs));
      if (lhs.table_slot == rhs.table_slot) {
        return Status::InvalidArgument(
            "join predicate references a single table");
      }
      resolved.joins.push_back(ResolvedJoin{lhs, rhs});
    } else {
      const catalog::Table& table =
          catalog_->table(resolved.tables[static_cast<size_t>(lhs.table_slot)]);
      double sel = model_->FilterSelectivity(table, lhs.column, pred.op,
                                             pred.value);
      resolved.filters.push_back(
          ResolvedFilter{lhs, pred.op, pred.value, sel});
    }
  }
  return resolved;
}

Result<ResolvedQuery> ParseAndBind(const catalog::Catalog& catalog,
                                   std::string_view sql) {
  BYC_ASSIGN_OR_RETURN(SelectQuery parsed, ParseSelect(sql));
  SelectivityModel model;
  Binder binder(&catalog, &model);
  return binder.Bind(parsed);
}

std::string ResolvedQuery::ToString(const catalog::Catalog& catalog) const {
  auto slot_alias = [](int slot) {
    std::string alias = "t";
    alias += std::to_string(slot);
    return alias;
  };
  auto col_name = [&](const ResolvedColumn& c) {
    const catalog::Table& t = catalog.table(tables[static_cast<size_t>(c.table_slot)]);
    return slot_alias(c.table_slot) + "." + t.column(c.column).name;
  };

  std::string out = "select ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    if (select[i].aggregate != Aggregate::kNone) {
      out += AggregateName(select[i].aggregate);
      out += '(';
      out += col_name(select[i].column);
      out += ')';
    } else {
      out += col_name(select[i].column);
    }
  }
  out += " from ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += catalog.table(tables[i]).name();
    out += ' ';
    out += slot_alias(static_cast<int>(i));
  }
  if (!filters.empty() || !joins.empty()) {
    out += " where ";
    bool first = true;
    for (const auto& j : joins) {
      if (!first) out += " and ";
      first = false;
      out += col_name(j.left);
      out += " = ";
      out += col_name(j.right);
    }
    for (const auto& f : filters) {
      if (!first) out += " and ";
      first = false;
      out += col_name(f.column);
      out += ' ';
      out += CmpOpName(f.op);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %g", f.value);
      out += buf;
    }
  }
  return out;
}

}  // namespace byc::query
