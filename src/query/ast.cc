#include "query/ast.h"

namespace byc::query {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kNone:
      return "";
    case Aggregate::kCount:
      return "count";
    case Aggregate::kSum:
      return "sum";
    case Aggregate::kAvg:
      return "avg";
    case Aggregate::kMin:
      return "min";
    case Aggregate::kMax:
      return "max";
  }
  return "?";
}

namespace {

void AppendDouble(std::string& out, double v) {
  char buf[64];
  // Shortest representation that stays exact enough for literals.
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

}  // namespace

std::string SelectQuery::ToString() const {
  std::string out = "select ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = select[i];
    if (item.aggregate != Aggregate::kNone) {
      out += AggregateName(item.aggregate);
      out += '(';
      out += item.column.ToString();
      out += ')';
    } else {
      out += item.column.ToString();
    }
    if (!item.alias.empty()) {
      out += " as ";
      out += item.alias;
    }
  }
  out += " from ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table;
    if (!from[i].alias.empty() && from[i].alias != from[i].table) {
      out += ' ';
      out += from[i].alias;
    }
  }
  if (!where.empty()) {
    out += " where ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) out += " and ";
      const Predicate& p = where[i];
      out += p.lhs.ToString();
      out += ' ';
      out += CmpOpName(p.op);
      out += ' ';
      if (p.kind == Predicate::Kind::kJoin) {
        out += p.rhs.ToString();
      } else {
        AppendDouble(out, p.value);
      }
    }
  }
  return out;
}

}  // namespace byc::query
