#ifndef BYC_QUERY_SELECTIVITY_H_
#define BYC_QUERY_SELECTIVITY_H_

#include <memory>
#include <unordered_map>

#include "catalog/catalog.h"
#include "query/ast.h"
#include "query/column_stats.h"

namespace byc::query {

/// Interface the binder uses to attach selectivities to parsed filters.
/// (The synthetic workload generator sets exact selectivities directly
/// and does not go through an estimator.)
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Estimated fraction of `table`'s rows passing `column op value`,
  /// always in (0, 1].
  virtual double FilterSelectivity(const catalog::Table& table, int column,
                                   CmpOp op, double value) const = 0;
};

/// Heuristic estimator used when binding SQL text without statistics.
/// Deterministic: the same predicate always gets the same selectivity,
/// so replays are stable.
///
/// Heuristics (in the spirit of textbook System-R defaults):
///  * equality on a key-like column (name ends in "ID") -> 1 / row_count
///    (identity queries return a handful of rows);
///  * other equality -> `equality_selectivity`;
///  * range comparisons -> `range_selectivity`;
///  * inequality (!=) -> 1 - equality_selectivity;
/// each jittered deterministically by the literal value so distinct
/// constants give distinct (but reproducible) selectivities.
class SelectivityModel : public SelectivityEstimator {
 public:
  struct Options {
    double equality_selectivity = 0.05;
    double range_selectivity = 0.10;
    /// Multiplicative jitter range [1/jitter, jitter] applied from a hash
    /// of the predicate; 1.0 disables jitter.
    double jitter = 2.0;
  };

  SelectivityModel() : SelectivityModel(Options{}) {}
  explicit SelectivityModel(const Options& options) : options_(options) {}

  double FilterSelectivity(const catalog::Table& table, int column, CmpOp op,
                           double value) const override;

 private:
  Options options_;
};

/// Statistics-backed estimator: per-table equi-width histograms
/// synthesized from the columns' modeled value distributions
/// (column_stats.h) — range predicates get CDF-accurate selectivities
/// ("mag > 17" really selects the bright tail) instead of flat defaults.
/// Histograms build lazily per table and are cached.
class HistogramSelectivityModel : public SelectivityEstimator {
 public:
  explicit HistogramSelectivityModel(int buckets = 64) : buckets_(buckets) {}

  double FilterSelectivity(const catalog::Table& table, int column, CmpOp op,
                           double value) const override;

 private:
  int buckets_;
  mutable std::unordered_map<const catalog::Table*,
                             std::unique_ptr<TableHistograms>>
      cache_;
};

}  // namespace byc::query

#endif  // BYC_QUERY_SELECTIVITY_H_
