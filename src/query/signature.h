#ifndef BYC_QUERY_SIGNATURE_H_
#define BYC_QUERY_SIGNATURE_H_

#include <cstdint>

#include "query/resolved.h"

namespace byc::query {

/// Hash of a query's *schema shape*: tables, projected columns with
/// aggregates, predicate columns and operators, and join structure —
/// everything except the literal values and selectivities. Two queries
/// with equal signatures "conduct queries with similar schema against
/// different data" (§1.1); the semantic cache uses signatures to find
/// containment candidates, and the trace analyses use them to measure
/// schema reuse.
uint64_t SchemaSignature(const ResolvedQuery& query);

/// True iff two queries have the same schema shape — exactly the fields
/// SchemaSignature hashes (tables, select columns + aggregates, filter
/// columns + operators, join structure), ignoring literal values and
/// selectivities. Shape-keyed caches (the mediator's decomposition memo)
/// use this to reject hash collisions.
bool SameSchemaShape(const ResolvedQuery& a, const ResolvedQuery& b);

}  // namespace byc::query

#endif  // BYC_QUERY_SIGNATURE_H_
