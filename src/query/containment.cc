#include "query/containment.h"

#include <algorithm>
#include <array>
#include <set>

namespace byc::query {

namespace {

bool SameColumn(const ResolvedColumn& a, const ResolvedColumn& b) {
  return a.table_slot == b.table_slot && a.column == b.column;
}

/// Canonical (slot, col, slot, col) tuple for a join with sides ordered.
std::array<int, 4> JoinKey(const ResolvedJoin& join) {
  std::array<int, 4> left = {join.left.table_slot, join.left.column,
                             join.right.table_slot, join.right.column};
  std::array<int, 4> right = {join.right.table_slot, join.right.column,
                              join.left.table_slot, join.left.column};
  return std::min(left, right);
}

bool SameFilter(const ResolvedFilter& a, const ResolvedFilter& b) {
  return SameColumn(a.column, b.column) && a.op == b.op && a.value == b.value;
}

}  // namespace

bool FilterImplies(const ResolvedFilter& stronger,
                   const ResolvedFilter& weaker) {
  if (!SameColumn(stronger.column, weaker.column)) return false;
  const double s = stronger.value;
  const double w = weaker.value;
  switch (weaker.op) {
    case CmpOp::kGt:  // weaker: c > w
      switch (stronger.op) {
        case CmpOp::kGt:
          return s >= w;
        case CmpOp::kGe:
          return s > w;
        case CmpOp::kEq:
          return s > w;
        default:
          return false;
      }
    case CmpOp::kGe:  // weaker: c >= w
      switch (stronger.op) {
        case CmpOp::kGt:
          return s >= w;
        case CmpOp::kGe:
          return s >= w;
        case CmpOp::kEq:
          return s >= w;
        default:
          return false;
      }
    case CmpOp::kLt:  // weaker: c < w
      switch (stronger.op) {
        case CmpOp::kLt:
          return s <= w;
        case CmpOp::kLe:
          return s < w;
        case CmpOp::kEq:
          return s < w;
        default:
          return false;
      }
    case CmpOp::kLe:  // weaker: c <= w
      switch (stronger.op) {
        case CmpOp::kLt:
          return s <= w;
        case CmpOp::kLe:
          return s <= w;
        case CmpOp::kEq:
          return s <= w;
        default:
          return false;
      }
    case CmpOp::kEq:  // weaker: c == w
      return stronger.op == CmpOp::kEq && s == w;
    case CmpOp::kNe:  // weaker: c != w
      switch (stronger.op) {
        case CmpOp::kNe:
          return s == w;
        case CmpOp::kEq:
          return s != w;
        case CmpOp::kGt:
          return s >= w;
        case CmpOp::kGe:
          return s > w;
        case CmpOp::kLt:
          return s <= w;
        case CmpOp::kLe:
          return s < w;
        default:
          return false;
      }
  }
  return false;
}

bool QueryContains(const ResolvedQuery& cached,
                   const ResolvedQuery& incoming) {
  // Aggregated results are scalars, not reusable tuple sets.
  for (const auto& item : cached.select) {
    if (item.aggregate != Aggregate::kNone) return false;
  }
  for (const auto& item : incoming.select) {
    if (item.aggregate != Aggregate::kNone) return false;
  }

  // Identical FROM lists (canonical slot order) and join structure.
  if (cached.tables != incoming.tables) return false;
  std::multiset<std::array<int, 4>> cached_joins, incoming_joins;
  for (const auto& j : cached.joins) cached_joins.insert(JoinKey(j));
  for (const auto& j : incoming.joins) incoming_joins.insert(JoinKey(j));
  if (cached_joins != incoming_joins) return false;

  // Every projected column of the incoming query must be stored.
  auto cached_selects = [&](const ResolvedColumn& col) {
    for (const auto& item : cached.select) {
      if (SameColumn(item.column, col)) return true;
    }
    return false;
  };
  for (const auto& item : incoming.select) {
    if (!cached_selects(item.column)) return false;
  }

  // Every cached filter must be implied by an incoming filter, or the
  // cached result may be missing tuples the incoming query needs.
  for (const ResolvedFilter& g : cached.filters) {
    bool implied = false;
    for (const ResolvedFilter& f : incoming.filters) {
      if (FilterImplies(f, g)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }

  // Every incoming filter must be re-applicable against the stored
  // result: either it is literally one of the cached filters (already
  // applied), or its column was stored in the projection.
  for (const ResolvedFilter& f : incoming.filters) {
    bool already_applied = false;
    for (const ResolvedFilter& g : cached.filters) {
      if (SameFilter(f, g)) {
        already_applied = true;
        break;
      }
    }
    if (!already_applied && !cached_selects(f.column)) return false;
  }
  return true;
}

}  // namespace byc::query
