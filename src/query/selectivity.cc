#include "query/selectivity.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace byc::query {

namespace {

bool IsKeyLike(const std::string& name) {
  return name.size() >= 2 &&
         (name.compare(name.size() - 2, 2, "ID") == 0 ||
          name.compare(name.size() - 2, 2, "Id") == 0 ||
          name.compare(name.size() - 2, 2, "id") == 0);
}

uint64_t HashMix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

double SelectivityModel::FilterSelectivity(const catalog::Table& table,
                                           int column, CmpOp op,
                                           double value) const {
  const std::string& name = table.column(column).name;
  if (op == CmpOp::kEq && IsKeyLike(name)) {
    // Identity query: one matching row.
    return 1.0 / static_cast<double>(std::max<uint64_t>(table.row_count(), 1));
  }

  double base;
  switch (op) {
    case CmpOp::kEq:
      base = options_.equality_selectivity;
      break;
    case CmpOp::kNe:
      base = 1.0 - options_.equality_selectivity;
      break;
    default:
      base = options_.range_selectivity;
      break;
  }

  if (options_.jitter > 1.0) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    uint64_t h = HashMix(bits ^ (static_cast<uint64_t>(column) << 48) ^
                         HashMix(table.row_count()));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    double log_j = std::log(options_.jitter);
    base *= std::exp((2 * u - 1) * log_j);
  }
  return std::clamp(base, 1e-9, 1.0);
}

double HistogramSelectivityModel::FilterSelectivity(
    const catalog::Table& table, int column, CmpOp op, double value) const {
  auto it = cache_.find(&table);
  if (it == cache_.end()) {
    it = cache_
             .emplace(&table,
                      std::make_unique<TableHistograms>(table, buckets_))
             .first;
  }
  return it->second->Selectivity(column, op, value);
}

}  // namespace byc::query
