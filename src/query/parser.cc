#include "query/parser.h"

#include <cctype>
#include <charconv>
#include <string>
#include <vector>

namespace byc::query {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kComma,
  kLParen,
  kRParen,
  kOperator,  // = != <> < <= > >=
  kDot,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0;
  size_t offset = 0;
};

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == ';') {
        ++pos_;  // trailing statement terminator
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 (c == '.' && pos_ + 1 < sql_.size() &&
                  std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        BYC_ASSIGN_OR_RETURN(Token t, LexNumber());
        tokens.push_back(std::move(t));
      } else if (c == ',') {
        tokens.push_back(Simple(TokenKind::kComma, ","));
      } else if (c == '(') {
        tokens.push_back(Simple(TokenKind::kLParen, "("));
      } else if (c == ')') {
        tokens.push_back(Simple(TokenKind::kRParen, ")"));
      } else if (c == '.') {
        tokens.push_back(Simple(TokenKind::kDot, "."));
      } else if (c == '=' || c == '<' || c == '>' || c == '!') {
        BYC_ASSIGN_OR_RETURN(Token t, LexOperator());
        tokens.push_back(std::move(t));
      } else {
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(pos_));
      }
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.offset = sql_.size();
    tokens.push_back(end);
    return tokens;
  }

 private:
  Token Simple(TokenKind kind, std::string text) {
    Token t{kind, std::move(text), 0, pos_};
    ++pos_;
    return t;
  }

  Token LexIdentifier() {
    size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokenKind::kIdentifier,
                 std::string(sql_.substr(start, pos_ - start)), 0, start};
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    if (sql_[pos_] == '-') ++pos_;
    while (pos_ < sql_.size() &&
           (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '.' || sql_[pos_] == 'e' || sql_[pos_] == 'E' ||
            ((sql_[pos_] == '+' || sql_[pos_] == '-') &&
             (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    std::string text(sql_.substr(start, pos_ - start));
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return Status::ParseError("bad numeric literal '" + text + "'");
    }
    return Token{TokenKind::kNumber, std::move(text), value, start};
  }

  Result<Token> LexOperator() {
    size_t start = pos_;
    char c = sql_[pos_++];
    std::string text(1, c);
    if (pos_ < sql_.size()) {
      char n = sql_[pos_];
      if ((c == '<' && (n == '=' || n == '>')) || (c == '>' && n == '=') ||
          (c == '!' && n == '=')) {
        text += n;
        ++pos_;
      }
    }
    if (text == "!") {
      return Status::ParseError("lone '!' at offset " + std::to_string(start));
    }
    return Token{TokenKind::kOperator, std::move(text), 0, start};
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

Result<CmpOp> ParseCmpOp(const std::string& text) {
  if (text == "=") return CmpOp::kEq;
  if (text == "!=" || text == "<>") return CmpOp::kNe;
  if (text == "<") return CmpOp::kLt;
  if (text == "<=") return CmpOp::kLe;
  if (text == ">") return CmpOp::kGt;
  if (text == ">=") return CmpOp::kGe;
  return Status::ParseError("unknown operator '" + text + "'");
}

Result<Aggregate> ParseAggregate(const std::string& lower) {
  if (lower == "count") return Aggregate::kCount;
  if (lower == "sum") return Aggregate::kSum;
  if (lower == "avg") return Aggregate::kAvg;
  if (lower == "min") return Aggregate::kMin;
  if (lower == "max") return Aggregate::kMax;
  return Status::ParseError("unknown aggregate '" + lower + "'");
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Parse() {
    BYC_RETURN_IF_ERROR(ExpectKeyword("select"));
    SelectQuery q;
    for (;;) {
      BYC_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      q.select.push_back(std::move(item));
      if (!ConsumeIf(TokenKind::kComma)) break;
    }
    BYC_RETURN_IF_ERROR(ExpectKeyword("from"));
    for (;;) {
      BYC_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      q.from.push_back(std::move(ref));
      if (!ConsumeIf(TokenKind::kComma)) break;
    }
    if (PeekKeyword("where")) {
      Advance();
      for (;;) {
        BYC_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
        q.where.push_back(std::move(p));
        if (!PeekKeyword("and")) break;
        Advance();
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input after query: '" +
                                Peek().text + "'");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool ConsumeIf(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdentifier && ToLower(Peek().text) == kw;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      return Status::ParseError("expected '" + std::string(kw) + "', got '" +
                                Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected identifier, got '" + Peek().text +
                                "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  /// alias '.' column  |  column
  Result<ColumnRef> ParseColumnRef() {
    BYC_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    ColumnRef ref;
    if (ConsumeIf(TokenKind::kDot)) {
      ref.table_alias = std::move(first);
      BYC_ASSIGN_OR_RETURN(ref.column, ExpectIdentifier());
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    // Aggregate call: ident '(' columnref ')'.
    if (Peek().kind == TokenKind::kIdentifier &&
        Peek(1).kind == TokenKind::kLParen) {
      BYC_ASSIGN_OR_RETURN(item.aggregate, ParseAggregate(ToLower(Peek().text)));
      Advance();  // aggregate name
      Advance();  // '('
      BYC_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      if (!ConsumeIf(TokenKind::kRParen)) {
        return Status::ParseError("expected ')' after aggregate argument");
      }
    } else {
      BYC_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
    }
    if (PeekKeyword("as")) {
      Advance();
      BYC_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    BYC_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    // Optional alias (any identifier that is not a clause keyword).
    if (Peek().kind == TokenKind::kIdentifier && !PeekKeyword("where")) {
      ref.alias = Peek().text;
      Advance();
    } else {
      ref.alias = ref.table;
    }
    return ref;
  }

  Result<Predicate> ParsePredicate() {
    Predicate p;
    BYC_ASSIGN_OR_RETURN(p.lhs, ParseColumnRef());
    if (Peek().kind != TokenKind::kOperator) {
      return Status::ParseError("expected comparison operator, got '" +
                                Peek().text + "'");
    }
    BYC_ASSIGN_OR_RETURN(p.op, ParseCmpOp(Peek().text));
    Advance();
    if (Peek().kind == TokenKind::kNumber) {
      p.kind = Predicate::Kind::kFilter;
      p.value = Peek().number;
      Advance();
    } else if (Peek().kind == TokenKind::kIdentifier) {
      if (p.op != CmpOp::kEq) {
        return Status::ParseError(
            "column-to-column predicates must use '='");
      }
      p.kind = Predicate::Kind::kJoin;
      BYC_ASSIGN_OR_RETURN(p.rhs, ParseColumnRef());
    } else {
      return Status::ParseError("expected literal or column, got '" +
                                Peek().text + "'");
    }
    return p;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectQuery> ParseSelect(std::string_view sql) {
  Lexer lexer(sql);
  BYC_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace byc::query
