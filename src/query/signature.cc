#include "query/signature.h"

namespace byc::query {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t SchemaSignature(const ResolvedQuery& query) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (int t : query.tables) h = Mix(h, 0x1000 + static_cast<uint64_t>(t));
  for (const ResolvedSelectItem& s : query.select) {
    h = Mix(h, 0x2000 + static_cast<uint64_t>(s.column.table_slot));
    h = Mix(h, static_cast<uint64_t>(s.column.column));
    h = Mix(h, static_cast<uint64_t>(s.aggregate));
  }
  for (const ResolvedFilter& f : query.filters) {
    h = Mix(h, 0x3000 + static_cast<uint64_t>(f.column.table_slot));
    h = Mix(h, static_cast<uint64_t>(f.column.column));
    h = Mix(h, static_cast<uint64_t>(f.op));
  }
  for (const ResolvedJoin& j : query.joins) {
    h = Mix(h, 0x4000 + static_cast<uint64_t>(j.left.table_slot));
    h = Mix(h, static_cast<uint64_t>(j.left.column));
    h = Mix(h, static_cast<uint64_t>(j.right.table_slot));
    h = Mix(h, static_cast<uint64_t>(j.right.column));
  }
  return h;
}

bool SameSchemaShape(const ResolvedQuery& a, const ResolvedQuery& b) {
  if (a.tables != b.tables || a.select.size() != b.select.size() ||
      a.filters.size() != b.filters.size() ||
      a.joins.size() != b.joins.size()) {
    return false;
  }
  auto same_column = [](const ResolvedColumn& x, const ResolvedColumn& y) {
    return x.table_slot == y.table_slot && x.column == y.column;
  };
  for (size_t i = 0; i < a.select.size(); ++i) {
    if (!same_column(a.select[i].column, b.select[i].column) ||
        a.select[i].aggregate != b.select[i].aggregate) {
      return false;
    }
  }
  for (size_t i = 0; i < a.filters.size(); ++i) {
    if (!same_column(a.filters[i].column, b.filters[i].column) ||
        a.filters[i].op != b.filters[i].op) {
      return false;
    }
  }
  for (size_t i = 0; i < a.joins.size(); ++i) {
    if (!same_column(a.joins[i].left, b.joins[i].left) ||
        !same_column(a.joins[i].right, b.joins[i].right)) {
      return false;
    }
  }
  return true;
}

}  // namespace byc::query
