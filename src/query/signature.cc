#include "query/signature.h"

namespace byc::query {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t SchemaSignature(const ResolvedQuery& query) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (int t : query.tables) h = Mix(h, 0x1000 + static_cast<uint64_t>(t));
  for (const ResolvedSelectItem& s : query.select) {
    h = Mix(h, 0x2000 + static_cast<uint64_t>(s.column.table_slot));
    h = Mix(h, static_cast<uint64_t>(s.column.column));
    h = Mix(h, static_cast<uint64_t>(s.aggregate));
  }
  for (const ResolvedFilter& f : query.filters) {
    h = Mix(h, 0x3000 + static_cast<uint64_t>(f.column.table_slot));
    h = Mix(h, static_cast<uint64_t>(f.column.column));
    h = Mix(h, static_cast<uint64_t>(f.op));
  }
  for (const ResolvedJoin& j : query.joins) {
    h = Mix(h, 0x4000 + static_cast<uint64_t>(j.left.table_slot));
    h = Mix(h, static_cast<uint64_t>(j.left.column));
    h = Mix(h, static_cast<uint64_t>(j.right.table_slot));
    h = Mix(h, static_cast<uint64_t>(j.right.column));
  }
  return h;
}

}  // namespace byc::query
