#ifndef BYC_QUERY_COLUMN_STATS_H_
#define BYC_QUERY_COLUMN_STATS_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "query/ast.h"

namespace byc::query {

/// Analytic model of one column's synthetic value distribution. The
/// SDSS-like columns get domain-appropriate shapes, keyed off the column
/// name and type (deterministic — no data is materialized):
///
///  * magnitudes ("...Mag...", "extinction", "dered"): truncated normal
///    around 20 (the survey's depth profile);
///  * redshift-like ("z", "zErr", "distance", "radius"): exponential
///    hugging zero;
///  * "ra": uniform [0, 360); "dec": uniform [-25, 85];
///  * identifiers / int keys: uniform over [0, row_count);
///  * everything else: uniform over a generic [0, 30) domain.
class ColumnDistribution {
 public:
  /// Builds the distribution model for table.column(column).
  static ColumnDistribution For(const catalog::Table& table, int column);

  double min() const { return min_; }
  double max() const { return max_; }

  /// P(value <= v); clamped, monotone, 0 at min and 1 at max.
  double Cdf(double v) const;

  /// Inverse CDF (bisection on Cdf): the value v with Cdf(v) ~= u.
  /// Clamps u to [0, 1]. Used to synthesize data that matches the
  /// statistics model.
  double Quantile(double u) const;

  /// Estimated number of distinct values (drives equality selectivity).
  double distinct_values() const { return distinct_; }

 private:
  enum class Shape { kUniform, kNormal, kExponential };

  Shape shape_ = Shape::kUniform;
  double min_ = 0;
  double max_ = 1;
  double mu_ = 0;      // normal mean
  double sigma_ = 1;   // normal sd
  double rate_ = 1;    // exponential rate
  double distinct_ = 1;
};

/// Per-table equi-width histograms synthesized from the column
/// distributions — the catalog-statistics structure a real optimizer
/// would maintain. Range selectivities interpolate within buckets;
/// equality uses the distinct-value estimate.
class TableHistograms {
 public:
  explicit TableHistograms(const catalog::Table& table, int buckets = 64);

  /// Estimated fraction of rows satisfying `column op value`.
  double Selectivity(int column, CmpOp op, double value) const;

  int num_buckets() const { return buckets_; }

  /// Mass of one bucket of `column` (tests).
  double BucketMass(int column, int bucket) const;

 private:
  struct ColumnHistogram {
    double lo = 0;
    double hi = 1;
    double width = 1;
    double distinct = 1;
    std::vector<double> mass;  // sums to 1
  };

  /// P(value <= v) from the histogram with linear interpolation.
  double HistCdf(const ColumnHistogram& h, double v) const;

  int buckets_;
  std::vector<ColumnHistogram> columns_;
};

}  // namespace byc::query

#endif  // BYC_QUERY_COLUMN_STATS_H_
