#include "query/yield.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace byc::query {

namespace {

constexpr double kAggregateOutputWidth = 8.0;

}  // namespace

double YieldEstimator::EstimateResultRows(const ResolvedQuery& query) const {
  BYC_CHECK(!query.tables.empty());
  if (query.IsFullyAggregated()) return 1.0;

  // Per-slot filtered cardinality under predicate independence.
  std::vector<double> filtered_rows(query.tables.size());
  std::vector<double> filtered_frac(query.tables.size(), 1.0);
  for (const ResolvedFilter& f : query.filters) {
    filtered_frac[static_cast<size_t>(f.column.table_slot)] *= f.selectivity;
  }
  for (size_t slot = 0; slot < query.tables.size(); ++slot) {
    double rows = static_cast<double>(
        catalog_->table(query.tables[slot]).row_count());
    filtered_rows[slot] = rows * filtered_frac[slot];
  }

  if (query.tables.size() == 1) return filtered_rows[0];

  // Foreign-key join model: the join fans no wider than the smallest
  // filtered relation; every other relation thins it by its filtered
  // fraction. (PhotoObj JOIN SpecObj on objID produces at most
  // |filtered SpecObj| rows, further filtered by PhotoObj's predicates.)
  size_t smallest = 0;
  for (size_t slot = 1; slot < filtered_rows.size(); ++slot) {
    if (filtered_rows[slot] < filtered_rows[smallest]) smallest = slot;
  }
  double rows = filtered_rows[smallest];
  for (size_t slot = 0; slot < filtered_rows.size(); ++slot) {
    if (slot != smallest) rows *= filtered_frac[slot];
  }
  return rows;
}

double YieldEstimator::OutputRowWidth(const ResolvedQuery& query) const {
  double width = 0;
  for (const ResolvedSelectItem& item : query.select) {
    if (item.aggregate != Aggregate::kNone) {
      width += kAggregateOutputWidth;
    } else {
      const catalog::Table& t = catalog_->table(
          query.tables[static_cast<size_t>(item.column.table_slot)]);
      width += t.column(item.column.column).width_bytes();
    }
  }
  return width;
}

YieldSkeleton YieldEstimator::EstimateSkeleton(
    const ResolvedQuery& query, catalog::Granularity granularity) const {
  YieldSkeleton out;
  out.row_width = OutputRowWidth(query);

  // Unique referenced (table, column) pairs across SELECT, filters, and
  // joins. Slots of the same catalog table merge (the paper counts
  // attributes per table).
  std::set<std::pair<int, int>> referenced;
  auto add_ref = [&](const ResolvedColumn& c) {
    referenced.emplace(query.tables[static_cast<size_t>(c.table_slot)],
                       c.column);
  };
  for (const auto& item : query.select) add_ref(item.column);
  for (const auto& f : query.filters) add_ref(f.column);
  for (const auto& j : query.joins) {
    add_ref(j.left);
    add_ref(j.right);
  }
  BYC_CHECK(!referenced.empty());

  if (granularity == catalog::Granularity::kTable) {
    // Share proportional to each table's count of unique attributes.
    std::map<int, int> attrs_per_table;
    for (const auto& [table, column] : referenced) ++attrs_per_table[table];
    double total = 0;
    for (const auto& [table, count] : attrs_per_table) total += count;
    for (const auto& [table, count] : attrs_per_table) {
      out.shares.push_back(YieldSkeleton::Share{
          catalog::ObjectId::ForTable(table), static_cast<double>(count),
          total});
    }
  } else {
    // Share proportional to each referenced column's storage width.
    double total_width = 0;
    for (const auto& [table, column] : referenced) {
      total_width += catalog_->table(table).column(column).width_bytes();
    }
    for (const auto& [table, column] : referenced) {
      double width = catalog_->table(table).column(column).width_bytes();
      out.shares.push_back(YieldSkeleton::Share{
          catalog::ObjectId::ForColumn(table, column), width, total_width});
    }
  }
  return out;
}

QueryYield YieldEstimator::Estimate(const ResolvedQuery& query,
                                    catalog::Granularity granularity) const {
  YieldSkeleton skeleton = EstimateSkeleton(query, granularity);
  QueryYield out;
  out.result_rows = EstimateResultRows(query);
  out.total_bytes = out.result_rows * skeleton.row_width;
  out.per_object.reserve(skeleton.shares.size());
  for (const YieldSkeleton::Share& share : skeleton.shares) {
    out.per_object.push_back(ObjectYield{
        share.object,
        out.total_bytes * share.numerator / share.denominator});
  }
  return out;
}

}  // namespace byc::query
