#ifndef BYC_QUERY_RESOLVED_H_
#define BYC_QUERY_RESOLVED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/ast.h"

namespace byc::query {

/// A column reference resolved against a catalog: `table_slot` indexes
/// into ResolvedQuery::tables (so self-joins keep distinct slots), and
/// `column` indexes into that table's column list.
struct ResolvedColumn {
  int table_slot = 0;
  int column = 0;
};

/// A resolved SELECT-list item.
struct ResolvedSelectItem {
  ResolvedColumn column;
  Aggregate aggregate = Aggregate::kNone;
};

/// A resolved filter predicate (column op literal) with its estimated
/// selectivity in (0, 1].
struct ResolvedFilter {
  ResolvedColumn column;
  CmpOp op = CmpOp::kEq;
  double value = 0;
  double selectivity = 1.0;
};

/// A resolved equi-join predicate.
struct ResolvedJoin {
  ResolvedColumn left;
  ResolvedColumn right;
};

/// A schema-bound query: everything the yield estimator and the federation
/// simulator need, with no remaining name lookups. The synthetic workload
/// generator constructs ResolvedQuery directly; the SQL front end produces
/// it through the Binder.
struct ResolvedQuery {
  std::vector<int> tables;  // catalog table index per FROM slot
  std::vector<ResolvedSelectItem> select;
  std::vector<ResolvedFilter> filters;
  std::vector<ResolvedJoin> joins;

  /// True when every SELECT item is aggregated (the result collapses to a
  /// single row).
  bool IsFullyAggregated() const {
    if (select.empty()) return false;
    for (const auto& item : select) {
      if (item.aggregate == Aggregate::kNone) return false;
    }
    return true;
  }

  /// Renders back to readable SQL against the catalog (aliases t0, t1...).
  std::string ToString(const catalog::Catalog& catalog) const;
};

}  // namespace byc::query

#endif  // BYC_QUERY_RESOLVED_H_
