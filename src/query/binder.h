#ifndef BYC_QUERY_BINDER_H_
#define BYC_QUERY_BINDER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "query/resolved.h"
#include "query/selectivity.h"

namespace byc::query {

/// Resolves a parsed SelectQuery against a catalog: looks up tables and
/// columns, classifies predicates, and attaches selectivities from the
/// model. Errors: unknown table/column, ambiguous unqualified column,
/// unknown alias.
class Binder {
 public:
  Binder(const catalog::Catalog* catalog, const SelectivityEstimator* model)
      : catalog_(catalog), model_(model) {}

  Result<ResolvedQuery> Bind(const SelectQuery& query) const;

 private:
  const catalog::Catalog* catalog_;
  const SelectivityEstimator* model_;
};

/// Convenience: parse + bind in one call with a default selectivity model.
Result<ResolvedQuery> ParseAndBind(const catalog::Catalog& catalog,
                                   std::string_view sql);

}  // namespace byc::query

#endif  // BYC_QUERY_BINDER_H_
