#ifndef BYC_QUERY_PARSER_H_
#define BYC_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/ast.h"

namespace byc::query {

/// Parses one SELECT statement in the trace dialect:
///
///   select p.objID, p.ra, s.z as redshift, count(s.plate)
///   from SpecObj s, PhotoObj p
///   where p.objID = s.objID and s.specClass = 2 and s.zConf > 0.95
///
/// Supported: qualified/unqualified column refs, aggregate functions
/// (count/sum/avg/min/max), select aliases via AS, comma-joined FROM list
/// with table aliases, AND-conjoined WHERE with numeric comparisons
/// (= != <> < <= > >=) and equi-joins (column = column). Keywords are
/// case-insensitive; a trailing semicolon is allowed.
Result<SelectQuery> ParseSelect(std::string_view sql);

}  // namespace byc::query

#endif  // BYC_QUERY_PARSER_H_
