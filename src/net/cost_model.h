#ifndef BYC_NET_COST_MODEL_H_
#define BYC_NET_COST_MODEL_H_

#include <vector>

#include "common/check.h"

namespace byc::net {

/// Network cost model: the cost of moving one byte from a federation site
/// across the WAN to the proxy/client side. The LAN between proxy and
/// client is free (§3: "The local area network is not a shared resource").
///
/// The paper notes fetch cost is often proportional to object size
/// (f_i = c * s_i) — single server, collocated servers, or uniform
/// networks — which reduces BYHR to BYU. Heterogeneous per-site costs
/// exercise the full BYHR metric (the ablation bench uses them).
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// WAN cost per byte shipped from `site_id`.
  virtual double CostPerByte(int site_id) const = 0;
};

/// Uniform cost: every site ships at the same per-byte cost (the paper's
/// default; cost is measured in bytes, so c = 1).
class UniformCostModel : public CostModel {
 public:
  explicit UniformCostModel(double cost_per_byte = 1.0)
      : cost_per_byte_(cost_per_byte) {
    BYC_CHECK_GT(cost_per_byte_, 0);
  }

  double CostPerByte(int) const override { return cost_per_byte_; }

 private:
  double cost_per_byte_;
};

/// Per-site costs for heterogeneous wide-area links (e.g. a federation
/// spanning well-connected and poorly-connected archives).
class PerSiteCostModel : public CostModel {
 public:
  explicit PerSiteCostModel(std::vector<double> cost_per_byte)
      : cost_per_byte_(std::move(cost_per_byte)) {
    for (double c : cost_per_byte_) BYC_CHECK_GT(c, 0);
  }

  double CostPerByte(int site_id) const override {
    BYC_CHECK_GE(site_id, 0);
    BYC_CHECK_LT(static_cast<size_t>(site_id), cost_per_byte_.size());
    return cost_per_byte_[static_cast<size_t>(site_id)];
  }

  int num_sites() const { return static_cast<int>(cost_per_byte_.size()); }

 private:
  std::vector<double> cost_per_byte_;
};

}  // namespace byc::net

#endif  // BYC_NET_COST_MODEL_H_
