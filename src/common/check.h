#ifndef BYC_COMMON_CHECK_H_
#define BYC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace byc::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "BYC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace byc::internal

/// Invariant check that is active in all build types (unlike assert).
/// Used for internal invariants whose violation indicates a library bug;
/// recoverable conditions use Status instead.
#define BYC_CHECK(cond)                                          \
  do {                                                           \
    if (!(cond)) {                                               \
      ::byc::internal::CheckFailed(#cond, __FILE__, __LINE__);   \
    }                                                            \
  } while (false)

#define BYC_CHECK_GE(a, b) BYC_CHECK((a) >= (b))
#define BYC_CHECK_GT(a, b) BYC_CHECK((a) > (b))
#define BYC_CHECK_LE(a, b) BYC_CHECK((a) <= (b))
#define BYC_CHECK_LT(a, b) BYC_CHECK((a) < (b))
#define BYC_CHECK_EQ(a, b) BYC_CHECK((a) == (b))
#define BYC_CHECK_NE(a, b) BYC_CHECK((a) != (b))

#endif  // BYC_COMMON_CHECK_H_
