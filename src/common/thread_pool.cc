#include "common/thread_pool.h"

#include "common/env.h"

namespace byc {

std::optional<unsigned> ThreadPool::ParseThreadCount(std::string_view text) {
  // Strict parse (common/env.h): strtoul-style leniency (leading
  // whitespace, "+", "-0") would let typos silently change the worker
  // count.
  Result<int64_t> parsed = env::ParseInt(text, 1, kMaxThreads);
  if (!parsed.ok()) return std::nullopt;
  return static_cast<unsigned>(*parsed);
}

unsigned ThreadPool::DefaultThreadCount() {
  if (std::optional<std::string> raw = env::Raw("BYC_THREADS")) {
    if (std::optional<unsigned> parsed = ParseThreadCount(*raw)) {
      return *parsed;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) worker.request_stop();
  work_cv_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++outstanding_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // Stop requested and queue drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace byc
