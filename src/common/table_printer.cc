#include "common/table_printer.h"

#include <algorithm>

namespace byc {

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < widths.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };

  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace byc
