#ifndef BYC_COMMON_STATS_H_
#define BYC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace byc {

/// Streaming summary statistics (Welford's online algorithm for variance).
class StatAccumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    return count_ == 0 ? 0.0 : max_;
  }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

  /// "count=... mean=... min=... max=... sd=..."
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantiles over a stored sample set. Suitable for the trace-scale
/// data in this library (tens of thousands of points).
class QuantileSketch {
 public:
  void Add(double x);
  size_t count() const { return values_.size(); }

  /// q in [0, 1]; linear interpolation between order statistics.
  /// Returns 0 for an empty sketch.
  double Quantile(double q) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping,
/// used by trace analyses.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  uint64_t BucketCount(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace byc

#endif  // BYC_COMMON_STATS_H_
