#ifndef BYC_COMMON_STATS_H_
#define BYC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace byc {

/// Streaming summary statistics (Welford's online algorithm for variance).
class StatAccumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    return count_ == 0 ? 0.0 : max_;
  }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

  /// "count=... mean=... min=... max=... sd=..."
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantiles over a stored sample set. Suitable for the trace-scale
/// data in this library (tens of thousands of points).
class QuantileSketch {
 public:
  void Add(double x);
  size_t count() const { return values_.size(); }

  /// q in [0, 1]; linear interpolation between order statistics.
  /// Returns 0 for an empty sketch.
  double Quantile(double q) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Log-bucketed histogram with quantile extraction (p50/p90/p99), the
/// summary shape StatAccumulator lacks. Buckets are at powers of
/// 2^(1/8), bounding the relative quantile error at ~±4.5%; count, sum,
/// min, and max are tracked exactly, and quantile results are clamped
/// into [min, max] so a one-sample histogram reports that sample for
/// every quantile. An empty histogram reports 0.0 everywhere (matching
/// StatAccumulator's empty min()/max()). Values <= 0 land in a dedicated
/// underflow bucket. Mergeable, so per-thread shards (see
/// telemetry::ShardedHistogram) can be combined at scrape time.
class LogHistogram {
 public:
  LogHistogram();

  void Add(double x);
  /// Adds every bucket and the exact count/sum/min/max of `other`.
  void Merge(const LogHistogram& other);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// q in [0, 1]; 0.0 for an empty histogram. The returned value is the
  /// geometric midpoint of the bucket holding the rank-q sample, clamped
  /// to [min(), max()].
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }

  /// "count=... mean=... min=... p50=... p90=... p99=... max=..."
  std::string ToString() const;

 private:
  // Bucket b (1-based) holds (Bound(b-1), Bound(b)]; bucket 0 is the
  // underflow bucket for x <= Bound(0). Index range covers ~1e-10..1e13
  // at 2^(1/8) growth.
  static constexpr int kBucketsPerDoubling = 8;
  static constexpr int kMinExponent = -256;  // 2^(-256/8) = 2^-32
  static constexpr int kNumBuckets = 608;    // up to 2^(351/8) ~ 2^44

  static size_t BucketIndex(double x);
  static double BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping,
/// used by trace analyses.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  uint64_t BucketCount(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace byc

#endif  // BYC_COMMON_STATS_H_
