#ifndef BYC_COMMON_ENV_H_
#define BYC_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace byc::env {

/// Strict environment-variable parsing, generalizing the
/// ThreadPool::ParseThreadCount pattern: the *entire* value must parse —
/// leading whitespace, explicit '+' signs, trailing junk ("8x", "250msx"),
/// and overflow are all rejected with a typed Status instead of being
/// silently truncated the way strtol-family leniency would. Misspelled
/// knobs fail loudly; only an unset (or empty) variable falls back.
///
/// Knobs parsed through this module: BYC_THREADS, BYC_MANIFEST[_DIR], and
/// the BYC_SVC_* family (port, deadline, retry budget) of src/service/.

/// Raw value of `name`; nullopt when the variable is unset or empty (an
/// empty exported variable means "not configured", matching the
/// BYC_MANIFEST convention).
std::optional<std::string> Raw(const char* name);

/// Parses a decimal integer in [min, max]. A single leading '-' is
/// accepted (so ranges with negative minima work); '+', whitespace,
/// trailing junk, empty text, and out-of-range or overflowing values are
/// InvalidArgument.
Result<int64_t> ParseInt(std::string_view text, int64_t min, int64_t max);

/// Parses a duration into milliseconds in [min_ms, max_ms]. Accepted
/// forms: "<n>" (milliseconds), "<n>ms", "<n>s", "<n>m" — n a nonnegative
/// decimal integer. Anything else (fractions, signs, unknown suffixes,
/// overflow when scaling to ms) is InvalidArgument.
Result<int64_t> ParseDurationMs(std::string_view text, int64_t min_ms,
                                int64_t max_ms);

/// A parsed "host:port" network address.
struct HostPort {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port". The host part must be nonempty and contain no
/// whitespace; the port must be a strict integer in [0, 65535] (0 lets
/// the OS pick an ephemeral port). A bare ":port" defaults the host to
/// 127.0.0.1 — every server in this repo listens on loopback.
Result<HostPort> ParseHostPort(std::string_view text);

/// Validates a filesystem path value (snapshot directories and the
/// like): nonempty, no whitespace or control characters (a newline in a
/// path env var is always an injection or a copy-paste accident), and a
/// trailing '/' is stripped so "<dir>/file" concatenation is uniform.
/// The path itself is NOT required to exist — the consumer creates it or
/// fails with its own IoError.
Result<std::string> ParsePath(std::string_view text);

/// Reads `name` as a strict integer: unset/empty returns `fallback`, a
/// set-but-invalid value returns the parse error (never a silent
/// fallback — a typo'd knob must not quietly reconfigure a server).
Result<int64_t> IntOr(const char* name, int64_t fallback, int64_t min,
                      int64_t max);

/// Duration-valued counterpart of IntOr (milliseconds).
Result<int64_t> DurationMsOr(const char* name, int64_t fallback,
                             int64_t min_ms, int64_t max_ms);

/// Path-valued counterpart of IntOr (see ParsePath).
Result<std::string> PathOr(const char* name, std::string_view fallback);

}  // namespace byc::env

#endif  // BYC_COMMON_ENV_H_
