#include "common/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace byc {

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::string* out, bool pretty)
    : out_(out), pretty_(pretty) {}

void JsonWriter::Indent() {
  out_->push_back('\n');
  out_->append(2 * first_in_scope_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its separator
  }
  if (first_in_scope_.empty()) return;  // document root
  if (!first_in_scope_.back()) {
    out_->push_back(',');
    if (!pretty_) out_->push_back(' ');
  }
  first_in_scope_.back() = false;
  if (pretty_) Indent();
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_->push_back('{');
  first_in_scope_.push_back(true);
}

void JsonWriter::EndObject() {
  BYC_CHECK(!first_in_scope_.empty());
  bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (pretty_ && !empty) Indent();
  out_->push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_->push_back('[');
  first_in_scope_.push_back(true);
}

void JsonWriter::EndArray() {
  BYC_CHECK(!first_in_scope_.empty());
  bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (pretty_ && !empty) Indent();
  out_->push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  BYC_CHECK(!first_in_scope_.empty());
  BeforeValue();
  out_->push_back('"');
  out_->append(JsonEscaped(key));
  out_->append("\": ");
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_->push_back('"');
  out_->append(JsonEscaped(value));
  out_->push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_->append(std::to_string(value));
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_->append(std::to_string(value));
}

void JsonWriter::Double(double value, int decimals) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_->append("null");
    return;
  }
  char buf[64];
  if (decimals >= 0) {
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    out_->append(buf);
  } else {
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    BYC_CHECK(ec == std::errc());
    out_->append(buf, ptr);
  }
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_->append(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_->append("null");
}

}  // namespace byc
