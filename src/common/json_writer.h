#ifndef BYC_COMMON_JSON_WRITER_H_
#define BYC_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace byc {

/// Escapes a string for embedding inside a JSON string literal (RFC 8259):
/// backslash, double quote, and control characters below 0x20. Does not
/// add the surrounding quotes. This is the single escaping routine shared
/// by bench/perf_replay, the decision tracer's JSONL sink, and the run
/// manifest writer.
std::string JsonEscaped(std::string_view s);

/// Minimal streaming JSON writer: objects, arrays, and scalar values with
/// comma/indent management. One writer per document; output accumulates
/// in the string passed to the constructor. Style:
///   pretty == true   newline + 2-space indentation per nesting level
///   pretty == false  single line, ", " between elements, ": " after keys
/// Keys and string values are escaped via JsonEscaped. Doubles print
/// either with a fixed decimal count (decimals >= 0) or with shortest
/// round-trip formatting; non-finite doubles are written as null (JSON
/// has no Inf/NaN).
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out, bool pretty = true);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Starts a key inside an object; follow with a value or Begin*().
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value, int decimals = -1);
  void Bool(bool value);
  void Null();

 private:
  void BeforeValue();
  void Indent();

  std::string* out_;
  bool pretty_;
  /// One frame per open container: true until its first element is
  /// written.
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace byc

#endif  // BYC_COMMON_JSON_WRITER_H_
