#ifndef BYC_COMMON_RESULT_H_
#define BYC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace byc {

/// Value-or-error return type (akin to absl::StatusOr / arrow::Result).
/// A Result is either OK and holds a T, or holds a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status makes
  /// `return Status::NotFound(...);` work. An OK status is a programming
  /// error (there would be no value) and is remapped to Internal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the held value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value into `lhs`. Usable in functions returning Status or
/// Result<U>.
#define BYC_ASSIGN_OR_RETURN(lhs, rexpr)            \
  BYC_ASSIGN_OR_RETURN_IMPL_(                       \
      BYC_CONCAT_(_byc_result_, __LINE__), lhs, rexpr)

#define BYC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define BYC_CONCAT_(a, b) BYC_CONCAT_IMPL_(a, b)
#define BYC_CONCAT_IMPL_(a, b) a##b

}  // namespace byc

#endif  // BYC_COMMON_RESULT_H_
