#include "common/csv.h"

namespace byc {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::ostream& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    WriteField(out_, fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteHeader(const std::vector<std::string_view>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    WriteField(out_, fields[i]);
  }
  out_ << '\n';
}

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Ignore CR in CRLF-terminated lines.
    } else {
      cur += c;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace byc
