#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace byc {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  BYC_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  BYC_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  BYC_CHECK_GT(mean, 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  BYC_CHECK_GE(n, 1u);
  BYC_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // exact despite rounding
}

size_t ZipfSampler::Sample(Rng& rng) const { return RankOf(rng.NextDouble()); }

size_t ZipfSampler::RankOf(double u) const {
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  BYC_CHECK_LT(i, cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace byc
