#ifndef BYC_COMMON_RANDOM_H_
#define BYC_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace byc {

/// Deterministic pseudo-random number generator (xoshiro256++). All
/// randomness in the library — the synthetic workload generator and the
/// randomized SpaceEffBY policy — flows through seeded Rng instances, so
/// every simulation is reproducible from its seed.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give independent
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [lo, hi]. Precondition: lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Log-normally distributed value where the underlying normal has the
  /// given mu and sigma.
  double NextLogNormal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Raw xoshiro256++ state, for checkpoint/restore: a generator rebuilt
  /// with set_state() continues the exact same stream.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  uint64_t s_[4];
};

/// Zipf(theta) sampler over {0, 1, ..., n-1} with rank 0 the most popular.
/// Uses a precomputed CDF (n is small in our workloads: schema elements).
class ZipfSampler {
 public:
  /// Precondition: n >= 1, theta >= 0 (theta == 0 degenerates to uniform).
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// The rank a uniform variate u in [0, 1) maps to: Sample(rng) is
  /// exactly RankOf(rng.NextDouble()). Exposed so callers that manage
  /// their own uniform draws (RankSampler's single-draw discipline) hit
  /// the identical cdf search.
  size_t RankOf(double u) const;

  size_t n() const { return cdf_.size(); }

  /// Probability mass of rank i.
  double Pmf(size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace byc

#endif  // BYC_COMMON_RANDOM_H_
