#ifndef BYC_COMMON_STATUS_H_
#define BYC_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace byc {

/// Status codes used across the library. Mirrors the RocksDB/Arrow idiom:
/// library functions that can fail return a Status (or Result<T>) instead
/// of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCapacityExceeded,
  kIoError,
  kParseError,
  kInternal,
  /// A per-request deadline expired before the operation finished (the
  /// service layer's timeout errors).
  kDeadlineExceeded,
  /// A remote peer is unreachable or refused the connection; retrying
  /// later may succeed (the service layer's degraded-mode trigger).
  kUnavailable,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success/error value. OK statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define BYC_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::byc::Status _byc_status = (expr);       \
    if (!_byc_status.ok()) return _byc_status; \
  } while (false)

}  // namespace byc

#endif  // BYC_COMMON_STATUS_H_
