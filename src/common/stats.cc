#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace byc {

void StatAccumulator::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

std::string StatAccumulator::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.4g min=%.4g max=%.4g sd=%.4g", count_,
                mean(), min(), max(), stddev());
  return buf;
}

void QuantileSketch::Add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

double QuantileSketch::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1 - frac) + values_[hi] * frac;
}

LogHistogram::LogHistogram() : buckets_(kNumBuckets, 0) {}

size_t LogHistogram::BucketIndex(double x) {
  if (!(x > 0)) return 0;  // underflow bucket (also catches NaN)
  // Bucket for the smallest bound >= x: ceil(log2(x) * 8) - kMinExponent.
  double e = std::ceil(std::log2(x) * kBucketsPerDoubling);
  double idx = e - static_cast<double>(kMinExponent);
  if (idx < 1) return 0;
  if (idx >= static_cast<double>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

double LogHistogram::BucketUpperBound(size_t index) {
  return std::exp2(static_cast<double>(static_cast<long>(index) +
                                       kMinExponent) /
                   kBucketsPerDoubling);
}

void LogHistogram::Add(double x) {
  ++buckets_[BucketIndex(x)];
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic (nearest-rank, 1-based).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      double value;
      if (i == 0) {
        value = min_;  // underflow bucket: everything <= Bound(0)
      } else {
        // Geometric midpoint of (Bound(i-1), Bound(i)].
        value = std::sqrt(BucketUpperBound(i - 1) * BucketUpperBound(i));
      }
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

std::string LogHistogram::ToString() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g "
                "max=%.4g",
                count_, mean(), min(), p50(), p90(), p99(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi) {
  BYC_CHECK_GT(hi, lo);
  BYC_CHECK_GE(buckets, 1u);
  width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  double idx = (x - lo_) / width_;
  long i = static_cast<long>(std::floor(idx));
  i = std::clamp<long>(i, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

double Histogram::BucketLow(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BucketHigh(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace byc
