#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace byc {

void StatAccumulator::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

std::string StatAccumulator::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.4g min=%.4g max=%.4g sd=%.4g", count_,
                mean(), min(), max(), stddev());
  return buf;
}

void QuantileSketch::Add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

double QuantileSketch::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1 - frac) + values_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi) {
  BYC_CHECK_GT(hi, lo);
  BYC_CHECK_GE(buckets, 1u);
  width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  double idx = (x - lo_) / width_;
  long i = static_cast<long>(std::floor(idx));
  i = std::clamp<long>(i, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

double Histogram::BucketLow(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BucketHigh(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace byc
