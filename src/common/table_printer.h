#ifndef BYC_COMMON_TABLE_PRINTER_H_
#define BYC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace byc {

/// Accumulates rows and prints a column-aligned plain-text table. The
/// benches use this to reproduce the paper's tables as readable console
/// output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Renders with a header separator; columns sized to the widest cell.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace byc

#endif  // BYC_COMMON_TABLE_PRINTER_H_
