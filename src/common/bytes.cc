#include "common/bytes.h"

#include <cmath>
#include <cstdio>

namespace byc {

std::string FormatBytes(double bytes) {
  const char* suffix = "B";
  double v = bytes;
  if (std::fabs(v) >= kGB) {
    v /= kGB;
    suffix = "GB";
  } else if (std::fabs(v) >= kMB) {
    v /= kMB;
    suffix = "MB";
  } else if (std::fabs(v) >= kKB) {
    v /= kKB;
    suffix = "KB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix);
  return buf;
}

std::string FormatGB(double bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", bytes / kGB);
  return buf;
}

}  // namespace byc
