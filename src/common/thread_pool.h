#ifndef BYC_COMMON_THREAD_POOL_H_
#define BYC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace byc {

/// A fixed-size thread pool with submit/wait semantics — the execution
/// substrate of the parallel sweep engine (sim::SweepRunner). No work
/// stealing, no futures: callers submit void() tasks and Wait() for the
/// pool to drain, which is exactly the shape of an embarrassingly
/// parallel cache-configuration sweep.
///
/// Tasks must not throw (library code uses Status/Result, not
/// exceptions). The destructor drains every submitted task before
/// joining, so work handed to the pool is never silently dropped.
class ThreadPool {
 public:
  /// Largest worker count BYC_THREADS may request.
  static constexpr unsigned kMaxThreads = 1024;

  /// Parses a BYC_THREADS-style value: a plain decimal integer in
  /// [1, kMaxThreads]. Anything else — empty, whitespace, signs ("+8",
  /// "-1"), trailing junk ("8x"), zero, or out-of-range values — returns
  /// nullopt so callers can fall back to hardware concurrency instead of
  /// silently misconfiguring the pool.
  static std::optional<unsigned> ParseThreadCount(std::string_view text);

  /// Worker count used for `threads == 0`: the BYC_THREADS environment
  /// variable when it parses (see ParseThreadCount), otherwise
  /// std::thread::hardware_concurrency() (minimum 1).
  static unsigned DefaultThreadCount();

  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task. Thread-safe; may be called from worker threads.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing. The pool
  /// is reusable afterwards.
  void Wait();

 private:
  void WorkerLoop(std::stop_token stop);

  std::mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  /// Tasks submitted but not yet finished (queued + running).
  size_t outstanding_ = 0;
  std::vector<std::jthread> workers_;
};

}  // namespace byc

#endif  // BYC_COMMON_THREAD_POOL_H_
