#ifndef BYC_COMMON_CSV_H_
#define BYC_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace byc {

/// Minimal CSV writer. Fields containing commas, quotes, or newlines are
/// quoted per RFC 4180. Benches use this to emit figure series that can be
/// plotted externally.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: header row from string views.
  void WriteHeader(const std::vector<std::string_view>& fields);

 private:
  std::ostream& out_;
};

/// Splits one CSV line into fields, honoring RFC 4180 quoting.
/// Returns ParseError on an unterminated quoted field.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

}  // namespace byc

#endif  // BYC_COMMON_CSV_H_
