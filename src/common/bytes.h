#ifndef BYC_COMMON_BYTES_H_
#define BYC_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace byc {

/// Byte quantities. The network-cost economy of bypass-yield caching is
/// denominated in bytes; doubles carry fractional yields produced by the
/// proportional yield decomposition.
inline constexpr double kKB = 1024.0;
inline constexpr double kMB = 1024.0 * kKB;
inline constexpr double kGB = 1024.0 * kMB;

/// Formats a byte count with a binary-unit suffix, e.g. "1.50 GB".
std::string FormatBytes(double bytes);

/// Formats bytes as a GB figure with two decimals (the unit the paper's
/// tables use), without a suffix: 1216.94.
std::string FormatGB(double bytes);

}  // namespace byc

#endif  // BYC_COMMON_BYTES_H_
