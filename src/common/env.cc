#include "common/env.h"

#include <charconv>
#include <cstdlib>

namespace byc::env {

namespace {

Status BadValue(std::string_view what, std::string_view text) {
  return Status::InvalidArgument(std::string(what) + " '" + std::string(text) +
                                 "'");
}

}  // namespace

std::optional<std::string> Raw(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  return std::string(value);
}

Result<int64_t> ParseInt(std::string_view text, int64_t min, int64_t max) {
  if (text.empty()) return BadValue("empty integer", text);
  // std::from_chars already rejects whitespace and '+', and reports
  // overflow; the full-consumption check rejects trailing junk.
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value, 10);
  if (ec == std::errc::result_out_of_range) {
    return BadValue("integer out of range", text);
  }
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return BadValue("bad integer", text);
  }
  if (value < min || value > max) {
    return Status::InvalidArgument(
        "integer " + std::string(text) + " outside [" + std::to_string(min) +
        ", " + std::to_string(max) + "]");
  }
  return value;
}

Result<int64_t> ParseDurationMs(std::string_view text, int64_t min_ms,
                                int64_t max_ms) {
  if (text.empty()) return BadValue("empty duration", text);
  size_t digits = 0;
  while (digits < text.size() && text[digits] >= '0' && text[digits] <= '9') {
    ++digits;
  }
  if (digits == 0) return BadValue("bad duration", text);
  std::string_view number = text.substr(0, digits);
  std::string_view suffix = text.substr(digits);
  int64_t scale;
  if (suffix.empty() || suffix == "ms") {
    scale = 1;
  } else if (suffix == "s") {
    scale = 1000;
  } else if (suffix == "m") {
    scale = 60'000;
  } else {
    return BadValue("bad duration suffix in", text);
  }
  BYC_ASSIGN_OR_RETURN(int64_t value,
                       ParseInt(number, 0, INT64_MAX / scale));
  value *= scale;
  if (value < min_ms || value > max_ms) {
    return Status::InvalidArgument(
        "duration " + std::string(text) + " outside [" +
        std::to_string(min_ms) + "ms, " + std::to_string(max_ms) + "ms]");
  }
  return value;
}

Result<HostPort> ParseHostPort(std::string_view text) {
  size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    return BadValue("address missing ':' in", text);
  }
  HostPort out;
  std::string_view host = text.substr(0, colon);
  if (host.empty()) {
    out.host = "127.0.0.1";
  } else {
    for (char c : host) {
      if (c == ' ' || c == '\t') return BadValue("bad host in", text);
    }
    out.host = std::string(host);
  }
  BYC_ASSIGN_OR_RETURN(int64_t port,
                       ParseInt(text.substr(colon + 1), 0, 65535));
  out.port = static_cast<uint16_t>(port);
  return out;
}

Result<std::string> ParsePath(std::string_view text) {
  if (text.empty()) return BadValue("empty path", text);
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
        static_cast<unsigned char>(c) < 0x20) {
      return BadValue("whitespace or control character in path", text);
    }
  }
  while (text.size() > 1 && text.back() == '/') text.remove_suffix(1);
  return std::string(text);
}

Result<int64_t> IntOr(const char* name, int64_t fallback, int64_t min,
                      int64_t max) {
  std::optional<std::string> raw = Raw(name);
  if (!raw.has_value()) return fallback;
  Result<int64_t> parsed = ParseInt(*raw, min, max);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(name) + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<int64_t> DurationMsOr(const char* name, int64_t fallback,
                             int64_t min_ms, int64_t max_ms) {
  std::optional<std::string> raw = Raw(name);
  if (!raw.has_value()) return fallback;
  Result<int64_t> parsed = ParseDurationMs(*raw, min_ms, max_ms);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(name) + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<std::string> PathOr(const char* name, std::string_view fallback) {
  std::optional<std::string> raw = Raw(name);
  if (!raw.has_value()) return std::string(fallback);
  Result<std::string> parsed = ParsePath(*raw);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string(name) + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

}  // namespace byc::env
