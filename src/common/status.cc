#include "common/status.h"

namespace byc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace byc
