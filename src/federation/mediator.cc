#include "federation/mediator.h"

#include <map>

namespace byc::federation {

std::vector<SubQuery> Mediator::Split(
    const query::ResolvedQuery& query) const {
  query::QueryYield yields =
      estimator_.Estimate(query, catalog::Granularity::kTable);

  std::map<int, SubQuery> by_site;
  for (size_t slot = 0; slot < query.tables.size(); ++slot) {
    int site = federation_->SiteOfTable(query.tables[slot]);
    SubQuery& sub = by_site[site];
    sub.site = site;
    sub.table_slots.push_back(static_cast<int>(slot));
  }
  for (const query::ObjectYield& oy : yields.per_object) {
    int site = federation_->SiteOfTable(oy.object.table);
    by_site[site].result_bytes += oy.yield_bytes;
  }

  std::vector<SubQuery> out;
  out.reserve(by_site.size());
  for (auto& [site, sub] : by_site) out.push_back(std::move(sub));
  return out;
}

std::vector<core::Access> Mediator::Decompose(
    const query::ResolvedQuery& query) const {
  query::QueryYield yields = estimator_.Estimate(query, granularity_);
  std::vector<core::Access> out;
  out.reserve(yields.per_object.size());
  for (const query::ObjectYield& oy : yields.per_object) {
    core::Access access;
    access.object = oy.object;
    access.yield_bytes = oy.yield_bytes;
    access.size_bytes = ObjectSizeBytes(federation_->catalog(), oy.object);
    access.fetch_cost = federation_->FetchCost(oy.object);
    access.bypass_cost = federation_->TransferCost(oy.object, oy.yield_bytes);
    out.push_back(access);
  }
  return out;
}

}  // namespace byc::federation
