#include "federation/mediator.h"

#include <map>

#include "query/signature.h"
#include "telemetry/metrics.h"

namespace byc::federation {

namespace {

/// Shapes are few (the generators draw from dozens of templates; real
/// traces reuse schemas heavily), but cap the memo so adversarial streams
/// of all-distinct shapes cannot grow it without bound. Past the cap,
/// decomposition still works — new shapes just aren't cached.
constexpr size_t kMemoCapacity = 4096;

}  // namespace

std::vector<SubQuery> Mediator::Split(
    const query::ResolvedQuery& query) const {
  query::QueryYield yields =
      estimator_.Estimate(query, catalog::Granularity::kTable);

  std::map<int, SubQuery> by_site;
  for (size_t slot = 0; slot < query.tables.size(); ++slot) {
    int site = federation_->SiteOfTable(query.tables[slot]);
    SubQuery& sub = by_site[site];
    sub.site = site;
    sub.table_slots.push_back(static_cast<int>(slot));
  }
  for (const query::ObjectYield& oy : yields.per_object) {
    int site = federation_->SiteOfTable(oy.object.table);
    by_site[site].result_bytes += oy.yield_bytes;
  }

  std::vector<SubQuery> out;
  out.reserve(by_site.size());
  for (auto& [site, sub] : by_site) out.push_back(std::move(sub));
  return out;
}

Mediator::MemoEntry Mediator::BuildMemoEntry(
    const query::ResolvedQuery& query) const {
  query::YieldSkeleton skeleton =
      estimator_.EstimateSkeleton(query, granularity_);
  MemoEntry entry;
  entry.shape = query;
  entry.row_width = skeleton.row_width;
  entry.objects.reserve(skeleton.shares.size());
  for (const query::YieldSkeleton::Share& share : skeleton.shares) {
    MemoObject obj;
    obj.base.object = share.object;
    obj.base.size_bytes = ObjectSizeBytes(federation_->catalog(), share.object);
    obj.base.fetch_cost = federation_->FetchCost(share.object);
    obj.share_numerator = share.numerator;
    obj.share_denominator = share.denominator;
    obj.cost_per_byte = federation_->TransferCost(share.object, 1.0);
    entry.objects.push_back(obj);
  }
  return entry;
}

std::vector<core::Access> Mediator::Rescale(
    const MemoEntry& entry, const query::ResolvedQuery& query) const {
  // Reproduces Estimate() + the direct decomposition exactly:
  //   total_bytes = result_rows * row_width
  //   yield_i     = total_bytes * numerator_i / denominator_i
  //   bypass_i    = yield_i * cost_per_byte_i   (== TransferCost)
  double total_bytes = estimator_.EstimateResultRows(query) * entry.row_width;
  std::vector<core::Access> out;
  out.reserve(entry.objects.size());
  for (const MemoObject& obj : entry.objects) {
    core::Access access = obj.base;
    access.yield_bytes =
        total_bytes * obj.share_numerator / obj.share_denominator;
    access.bypass_cost = access.yield_bytes * obj.cost_per_byte;
    out.push_back(access);
  }
  return out;
}

std::vector<core::Access> Mediator::Decompose(
    const query::ResolvedQuery& query) const {
  uint64_t signature = query::SchemaSignature(query);
  std::lock_guard<std::mutex> lock(memo_->mu);
  std::vector<MemoEntry>& bucket = memo_->by_signature[signature];
  for (const MemoEntry& entry : bucket) {
    if (query::SameSchemaShape(entry.shape, query)) {
      ++memo_->hits;
      return Rescale(entry, query);
    }
  }
  ++memo_->misses;
  if (memo_->entries >= kMemoCapacity) {
    return Rescale(BuildMemoEntry(query), query);
  }
  bucket.push_back(BuildMemoEntry(query));
  ++memo_->entries;
  return Rescale(bucket.back(), query);
}

size_t Mediator::memo_entries() const {
  std::lock_guard<std::mutex> lock(memo_->mu);
  return memo_->entries;
}

uint64_t Mediator::memo_hits() const {
  std::lock_guard<std::mutex> lock(memo_->mu);
  return memo_->hits;
}

uint64_t Mediator::memo_misses() const {
  std::lock_guard<std::mutex> lock(memo_->mu);
  return memo_->misses;
}

void Mediator::ExportMemoMetrics(telemetry::MetricsRegistry& metrics) const {
  size_t entries;
  uint64_t hits, misses;
  {
    std::lock_guard<std::mutex> lock(memo_->mu);
    entries = memo_->entries;
    hits = memo_->hits;
    misses = memo_->misses;
  }
  metrics.gauge("decompose.memo_entries").Set(static_cast<double>(entries));
  metrics.gauge("decompose.memo_hits").Set(static_cast<double>(hits));
  metrics.gauge("decompose.memo_misses").Set(static_cast<double>(misses));
}

}  // namespace byc::federation
