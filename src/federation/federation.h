#ifndef BYC_FEDERATION_FEDERATION_H_
#define BYC_FEDERATION_FEDERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/object_id.h"
#include "common/result.h"
#include "net/cost_model.h"

namespace byc::federation {

/// One member database of the federation. A site owns a set of tables and
/// evaluates sub-queries against them ("move the program to the data"):
/// only result bytes cross the WAN for bypassed queries.
struct Site {
  int id = 0;
  std::string name;
  std::vector<int> tables;  // catalog table indices owned by this site
};

/// A wide-area database federation: a catalog partitioned across sites,
/// plus the WAN cost model. SkyQuery-style: the proxy cache sits with the
/// mediator near the clients; all server->proxy/client traffic is WAN.
class Federation {
 public:
  /// Single-site federation with uniform per-byte cost (the paper's EDR /
  /// DR1 setting: traces come from the largest federating node).
  static Federation SingleSite(catalog::Catalog catalog,
                               double cost_per_byte = 1.0);

  /// Multi-site federation. `table_site[t]` gives the owning site of
  /// table t; `site_cost_per_byte[s]` the WAN cost of site s. Used by the
  /// BYHR (heterogeneous-network) experiments.
  static Result<Federation> MultiSite(catalog::Catalog catalog,
                                      std::vector<int> table_site,
                                      std::vector<double> site_cost_per_byte);

  const catalog::Catalog& catalog() const { return catalog_; }
  int num_sites() const { return static_cast<int>(sites_.size()); }
  const Site& site(int i) const { return sites_[static_cast<size_t>(i)]; }

  /// Owning site of a table.
  int SiteOfTable(int table_idx) const {
    return table_site_[static_cast<size_t>(table_idx)];
  }

  /// The WAN cost model. The service layer prices backend-acknowledged
  /// byte counts through it (service/mediator_server.cc), so wire
  /// accounting and simulator accounting share one pricing path.
  const net::CostModel& cost_model() const { return *cost_model_; }

  /// WAN cost of shipping `bytes` of query results for `object`'s table
  /// from its owning site.
  double TransferCost(const catalog::ObjectId& object, double bytes) const {
    return bytes * cost_model_->CostPerByte(SiteOfTable(object.table));
  }

  /// f_i: WAN cost of loading `object` into the proxy cache.
  double FetchCost(const catalog::ObjectId& object) const {
    return TransferCost(object,
                        static_cast<double>(ObjectSizeBytes(catalog_, object)));
  }

 private:
  Federation(catalog::Catalog catalog, std::vector<Site> sites,
             std::vector<int> table_site,
             std::unique_ptr<net::CostModel> cost_model)
      : catalog_(std::move(catalog)),
        sites_(std::move(sites)),
        table_site_(std::move(table_site)),
        cost_model_(std::move(cost_model)) {}

  catalog::Catalog catalog_;
  std::vector<Site> sites_;
  std::vector<int> table_site_;
  std::unique_ptr<net::CostModel> cost_model_;
};

}  // namespace byc::federation

#endif  // BYC_FEDERATION_FEDERATION_H_
