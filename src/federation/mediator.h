#ifndef BYC_FEDERATION_MEDIATOR_H_
#define BYC_FEDERATION_MEDIATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/access.h"
#include "federation/federation.h"
#include "query/yield.h"

namespace byc::telemetry {
class MetricsRegistry;
}  // namespace byc::telemetry

namespace byc::federation {

/// A per-site sub-query produced by query splitting: the FROM slots of
/// the original query that live at one site, and the result bytes that
/// site ships if the sub-query is bypassed to it.
struct SubQuery {
  int site = 0;
  std::vector<int> table_slots;
  double result_bytes = 0;
};

/// The SkyQuery-style mediation middleware. The mediator receives a
/// federation query, splits it into sub-queries evaluated in parallel at
/// member databases, and — with the collocated bypass-yield cache —
/// decides which parts to serve locally (§3). This class performs the
/// mechanical parts: query splitting and decomposition of a query into
/// the per-object Access stream the cache policies consume.
///
/// Decompose() memoizes the shape-dependent part of the work behind a
/// schema-signature-keyed cache: the traces exhibit heavy schema reuse
/// ("queries with similar schema against different data", §1.1), so the
/// referenced-object set, proportional shares, row width, object sizes,
/// and link costs are computed once per shape and only the
/// selectivity-dependent row-count estimate runs per query. Memoized
/// decomposition is bit-identical to the direct path (see
/// query::YieldSkeleton) and thread-safe.
class Mediator {
 public:
  Mediator(const Federation* federation, catalog::Granularity granularity)
      : federation_(federation),
        granularity_(granularity),
        estimator_(&federation->catalog()),
        memo_(std::make_unique<Memo>()) {}

  catalog::Granularity granularity() const { return granularity_; }
  const query::YieldEstimator& estimator() const { return estimator_; }

  /// Splits a query across the federation's sites. Each site receives the
  /// slots of tables it owns; its share of the result is proportional to
  /// its objects' yield shares.
  std::vector<SubQuery> Split(const query::ResolvedQuery& query) const;

  /// Decomposes a query into per-object accesses: each referenced object
  /// gets its yield share (paper §6 decomposition), its size, and its
  /// fetch cost from the owning site. This is the stream the bypass-yield
  /// policies and the simulator consume.
  std::vector<core::Access> Decompose(const query::ResolvedQuery& query) const;

  /// Decomposition-memo statistics (for benchmarks and tests).
  size_t memo_entries() const;
  uint64_t memo_hits() const;
  uint64_t memo_misses() const;

  /// Publishes the memo statistics as telemetry gauges
  /// (decompose.memo_entries / memo_hits / memo_misses) — the scrape the
  /// simulator performs at the end of each decompose phase.
  void ExportMemoMetrics(telemetry::MetricsRegistry& metrics) const;

 private:
  /// One referenced object of a memoized shape: the selectivity-
  /// independent Access fields plus the scale factors that turn a query's
  /// total yield into this object's share and WAN cost.
  struct MemoObject {
    core::Access base;  // object, size_bytes, fetch_cost filled in
    double share_numerator = 0;
    double share_denominator = 0;
    double cost_per_byte = 0;
  };
  struct MemoEntry {
    query::ResolvedQuery shape;  // representative query, collision check
    double row_width = 0;
    std::vector<MemoObject> objects;
  };
  struct Memo {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<MemoEntry>> by_signature;
    size_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Builds the memo entry for a freshly seen shape.
  MemoEntry BuildMemoEntry(const query::ResolvedQuery& query) const;

  /// Rescales a memoized shape by the query's estimated result size.
  std::vector<core::Access> Rescale(const MemoEntry& entry,
                                    const query::ResolvedQuery& query) const;

  const Federation* federation_;
  catalog::Granularity granularity_;
  query::YieldEstimator estimator_;
  std::unique_ptr<Memo> memo_;
};

}  // namespace byc::federation

#endif  // BYC_FEDERATION_MEDIATOR_H_
