#ifndef BYC_FEDERATION_MEDIATOR_H_
#define BYC_FEDERATION_MEDIATOR_H_

#include <vector>

#include "core/access.h"
#include "federation/federation.h"
#include "query/yield.h"

namespace byc::federation {

/// A per-site sub-query produced by query splitting: the FROM slots of
/// the original query that live at one site, and the result bytes that
/// site ships if the sub-query is bypassed to it.
struct SubQuery {
  int site = 0;
  std::vector<int> table_slots;
  double result_bytes = 0;
};

/// The SkyQuery-style mediation middleware. The mediator receives a
/// federation query, splits it into sub-queries evaluated in parallel at
/// member databases, and — with the collocated bypass-yield cache —
/// decides which parts to serve locally (§3). This class performs the
/// mechanical parts: query splitting and decomposition of a query into
/// the per-object Access stream the cache policies consume.
class Mediator {
 public:
  Mediator(const Federation* federation, catalog::Granularity granularity)
      : federation_(federation),
        granularity_(granularity),
        estimator_(&federation->catalog()) {}

  catalog::Granularity granularity() const { return granularity_; }
  const query::YieldEstimator& estimator() const { return estimator_; }

  /// Splits a query across the federation's sites. Each site receives the
  /// slots of tables it owns; its share of the result is proportional to
  /// its objects' yield shares.
  std::vector<SubQuery> Split(const query::ResolvedQuery& query) const;

  /// Decomposes a query into per-object accesses: each referenced object
  /// gets its yield share (paper §6 decomposition), its size, and its
  /// fetch cost from the owning site. This is the stream the bypass-yield
  /// policies and the simulator consume.
  std::vector<core::Access> Decompose(const query::ResolvedQuery& query) const;

 private:
  const Federation* federation_;
  catalog::Granularity granularity_;
  query::YieldEstimator estimator_;
};

}  // namespace byc::federation

#endif  // BYC_FEDERATION_MEDIATOR_H_
