#include "federation/federation.h"

namespace byc::federation {

Federation Federation::SingleSite(catalog::Catalog catalog,
                                  double cost_per_byte) {
  Site site;
  site.id = 0;
  site.name = catalog.name() + "-node";
  for (int t = 0; t < catalog.num_tables(); ++t) site.tables.push_back(t);
  std::vector<int> table_site(static_cast<size_t>(catalog.num_tables()), 0);
  return Federation(std::move(catalog), {std::move(site)},
                    std::move(table_site),
                    std::make_unique<net::UniformCostModel>(cost_per_byte));
}

Result<Federation> Federation::MultiSite(
    catalog::Catalog catalog, std::vector<int> table_site,
    std::vector<double> site_cost_per_byte) {
  if (table_site.size() != static_cast<size_t>(catalog.num_tables())) {
    return Status::InvalidArgument(
        "table_site must have one entry per catalog table");
  }
  int num_sites = static_cast<int>(site_cost_per_byte.size());
  if (num_sites == 0) {
    return Status::InvalidArgument("federation needs at least one site");
  }
  std::vector<Site> sites(static_cast<size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    sites[static_cast<size_t>(s)].id = s;
    sites[static_cast<size_t>(s)].name =
        catalog.name() + "-site" + std::to_string(s);
  }
  for (size_t t = 0; t < table_site.size(); ++t) {
    int s = table_site[t];
    if (s < 0 || s >= num_sites) {
      return Status::InvalidArgument("table_site entry out of range");
    }
    sites[static_cast<size_t>(s)].tables.push_back(static_cast<int>(t));
  }
  return Federation(
      std::move(catalog), std::move(sites), std::move(table_site),
      std::make_unique<net::PerSiteCostModel>(std::move(site_cost_per_byte)));
}

}  // namespace byc::federation
