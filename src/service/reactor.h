#ifndef BYC_SERVICE_REACTOR_H_
#define BYC_SERVICE_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "service/socket.h"
#include "service/wire.h"

namespace byc::telemetry {
class Counter;
class MetricsRegistry;
class ShardedHistogram;
}  // namespace byc::telemetry

namespace byc::service {

class Reactor;
struct ReactorConn;

/// Handle to one reply slot on a reactor connection. Frames are answered
/// strictly in the order they arrived on the connection: each delivered
/// frame reserves a slot in the connection's reply FIFO, and a ticket
/// completes that slot — synchronously inside the frame callback or
/// later from any thread. The flusher only writes the ready prefix of
/// the FIFO, so out-of-order completions never reorder replies on the
/// wire.
///
/// Tickets are copyable (a batch reply may be shared) and keep the
/// connection object alive; completing a slot on a connection that
/// already closed is a harmless no-op.
class ReplyTicket {
 public:
  ReplyTicket() = default;

  bool valid() const { return conn_ != nullptr; }

  /// A recycled scratch buffer from the connection's spare pool (empty,
  /// capacity warm from earlier replies). Encode the reply into it and
  /// pass it to Complete — steady-state replies then allocate nothing.
  std::vector<uint8_t> TakeBuffer();

  /// Fills the slot with one (or more) fully encoded frames —
  /// header + payload, e.g. via EncodeFrameInto — and wakes the owning
  /// I/O thread if the slot became flushable. `close_after` closes the
  /// connection once this slot has been written (version-mismatch
  /// poisoning).
  void Complete(std::vector<uint8_t> encoded, bool close_after = false);

  /// Resolves the slot with no reply and closes the connection (the
  /// backend drop fault: request read, reply never sent).
  void Abandon();

 private:
  friend class Reactor;
  ReplyTicket(std::shared_ptr<ReactorConn> conn, uint64_t slot)
      : conn_(std::move(conn)), slot_(slot) {}

  std::shared_ptr<ReactorConn> conn_;
  uint64_t slot_ = 0;
};

/// Epoll-based service core shared by MediatorServer and BackendServer:
/// a small pool of I/O threads, each running a level-triggered epoll
/// loop over its share of the connections, with an eventfd for stop
/// wakeups — no timed polls anywhere, and connection count is not
/// bounded by thread count.
///
/// Thread model (DESIGN.md §9):
///   - thread 0 additionally owns the listener; accepted connections are
///     assigned round-robin across threads via cross-thread epoll_ctl.
///   - each connection has one reusable read buffer (frames are parsed
///     in place; payloads reach the frame callback as borrowed views)
///     and a FIFO of reply slots whose buffers recycle through a spare
///     pool — the steady state allocates nothing per request.
///   - replies flush with one vectored writev per wakeup covering every
///     contiguous ready slot.
///   - reads pause (EPOLLIN disarmed) while a connection has
///     max_inflight unanswered slots or too many unflushed reply bytes:
///     a firehosing or slow-reading client gets TCP backpressure instead
///     of ballooning server memory.
///
/// Framing errors (oversized length, unknown type) poison the
/// connection: reading stops, already-reserved slots still answer in
/// order, then a typed kError is written and the connection closes.
class Reactor {
 public:
  /// What to do with a freshly accepted connection.
  struct AdmitDecision {
    enum class Kind {
      kAccept,          ///< Register and serve.
      kRejectSilent,    ///< Close immediately (protocol-level refusal).
      kRejectWithFrame  ///< Write `frame`, then close (typed kBusy).
    };
    Kind kind = Kind::kAccept;
    Frame frame;

    static AdmitDecision Accept() { return {}; }
    static AdmitDecision RejectSilent() {
      return {Kind::kRejectSilent, Frame{}};
    }
    static AdmitDecision Reject(Frame frame) {
      return {Kind::kRejectWithFrame, std::move(frame)};
    }
  };

  struct Callbacks {
    /// Admission control, called on the accept thread per connection.
    /// Null admits everything.
    std::function<AdmitDecision()> admit;
    /// One complete, known-type frame. `payload` borrows the
    /// connection's read buffer and is valid only during the call; the
    /// ticket must eventually be completed or abandoned (from any
    /// thread). Called on the connection's I/O thread, never
    /// concurrently for one connection.
    std::function<void(FrameType type, const uint8_t* payload,
                       size_t payload_len, ReplyTicket ticket)>
        on_frame;
    /// Connection fully closed. `frames` is the number of frames
    /// delivered, `ms_open` the connection's lifetime.
    std::function<void(uint64_t frames, double ms_open)> on_close;
  };

  struct Options {
    /// I/O threads multiplexing all connections.
    int io_threads = 2;
    /// Deadline for the blocking writes on the reject and final-drain
    /// paths (regular replies are never blocking).
    int64_t io_deadline_ms = 2000;
    /// Unanswered reply slots per connection before reads pause.
    size_t max_inflight = 4;
    /// Unflushed reply bytes per connection before reads pause.
    size_t max_write_backlog = 1 << 20;
    /// Optional event-loop instrumentation (svc.reactor.* histograms and
    /// counters: epoll wait latency, events per wake, completion-to-wire
    /// flush latency, spare-buffer pool hit rate). Null — the default —
    /// skips every timing call, leaving the uninstrumented hot path
    /// byte-identical to the pre-observability reactor. Must outlive the
    /// reactor.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  /// Point-in-time aggregate of live connection state, for admin-plane
  /// gauges. Sample() copies the connection list under the registry
  /// lock, releases it, then visits each connection — it never holds
  /// both a connection mutex and the registry mutex (CloseConn acquires
  /// them in the opposite order), so a scrape can race closes safely.
  struct LiveStats {
    size_t connections = 0;
    /// Frames delivered but not yet completed, summed over connections.
    size_t pending_slots = 0;
    /// Reply bytes completed but not yet flushed to the kernel.
    size_t backlog_bytes = 0;
    /// Connections whose reads are parked on backpressure.
    size_t parked_reads = 0;
  };

  Reactor(Options options, Callbacks callbacks);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Binds 127.0.0.1:`port` (0: ephemeral) and starts the I/O threads.
  Status Start(uint16_t port);

  /// Stops accepting and stops delivering new frames (bytes already
  /// buffered stay buffered); already-delivered tickets keep completing
  /// and their replies keep flushing. The first phase of a graceful
  /// drain: callers quiesce their own pipeline next, then call Stop.
  void BeginDrain();

  /// Joins the I/O threads and closes the listener, leaving connections
  /// and their reply FIFOs intact. After this returns no frame callback
  /// can run, so a caller draining its own pipeline can complete
  /// straggler tickets (enqueued concurrently with the drain) and still
  /// have Stop flush their replies. Idempotent; Stop calls it first.
  void Join();

  /// Joins the I/O threads and closes every connection. With
  /// `flush_pending`, ready reply slots are first flushed synchronously
  /// (each connection bounded by io_deadline_ms) so drained requests
  /// still get their answers; without it the teardown is abrupt
  /// (BackendServer::Kill). Idempotent.
  void Stop(bool flush_pending);

  uint16_t port() const { return port_; }

  /// Live connection gauges; safe from any thread while the reactor
  /// runs (see LiveStats).
  LiveStats Sample() const;

 private:
  void IoLoop(int thread_index);
  void HandleAccept();
  /// Alternates read/parse and flush passes until neither makes
  /// progress — the iterative replacement for read->flush->resume
  /// recursion, so a deep pipeline cannot grow the stack. Owner thread
  /// only.
  void Drive(const std::shared_ptr<ReactorConn>& conn, bool read_first);
  /// Reads, parses, and dispatches everything currently buffered on
  /// `conn`; pauses or poisons it as needed. Owner thread only.
  void ProcessReadable(const std::shared_ptr<ReactorConn>& conn);
  /// Writes the ready prefix of the reply FIFO (one writev per round),
  /// recycles flushed buffers, updates epoll interest. Returns true when
  /// paused reads became resumable (the caller re-enters the parser:
  /// bytes may already sit in rbuf with the socket idle). Owner thread
  /// only.
  bool FlushAndRearm(const std::shared_ptr<ReactorConn>& conn);
  void CloseConn(const std::shared_ptr<ReactorConn>& conn);

  Options options_;
  Callbacks callbacks_;
  Listener listener_;
  uint16_t port_ = 0;

  /// Resolved once at Start() from options_.metrics (registry lookups
  /// lock; the hot path must not). All null when uninstrumented.
  telemetry::ShardedHistogram* wait_ms_hist_ = nullptr;
  telemetry::ShardedHistogram* events_per_wake_hist_ = nullptr;
  telemetry::ShardedHistogram* flush_ms_hist_ = nullptr;
  telemetry::Counter* spare_hits_ = nullptr;
  telemetry::Counter* spare_misses_ = nullptr;

  std::atomic<bool> draining_{true};
  std::atomic<bool> stopping_{true};
  bool started_ = false;
  bool joined_ = false;  ///< I/O threads exited (Join ran); Stop resets.

  int wake_fd_ = -1;  ///< eventfd registered in every epoll instance.
  std::vector<int> epoll_fds_;
  std::vector<std::thread> io_threads_;
  int next_thread_ = 0;  ///< Round-robin assignment cursor.

  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<ReactorConn>> conns_;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_REACTOR_H_
