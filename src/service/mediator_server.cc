#include "service/mediator_server.h"

#include <sys/socket.h>

#include <chrono>

#include "common/check.h"
#include "telemetry/metrics.h"
#include "workload/trace.h"

namespace byc::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll interval for noticing Stop() while idle.
constexpr int kPollMs = 50;

void InterruptibleSleep(int total_ms, const std::atomic<bool>& stop) {
  using namespace std::chrono;
  auto until = Clock::now() + milliseconds(total_ms);
  while (!stop.load(std::memory_order_relaxed) && Clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(10));
  }
}

}  // namespace

MediatorServer::MediatorServer(const federation::Federation* federation,
                               const core::PolicyConfig& policy_config,
                               std::vector<BackendAddress> backends,
                               Options options)
    : federation_(federation),
      mediator_(federation, options.granularity),
      policy_config_(policy_config),
      backend_addrs_(std::move(backends)),
      options_(options),
      retry_rng_(options.config.retry_seed) {}

Status MediatorServer::Start() {
  BYC_CHECK(federation_ != nullptr);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("mediator already running");
  }
  if (static_cast<int>(backend_addrs_.size()) < federation_->num_sites()) {
    return Status::InvalidArgument(
        "need one backend address per site: got " +
        std::to_string(backend_addrs_.size()) + " for " +
        std::to_string(federation_->num_sites()) + " sites");
  }
  auto listener = std::make_unique<Listener>();
  BYC_RETURN_IF_ERROR(listener->Listen(options_.config.port));
  port_ = listener->port();

  policy_ = core::MakePolicy(policy_config_);
  channels_.clear();
  channels_.reserve(backend_addrs_.size());
  for (const BackendAddress& addr : backend_addrs_) {
    channels_.push_back(Channel{addr, Socket(), false});
  }
  ledger_ = StatsReply{};

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  serve_thread_ = std::thread(
      [this, listener = std::move(listener)]() mutable {
        ServeLoopOn(*listener);
        listener->Close();
      });
  return Status::OK();
}

void MediatorServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (live_conn_fd_ >= 0) ::shutdown(live_conn_fd_, SHUT_RDWR);
  }
  if (serve_thread_.joinable()) serve_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (Channel& ch : channels_) ch.sock.Close();
}

StatsReply MediatorServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_;
}

void MediatorServer::ServeLoopOn(Listener& listener) {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener.Accept(kPollMs);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      live_conn_fd_ = accepted->fd();
    }
    // Connections are served one at a time: the cache policy is a
    // sequential replay, and interleaving clients would make wire runs
    // incomparable to the simulator.
    ServeConnection(*accepted);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      live_conn_fd_ = -1;
    }
  }
}

void MediatorServer::ServeConnection(Socket& conn) {
  const int64_t io_ms = options_.config.deadline_ms;
  while (!stop_.load(std::memory_order_acquire)) {
    Status ready = conn.WaitReadable(Deadline::After(kPollMs));
    if (!ready.ok()) {
      if (ready.IsDeadlineExceeded()) continue;
      return;  // Client closed or connection broke.
    }
    Result<Frame> request = ReadFrame(conn, Deadline::After(io_ms));
    if (!request.ok()) {
      if (request.status().IsInvalidArgument()) {
        // Oversized or unknown frame: answer with the typed error, then
        // drop the poisoned connection.
        WriteFrame(conn, MakeErrorFrame(request.status()),
                   Deadline::After(io_ms));
      }
      return;
    }
    Frame reply;
    switch (request->type) {
      case FrameType::kQuery:
        reply = HandleQuery(*request);
        break;
      case FrameType::kStats: {
        std::lock_guard<std::mutex> lock(mu_);
        reply = MakeStatsReplyFrame(ledger_);
        break;
      }
      case FrameType::kPing:
        reply.type = FrameType::kPong;
        break;
      default:
        // A well-formed frame the mediator does not serve (e.g. kFetch):
        // typed error, connection survives.
        reply = MakeErrorFrame(Status::InvalidArgument(
            "frame type " +
            std::to_string(static_cast<int>(request->type)) +
            " is not served by the mediator"));
        break;
    }
    if (!WriteFrame(conn, reply, Deadline::After(io_ms)).ok()) return;
  }
}

Frame MediatorServer::HandleQuery(const Frame& request) {
  Clock::time_point start{};
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) start = Clock::now();
#endif
  PayloadReader r(request.payload);
  std::string line = r.ReadText();
  Result<workload::TraceQuery> tq =
      workload::ParseTraceQuery(federation_->catalog(), line);
  if (!tq.ok()) return MakeErrorFrame(tq.status());

  // Decompose outside the ledger lock (the memo has its own).
  std::vector<core::Access> accesses = mediator_.Decompose(tq->query);

  QueryReply delta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const core::Access& access : accesses) {
      ProcessAccess(access, delta);
    }
    ++ledger_.queries;
  }
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.queries").Increment();
    options_.metrics->counter("svc.accesses").Increment(delta.accesses);
    if (delta.degraded > 0) {
      options_.metrics->counter("svc.degraded").Increment(delta.degraded);
    }
    options_.metrics->histogram("svc.request_ms")
        .Observe(std::chrono::duration<double, std::milli>(Clock::now() -
                                                           start)
                     .count());
  }
#endif
  return MakeQueryReplyFrame(delta);
}

void MediatorServer::ProcessAccess(const core::Access& access,
                                   QueryReply& delta) {
  core::Decision decision = policy_->OnAccess(access);
  ++ledger_.accesses;
  ++delta.accesses;
  ledger_.evictions += decision.evictions.size();
  delta.evictions += decision.evictions.size();

  const int site = federation_->SiteOfTable(access.object.table);
  // The service accounting path prices WAN traffic by what the backend
  // acknowledges shipping, at the federation cost model's per-byte link
  // cost — the same product the decomposed Access carries, so healthy
  // replays reproduce the simulator ledger bit for bit.
  const double cost_per_byte = federation_->cost_model().CostPerByte(site);

  auto degrade = [&] {
    ++ledger_.degraded_accesses;
    ++delta.degraded;
    ledger_.degraded_cost += access.bypass_cost;
    delta.degraded_cost += access.bypass_cost;
  };

  switch (decision.action) {
    case core::Action::kServeFromCache: {
      BYC_CHECK(policy_->Contains(access.object));
      ledger_.served_cost += access.bypass_cost;
      delta.served_cost += access.bypass_cost;
      ++ledger_.hits;
      ++delta.hits;
      break;
    }
    case core::Action::kBypass: {
      YieldRequest req{access.object.table, access.object.column,
                       access.yield_bytes};
      Result<Frame> reply = CallBackend(site, MakeYieldFrame(req));
      if (reply.ok() && reply->type == FrameType::kYieldReply) {
        PayloadReader ack(reply->payload);
        Result<double> bytes = ack.ReadF64();
        if (bytes.ok()) {
          double cost = *bytes * cost_per_byte;
          ledger_.bypass_cost += cost;
          delta.bypass_cost += cost;
          ++ledger_.bypasses;
          ++delta.bypasses;
          break;
        }
      }
      degrade();
      break;
    }
    case core::Action::kLoadAndServe: {
      BYC_CHECK(policy_->Contains(access.object));
      FetchRequest req{access.object.table, access.object.column,
                       access.size_bytes};
      Result<Frame> reply = CallBackend(site, MakeFetchFrame(req));
      bool loaded = false;
      if (reply.ok() && reply->type == FrameType::kFetchReply) {
        PayloadReader ack(reply->payload);
        Result<uint64_t> bytes = ack.ReadU64();
        if (bytes.ok()) {
          double cost = static_cast<double>(*bytes) * cost_per_byte;
          ledger_.fetch_cost += cost;
          delta.fetch_cost += cost;
          ledger_.served_cost += access.bypass_cost;
          delta.served_cost += access.bypass_cost;
          ++ledger_.loads;
          ++delta.loads;
          loaded = true;
        }
      }
      if (!loaded) {
        // The load never crossed the WAN; the client also cannot get
        // the result from the dead site. The policy keeps the object
        // resident (its decision stream stays fault-independent; the
        // cache repairs the load on recovery) — only the ledger records
        // the failure.
        degrade();
      }
      break;
    }
  }
}

Result<Frame> MediatorServer::CallBackend(int site, const Frame& request) {
  BYC_CHECK_GE(site, 0);
  BYC_CHECK_LT(static_cast<size_t>(site), channels_.size());
  Channel& ch = channels_[static_cast<size_t>(site)];
  const RetryPolicy& retry = options_.config.retry;

  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      InterruptibleSleep(retry.DelayMs(attempt - 1, retry_rng_), stop_);
      ++ledger_.retries;
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.retries").Increment();
      }
#endif
    }
    if (stop_.load(std::memory_order_acquire)) {
      return Status::Unavailable("mediator stopping");
    }
    Deadline deadline = Deadline::After(options_.config.deadline_ms);
    if (!ch.sock.valid()) {
      Result<Socket> sock =
          Socket::Connect(ch.addr.host, ch.addr.port, deadline);
      if (!sock.ok()) {
        last = sock.status();
        continue;
      }
      ch.sock = std::move(sock).value();
      if (ch.connected_once) {
        ++ledger_.reconnects;
#if BYC_TELEMETRY_ENABLED
        if (options_.metrics != nullptr) {
          options_.metrics->counter("svc.reconnects").Increment();
        }
#endif
      }
      ch.connected_once = true;
    }
    Status sent = WriteFrame(ch.sock, request, deadline);
    if (!sent.ok()) {
      ch.sock.Close();
      last = sent;
      continue;
    }
    Result<Frame> reply = ReadFrame(ch.sock, deadline);
    if (!reply.ok()) {
      ch.sock.Close();
      last = reply.status();
      continue;
    }
    if (reply->type == FrameType::kError) {
      // Semantic rejection: the backend is alive and said no. Retrying
      // cannot help; surface the typed status.
      return ParseErrorFrame(*reply);
    }
    return reply;
  }
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.backend_failures").Increment();
  }
#endif
  return Status(last.code(), "site " + std::to_string(site) + " after " +
                                 std::to_string(retry.max_attempts) +
                                 " attempts: " + last.message());
}

}  // namespace byc::service
