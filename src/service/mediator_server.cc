#include "service/mediator_server.h"

#include <chrono>
#include <deque>
#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"
#include "workload/trace.h"

namespace byc::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll interval for noticing Stop() while idle.
constexpr int kPollMs = 50;

void InterruptibleSleep(int total_ms, const std::atomic<bool>& stop) {
  using namespace std::chrono;
  auto until = Clock::now() + milliseconds(total_ms);
  while (!stop.load(std::memory_order_relaxed) && Clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(10));
  }
}

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

MediatorServer::MediatorServer(const federation::Federation* federation,
                               const core::PolicyConfig& policy_config,
                               std::vector<BackendAddress> backends,
                               Options options)
    : federation_(federation),
      mediator_(federation, policy_config.granularity),
      policy_config_(policy_config),
      backend_addrs_(std::move(backends)),
      options_(options),
      retry_rng_(options.config.retry_seed) {}

Status MediatorServer::Start() {
  BYC_CHECK(federation_ != nullptr);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("mediator already running");
  }
  if (static_cast<int>(backend_addrs_.size()) < federation_->num_sites()) {
    return Status::InvalidArgument(
        "need one backend address per site: got " +
        std::to_string(backend_addrs_.size()) + " for " +
        std::to_string(federation_->num_sites()) + " sites");
  }
  auto listener = std::make_unique<Listener>();
  BYC_RETURN_IF_ERROR(listener->Listen(options_.config.port));
  port_ = listener->port();

  policy_ = core::MakePolicy(policy_config_);
  channels_.clear();
  channels_.reserve(backend_addrs_.size());
  for (const BackendAddress& addr : backend_addrs_) {
    channels_.push_back(Channel{addr, Socket(), false});
  }
  ledger_ = StatsReply{};
  admission_next_ = 0;
  admission_waiting_.clear();
  live_sessions_.store(0, std::memory_order_relaxed);
  sessions_accepted_.store(0, std::memory_order_relaxed);
  sessions_rejected_.store(0, std::memory_order_relaxed);
  admission_skips_.store(0, std::memory_order_relaxed);
  // One pool worker per admitted session: a session occupies its worker
  // for its whole lifetime, so pool capacity == the session cap and an
  // admitted connection never queues behind another.
  session_pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(options_.config.max_sessions));

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(
      [this, listener = std::move(listener)]() mutable {
        AcceptLoopOn(*listener);
        listener->Close();
      });
  return Status::OK();
}

void MediatorServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Wake stamped queries blocked in the admission stage so their
  // sessions can finish draining.
  admission_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Graceful drain: every session notices stop_ within kPollMs, answers
  // the frames it has already read (all I/O deadline-bounded), and
  // exits; the pool destructor joins them.
  session_pool_.reset();
  std::lock_guard<std::mutex> lock(mu_);
  for (Channel& ch : channels_) ch.sock.Close();
}

StatsReply MediatorServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_;
}

void MediatorServer::AcceptLoopOn(Listener& listener) {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener.Accept(kPollMs);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      break;
    }
    if (live_sessions_.load(std::memory_order_acquire) >=
        options_.config.max_sessions) {
      // Typed backpressure: the client learns it hit the session cap
      // instead of seeing a silent close.
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.sessions_rejected").Increment();
      }
#endif
      WriteFrame(*accepted,
                 MakeErrorFrame(WireCode::kBusy,
                                "session cap " +
                                    std::to_string(
                                        options_.config.max_sessions) +
                                    " reached; retry later"),
                 Deadline::After(options_.config.deadline_ms));
      continue;  // Socket closes on scope exit.
    }
    live_sessions_.fetch_add(1, std::memory_order_acq_rel);
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
    if (options_.metrics != nullptr) {
      options_.metrics->counter("svc.sessions").Increment();
      options_.metrics->gauge("svc.sessions_live")
          .Set(static_cast<double>(
              live_sessions_.load(std::memory_order_relaxed)));
    }
#endif
    auto conn = std::make_shared<Socket>(std::move(*accepted));
    session_pool_->Submit([this, conn] {
      ServeSession(*conn);
      live_sessions_.fetch_sub(1, std::memory_order_acq_rel);
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->gauge("svc.sessions_live")
            .Set(static_cast<double>(
                live_sessions_.load(std::memory_order_relaxed)));
      }
#endif
    });
  }
}

void MediatorServer::ServeSession(Socket& conn) {
  const int64_t io_ms = options_.config.deadline_ms;
  const size_t max_inflight =
      static_cast<size_t>(options_.config.max_inflight);
  Clock::time_point session_start{};
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) session_start = Clock::now();
#endif
  uint64_t requests_served = 0;
  std::deque<Frame> pending;  // Read-ahead window (the in-flight cap).
  bool readable = true;       // Reads still possible on this connection.

  auto finish = [&] {
#if BYC_TELEMETRY_ENABLED
    if (options_.metrics != nullptr) {
      options_.metrics->histogram("svc.session_ms")
          .Observe(MsSince(session_start));
      options_.metrics->histogram("svc.session_requests")
          .Observe(static_cast<double>(requests_served));
    }
#endif
  };

  for (;;) {
    const bool draining = stop_.load(std::memory_order_acquire);
    // Top up the read-ahead window from what the kernel has buffered.
    // Beyond max_inflight the client simply experiences TCP
    // backpressure; during drain nothing new is read.
    while (readable && !draining && pending.size() < max_inflight) {
      Status ready = conn.WaitReadable(Deadline::After(0));
      if (!ready.ok()) break;  // Nothing buffered right now.
      Result<Frame> request = ReadFrame(conn, Deadline::After(io_ms));
      if (!request.ok()) {
        if (request.status().IsInvalidArgument()) {
          // Oversized or unknown frame: answer with the typed error,
          // then drop the poisoned connection (read-ahead included —
          // framing after the poison point is unreliable).
          WriteFrame(conn, MakeErrorFrame(request.status()),
                     Deadline::After(io_ms));
          finish();
          return;
        }
        readable = false;  // Peer closed or broke; drain what we have.
        break;
      }
      pending.push_back(std::move(*request));
    }

    if (!pending.empty()) {
      Frame request = std::move(pending.front());
      pending.pop_front();
      bool close_after = false;
      Frame reply = HandleFrame(request, close_after);
      if (!WriteFrame(conn, reply, Deadline::After(io_ms)).ok() ||
          close_after) {
        finish();
        return;
      }
      ++requests_served;
      continue;
    }

    if (!readable || draining) break;  // Drained (or nothing to drain).
    Status ready = conn.WaitReadable(Deadline::After(kPollMs));
    if (!ready.ok() && !ready.IsDeadlineExceeded()) readable = false;
  }
  finish();
}

Frame MediatorServer::HandleFrame(const Frame& request, bool& close_after) {
  close_after = false;
  switch (request.type) {
    case FrameType::kQuery: {
      PayloadReader r(request.payload);
      return HandleQuery(r.ReadText(), std::nullopt);
    }
    case FrameType::kQueryAt: {
      Result<SequencedQuery> query = ParseQueryAt(request);
      if (!query.ok()) return MakeErrorFrame(query.status());
      return HandleQuery(query->trace_line, query->seq);
    }
    case FrameType::kStats: {
      std::lock_guard<std::mutex> lock(mu_);
      return MakeStatsReplyFrame(ledger_);
    }
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      return pong;
    }
    case FrameType::kHello: {
      Result<uint32_t> version = ParseHello(request);
      if (!version.ok()) return MakeErrorFrame(version.status());
      if (*version != kProtocolVersion) {
        close_after = true;
        return MakeErrorFrame(
            WireCode::kVersionMismatch,
            "server speaks protocol version " +
                std::to_string(kProtocolVersion) + ", client sent " +
                std::to_string(*version));
      }
      return MakeHelloReplyFrame(kProtocolVersion);
    }
    default:
      // A well-formed frame the mediator does not serve (e.g. kFetch):
      // typed error, connection survives.
      return MakeErrorFrame(Status::InvalidArgument(
          "frame type " + std::to_string(static_cast<int>(request.type)) +
          " is not served by the mediator"));
  }
}

std::unique_lock<std::mutex> MediatorServer::AdmitOrdered(
    std::optional<uint64_t> seq) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!seq.has_value() || *seq < admission_next_) {
    // Unstamped queries are admitted in arrival order; a stamped query
    // whose turn has already passed (duplicate, or its gap was skipped)
    // is admitted immediately rather than stalled forever.
    return lock;
  }
  admission_waiting_.insert(*seq);
  const auto gap =
      std::chrono::milliseconds(options_.config.reorder_timeout_ms);
  auto deadline = Clock::now() + gap;
  while (admission_next_ < *seq && !stop_.load(std::memory_order_acquire)) {
    if (admission_cv_.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      if (admission_next_ >= *seq) break;
      if (*admission_waiting_.begin() == *seq) {
        // Oldest waiter and the gap below never arrived (abandoned by a
        // disconnected client): skip it so the order stays live.
        admission_next_ = *seq;
        admission_skips_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
        if (options_.metrics != nullptr) {
          options_.metrics->counter("svc.admission_skips").Increment();
        }
#endif
        break;
      }
      // A smaller stamped query is still waiting; give the gap another
      // window — it is that waiter's job to skip.
      deadline = Clock::now() + gap;
    }
  }
  admission_waiting_.erase(admission_waiting_.find(*seq));
  return lock;
}

void MediatorServer::FinishOrdered(std::optional<uint64_t> seq,
                                   std::unique_lock<std::mutex> lock) {
  bool advanced = false;
  if (seq.has_value() && *seq >= admission_next_) {
    admission_next_ = *seq + 1;
    advanced = true;
  }
  lock.unlock();
  if (advanced) admission_cv_.notify_all();
}

Frame MediatorServer::HandleQuery(std::string_view line,
                                  std::optional<uint64_t> seq) {
  Clock::time_point start{};
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) start = Clock::now();
#endif
  Result<workload::TraceQuery> tq =
      workload::ParseTraceQuery(federation_->catalog(), line);
  if (!tq.ok()) {
    // A malformed stamped query still owns its slot in the total order:
    // wait for the turn, then release it untouched, so well-formed
    // successors are not stalled behind a permanent gap.
    if (seq.has_value()) FinishOrdered(seq, AdmitOrdered(seq));
    return MakeErrorFrame(tq.status());
  }

  // Decompose outside the admission stage (the memo has its own lock):
  // sessions overlap here, and only the decision/ledger path serializes.
  std::vector<core::Access> accesses = mediator_.Decompose(tq->query);

  QueryReply delta;
  {
    std::unique_lock<std::mutex> lock = AdmitOrdered(seq);
    for (const core::Access& access : accesses) {
      ProcessAccess(access, delta);
    }
    ++ledger_.queries;
    FinishOrdered(seq, std::move(lock));
  }
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.queries").Increment();
    options_.metrics->counter("svc.accesses").Increment(delta.accesses);
    if (delta.degraded > 0) {
      options_.metrics->counter("svc.degraded").Increment(delta.degraded);
    }
    options_.metrics->histogram("svc.request_ms").Observe(MsSince(start));
  }
#endif
  return MakeQueryReplyFrame(delta);
}

void MediatorServer::ProcessAccess(const core::Access& access,
                                   QueryReply& delta) {
  core::Decision decision = policy_->OnAccess(access);
  ++ledger_.accesses;
  ++delta.accesses;
  ledger_.evictions += decision.evictions.size();
  delta.evictions += decision.evictions.size();

  const int site = federation_->SiteOfTable(access.object.table);
  // The service accounting path prices WAN traffic by what the backend
  // acknowledges shipping, at the federation cost model's per-byte link
  // cost — the same product the decomposed Access carries, so healthy
  // replays reproduce the simulator ledger bit for bit.
  const double cost_per_byte = federation_->cost_model().CostPerByte(site);

  auto degrade = [&] {
    ++ledger_.degraded_accesses;
    ++delta.degraded;
    ledger_.degraded_cost += access.bypass_cost;
    delta.degraded_cost += access.bypass_cost;
  };

  switch (decision.action) {
    case core::Action::kServeFromCache: {
      BYC_CHECK(policy_->Contains(access.object));
      ledger_.served_cost += access.bypass_cost;
      delta.served_cost += access.bypass_cost;
      ++ledger_.hits;
      ++delta.hits;
      break;
    }
    case core::Action::kBypass: {
      YieldRequest req{access.object.table, access.object.column,
                       access.yield_bytes};
      Result<Frame> reply = CallBackend(site, MakeYieldFrame(req));
      if (reply.ok() && reply->type == FrameType::kYieldReply) {
        PayloadReader ack(reply->payload);
        Result<double> bytes = ack.ReadF64();
        if (bytes.ok()) {
          double cost = *bytes * cost_per_byte;
          ledger_.bypass_cost += cost;
          delta.bypass_cost += cost;
          ++ledger_.bypasses;
          ++delta.bypasses;
          break;
        }
      }
      degrade();
      break;
    }
    case core::Action::kLoadAndServe: {
      BYC_CHECK(policy_->Contains(access.object));
      FetchRequest req{access.object.table, access.object.column,
                       access.size_bytes};
      Result<Frame> reply = CallBackend(site, MakeFetchFrame(req));
      bool loaded = false;
      if (reply.ok() && reply->type == FrameType::kFetchReply) {
        PayloadReader ack(reply->payload);
        Result<uint64_t> bytes = ack.ReadU64();
        if (bytes.ok()) {
          double cost = static_cast<double>(*bytes) * cost_per_byte;
          ledger_.fetch_cost += cost;
          delta.fetch_cost += cost;
          ledger_.served_cost += access.bypass_cost;
          delta.served_cost += access.bypass_cost;
          ++ledger_.loads;
          ++delta.loads;
          loaded = true;
        }
      }
      if (!loaded) {
        // The load never crossed the WAN; the client also cannot get
        // the result from the dead site. The policy keeps the object
        // resident (its decision stream stays fault-independent; the
        // cache repairs the load on recovery) — only the ledger records
        // the failure.
        degrade();
      }
      break;
    }
  }
}

Result<Frame> MediatorServer::CallBackend(int site, const Frame& request) {
  BYC_CHECK_GE(site, 0);
  BYC_CHECK_LT(static_cast<size_t>(site), channels_.size());
  Channel& ch = channels_[static_cast<size_t>(site)];
  const RetryPolicy& retry = options_.config.retry;

  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      InterruptibleSleep(retry.DelayMs(attempt - 1, retry_rng_), stop_);
      ++ledger_.retries;
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.retries").Increment();
      }
#endif
    }
    if (stop_.load(std::memory_order_acquire)) {
      return Status::Unavailable("mediator stopping");
    }
    Deadline deadline = Deadline::After(options_.config.deadline_ms);
    if (!ch.sock.valid()) {
      Result<Socket> sock =
          Socket::Connect(ch.addr.host, ch.addr.port, deadline);
      if (!sock.ok()) {
        last = sock.status();
        continue;
      }
      ch.sock = std::move(sock).value();
      if (ch.connected_once) {
        ++ledger_.reconnects;
#if BYC_TELEMETRY_ENABLED
        if (options_.metrics != nullptr) {
          options_.metrics->counter("svc.reconnects").Increment();
        }
#endif
      }
      ch.connected_once = true;
    }
    Status sent = WriteFrame(ch.sock, request, deadline);
    if (!sent.ok()) {
      ch.sock.Close();
      last = sent;
      continue;
    }
    Result<Frame> reply = ReadFrame(ch.sock, deadline);
    if (!reply.ok()) {
      ch.sock.Close();
      last = reply.status();
      continue;
    }
    if (reply->type == FrameType::kError) {
      // Semantic rejection: the backend is alive and said no. Retrying
      // cannot help; surface the typed status.
      return ParseErrorFrame(*reply);
    }
    return reply;
  }
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.backend_failures").Increment();
  }
#endif
  return Status(last.code(), "site " + std::to_string(site) + " after " +
                                 std::to_string(retry.max_attempts) +
                                 " attempts: " + last.message());
}

}  // namespace byc::service
