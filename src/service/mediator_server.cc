#include "service/mediator_server.h"

#include <sys/stat.h>

#include <utility>

#include "common/check.h"
#include "persist/snapshot.h"
#include "shard/shard_map.h"
#include "telemetry/manifest.h"
#include "telemetry/metrics.h"
#include "telemetry/slow_log.h"
#include "workload/trace.h"

namespace byc::service {

namespace {

void InterruptibleSleep(int total_ms, const std::atomic<bool>& stop) {
  using namespace std::chrono;
  auto until = std::chrono::steady_clock::now() + milliseconds(total_ms);
  while (!stop.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(10));
  }
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Encodes `frame` into a recycled buffer and completes the slot.
void CompleteWithFrame(ReplyTicket& ticket, const Frame& frame,
                       bool close_after = false) {
  std::vector<uint8_t> out = ticket.TakeBuffer();
  EncodeFrameInto(out, frame);
  ticket.Complete(std::move(out), close_after);
}

/// Snapshot container section ids (persist/snapshot.h; DESIGN.md §12).
constexpr uint32_t kSectionConfig = 1;     // FormatPolicyConfig text
constexpr uint32_t kSectionPolicy = 2;     // CachePolicy::SaveState blob
constexpr uint32_t kSectionLedger = 3;     // StatsReply wire encoding
constexpr uint32_t kSectionAdmission = 4;  // u64 admission_next_
/// Sharded mediators only: u32 shard_id + u32 map_version + u64 map
/// fingerprint, so restored state can never land on the wrong shard (or
/// on an unsharded mediator, and vice versa).
constexpr uint32_t kSectionShard = 5;

/// Damages the just-written snapshot file per the fault plan (simulating
/// corruption that happens between the write and the next load). Best
/// effort: fault injection must never fail the write path itself.
void ApplySnapshotFaults(const std::string& path, FaultPlan* faults) {
  if (faults == nullptr) return;
  int64_t truncate_to = faults->snapshot_truncate.load();
  int64_t flip_bit = faults->snapshot_flip_bit.load();
  if (truncate_to < 0 && flip_bit < 0) return;
  Result<std::vector<uint8_t>> data = persist::ReadFile(path);
  if (!data.ok()) return;
  std::vector<uint8_t> bytes = std::move(data).value();
  if (truncate_to >= 0 && static_cast<size_t>(truncate_to) < bytes.size()) {
    bytes.resize(static_cast<size_t>(truncate_to));
  }
  if (flip_bit >= 0 && !bytes.empty()) {
    size_t bit = static_cast<size_t>(flip_bit) % (bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  (void)persist::WriteFileDurable(path, bytes);
}

}  // namespace

MediatorServer::MediatorServer(const federation::Federation* federation,
                               const core::PolicyConfig& policy_config,
                               std::vector<BackendAddress> backends,
                               Options options)
    : federation_(federation),
      mediator_(federation, policy_config.granularity),
      policy_config_(policy_config),
      backend_addrs_(std::move(backends)),
      options_(options),
      retry_rng_(options.config.retry_seed) {}

Status MediatorServer::Start() {
  BYC_CHECK(federation_ != nullptr);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("mediator already running");
  }
  if (static_cast<int>(backend_addrs_.size()) < federation_->num_sites()) {
    return Status::InvalidArgument(
        "need one backend address per site: got " +
        std::to_string(backend_addrs_.size()) + " for " +
        std::to_string(federation_->num_sites()) + " sites");
  }
  if (options_.shard_map != nullptr &&
      (options_.shard_id < 0 ||
       options_.shard_id >= options_.shard_map->num_shards())) {
    return Status::InvalidArgument(
        "shard id " + std::to_string(options_.shard_id) +
        " outside the map's " +
        std::to_string(options_.shard_map->num_shards()) + " shards");
  }

  policy_ = core::MakePolicy(policy_config_);
  channels_.clear();
  channels_.reserve(backend_addrs_.size());
  for (const BackendAddress& addr : backend_addrs_) {
    channels_.push_back(Channel{addr, Socket(), false});
  }
  ledger_ = StatsReply{};
  admission_next_ = 0;
  unstamped_.clear();
  stamped_.clear();
  q_draining_ = false;
  live_sessions_.store(0, std::memory_order_relaxed);
  sessions_accepted_.store(0, std::memory_order_relaxed);
  sessions_rejected_.store(0, std::memory_order_relaxed);
  admission_skips_.store(0, std::memory_order_relaxed);
  snapshot_writes_.store(0, std::memory_order_relaxed);
  snapshot_restores_.store(0, std::memory_order_relaxed);
  snapshot_restore_failures_.store(0, std::memory_order_relaxed);
  stage_ = StageMetrics{};
  stage_timing_ = options_.slow_log != nullptr;
  entry_backend_ms_ = 0;
  entry_trace_id_ = kNoTraceId;
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    // Touch the batching and admin counters so a manifest records them
    // even for replays that never send those frames.
    options_.metrics->counter("svc.batch_frames").Increment(0);
    options_.metrics->counter("wire.metrics_dump").Increment(0);
    stage_.decode_us = &options_.metrics->histogram("svc.stage.decode_us");
    stage_.queue_ms = &options_.metrics->histogram("svc.stage.queue_ms");
    stage_.backend_ms =
        &options_.metrics->histogram("svc.stage.backend_ms");
    stage_.traced_queries =
        &options_.metrics->counter("svc.traced_queries");
    stage_.metrics_dumps = &options_.metrics->counter("wire.metrics_dump");
    stage_timing_ = true;
    if (!options_.config.snapshot_dir.empty()) {
      // Touch the persistence counters so manifests record them even for
      // runs that never snapshot or restore.
      options_.metrics->counter("svc.snapshot_writes").Increment(0);
      options_.metrics->counter("svc.snapshot_restores").Increment(0);
      options_.metrics->counter("svc.snapshot_restore_failed").Increment(0);
      options_.metrics->gauge("svc.snapshot_bytes").Set(0);
    }
  }
#endif

  if (!options_.config.snapshot_dir.empty()) {
    // Best-effort create (one level); a missing parent surfaces as the
    // snapshot write's own IoError later.
    ::mkdir(options_.config.snapshot_dir.c_str(), 0755);
    Status restored = TryRestoreSnapshot();
    if (restored.ok()) {
      snapshot_restores_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.snapshot_restores").Increment();
      }
#endif
    } else if (!restored.IsNotFound()) {
      // Damaged snapshot: discard any partially loaded state and cold
      // start — a corrupt file on disk must never take the service down.
      snapshot_restore_failures_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.snapshot_restore_failed")
            .Increment();
      }
#endif
      policy_ = core::MakePolicy(policy_config_);
      ledger_ = StatsReply{};
      admission_next_ = 0;
    }
  }

  Reactor::Options ropts;
  ropts.io_threads = options_.config.io_threads;
  ropts.io_deadline_ms = options_.config.deadline_ms;
  ropts.max_inflight = static_cast<size_t>(options_.config.max_inflight);
  ropts.metrics = options_.metrics;
  Reactor::Callbacks callbacks;
  callbacks.admit = [this]() -> Reactor::AdmitDecision {
    if (live_sessions_.load(std::memory_order_acquire) >=
        options_.config.max_sessions) {
      // Typed backpressure: the client learns it hit the session cap
      // instead of seeing a silent close.
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.sessions_rejected").Increment();
      }
#endif
      return Reactor::AdmitDecision::Reject(MakeErrorFrame(
          WireCode::kBusy,
          "session cap " + std::to_string(options_.config.max_sessions) +
              " reached; retry later"));
    }
    live_sessions_.fetch_add(1, std::memory_order_acq_rel);
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
    if (options_.metrics != nullptr) {
      options_.metrics->counter("svc.sessions").Increment();
      options_.metrics->gauge("svc.sessions_live")
          .Set(static_cast<double>(
              live_sessions_.load(std::memory_order_relaxed)));
    }
#endif
    return Reactor::AdmitDecision::Accept();
  };
  callbacks.on_frame = [this](FrameType type, const uint8_t* payload,
                              size_t payload_len, ReplyTicket ticket) {
    OnFrame(type, payload, payload_len, std::move(ticket));
  };
  callbacks.on_close = [this](uint64_t frames, double ms_open) {
    live_sessions_.fetch_sub(1, std::memory_order_acq_rel);
#if BYC_TELEMETRY_ENABLED
    if (options_.metrics != nullptr) {
      options_.metrics->gauge("svc.sessions_live")
          .Set(static_cast<double>(
              live_sessions_.load(std::memory_order_relaxed)));
      options_.metrics->histogram("svc.session_ms").Observe(ms_open);
      options_.metrics->histogram("svc.session_requests")
          .Observe(static_cast<double>(frames));
    }
#endif
  };
  reactor_ = std::make_unique<Reactor>(ropts, std::move(callbacks));
  Status started = reactor_->Start(options_.config.port);
  if (!started.ok()) {
    reactor_.reset();
    return started;
  }
  port_ = reactor_->port();

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  admission_thread_ = std::thread([this] { AdmissionLoop(); });
  if (!options_.config.snapshot_dir.empty() &&
      options_.config.snapshot_every_ms > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  return Status::OK();
}

void MediatorServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Phase 1: stop accepting and delivering new frames; queries already
  // enqueued keep flowing.
  reactor_->BeginDrain();
  // Phase 2: the admission thread answers everything in the queue, then
  // exits.
  {
    std::lock_guard<std::mutex> lock(qmu_);
    q_draining_ = true;
  }
  qcv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  if (admission_thread_.joinable()) admission_thread_.join();
  // Phase 3: join the I/O threads, then answer any stragglers an I/O
  // thread enqueued after the admission loop observed empty queues (a
  // frame callback already past the drain check). Each gets a typed
  // Unavailable instead of an abrupt close.
  reactor_->Join();
  std::deque<AdmissionEntry> leftover;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    leftover.swap(unstamped_);
    for (auto& [seq, entry] : stamped_) {
      leftover.push_back(std::move(entry));
    }
    stamped_.clear();
  }
  for (AdmissionEntry& entry : leftover) {
    entry.parse_error =
        Status::Unavailable("mediator stopped before admitting this query");
    ProcessEntry(entry);
  }
  // The final snapshot: after the admission drain (the queue is empty,
  // so the cut is between queries and the ledger/policy pair is
  // consistent), before the backend channels close. The stopping thread
  // owns policy_ here — the admission thread has joined.
  if (!options_.config.snapshot_dir.empty()) {
    (void)WriteSnapshotNow();
  }
  // Final gauge refresh (queues drained, reactor still alive): manifests
  // written after Stop() carry the end-of-run gauge values.
  RefreshLiveGauges();
  // Phase 4: flush the completed replies and tear the reactor down.
  reactor_->Stop(/*flush_pending=*/true);
  reactor_.reset();
  std::lock_guard<std::mutex> lock(mu_);
  for (Channel& ch : channels_) ch.sock.Close();
}

StatsReply MediatorServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_;
}

void MediatorServer::OnFrame(FrameType type, const uint8_t* payload,
                             size_t payload_len, ReplyTicket ticket) {
  switch (type) {
    case FrameType::kQuery: {
      Result<TraceExt> ext = StripTraceExt(payload, payload_len, 0);
      if (!ext.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(ext.status()));
        return;
      }
      std::string_view line(reinterpret_cast<const char*>(payload),
                            ext->base_len);
      EnqueueQuery(std::nullopt, line, ext->trace_id, std::move(ticket),
                   nullptr, 0);
      return;
    }
    case FrameType::kQueryAt: {
      Result<TraceExt> ext = StripTraceExt(payload, payload_len, 8);
      if (!ext.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(ext.status()));
        return;
      }
      PayloadReader r(payload, ext->base_len);
      Result<uint64_t> seq = r.ReadU64();
      if (!seq.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(seq.status()));
        return;
      }
      Result<std::string_view> line = r.ReadView(r.remaining());
      EnqueueQuery(*seq, *line, ext->trace_id, std::move(ticket), nullptr,
                   0);
      return;
    }
    case FrameType::kQueryBatch: {
      // Decoded in one pass; the item views borrow the connection's
      // read buffer and are only used inside this callback (parse +
      // decompose), never stored.
      std::vector<QueryBatchItem> items;
      uint64_t base_trace_id = kNoTraceId;
      Status parsed =
          ParseQueryBatchInto(payload, payload_len, &items, &base_trace_id);
      if (!parsed.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(parsed));
        return;
      }
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.batch_frames").Increment();
      }
#endif
      if (items.empty()) {
        std::vector<uint8_t> out = ticket.TakeBuffer();
        EncodeFrameHeaderInto(out, FrameType::kQueryBatchReply, 4);
        AppendU32(out, 0);
        ticket.Complete(std::move(out));
        return;
      }
      auto batch = std::make_shared<BatchState>();
      batch->ticket = std::move(ticket);
      batch->deltas.resize(items.size());
      batch->remaining = items.size();
      for (size_t i = 0; i < items.size(); ++i) {
        // One base id traces the whole batch; item i is base+i, so a
        // slow-log line still names the individual query.
        uint64_t item_id = base_trace_id == kNoTraceId
                               ? kNoTraceId
                               : base_trace_id + static_cast<uint64_t>(i);
        EnqueueQuery(items[i].seq, items[i].line, item_id, ReplyTicket(),
                     batch, i);
      }
      return;
    }
    case FrameType::kMetricsDump: {
      HandleMetricsDump(ticket);
      return;
    }
    case FrameType::kSnapshot: {
      if (options_.config.snapshot_dir.empty()) {
        CompleteWithFrame(
            ticket,
            MakeErrorFrame(WireCode::kFailedPrecondition,
                           "mediator was started without a snapshot "
                           "directory (BYC_SVC_SNAPSHOT_DIR)"));
        return;
      }
      // Routed through the admission queue as a control entry: the
      // snapshot is taken by the admission thread when this entry's turn
      // comes, so the cut is always between queries.
      AdmissionEntry entry;
      entry.snapshot_request = true;
      entry.ticket = std::move(ticket);
      entry.enqueued = Clock::now();
      {
        std::lock_guard<std::mutex> lock(qmu_);
        unstamped_.push_back(std::move(entry));
      }
      qcv_.notify_one();
      return;
    }
    case FrameType::kStats: {
      Frame reply;
      {
        std::lock_guard<std::mutex> lock(mu_);
        reply = MakeStatsReplyFrame(ledger_);
      }
      CompleteWithFrame(ticket, reply);
      return;
    }
    case FrameType::kShardHello: {
      Frame frame;
      frame.type = FrameType::kShardHello;
      frame.payload.assign(payload, payload + payload_len);
      Result<ShardHello> hello = ParseShardHello(frame);
      if (!hello.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(hello.status()));
        return;
      }
      if (options_.shard_map == nullptr) {
        CompleteWithFrame(
            ticket,
            MakeErrorFrame(WireCode::kShardMapMismatch,
                           "mediator is not sharded; it cannot serve shard " +
                               std::to_string(hello->shard_id)));
        return;
      }
      if (hello->shard_id != static_cast<uint32_t>(options_.shard_id) ||
          hello->map_version != options_.shard_map->version() ||
          hello->map_fingerprint != options_.shard_map->Fingerprint()) {
        // Any disagreement — id, version skew during a rollout, or a
        // fingerprint that says the maps differ in content — must fail
        // the handshake: accepting would let the router ledger accesses
        // onto a shard that filters by a different map.
        CompleteWithFrame(
            ticket,
            MakeErrorFrame(
                WireCode::kShardMapMismatch,
                "mediator serves shard " +
                    std::to_string(options_.shard_id) + " of map v" +
                    std::to_string(options_.shard_map->version()) +
                    "; peer asked for shard " +
                    std::to_string(hello->shard_id) + " of map v" +
                    std::to_string(hello->map_version)));
        return;
      }
      CompleteWithFrame(ticket, MakeShardHelloReplyFrame(
                                    hello->shard_id, hello->map_version));
      return;
    }
    case FrameType::kShardStats: {
      // One entry: this shard's identity plus its full ledger. An
      // unsharded mediator answers as shard 0 of map version 0, so the
      // scrape is uniform across deployments.
      ShardStatsEntry entry;
      if (options_.shard_map != nullptr) {
        entry.shard_id = static_cast<uint32_t>(options_.shard_id);
        entry.map_version = options_.shard_map->version();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        entry.stats = ledger_;
      }
      CompleteWithFrame(ticket, MakeShardStatsReplyFrame(&entry, 1));
      return;
    }
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      CompleteWithFrame(ticket, pong);
      return;
    }
    case FrameType::kHello: {
      Frame frame;
      frame.type = FrameType::kHello;
      frame.payload.assign(payload, payload + payload_len);
      Result<uint32_t> version = ParseHello(frame);
      if (!version.ok()) {
        CompleteWithFrame(ticket, MakeErrorFrame(version.status()));
        return;
      }
      if (*version < kMinProtocolVersion || *version > kProtocolVersion) {
        CompleteWithFrame(
            ticket,
            MakeErrorFrame(WireCode::kVersionMismatch,
                           "server speaks protocol versions " +
                               std::to_string(kMinProtocolVersion) + ".." +
                               std::to_string(kProtocolVersion) +
                               ", client sent " + std::to_string(*version)),
            /*close_after=*/true);
        return;
      }
      // Echo the client's version: a v2 peer sees the v2 echo it
      // expects, and the append-only trace extension keeps every v3
      // frame decodable by the v2 grammar anyway.
      CompleteWithFrame(ticket, MakeHelloReplyFrame(*version));
      return;
    }
    default:
      // A well-formed frame the mediator does not serve (e.g. kFetch):
      // typed error, connection survives.
      CompleteWithFrame(
          ticket,
          MakeErrorFrame(Status::InvalidArgument(
              "frame type " + std::to_string(static_cast<int>(type)) +
              " is not served by the mediator")));
      return;
  }
}

void MediatorServer::HandleMetricsDump(ReplyTicket& ticket) {
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    if (stage_.metrics_dumps != nullptr) stage_.metrics_dumps->Increment();
    RefreshLiveGauges();
    std::string json =
        telemetry::MetricsSnapshotToJson(options_.metrics->Snapshot());
    if (json.size() > kMaxPayload) {
      CompleteWithFrame(
          ticket, MakeErrorFrame(WireCode::kCapacityExceeded,
                                 "metrics snapshot is " +
                                     std::to_string(json.size()) +
                                     " bytes; wire frames cap at " +
                                     std::to_string(kMaxPayload)));
      return;
    }
    CompleteWithFrame(ticket, MakeMetricsDumpReplyFrame(json));
    return;
  }
#endif
  CompleteWithFrame(
      ticket, MakeErrorFrame(WireCode::kFailedPrecondition,
                             "mediator was started without a metrics "
                             "registry; kMetricsDump has nothing to dump"));
}

void MediatorServer::RefreshLiveGauges() {
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics == nullptr) return;
  size_t depth = 0;
  double oldest_ms = 0;
  {
    // Brief qmu_ take — same discipline as the I/O threads' enqueues;
    // never blocks on anything the admission thread holds across a
    // backend round trip.
    std::lock_guard<std::mutex> lock(qmu_);
    depth = unstamped_.size() + stamped_.size();
    bool have = false;
    Clock::time_point oldest{};
    if (!unstamped_.empty()) {
      oldest = unstamped_.front().enqueued;
      have = true;
    }
    if (!stamped_.empty()) {
      Clock::time_point head = stamped_.begin()->second.enqueued;
      if (!have || head < oldest) oldest = head;
      have = true;
    }
    if (have) oldest_ms = MsSince(oldest);
  }
  telemetry::MetricsRegistry& reg = *options_.metrics;
  reg.gauge("svc.admission_queue_depth").Set(static_cast<double>(depth));
  reg.gauge("svc.admission_oldest_wait_ms").Set(oldest_ms);
  if (reactor_ != nullptr) {
    Reactor::LiveStats live = reactor_->Sample();
    reg.gauge("svc.reactor.connections")
        .Set(static_cast<double>(live.connections));
    reg.gauge("svc.reactor.pending_slots")
        .Set(static_cast<double>(live.pending_slots));
    reg.gauge("svc.reactor.backlog_bytes")
        .Set(static_cast<double>(live.backlog_bytes));
    reg.gauge("svc.reactor.parked_reads")
        .Set(static_cast<double>(live.parked_reads));
  }
  if (options_.slow_log != nullptr) {
    reg.gauge("svc.slow_log.recorded")
        .Set(static_cast<double>(options_.slow_log->recorded()));
    reg.gauge("svc.slow_log.dropped")
        .Set(static_cast<double>(options_.slow_log->dropped()));
  }
#endif
}

void MediatorServer::EnqueueQuery(std::optional<uint64_t> seq,
                                  std::string_view line, uint64_t trace_id,
                                  ReplyTicket ticket,
                                  std::shared_ptr<BatchState> batch,
                                  size_t batch_index) {
  AdmissionEntry entry;
  entry.seq = seq;
  entry.trace_id = trace_id;
  entry.ticket = std::move(ticket);
  entry.batch = std::move(batch);
  entry.batch_index = batch_index;
  // stage_timing_ is written before the reactor starts and constant
  // while it runs, so reading it on an I/O thread is safe.
  Clock::time_point decode_start{};
  if (stage_timing_) decode_start = Clock::now();
  Result<workload::TraceQuery> tq =
      workload::ParseTraceQuery(federation_->catalog(), line);
  if (!tq.ok()) {
    // A malformed stamped query still owns its slot in the total order,
    // so well-formed successors are not stalled behind a permanent gap.
    entry.parse_error = tq.status();
  } else {
    // Decompose on the I/O thread (the memo has its own lock): I/O
    // threads overlap here, and only the decision/ledger path
    // serializes.
    entry.accesses = mediator_.Decompose(tq->query);
    if (options_.shard_map != nullptr) {
      // Shard-scoped admission: the router forwards the whole query
      // line to every shard it touches; each shard keeps only its own
      // accesses (in decomposition order), so every access of the
      // fleet is decided and ledgered by exactly one shard.
      std::erase_if(entry.accesses, [this](const core::Access& a) {
        return options_.shard_map->ShardOf(a.object) != options_.shard_id;
      });
    }
  }
  if (stage_timing_) {
    entry.decode_us = std::chrono::duration<double, std::micro>(
                          Clock::now() - decode_start)
                          .count();
    if (stage_.decode_us != nullptr) {
      stage_.decode_us->Observe(entry.decode_us);
    }
  }
  if (trace_id != kNoTraceId && stage_.traced_queries != nullptr) {
    stage_.traced_queries->Increment();
  }
  entry.enqueued = Clock::now();
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (entry.seq.has_value()) {
      stamped_.emplace(*entry.seq, std::move(entry));
    } else {
      unstamped_.push_back(std::move(entry));
    }
  }
  qcv_.notify_one();
}

void MediatorServer::AdmissionLoop() {
  const auto gap =
      std::chrono::milliseconds(options_.config.reorder_timeout_ms);
  std::unique_lock<std::mutex> qlock(qmu_);
  for (;;) {
    if (unstamped_.empty() && stamped_.empty()) {
      if (q_draining_) return;
      qcv_.wait(qlock);
      continue;
    }
    AdmissionEntry entry;
    if (!unstamped_.empty()) {
      entry = std::move(unstamped_.front());
      unstamped_.pop_front();
    } else {
      auto it = stamped_.begin();
      if (it->first > admission_next_ && !q_draining_ &&
          !stop_.load(std::memory_order_acquire)) {
        // A gap below the oldest stamped query: wait for the missing
        // sequence numbers to arrive, then — if the gap outlives the
        // reorder timeout (an abandoned client) — skip it so the order
        // stays live.
        auto deadline = it->second.enqueued + gap;
        if (Clock::now() < deadline) {
          qcv_.wait_until(qlock, deadline);
          continue;  // Re-evaluate: the gap may have filled.
        }
        admission_next_ = it->first;
        admission_skips_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
        if (options_.metrics != nullptr) {
          options_.metrics->counter("svc.admission_skips").Increment();
        }
#endif
      }
      entry = std::move(it->second);
      stamped_.erase(it);
      if (*entry.seq >= admission_next_) admission_next_ = *entry.seq + 1;
    }
    qlock.unlock();
    ProcessEntry(entry);
    qlock.lock();
  }
}

void MediatorServer::ProcessEntry(AdmissionEntry& entry) {
  if (entry.snapshot_request) {
    SnapshotReply ack;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ack.queries = ledger_.queries;
    }
    Result<uint64_t> written = WriteSnapshotNow();
    if (entry.ticket.valid()) {
      if (!written.ok()) {
        CompleteWithFrame(entry.ticket, MakeErrorFrame(written.status()));
      } else {
        ack.snapshot_bytes = *written;
        ack.persisted = 1;
        CompleteWithFrame(entry.ticket, MakeSnapshotReplyFrame(ack));
      }
    }
    return;
  }

  QueryReply delta;
  double queue_ms = 0;
  if (entry.parse_error.ok()) {
    // Per-entry scratch for ProcessAccess (admission thread only). The
    // trace id propagates to backend frames even without a registry or
    // slow log — wire tracing is independent of local instrumentation.
    entry_trace_id_ = entry.trace_id;
    if (stage_timing_) {
      queue_ms = MsSince(entry.enqueued);
      if (stage_.queue_ms != nullptr) stage_.queue_ms->Observe(queue_ms);
      entry_backend_ms_ = 0;
    }
    for (const core::Access& access : entry.accesses) {
      ProcessAccess(access, delta);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++ledger_.queries;
    }
#if BYC_TELEMETRY_ENABLED
    if (options_.metrics != nullptr) {
      options_.metrics->counter("svc.queries").Increment();
      options_.metrics->counter("svc.accesses").Increment(delta.accesses);
      if (delta.degraded > 0) {
        options_.metrics->counter("svc.degraded").Increment(delta.degraded);
      }
      options_.metrics->histogram("svc.request_ms")
          .Observe(MsSince(entry.enqueued));
    }
#endif
    if (options_.slow_log != nullptr && options_.config.slow_ms >= 0) {
      double total_ms = MsSince(entry.enqueued);
      if (total_ms >= static_cast<double>(options_.config.slow_ms)) {
        telemetry::SlowQueryRecord rec;
        rec.trace_id = entry.trace_id;
        rec.has_seq = entry.seq.has_value();
        rec.seq = entry.seq.value_or(0);
        rec.decode_us = entry.decode_us;
        rec.queue_ms = queue_ms;
        rec.backend_ms = entry_backend_ms_;
        rec.total_ms = total_ms;
        rec.accesses = delta.accesses;
        rec.hits = delta.hits;
        rec.bypasses = delta.bypasses;
        rec.loads = delta.loads;
        rec.evictions = delta.evictions;
        rec.degraded = delta.degraded;
        rec.served_cost = delta.served_cost;
        rec.bypass_cost = delta.bypass_cost;
        rec.fetch_cost = delta.fetch_cost;
        rec.degraded_cost = delta.degraded_cost;
        options_.slow_log->Record(rec);
      }
    }
  }

  if (entry.batch != nullptr) {
    BatchState& batch = *entry.batch;
    batch.deltas[entry.batch_index] = delta;
    if (!entry.parse_error.ok() && batch.error.ok()) {
      batch.error = entry.parse_error;
    }
    BYC_CHECK_GT(batch.remaining, size_t{0});
    if (--batch.remaining > 0) return;
    if (!batch.error.ok()) {
      CompleteWithFrame(batch.ticket, MakeErrorFrame(batch.error));
      return;
    }
    std::vector<uint8_t> out = batch.ticket.TakeBuffer();
    EncodeFrameHeaderInto(
        out, FrameType::kQueryBatchReply,
        static_cast<uint32_t>(4 +
                              batch.deltas.size() * kQueryReplyWireBytes));
    EncodeQueryBatchReplyInto(out, batch.deltas.data(),
                              batch.deltas.size());
    batch.ticket.Complete(std::move(out));
    return;
  }

  if (!entry.parse_error.ok()) {
    CompleteWithFrame(entry.ticket, MakeErrorFrame(entry.parse_error));
    return;
  }
  std::vector<uint8_t> out = entry.ticket.TakeBuffer();
  EncodeFrameHeaderInto(out, FrameType::kQueryReply,
                        static_cast<uint32_t>(kQueryReplyWireBytes));
  EncodeQueryReplyInto(out, delta);
  entry.ticket.Complete(std::move(out));
}

void MediatorServer::ProcessAccess(const core::Access& access,
                                   QueryReply& delta) {
  core::Decision decision = policy_->OnAccess(access);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++ledger_.accesses;
    ledger_.evictions += decision.evictions.size();
  }
  ++delta.accesses;
  delta.evictions += decision.evictions.size();

  const int site = federation_->SiteOfTable(access.object.table);
  // The service accounting path prices WAN traffic by what the backend
  // acknowledges shipping, at the federation cost model's per-byte link
  // cost — the same product the decomposed Access carries, so healthy
  // replays reproduce the simulator ledger bit for bit.
  const double cost_per_byte = federation_->cost_model().CostPerByte(site);

  auto degrade = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    ++ledger_.degraded_accesses;
    ++delta.degraded;
    ledger_.degraded_cost += access.bypass_cost;
    delta.degraded_cost += access.bypass_cost;
  };
  // Per-backend-call RTT (includes reconnects and the retry schedule —
  // that wait IS the latency a stalled query experiences).
  auto timed_call = [&](const Frame& request) -> Result<Frame> {
    if (!stage_timing_) return CallBackend(site, request);
    Clock::time_point start = Clock::now();
    Result<Frame> reply = CallBackend(site, request);
    double ms = MsSince(start);
    entry_backend_ms_ += ms;
    if (stage_.backend_ms != nullptr) stage_.backend_ms->Observe(ms);
    return reply;
  };

  switch (decision.action) {
    case core::Action::kServeFromCache: {
      BYC_CHECK(policy_->Contains(access.object));
      std::lock_guard<std::mutex> lock(mu_);
      ledger_.served_cost += access.bypass_cost;
      delta.served_cost += access.bypass_cost;
      ++ledger_.hits;
      ++delta.hits;
      break;
    }
    case core::Action::kBypass: {
      YieldRequest req{access.object.table, access.object.column,
                       access.yield_bytes, entry_trace_id_};
      Result<Frame> reply = timed_call(MakeYieldFrame(req));
      if (reply.ok() && reply->type == FrameType::kYieldReply) {
        PayloadReader ack(reply->payload);
        Result<double> bytes = ack.ReadF64();
        if (bytes.ok()) {
          double cost = *bytes * cost_per_byte;
          std::lock_guard<std::mutex> lock(mu_);
          ledger_.bypass_cost += cost;
          delta.bypass_cost += cost;
          ++ledger_.bypasses;
          ++delta.bypasses;
          break;
        }
      }
      degrade();
      break;
    }
    case core::Action::kLoadAndServe: {
      BYC_CHECK(policy_->Contains(access.object));
      FetchRequest req{access.object.table, access.object.column,
                       access.size_bytes, entry_trace_id_};
      Result<Frame> reply = timed_call(MakeFetchFrame(req));
      bool loaded = false;
      if (reply.ok() && reply->type == FrameType::kFetchReply) {
        PayloadReader ack(reply->payload);
        Result<uint64_t> bytes = ack.ReadU64();
        if (bytes.ok()) {
          double cost = static_cast<double>(*bytes) * cost_per_byte;
          std::lock_guard<std::mutex> lock(mu_);
          ledger_.fetch_cost += cost;
          delta.fetch_cost += cost;
          ledger_.served_cost += access.bypass_cost;
          delta.served_cost += access.bypass_cost;
          ++ledger_.loads;
          ++delta.loads;
          loaded = true;
        }
      }
      if (!loaded) {
        // The load never crossed the WAN; the client also cannot get
        // the result from the dead site. The policy keeps the object
        // resident (its decision stream stays fault-independent; the
        // cache repairs the load on recovery) — only the ledger records
        // the failure.
        degrade();
      }
      break;
    }
  }
}

std::string MediatorServer::SnapshotPath() const {
  BYC_CHECK(!options_.config.snapshot_dir.empty());
  return options_.config.snapshot_dir + "/mediator.snap";
}

Result<uint64_t> MediatorServer::WriteSnapshotNow() {
  persist::SnapshotWriter writer;
  {
    // The config section pins what the state means: a restore into a
    // differently configured mediator is rejected, not misapplied.
    std::string config = core::FormatPolicyConfig(policy_config_);
    std::vector<uint8_t> bytes(config.begin(), config.end());
    writer.AddSection(kSectionConfig, bytes);
  }
  {
    std::vector<uint8_t> blob;
    policy_->SaveState(blob);
    writer.AddSection(kSectionPolicy, blob);
  }
  {
    StatsReply ledger;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ledger = ledger_;
    }
    std::vector<uint8_t> bytes;
    EncodeStatsReplyInto(bytes, ledger);
    writer.AddSection(kSectionLedger, bytes);
  }
  {
    uint64_t next = 0;
    {
      std::lock_guard<std::mutex> lock(qmu_);
      next = admission_next_;
    }
    std::vector<uint8_t> bytes;
    AppendU64(bytes, next);
    writer.AddSection(kSectionAdmission, bytes);
  }
  if (options_.shard_map != nullptr) {
    std::vector<uint8_t> bytes;
    AppendU32(bytes, static_cast<uint32_t>(options_.shard_id));
    AppendU32(bytes, options_.shard_map->version());
    AppendU64(bytes, options_.shard_map->Fingerprint());
    writer.AddSection(kSectionShard, bytes);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  const std::string path = SnapshotPath();
  FaultPlan* faults = options_.faults;
  if (faults != nullptr && faults->snapshot_skip_rename.load()) {
    // Simulated crash between the temp write and the rename: the temp
    // file lands durably but the previous snapshot stays the loadable
    // one.
    BYC_RETURN_IF_ERROR(persist::WriteFileDurable(path + ".tmp", bytes));
  } else {
    BYC_RETURN_IF_ERROR(persist::WriteFileAtomic(path, bytes));
    ApplySnapshotFaults(path, faults);
  }
  snapshot_writes_.fetch_add(1, std::memory_order_relaxed);
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.snapshot_writes").Increment();
    options_.metrics->gauge("svc.snapshot_bytes")
        .Set(static_cast<double>(bytes.size()));
  }
#endif
  return static_cast<uint64_t>(bytes.size());
}

Status MediatorServer::TryRestoreSnapshot() {
  BYC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       persist::ReadFile(SnapshotPath()));
  BYC_ASSIGN_OR_RETURN(std::vector<persist::SnapshotSection> sections,
                       persist::ParseSnapshot(bytes));
  const std::vector<uint8_t>* config = nullptr;
  const std::vector<uint8_t>* policy = nullptr;
  const std::vector<uint8_t>* ledger = nullptr;
  const std::vector<uint8_t>* admission = nullptr;
  const std::vector<uint8_t>* shard = nullptr;
  for (const persist::SnapshotSection& section : sections) {
    const std::vector<uint8_t>** slot = nullptr;
    switch (section.id) {
      case kSectionConfig:
        slot = &config;
        break;
      case kSectionPolicy:
        slot = &policy;
        break;
      case kSectionLedger:
        slot = &ledger;
        break;
      case kSectionAdmission:
        slot = &admission;
        break;
      case kSectionShard:
        slot = &shard;
        break;
      default:
        return Status::ParseError("snapshot: unknown section id " +
                                  std::to_string(section.id));
    }
    if (*slot != nullptr) {
      return Status::ParseError("snapshot: duplicate section id " +
                                std::to_string(section.id));
    }
    *slot = &section.payload;
  }
  if (config == nullptr || policy == nullptr || ledger == nullptr ||
      admission == nullptr) {
    return Status::ParseError("snapshot: missing section");
  }
  if (options_.shard_map != nullptr) {
    if (shard == nullptr) {
      return Status::ParseError(
          "snapshot has no shard section but this mediator serves shard " +
          std::to_string(options_.shard_id));
    }
    persist::ByteReader shard_reader(*shard);
    BYC_ASSIGN_OR_RETURN(uint32_t shard_id, shard_reader.ReadU32());
    BYC_ASSIGN_OR_RETURN(uint32_t map_version, shard_reader.ReadU32());
    BYC_ASSIGN_OR_RETURN(uint64_t fingerprint, shard_reader.ReadU64());
    if (shard_reader.remaining() != 0) {
      return Status::ParseError("snapshot: trailing bytes in shard section");
    }
    if (shard_id != static_cast<uint32_t>(options_.shard_id) ||
        map_version != options_.shard_map->version() ||
        fingerprint != options_.shard_map->Fingerprint()) {
      return Status::ParseError(
          "snapshot belongs to shard " + std::to_string(shard_id) +
          " of map v" + std::to_string(map_version) +
          ", mediator serves shard " + std::to_string(options_.shard_id) +
          " of map v" + std::to_string(options_.shard_map->version()));
    }
  } else if (shard != nullptr) {
    return Status::ParseError(
        "snapshot carries a shard section but this mediator is unsharded");
  }
  std::string saved_config(config->begin(), config->end());
  std::string want_config = core::FormatPolicyConfig(policy_config_);
  if (saved_config != want_config) {
    return Status::ParseError("snapshot was taken under config '" +
                              saved_config + "', mediator runs '" +
                              want_config + "'");
  }
  persist::ByteReader policy_reader(*policy);
  BYC_RETURN_IF_ERROR(policy_->LoadState(policy_reader));
  if (policy_reader.remaining() != 0) {
    return Status::ParseError("snapshot: trailing bytes after policy state");
  }
  Frame ledger_frame;
  ledger_frame.type = FrameType::kStatsReply;
  ledger_frame.payload = *ledger;
  BYC_ASSIGN_OR_RETURN(ledger_, ParseStatsReply(ledger_frame));
  persist::ByteReader admission_reader(*admission);
  BYC_ASSIGN_OR_RETURN(admission_next_, admission_reader.ReadU64());
  if (admission_reader.remaining() != 0) {
    return Status::ParseError(
        "snapshot: trailing bytes after admission cursor");
  }
  return Status::OK();
}

void MediatorServer::CheckpointLoop() {
  const int period = static_cast<int>(options_.config.snapshot_every_ms);
  for (;;) {
    InterruptibleSleep(period, stop_);
    if (stop_.load(std::memory_order_acquire)) return;
    AdmissionEntry entry;
    entry.snapshot_request = true;
    entry.enqueued = Clock::now();
    {
      std::lock_guard<std::mutex> lock(qmu_);
      if (q_draining_) return;
      unstamped_.push_back(std::move(entry));
    }
    qcv_.notify_one();
  }
}

Result<Frame> MediatorServer::CallBackend(int site, const Frame& request) {
  BYC_CHECK_GE(site, 0);
  BYC_CHECK_LT(static_cast<size_t>(site), channels_.size());
  Channel& ch = channels_[static_cast<size_t>(site)];
  const RetryPolicy& retry = options_.config.retry;

  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      InterruptibleSleep(retry.DelayMs(attempt - 1, retry_rng_), stop_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++ledger_.retries;
      }
#if BYC_TELEMETRY_ENABLED
      if (options_.metrics != nullptr) {
        options_.metrics->counter("svc.retries").Increment();
      }
#endif
    }
    if (stop_.load(std::memory_order_acquire)) {
      return Status::Unavailable("mediator stopping");
    }
    Deadline deadline = Deadline::After(options_.config.deadline_ms);
    if (!ch.sock.valid()) {
      Result<Socket> sock =
          Socket::Connect(ch.addr.host, ch.addr.port, deadline);
      if (!sock.ok()) {
        last = sock.status();
        continue;
      }
      ch.sock = std::move(sock).value();
      if (ch.connected_once) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++ledger_.reconnects;
        }
#if BYC_TELEMETRY_ENABLED
        if (options_.metrics != nullptr) {
          options_.metrics->counter("svc.reconnects").Increment();
        }
#endif
      }
      ch.connected_once = true;
    }
    Status sent = WriteFrame(ch.sock, request, deadline);
    if (!sent.ok()) {
      ch.sock.Close();
      last = sent;
      continue;
    }
    Result<Frame> reply = ReadFrame(ch.sock, deadline);
    if (!reply.ok()) {
      ch.sock.Close();
      last = reply.status();
      continue;
    }
    if (reply->type == FrameType::kError) {
      // Semantic rejection: the backend is alive and said no. Retrying
      // cannot help; surface the typed status.
      return ParseErrorFrame(*reply);
    }
    return reply;
  }
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    options_.metrics->counter("svc.backend_failures").Increment();
  }
#endif
  return Status(last.code(), "site " + std::to_string(site) + " after " +
                                 std::to_string(retry.max_attempts) +
                                 " attempts: " + last.message());
}

}  // namespace byc::service
