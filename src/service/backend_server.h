#ifndef BYC_SERVICE_BACKEND_SERVER_H_
#define BYC_SERVICE_BACKEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/result.h"
#include "exec/executor.h"
#include "federation/federation.h"
#include "service/fault.h"
#include "service/reactor.h"
#include "service/wire.h"

namespace byc::service {

/// One member database of the federation as a network server: owns the
/// tables of one site and answers object fetches (cache loads), bypassed
/// yield requests, and — when constructed with an exec::Executor — full
/// query execution, over the length-prefixed wire protocol on a loopback
/// TCP port.
///
/// The server runs on the shared epoll Reactor (DESIGN.md §9): a small
/// pool of nonblocking I/O threads multiplexes every connection, so the
/// backend sustains any number of mediator channels without
/// per-connection threads, and shutdown is eventfd-driven (no idle
/// polls). Request handling is stateless and runs directly on the I/O
/// thread that decoded the frame.
///
/// Fault injection: the FaultPlan is mutable at runtime and consulted on
/// every accept/request, so tests and benches can make one site refuse,
/// drop, delay, or die mid-replay and watch the mediator degrade. An
/// injected delay sleeps on the I/O thread — deliberately: a slow
/// backend is slow for everyone sharing that wire.
class BackendServer {
 public:
  struct Options {
    /// Site this backend serves; fetch/yield requests for objects owned
    /// by other sites are rejected (NotFound).
    int site = 0;
    /// Listen port (0: ephemeral; read the result from port()).
    uint16_t port = 0;
    /// Catalog + site ownership (must outlive the server).
    const federation::Federation* federation = nullptr;
    /// Optional real execution path for kExec requests (may be null:
    /// kExec then fails FailedPrecondition).
    const exec::Executor* executor = nullptr;
  };

  /// Runtime fault switches (service/fault.h, shared with the
  /// mediator's snapshot path); the backend applies the transport
  /// switches refuse/drop/delay_ms.
  using FaultPlan = service::FaultPlan;

  explicit BackendServer(Options options) : options_(options) {}
  ~BackendServer() { Stop(); }

  BackendServer(const BackendServer&) = delete;
  BackendServer& operator=(const BackendServer&) = delete;

  /// Binds the listener and starts the reactor I/O threads.
  Status Start();

  /// Shutdown: stops accepting, aborts in-flight connections, joins the
  /// I/O threads. Idempotent.
  void Stop();

  /// Crash simulation: identical teardown to Stop() but named for what
  /// the caller means — the site disappears mid-replay, connections die
  /// without replies, and later connects are refused by the OS.
  void Kill() { Stop(); }

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  int site() const { return options_.site; }
  FaultPlan& faults() { return faults_; }

  /// Requests answered successfully since Start (fetch + yield + exec +
  /// ping).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Requests rejected with a typed kError reply.
  uint64_t requests_rejected() const {
    return requests_rejected_.load(std::memory_order_relaxed);
  }

 private:
  /// Reactor frame callback: applies the fault plan, then answers the
  /// request in place on the I/O thread.
  void OnFrame(FrameType type, const uint8_t* payload, size_t payload_len,
               ReplyTicket ticket);
  /// Builds the reply for one request frame (kError replies for invalid
  /// ones). Never fails — failures are in-band.
  Frame HandleRequest(const Frame& request);
  Frame HandleFetch(const Frame& request);
  Frame HandleYield(const Frame& request);
  Frame HandleExec(const Frame& request);
  /// Validates that (table, column) names a real object owned by this
  /// site; returns it.
  Result<catalog::ObjectId> ResolveObject(int32_t table, int32_t column);

  Options options_;
  FaultPlan faults_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_rejected_{0};

  std::unique_ptr<Reactor> reactor_;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_BACKEND_SERVER_H_
