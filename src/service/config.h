#ifndef BYC_SERVICE_CONFIG_H_
#define BYC_SERVICE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "service/retry.h"

namespace byc::service {

/// Robustness knobs of the federation service: per-request deadlines and
/// the retry schedule the mediator applies to backend calls. Loaded from
/// the BYC_SVC_* environment family by FromEnv(); every variable parses
/// strictly (common/env.h) — junk values are an error, never a silent
/// default.
struct ServiceConfig {
  /// Port the mediator listens on (0: ephemeral). BYC_SVC_PORT.
  uint16_t port = 0;
  /// Per-request deadline for one backend round trip, and for reads on
  /// an established client connection. BYC_SVC_DEADLINE_MS (int ms or
  /// "250ms"/"2s"/"1m" forms).
  int64_t deadline_ms = 2000;
  /// Total attempts per backend call (see RetryPolicy::max_attempts).
  /// BYC_SVC_RETRIES holds the number of *retries*, so attempts =
  /// retries + 1.
  RetryPolicy retry;
  /// Seed of the jitter Rng (deterministic retry schedules in tests).
  uint64_t retry_seed = 0xB1A5CA5E;
  /// Concurrency cap: client sessions served simultaneously; a connect
  /// beyond the cap is rejected with a typed kError{kBusy} and closed.
  /// BYC_SVC_MAX_SESSIONS.
  int max_sessions = 8;
  /// Per-session pipelining cap: frames read ahead of the reply being
  /// written. Excess requests stay in kernel socket buffers (TCP
  /// backpressure), so one firehosing client cannot balloon server
  /// memory. BYC_SVC_MAX_INFLIGHT.
  int max_inflight = 4;
  /// How long the ordered-admission stage waits for a missing sequence
  /// number before the oldest waiter skips the gap (a disconnected
  /// client must not wedge the others). BYC_SVC_REORDER_MS.
  int64_t reorder_timeout_ms = 1000;
  /// Queries a replaying client coalesces into one kQueryBatch frame
  /// (1: plain kQueryAt, no batching). One batch is one wire round
  /// trip; the server still admits every item through the ordered
  /// stage individually. BYC_SVC_BATCH.
  int batch_size = 1;
  /// Reactor I/O threads multiplexing all connections (connection count
  /// is NOT bounded by this). BYC_SVC_IO_THREADS.
  int io_threads = 2;
  /// Request tracing: replaying clients stamp every query with a trace
  /// id (propagated to backends as the wire trace extension) and the
  /// mediator records per-stage timings. Never changes a decision or a
  /// ledger byte — it only adds the extension trailer and histogram
  /// observations. BYC_SVC_TRACE (0/1).
  bool trace = false;
  /// Slow-query threshold: an admitted query whose total latency
  /// (enqueue to reply completion) reaches this many milliseconds is
  /// recorded in the slow-query JSONL log, when one is attached
  /// (MediatorServer::Options::slow_log). 0 logs every query
  /// (reconciliation mode); negative disables logging. BYC_SVC_SLOW_MS.
  int64_t slow_ms = -1;
  /// Directory for the durable state snapshot (persist/snapshot.h). The
  /// mediator writes <dir>/mediator.snap atomically and, at Start(),
  /// restores from it when one is present (a corrupt or torn file falls
  /// back to a clean cold start — never an abort). Empty disables
  /// persistence entirely. BYC_SVC_SNAPSHOT_DIR (validated path).
  std::string snapshot_dir;
  /// Period of the background checkpointer: every this many milliseconds
  /// a snapshot request is queued through the admission stage (so the
  /// cut always lands between queries). 0 disables periodic snapshots —
  /// with a snapshot_dir set, the final Stop() snapshot and explicit
  /// kSnapshot frames still happen. BYC_SVC_SNAPSHOT_EVERY (duration).
  int64_t snapshot_every_ms = 0;
  /// Shards in the mediator fleet a RouterServer fans out to (1: the
  /// unsharded single-mediator deployment). BYC_SVC_SHARDS.
  int shards = 1;
  /// Path to a serialized shard::ShardMap (ShardMap::Serialize bytes)
  /// the router loads at Start(); empty builds the uniform
  /// consistent-hash map for `shards` shards. BYC_SVC_SHARD_MAP
  /// (validated path).
  std::string shard_map;

  /// Loads overrides from BYC_SVC_PORT / BYC_SVC_DEADLINE_MS /
  /// BYC_SVC_RETRIES / BYC_SVC_MAX_SESSIONS / BYC_SVC_MAX_INFLIGHT /
  /// BYC_SVC_REORDER_MS / BYC_SVC_BATCH / BYC_SVC_IO_THREADS /
  /// BYC_SVC_TRACE / BYC_SVC_SLOW_MS / BYC_SVC_SNAPSHOT_DIR /
  /// BYC_SVC_SNAPSHOT_EVERY / BYC_SVC_SHARDS / BYC_SVC_SHARD_MAP on top
  /// of the defaults.
  static Result<ServiceConfig> FromEnv();
};

}  // namespace byc::service

#endif  // BYC_SERVICE_CONFIG_H_
