#ifndef BYC_SERVICE_REPLAY_CLIENT_H_
#define BYC_SERVICE_REPLAY_CLIENT_H_

#include <cstdint>
#include <cstddef>
#include <string>

#include "common/result.h"
#include "common/stats.h"
#include "service/config.h"
#include "service/wire.h"
#include "workload/trace.h"

namespace byc::service {

/// What a trace replay over the wire produced: the client's own sum of
/// per-query deltas plus the authoritative server-side ledger fetched
/// with kStats after the last query.
///
/// The two views agree on every counter. The cost doubles agree in value
/// but only `ledger` is guaranteed bit-identical to sim::Simulator:
/// the server accumulates per access in trace order exactly as the
/// simulator does, while `client_totals` re-sums per-query subtotals —
/// a different FP association. Byte-identity claims must diff `ledger`.
struct ReplayReport {
  StatsReply ledger;
  QueryReply client_totals;
  uint64_t queries_sent = 0;
};

/// Streams a workload::Trace to a MediatorServer over the wire, one
/// kQuery frame per trace line, serially (the replay semantics of the
/// paper). Connects with the config's retry schedule; per-request
/// deadlines bound every frame exchange. A mid-replay transport failure
/// aborts with the typed error — queries are not silently skipped,
/// which would change the policy's decision stream.
class ReplayClient {
 public:
  ReplayClient(std::string host, uint16_t port, ServiceConfig config)
      : host_(std::move(host)), port_(port), config_(config) {}

  /// Connects (with retries), negotiates versions (kHello), replays the
  /// whole trace, fetches the server ledger, disconnects.
  Result<ReplayReport> Replay(const workload::Trace& trace);

  /// One shard of a concurrent replay: what this client's queries
  /// produced plus its per-request wire latencies. The authoritative
  /// aggregate ledger lives on the server (FetchStats after every shard
  /// completes).
  struct ShardReport {
    QueryReply client_totals;
    uint64_t queries_sent = 0;
    /// Round-trip wall time per query request, in milliseconds.
    LogHistogram request_ms;
  };

  /// Replays the round-robin shard {i : i % num_clients == client_index}
  /// of the trace as sequence-stamped frames (seq = the query's global
  /// trace position), so the mediator's ordered-admission stage
  /// reassembles the exact single-client total order no matter how N
  /// concurrent shards interleave on the wire.
  ///
  /// Batching mode (config.batch_size > 1, env BYC_SVC_BATCH): up to
  /// batch_size consecutive shard queries ride in one kQueryBatch frame
  /// and come back as one kQueryBatchReply — same stamps, same admission
  /// order, same ledger, one round trip per batch instead of per query.
  /// request_ms then records one sample per batch. batch_size == 1 sends
  /// classic per-query kQueryAt frames.
  Result<ShardReport> ReplayShard(const workload::Trace& trace,
                                  size_t client_index, size_t num_clients);

  /// Connects, negotiates versions, and fetches the server-side ledger
  /// without sending any queries.
  Result<StatsReply> FetchStats();

  /// Connects, negotiates versions, and scrapes the mediator's metrics
  /// registry (kMetricsDump): returns the snapshot JSON document. A
  /// mediator without a registry answers FailedPrecondition. Safe to
  /// call mid-load from its own connection — the dump is served on an
  /// I/O thread without stopping admission.
  Result<std::string> FetchMetrics();

  /// Connects, negotiates versions, and asks the mediator to write a
  /// durable state snapshot (kSnapshot). The request rides the admission
  /// queue, so the returned reply describes a between-queries cut taken
  /// after everything enqueued before it. FailedPrecondition when the
  /// mediator has no snapshot directory configured.
  Result<SnapshotReply> TriggerSnapshot();

 private:
  /// Batched shard replay body (config.batch_size > 1); `sock` is
  /// already connected and version-negotiated.
  Result<ShardReport> ReplayShardBatched(Socket& sock,
                                         const workload::Trace& trace,
                                         size_t client_index,
                                         size_t num_clients);

  std::string host_;
  uint16_t port_;
  ServiceConfig config_;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_REPLAY_CLIENT_H_
