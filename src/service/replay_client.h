#ifndef BYC_SERVICE_REPLAY_CLIENT_H_
#define BYC_SERVICE_REPLAY_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "service/config.h"
#include "service/wire.h"
#include "workload/trace.h"

namespace byc::service {

/// What a trace replay over the wire produced: the client's own sum of
/// per-query deltas plus the authoritative server-side ledger fetched
/// with kStats after the last query.
///
/// The two views agree on every counter. The cost doubles agree in value
/// but only `ledger` is guaranteed bit-identical to sim::Simulator:
/// the server accumulates per access in trace order exactly as the
/// simulator does, while `client_totals` re-sums per-query subtotals —
/// a different FP association. Byte-identity claims must diff `ledger`.
struct ReplayReport {
  StatsReply ledger;
  QueryReply client_totals;
  uint64_t queries_sent = 0;
};

/// Streams a workload::Trace to a MediatorServer over the wire, one
/// kQuery frame per trace line, serially (the replay semantics of the
/// paper). Connects with the config's retry schedule; per-request
/// deadlines bound every frame exchange. A mid-replay transport failure
/// aborts with the typed error — queries are not silently skipped,
/// which would change the policy's decision stream.
class ReplayClient {
 public:
  ReplayClient(std::string host, uint16_t port, ServiceConfig config)
      : host_(std::move(host)), port_(port), config_(config) {}

  /// Connects (with retries), replays the whole trace, fetches the
  /// server ledger, disconnects.
  Result<ReplayReport> Replay(const workload::Trace& trace);

 private:
  std::string host_;
  uint16_t port_;
  ServiceConfig config_;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_REPLAY_CLIENT_H_
