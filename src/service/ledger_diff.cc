#include "service/ledger_diff.h"

#include <cstring>

namespace byc::service {

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string FmtU(uint64_t v) { return std::to_string(v); }

std::string FmtD(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void LedgerDelta::Print(std::FILE* out) const {
  for (const LedgerFieldDiff& diff : diffs) {
    std::fprintf(out, "  MISMATCH %-12s want=%s got=%s\n", diff.field,
                 diff.want.c_str(), diff.got.c_str());
  }
}

LedgerDelta DiffLedgers(const StatsReply& want, const StatsReply& got) {
  LedgerDelta delta;
  auto check_u = [&](const char* field, uint64_t w, uint64_t g) {
    ++delta.checked;
    if (w != g) delta.diffs.push_back({field, FmtU(w), FmtU(g)});
  };
  auto check_d = [&](const char* field, double w, double g) {
    ++delta.checked;
    if (!SameBits(w, g)) delta.diffs.push_back({field, FmtD(w), FmtD(g)});
  };
  check_u("queries", want.queries, got.queries);
  check_u("accesses", want.accesses, got.accesses);
  check_u("hits", want.hits, got.hits);
  check_u("bypasses", want.bypasses, got.bypasses);
  check_u("loads", want.loads, got.loads);
  check_u("evictions", want.evictions, got.evictions);
  check_u("degraded", want.degraded_accesses, got.degraded_accesses);
  check_d("D_C", want.served_cost, got.served_cost);
  check_d("D_S", want.bypass_cost, got.bypass_cost);
  check_d("D_L", want.fetch_cost, got.fetch_cost);
  check_d("degraded_cost", want.degraded_cost, got.degraded_cost);
  return delta;
}

void AccumulateStats(StatsReply& into, const StatsReply& delta) {
  into.queries += delta.queries;
  into.accesses += delta.accesses;
  into.hits += delta.hits;
  into.bypasses += delta.bypasses;
  into.loads += delta.loads;
  into.evictions += delta.evictions;
  into.degraded_accesses += delta.degraded_accesses;
  into.retries += delta.retries;
  into.reconnects += delta.reconnects;
  into.served_cost += delta.served_cost;
  into.bypass_cost += delta.bypass_cost;
  into.fetch_cost += delta.fetch_cost;
  into.degraded_cost += delta.degraded_cost;
}

std::string FormatLedgerLine(const std::string& case_name, size_t clients,
                             int batch, const StatsReply& ledger) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "case=%s clients=%zu batch=%d queries=%llu accesses=%llu "
      "hits=%llu bypasses=%llu loads=%llu evictions=%llu degraded=%llu "
      "D_C=%.17g D_S=%.17g D_L=%.17g lost=%.17g\n",
      case_name.c_str(), clients, batch,
      static_cast<unsigned long long>(ledger.queries),
      static_cast<unsigned long long>(ledger.accesses),
      static_cast<unsigned long long>(ledger.hits),
      static_cast<unsigned long long>(ledger.bypasses),
      static_cast<unsigned long long>(ledger.loads),
      static_cast<unsigned long long>(ledger.evictions),
      static_cast<unsigned long long>(ledger.degraded_accesses),
      ledger.served_cost, ledger.bypass_cost, ledger.fetch_cost,
      ledger.degraded_cost);
  return buf;
}

}  // namespace byc::service
