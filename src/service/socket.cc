#include "service/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <limits>

namespace byc::service {

namespace {

Status Errno(std::string_view what) {
  return Status::IoError(std::string(what) + ": " + ::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Waits for `events` on fd until the deadline. OK when ready;
/// DeadlineExceeded on expiry; IoError otherwise.
Status PollFor(int fd, short events, Deadline deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int timeout = deadline.PollTimeoutMs();
    int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();  // Ready (possibly HUP/ERR: let the
                                      // following read/write report it).
    if (rc == 0) return Status::DeadlineExceeded("socket wait timed out");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

int Deadline::PollTimeoutMs() const {
  if (when_ == Clock::time_point::max()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      when_ - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > std::numeric_limits<int>::max()) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(left.count());
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               Deadline deadline) {
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  BYC_RETURN_IF_ERROR(SetNonBlocking(fd));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno == ECONNREFUSED) {
      return Status::Unavailable("connection refused by " + host + ":" +
                                 std::to_string(port));
    }
    if (errno != EINPROGRESS) return Errno("connect");
    BYC_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 ::strerror(err));
    }
  }
  return sock;
}

Status Socket::SendAll(const void* data, size_t len, Deadline deadline) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      BYC_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("peer closed during send");
    }
    return Errno("send");
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len, Deadline deadline) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable(got == 0 ? "eof" : "short read");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      BYC_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::Unavailable("peer reset during recv");
    }
    return Errno("recv");
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(void* data, size_t cap) {
  for (;;) {
    ssize_t n = ::recv(fd_, data, cap, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return Status::Unavailable("eof");
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::Unavailable("peer reset during recv");
    }
    return Errno("recv");
  }
}

Result<size_t> Socket::SendVec(const struct iovec* iov, int iovcnt) {
  // sendmsg rather than writev so MSG_NOSIGNAL suppresses SIGPIPE, the
  // same way SendAll does for send(2).
  struct msghdr msg;
  ::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  for (;;) {
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::Unavailable("peer closed during send");
    }
    return Errno("sendmsg");
  }
}

Status Socket::WaitReadable(Deadline deadline) {
  return PollFor(fd_, POLLIN, deadline);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Listener::Listen(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<Socket> Listener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("listener closed");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return Status::DeadlineExceeded("no incoming connection");
  if (rc < 0) {
    if (errno == EINTR) return Status::DeadlineExceeded("interrupted");
    return Errno("poll(accept)");
  }
  if ((pfd.revents & POLLNVAL) != 0) {
    return Status::Unavailable("listener closed");
  }
  int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("no incoming connection");
    }
    if (errno == EBADF || errno == EINVAL) {
      return Status::Unavailable("listener closed");
    }
    return Errno("accept");
  }
  Socket sock(conn);
  Status nb = SetNonBlocking(conn);
  if (!nb.ok()) return nb;
  int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace byc::service
