#include "service/replay_client.h"

#include <chrono>
#include <thread>

#include "common/random.h"
#include "service/socket.h"

namespace byc::service {

namespace {

/// Connects with the retry schedule; used once per replay.
Result<Socket> ConnectWithRetry(const std::string& host, uint16_t port,
                                const ServiceConfig& config) {
  Rng rng(config.retry_seed);
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 1; attempt <= config.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          config.retry.DelayMs(attempt - 1, rng)));
    }
    Result<Socket> sock =
        Socket::Connect(host, port, Deadline::After(config.deadline_ms));
    if (sock.ok()) return sock;
    last = sock.status();
  }
  return last;
}

/// kHello handshake: advertises our protocol version; the server echoes
/// a version it will speak (ours, or an older one it negotiated down
/// to — anything in [kMinProtocolVersion, kProtocolVersion] works, the
/// v3 additions being append-only). A version-mismatch kError surfaces
/// as its typed Status (FailedPrecondition).
Status Handshake(Socket& sock, const ServiceConfig& config) {
  Deadline deadline = Deadline::After(config.deadline_ms);
  BYC_RETURN_IF_ERROR(
      WriteFrame(sock, MakeHelloFrame(kProtocolVersion), deadline));
  BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
  if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
  BYC_ASSIGN_OR_RETURN(uint32_t version, ParseHello(reply));
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Status::FailedPrecondition(
        "server replied with protocol version " + std::to_string(version) +
        ", expected " + std::to_string(kMinProtocolVersion) + ".." +
        std::to_string(kProtocolVersion));
  }
  return Status::OK();
}

/// Client trace ids: the shard owner in the high half, the query's
/// 1-based global trace position in the low half — unique across
/// concurrent shards and never kNoTraceId (0).
uint64_t TraceIdFor(size_t client_index, size_t global_idx) {
  return (static_cast<uint64_t>(client_index) + 1) << 32 |
         (static_cast<uint64_t>(global_idx) + 1);
}

/// Sums a per-query delta into the running client-side totals.
void Accumulate(QueryReply& totals, const QueryReply& delta) {
  totals.accesses += delta.accesses;
  totals.hits += delta.hits;
  totals.bypasses += delta.bypasses;
  totals.loads += delta.loads;
  totals.evictions += delta.evictions;
  totals.degraded += delta.degraded;
  totals.served_cost += delta.served_cost;
  totals.bypass_cost += delta.bypass_cost;
  totals.fetch_cost += delta.fetch_cost;
  totals.degraded_cost += delta.degraded_cost;
}

Result<StatsReply> FetchStatsOn(Socket& sock, const ServiceConfig& config) {
  Frame stats;
  stats.type = FrameType::kStats;
  Deadline deadline = Deadline::After(config.deadline_ms);
  BYC_RETURN_IF_ERROR(WriteFrame(sock, stats, deadline));
  BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
  if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
  return ParseStatsReply(reply);
}

}  // namespace

Result<ReplayReport> ReplayClient::Replay(const workload::Trace& trace) {
  BYC_ASSIGN_OR_RETURN(Socket sock,
                       ConnectWithRetry(host_, port_, config_));
  BYC_RETURN_IF_ERROR(Handshake(sock, config_));
  ReplayReport report;
  for (const workload::TraceQuery& tq : trace.queries) {
    uint64_t trace_id =
        config_.trace ? TraceIdFor(0, report.queries_sent) : kNoTraceId;
    Frame request = MakeQueryFrame(workload::FormatTraceQuery(tq), trace_id);
    Deadline deadline = Deadline::After(config_.deadline_ms);
    BYC_RETURN_IF_ERROR(WriteFrame(sock, request, deadline));
    BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
    if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
    BYC_ASSIGN_OR_RETURN(QueryReply delta, ParseQueryReply(reply));
    ++report.queries_sent;
    Accumulate(report.client_totals, delta);
  }
  BYC_ASSIGN_OR_RETURN(report.ledger, FetchStatsOn(sock, config_));
  return report;
}

Result<ReplayClient::ShardReport> ReplayClient::ReplayShard(
    const workload::Trace& trace, size_t client_index, size_t num_clients) {
  if (num_clients == 0 || client_index >= num_clients) {
    return Status::InvalidArgument(
        "shard " + std::to_string(client_index) + " of " +
        std::to_string(num_clients) + " clients is not a valid partition");
  }
  BYC_ASSIGN_OR_RETURN(Socket sock,
                       ConnectWithRetry(host_, port_, config_));
  BYC_RETURN_IF_ERROR(Handshake(sock, config_));
  if (config_.batch_size > 1) {
    return ReplayShardBatched(sock, trace, client_index, num_clients);
  }
  ShardReport report;
  using Clock = std::chrono::steady_clock;
  for (size_t idx = client_index; idx < trace.queries.size();
       idx += num_clients) {
    // The sequence stamp is the query's global trace position: the
    // server's ordered-admission stage uses it to reassemble the exact
    // single-client total order across all concurrent shards.
    Frame request = MakeQueryAtFrame(
        static_cast<uint64_t>(idx),
        workload::FormatTraceQuery(trace.queries[idx]),
        config_.trace ? TraceIdFor(client_index, idx) : kNoTraceId);
    Deadline deadline = Deadline::After(config_.deadline_ms);
    const Clock::time_point start = Clock::now();
    BYC_RETURN_IF_ERROR(WriteFrame(sock, request, deadline));
    BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
    report.request_ms.Add(
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count());
    if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
    BYC_ASSIGN_OR_RETURN(QueryReply delta, ParseQueryReply(reply));
    ++report.queries_sent;
    Accumulate(report.client_totals, delta);
  }
  return report;
}

Result<ReplayClient::ShardReport> ReplayClient::ReplayShardBatched(
    Socket& sock, const workload::Trace& trace, size_t client_index,
    size_t num_clients) {
  const size_t batch_cap = static_cast<size_t>(config_.batch_size);
  ShardReport report;
  using Clock = std::chrono::steady_clock;
  // Both wire buffers are reused across batches: encode-side the builder
  // clears and refills `payload`, decode-side ParseQueryBatchReplyInto
  // clears and refills `deltas`.
  std::vector<uint8_t> payload;
  std::vector<uint8_t> wire;
  std::vector<QueryReply> deltas;
  size_t idx = client_index;
  while (idx < trace.queries.size()) {
    const size_t batch_first = idx;
    QueryBatchBuilder batch(&payload);
    for (; idx < trace.queries.size() && batch.count() < batch_cap;
         idx += num_clients) {
      // Same stamp as the per-query path: the query's global trace
      // position, so admission order (and the ledger) cannot depend on
      // how queries are packed into frames.
      batch.Add(static_cast<uint64_t>(idx),
                workload::FormatTraceQuery(trace.queries[idx]));
    }
    batch.Finish();
    if (config_.trace) {
      // One base id traces the whole frame; the server derives item i's
      // id as base+i. Distinct batches cannot collide: bases step by
      // count * num_clients, which is >= the item count.
      AppendTraceExt(payload, TraceIdFor(client_index, batch_first));
    }
    wire.clear();
    EncodeFrameHeaderInto(wire, FrameType::kQueryBatch,
                          static_cast<uint32_t>(payload.size()));
    wire.insert(wire.end(), payload.begin(), payload.end());

    Deadline deadline = Deadline::After(config_.deadline_ms);
    const Clock::time_point start = Clock::now();
    BYC_RETURN_IF_ERROR(sock.SendAll(wire.data(), wire.size(), deadline));
    BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
    report.request_ms.Add(
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count());
    if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
    BYC_RETURN_IF_ERROR(ParseQueryBatchReplyInto(reply, &deltas));
    if (deltas.size() != batch.count()) {
      return Status::Internal(
          "batch reply carries " + std::to_string(deltas.size()) +
          " deltas for " + std::to_string(batch.count()) + " queries");
    }
    for (const QueryReply& delta : deltas) {
      ++report.queries_sent;
      Accumulate(report.client_totals, delta);
    }
  }
  return report;
}

Result<StatsReply> ReplayClient::FetchStats() {
  BYC_ASSIGN_OR_RETURN(Socket sock,
                       ConnectWithRetry(host_, port_, config_));
  BYC_RETURN_IF_ERROR(Handshake(sock, config_));
  return FetchStatsOn(sock, config_);
}

Result<std::string> ReplayClient::FetchMetrics() {
  BYC_ASSIGN_OR_RETURN(Socket sock,
                       ConnectWithRetry(host_, port_, config_));
  BYC_RETURN_IF_ERROR(Handshake(sock, config_));
  Deadline deadline = Deadline::After(config_.deadline_ms);
  BYC_RETURN_IF_ERROR(WriteFrame(sock, MakeMetricsDumpFrame(), deadline));
  BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
  if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
  if (reply.type != FrameType::kMetricsDumpReply) {
    return Status::ParseError(
        "expected kMetricsDumpReply, got frame type " +
        std::to_string(static_cast<int>(reply.type)));
  }
  return std::string(reply.payload.begin(), reply.payload.end());
}

Result<SnapshotReply> ReplayClient::TriggerSnapshot() {
  BYC_ASSIGN_OR_RETURN(Socket sock,
                       ConnectWithRetry(host_, port_, config_));
  BYC_RETURN_IF_ERROR(Handshake(sock, config_));
  Deadline deadline = Deadline::After(config_.deadline_ms);
  BYC_RETURN_IF_ERROR(WriteFrame(sock, MakeSnapshotFrame(), deadline));
  BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
  if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
  return ParseSnapshotReply(reply);
}

}  // namespace byc::service
