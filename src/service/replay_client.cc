#include "service/replay_client.h"

#include <chrono>
#include <thread>

#include "common/random.h"
#include "service/socket.h"

namespace byc::service {

namespace {

/// Connects with the retry schedule; used once per replay.
Result<Socket> ConnectWithRetry(const std::string& host, uint16_t port,
                                const ServiceConfig& config) {
  Rng rng(config.retry_seed);
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 1; attempt <= config.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          config.retry.DelayMs(attempt - 1, rng)));
    }
    Result<Socket> sock =
        Socket::Connect(host, port, Deadline::After(config.deadline_ms));
    if (sock.ok()) return sock;
    last = sock.status();
  }
  return last;
}

}  // namespace

Result<ReplayReport> ReplayClient::Replay(const workload::Trace& trace) {
  BYC_ASSIGN_OR_RETURN(Socket sock,
                       ConnectWithRetry(host_, port_, config_));
  ReplayReport report;
  for (const workload::TraceQuery& tq : trace.queries) {
    Frame request = MakeQueryFrame(workload::FormatTraceQuery(tq));
    Deadline deadline = Deadline::After(config_.deadline_ms);
    BYC_RETURN_IF_ERROR(WriteFrame(sock, request, deadline));
    BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
    if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
    BYC_ASSIGN_OR_RETURN(QueryReply delta, ParseQueryReply(reply));
    ++report.queries_sent;
    report.client_totals.accesses += delta.accesses;
    report.client_totals.hits += delta.hits;
    report.client_totals.bypasses += delta.bypasses;
    report.client_totals.loads += delta.loads;
    report.client_totals.evictions += delta.evictions;
    report.client_totals.degraded += delta.degraded;
    report.client_totals.served_cost += delta.served_cost;
    report.client_totals.bypass_cost += delta.bypass_cost;
    report.client_totals.fetch_cost += delta.fetch_cost;
    report.client_totals.degraded_cost += delta.degraded_cost;
  }
  Frame stats;
  stats.type = FrameType::kStats;
  Deadline deadline = Deadline::After(config_.deadline_ms);
  BYC_RETURN_IF_ERROR(WriteFrame(sock, stats, deadline));
  BYC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(sock, deadline));
  if (reply.type == FrameType::kError) return ParseErrorFrame(reply);
  BYC_ASSIGN_OR_RETURN(report.ledger, ParseStatsReply(reply));
  return report;
}

}  // namespace byc::service
