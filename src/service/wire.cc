#include "service/wire.h"

#include <cstring>

#include "common/check.h"

namespace byc::service {

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kShardStatsReply);
}

namespace {

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void AppendTraceExt(std::vector<uint8_t>& out, uint64_t trace_id) {
  if (trace_id == kNoTraceId) return;
  AppendU64(out, trace_id);
  AppendU32(out, 8);  // ext_len: just the trace id today; append-only.
  AppendU32(out, kTraceExtMagic);
}

Result<TraceExt> StripTraceExt(const uint8_t* payload, size_t size,
                               size_t min_base) {
  TraceExt ext;
  ext.base_len = size;
  // The smallest extended payload is min_base + trace id + trailer; a
  // shorter one cannot carry an extension, whatever its tail spells.
  if (size < min_base + kTraceExtBytes) return ext;
  if (LoadU32(payload + size - 4) != kTraceExtMagic) return ext;
  uint32_t ext_len = LoadU32(payload + size - 8);
  if (ext_len < 8 || static_cast<size_t>(ext_len) > size - 8 - min_base) {
    return Status::ParseError("malformed trace extension (ext_len " +
                              std::to_string(ext_len) + " in a " +
                              std::to_string(size) + "-byte payload)");
  }
  ext.base_len = size - 8 - ext_len;
  ext.trace_id = LoadU64(payload + ext.base_len);
  return ext;
}

namespace {

/// Smallest possible kQueryBatch item (u64 seq + u32 len + empty line):
/// bounds how many items a count prefix may promise.
constexpr size_t kMinBatchItemBytes = 12;

}  // namespace

std::string_view WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kUnspecified:
      return "Unspecified";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kNotFound:
      return "NotFound";
    case WireCode::kAlreadyExists:
      return "AlreadyExists";
    case WireCode::kOutOfRange:
      return "OutOfRange";
    case WireCode::kFailedPrecondition:
      return "FailedPrecondition";
    case WireCode::kCapacityExceeded:
      return "CapacityExceeded";
    case WireCode::kIoError:
      return "IoError";
    case WireCode::kParseError:
      return "ParseError";
    case WireCode::kInternal:
      return "Internal";
    case WireCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireCode::kUnavailable:
      return "Unavailable";
    case WireCode::kVersionMismatch:
      return "VersionMismatch";
    case WireCode::kBusy:
      return "Busy";
    case WireCode::kShardMapMismatch:
      return "ShardMapMismatch";
  }
  return "?";
}

WireCode WireCodeForStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireCode::kUnspecified;
    case StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireCode::kAlreadyExists;
    case StatusCode::kOutOfRange:
      return WireCode::kOutOfRange;
    case StatusCode::kFailedPrecondition:
      return WireCode::kFailedPrecondition;
    case StatusCode::kCapacityExceeded:
      return WireCode::kCapacityExceeded;
    case StatusCode::kIoError:
      return WireCode::kIoError;
    case StatusCode::kParseError:
      return WireCode::kParseError;
    case StatusCode::kInternal:
      return WireCode::kInternal;
    case StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return WireCode::kUnavailable;
  }
  return WireCode::kUnspecified;
}

StatusCode StatusCodeForWire(WireCode code) {
  switch (code) {
    case WireCode::kUnspecified:
      return StatusCode::kInternal;
    case WireCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireCode::kNotFound:
      return StatusCode::kNotFound;
    case WireCode::kAlreadyExists:
      return StatusCode::kAlreadyExists;
    case WireCode::kOutOfRange:
      return StatusCode::kOutOfRange;
    case WireCode::kFailedPrecondition:
      return StatusCode::kFailedPrecondition;
    case WireCode::kCapacityExceeded:
      return StatusCode::kCapacityExceeded;
    case WireCode::kIoError:
      return StatusCode::kIoError;
    case WireCode::kParseError:
      return StatusCode::kParseError;
    case WireCode::kInternal:
      return StatusCode::kInternal;
    case WireCode::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case WireCode::kUnavailable:
      return StatusCode::kUnavailable;
    case WireCode::kVersionMismatch:
      return StatusCode::kFailedPrecondition;
    case WireCode::kBusy:
      return StatusCode::kUnavailable;
    case WireCode::kShardMapMismatch:
      return StatusCode::kFailedPrecondition;
  }
  return StatusCode::kInternal;
}

void EncodeFrameHeaderInto(std::vector<uint8_t>& out, FrameType type,
                           uint32_t payload_len) {
  BYC_CHECK_LE(payload_len, kMaxPayload);
  AppendU32(out, payload_len);
  out.push_back(static_cast<uint8_t>(type));
}

void EncodeFrameInto(std::vector<uint8_t>& out, const Frame& frame) {
  EncodeFrameHeaderInto(out, frame.type,
                        static_cast<uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

void EncodeFetchInto(std::vector<uint8_t>& out, const FetchRequest& req) {
  AppendI32(out, req.table);
  AppendI32(out, req.column);
  AppendU64(out, req.size_bytes);
}

void EncodeYieldInto(std::vector<uint8_t>& out, const YieldRequest& req) {
  AppendI32(out, req.table);
  AppendI32(out, req.column);
  AppendF64(out, req.yield_bytes);
}

void EncodeErrorInto(std::vector<uint8_t>& out, WireCode code,
                     std::string_view message) {
  out.push_back(static_cast<uint8_t>(code));
  out.insert(out.end(), message.begin(), message.end());
}

void EncodeQueryAtInto(std::vector<uint8_t>& out, uint64_t seq,
                       std::string_view trace_line) {
  AppendU64(out, seq);
  out.insert(out.end(), trace_line.begin(), trace_line.end());
}

void EncodeQueryReplyInto(std::vector<uint8_t>& out, const QueryReply& reply) {
  AppendU64(out, reply.accesses);
  AppendU64(out, reply.hits);
  AppendU64(out, reply.bypasses);
  AppendU64(out, reply.loads);
  AppendU64(out, reply.evictions);
  AppendU64(out, reply.degraded);
  AppendF64(out, reply.served_cost);
  AppendF64(out, reply.bypass_cost);
  AppendF64(out, reply.fetch_cost);
  AppendF64(out, reply.degraded_cost);
}

void EncodeStatsReplyInto(std::vector<uint8_t>& out, const StatsReply& reply) {
  AppendU64(out, reply.queries);
  AppendU64(out, reply.accesses);
  AppendU64(out, reply.hits);
  AppendU64(out, reply.bypasses);
  AppendU64(out, reply.loads);
  AppendU64(out, reply.evictions);
  AppendU64(out, reply.degraded_accesses);
  AppendU64(out, reply.retries);
  AppendU64(out, reply.reconnects);
  AppendF64(out, reply.served_cost);
  AppendF64(out, reply.bypass_cost);
  AppendF64(out, reply.fetch_cost);
  AppendF64(out, reply.degraded_cost);
}

QueryBatchBuilder::QueryBatchBuilder(std::vector<uint8_t>* payload)
    : payload_(payload) {
  payload_->clear();
  AppendU32(*payload_, 0);  // Count placeholder; patched by Finish().
}

void QueryBatchBuilder::Add(uint64_t seq, std::string_view trace_line) {
  BYC_CHECK_LT(count_, kMaxQueryBatchItems);
  AppendU64(*payload_, seq);
  AppendU32(*payload_, static_cast<uint32_t>(trace_line.size()));
  payload_->insert(payload_->end(), trace_line.begin(), trace_line.end());
  ++count_;
}

void QueryBatchBuilder::Finish() {
  for (int i = 0; i < 4; ++i) {
    (*payload_)[static_cast<size_t>(i)] =
        static_cast<uint8_t>(count_ >> (8 * i));
  }
}

Status ParseQueryBatchInto(const uint8_t* payload, size_t size,
                           std::vector<QueryBatchItem>* items,
                           uint64_t* base_trace_id) {
  items->clear();
  if (base_trace_id != nullptr) *base_trace_id = kNoTraceId;
  PayloadReader r(payload, size);
  BYC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count > kMaxQueryBatchItems) {
    // The reply costs kQueryReplyWireBytes per item and must fit under
    // kMaxPayload; a count past that could never be answered with a
    // legal frame, so it is the sender's protocol error — not a reason
    // to let the reply encoder trip its payload-cap CHECK.
    return Status::ParseError(
        "batch count " + std::to_string(count) + " exceeds the " +
        std::to_string(kMaxQueryBatchItems) + "-item cap");
  }
  if (static_cast<size_t>(count) * kMinBatchItemBytes > r.remaining()) {
    return Status::ParseError(
        "batch count " + std::to_string(count) +
        " cannot fit in a payload of " + std::to_string(size) + " bytes");
  }
  items->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryBatchItem item;
    BYC_ASSIGN_OR_RETURN(item.seq, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(uint32_t len, r.ReadU32());
    BYC_ASSIGN_OR_RETURN(item.line, r.ReadView(len));
    items->push_back(item);
  }
  if (r.remaining() != 0) {
    // Bytes past the last item must be exactly the frame's trace
    // extension (one base id for the whole batch); anything else is the
    // pre-v3 "too long" protocol error.
    size_t item_end = size - r.remaining();
    BYC_ASSIGN_OR_RETURN(TraceExt ext,
                         StripTraceExt(payload, size, item_end));
    if (ext.base_len != item_end) {
      return Status::ParseError("batch payload too long");
    }
    if (base_trace_id != nullptr) *base_trace_id = ext.trace_id;
  }
  return Status::OK();
}

Status ParseQueryBatchInto(const Frame& frame,
                           std::vector<QueryBatchItem>* items,
                           uint64_t* base_trace_id) {
  if (frame.type != FrameType::kQueryBatch) {
    return Status::InvalidArgument("not a kQueryBatch frame");
  }
  return ParseQueryBatchInto(frame.payload.data(), frame.payload.size(),
                             items, base_trace_id);
}

void EncodeQueryBatchReplyInto(std::vector<uint8_t>& out,
                               const QueryReply* deltas, size_t count) {
  AppendU32(out, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    EncodeQueryReplyInto(out, deltas[i]);
  }
}

Status ParseQueryBatchReplyInto(const Frame& frame,
                                std::vector<QueryReply>* deltas) {
  if (frame.type != FrameType::kQueryBatchReply) {
    return Status::InvalidArgument("not a kQueryBatchReply frame");
  }
  deltas->clear();
  PayloadReader r(frame.payload);
  BYC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (static_cast<size_t>(count) * kQueryReplyWireBytes != r.remaining()) {
    return Status::ParseError(
        "batch reply count " + std::to_string(count) +
        " does not match payload size " +
        std::to_string(frame.payload.size()));
  }
  deltas->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryReply delta;
    BYC_ASSIGN_OR_RETURN(delta.accesses, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(delta.hits, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(delta.bypasses, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(delta.loads, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(delta.evictions, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(delta.degraded, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(delta.served_cost, r.ReadF64());
    BYC_ASSIGN_OR_RETURN(delta.bypass_cost, r.ReadF64());
    BYC_ASSIGN_OR_RETURN(delta.fetch_cost, r.ReadF64());
    BYC_ASSIGN_OR_RETURN(delta.degraded_cost, r.ReadF64());
    deltas->push_back(delta);
  }
  return Status::OK();
}

Frame MakeFetchFrame(const FetchRequest& req) {
  Frame f;
  f.type = FrameType::kFetch;
  EncodeFetchInto(f.payload, req);
  AppendTraceExt(f.payload, req.trace_id);
  return f;
}

Frame MakeYieldFrame(const YieldRequest& req) {
  Frame f;
  f.type = FrameType::kYield;
  EncodeYieldInto(f.payload, req);
  AppendTraceExt(f.payload, req.trace_id);
  return f;
}

Frame MakeQueryFrame(std::string_view trace_line, uint64_t trace_id) {
  Frame f;
  f.type = FrameType::kQuery;
  f.payload.assign(trace_line.begin(), trace_line.end());
  AppendTraceExt(f.payload, trace_id);
  return f;
}

Frame MakeQueryAtFrame(uint64_t seq, std::string_view trace_line,
                       uint64_t trace_id) {
  Frame f;
  f.type = FrameType::kQueryAt;
  EncodeQueryAtInto(f.payload, seq, trace_line);
  AppendTraceExt(f.payload, trace_id);
  return f;
}

Frame MakeHelloFrame(uint32_t version) {
  Frame f;
  f.type = FrameType::kHello;
  AppendU32(f.payload, version);
  return f;
}

Frame MakeHelloReplyFrame(uint32_t version) {
  Frame f;
  f.type = FrameType::kHelloReply;
  AppendU32(f.payload, version);
  return f;
}

Frame MakeMetricsDumpFrame() {
  Frame f;
  f.type = FrameType::kMetricsDump;
  return f;
}

Frame MakeMetricsDumpReplyFrame(std::string_view json) {
  Frame f;
  f.type = FrameType::kMetricsDumpReply;
  f.payload.assign(json.begin(), json.end());
  return f;
}

Frame MakeSnapshotFrame() {
  Frame f;
  f.type = FrameType::kSnapshot;
  return f;
}

Frame MakeSnapshotReplyFrame(const SnapshotReply& reply) {
  Frame f;
  f.type = FrameType::kSnapshotReply;
  AppendU64(f.payload, reply.queries);
  AppendU64(f.payload, reply.snapshot_bytes);
  f.payload.push_back(reply.persisted);
  return f;
}

Result<SnapshotReply> ParseSnapshotReply(const Frame& frame) {
  if (frame.type != FrameType::kSnapshotReply) {
    return Status::InvalidArgument("not a snapshot reply");
  }
  PayloadReader r(frame.payload);
  SnapshotReply reply;
  BYC_ASSIGN_OR_RETURN(reply.queries, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.snapshot_bytes, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.persisted, r.ReadU8());
  if (r.remaining() != 0) {
    return Status::ParseError("snapshot reply payload too long");
  }
  return reply;
}

Frame MakeShardHelloFrame(const ShardHello& hello) {
  Frame f;
  f.type = FrameType::kShardHello;
  AppendU32(f.payload, hello.shard_id);
  AppendU32(f.payload, hello.map_version);
  AppendU64(f.payload, hello.map_fingerprint);
  return f;
}

Frame MakeShardHelloReplyFrame(uint32_t shard_id, uint32_t map_version) {
  Frame f;
  f.type = FrameType::kShardHelloReply;
  AppendU32(f.payload, shard_id);
  AppendU32(f.payload, map_version);
  return f;
}

Result<ShardHello> ParseShardHello(const Frame& frame) {
  if (frame.type != FrameType::kShardHello) {
    return Status::InvalidArgument("not a shard hello frame");
  }
  PayloadReader r(frame.payload);
  ShardHello hello;
  BYC_ASSIGN_OR_RETURN(hello.shard_id, r.ReadU32());
  BYC_ASSIGN_OR_RETURN(hello.map_version, r.ReadU32());
  BYC_ASSIGN_OR_RETURN(hello.map_fingerprint, r.ReadU64());
  if (r.remaining() != 0) {
    return Status::ParseError("shard hello payload too long");
  }
  return hello;
}

Result<ShardHello> ParseShardHelloReply(const Frame& frame) {
  if (frame.type != FrameType::kShardHelloReply) {
    return Status::InvalidArgument("not a shard hello reply");
  }
  PayloadReader r(frame.payload);
  ShardHello hello;
  BYC_ASSIGN_OR_RETURN(hello.shard_id, r.ReadU32());
  BYC_ASSIGN_OR_RETURN(hello.map_version, r.ReadU32());
  if (r.remaining() != 0) {
    return Status::ParseError("shard hello reply payload too long");
  }
  return hello;
}

Frame MakeShardStatsFrame() {
  Frame f;
  f.type = FrameType::kShardStats;
  return f;
}

Frame MakeShardStatsReplyFrame(const ShardStatsEntry* entries, size_t count) {
  Frame f;
  f.type = FrameType::kShardStatsReply;
  AppendU32(f.payload, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    AppendU32(f.payload, entries[i].shard_id);
    AppendU32(f.payload, entries[i].map_version);
    EncodeStatsReplyInto(f.payload, entries[i].stats);
  }
  return f;
}

namespace {

/// Serialized size of one ShardStatsEntry: id + version + StatsReply
/// (9 u64 counters + 4 f64 costs).
constexpr size_t kShardStatsEntryBytes = 4 + 4 + 9 * 8 + 4 * 8;

}  // namespace

Status ParseShardStatsReplyInto(const Frame& frame,
                                std::vector<ShardStatsEntry>* entries) {
  if (frame.type != FrameType::kShardStatsReply) {
    return Status::InvalidArgument("not a shard stats reply");
  }
  entries->clear();
  PayloadReader r(frame.payload);
  BYC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (static_cast<size_t>(count) * kShardStatsEntryBytes != r.remaining()) {
    return Status::ParseError(
        "shard stats count " + std::to_string(count) +
        " does not match payload size " +
        std::to_string(frame.payload.size()));
  }
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShardStatsEntry entry;
    BYC_ASSIGN_OR_RETURN(entry.shard_id, r.ReadU32());
    BYC_ASSIGN_OR_RETURN(entry.map_version, r.ReadU32());
    StatsReply& s = entry.stats;
    BYC_ASSIGN_OR_RETURN(s.queries, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.accesses, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.hits, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.bypasses, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.loads, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.evictions, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.degraded_accesses, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.retries, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.reconnects, r.ReadU64());
    BYC_ASSIGN_OR_RETURN(s.served_cost, r.ReadF64());
    BYC_ASSIGN_OR_RETURN(s.bypass_cost, r.ReadF64());
    BYC_ASSIGN_OR_RETURN(s.fetch_cost, r.ReadF64());
    BYC_ASSIGN_OR_RETURN(s.degraded_cost, r.ReadF64());
    entries->push_back(entry);
  }
  return Status::OK();
}

Frame MakeQueryReplyFrame(const QueryReply& reply) {
  Frame f;
  f.type = FrameType::kQueryReply;
  EncodeQueryReplyInto(f.payload, reply);
  return f;
}

Frame MakeStatsReplyFrame(const StatsReply& reply) {
  Frame f;
  f.type = FrameType::kStatsReply;
  EncodeStatsReplyInto(f.payload, reply);
  return f;
}

Frame MakeErrorFrame(const Status& status) {
  return MakeErrorFrame(WireCodeForStatus(status.code()), status.message());
}

Frame MakeErrorFrame(WireCode code, std::string_view message) {
  Frame f;
  f.type = FrameType::kError;
  EncodeErrorInto(f.payload, code, message);
  return f;
}

/// Base bytes of a kFetch payload: i32 table + i32 column + u64 size.
constexpr size_t kFetchBaseBytes = 4 + 4 + 8;
/// Base bytes of a kYield payload: i32 table + i32 column + f64 bytes.
constexpr size_t kYieldBaseBytes = 4 + 4 + 8;

Result<FetchRequest> ParseFetchRequest(const Frame& frame) {
  if (frame.type != FrameType::kFetch) {
    return Status::InvalidArgument("not a fetch frame");
  }
  BYC_ASSIGN_OR_RETURN(TraceExt ext,
                       StripTraceExt(frame.payload.data(),
                                     frame.payload.size(), kFetchBaseBytes));
  PayloadReader r(frame.payload.data(), ext.base_len);
  FetchRequest req;
  req.trace_id = ext.trace_id;
  BYC_ASSIGN_OR_RETURN(req.table, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.column, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.size_bytes, r.ReadU64());
  if (r.remaining() != 0) return Status::ParseError("fetch payload too long");
  return req;
}

Result<YieldRequest> ParseYieldRequest(const Frame& frame) {
  if (frame.type != FrameType::kYield) {
    return Status::InvalidArgument("not a yield frame");
  }
  BYC_ASSIGN_OR_RETURN(TraceExt ext,
                       StripTraceExt(frame.payload.data(),
                                     frame.payload.size(), kYieldBaseBytes));
  PayloadReader r(frame.payload.data(), ext.base_len);
  YieldRequest req;
  req.trace_id = ext.trace_id;
  BYC_ASSIGN_OR_RETURN(req.table, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.column, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.yield_bytes, r.ReadF64());
  if (r.remaining() != 0) return Status::ParseError("yield payload too long");
  return req;
}

Result<QueryReply> ParseQueryReply(const Frame& frame) {
  if (frame.type != FrameType::kQueryReply) {
    return Status::InvalidArgument("not a query reply");
  }
  PayloadReader r(frame.payload);
  QueryReply reply;
  BYC_ASSIGN_OR_RETURN(reply.accesses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.hits, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.bypasses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.loads, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.evictions, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.degraded, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.served_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.bypass_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.fetch_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.degraded_cost, r.ReadF64());
  if (r.remaining() != 0) {
    return Status::ParseError("query reply payload too long");
  }
  return reply;
}

Result<StatsReply> ParseStatsReply(const Frame& frame) {
  if (frame.type != FrameType::kStatsReply) {
    return Status::InvalidArgument("not a stats reply");
  }
  PayloadReader r(frame.payload);
  StatsReply reply;
  BYC_ASSIGN_OR_RETURN(reply.queries, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.accesses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.hits, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.bypasses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.loads, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.evictions, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.degraded_accesses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.retries, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.reconnects, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.served_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.bypass_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.fetch_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.degraded_cost, r.ReadF64());
  if (r.remaining() != 0) {
    return Status::ParseError("stats reply payload too long");
  }
  return reply;
}

Status ParseErrorFrame(const Frame& frame) {
  if (frame.type != FrameType::kError || frame.payload.empty()) {
    return Status::Internal("malformed error frame");
  }
  std::string msg(reinterpret_cast<const char*>(frame.payload.data() + 1),
                  frame.payload.size() - 1);
  return Status(StatusCodeForWire(ErrorFrameCode(frame)), std::move(msg));
}

WireCode ErrorFrameCode(const Frame& frame) {
  if (frame.type != FrameType::kError || frame.payload.empty()) {
    return WireCode::kUnspecified;
  }
  // Round-trip through the name table: any byte a current peer can name
  // comes back unchanged; bytes from a newer (or hostile) peer collapse
  // to kUnspecified instead of escaping the enum's domain.
  WireCode code = static_cast<WireCode>(frame.payload[0]);
  return WireCodeName(code) == "?" ? WireCode::kUnspecified : code;
}

Result<SequencedQuery> ParseQueryAt(const Frame& frame) {
  if (frame.type != FrameType::kQueryAt) {
    return Status::InvalidArgument("not a kQueryAt frame");
  }
  BYC_ASSIGN_OR_RETURN(
      TraceExt ext,
      StripTraceExt(frame.payload.data(), frame.payload.size(), 8));
  PayloadReader r(frame.payload.data(), ext.base_len);
  SequencedQuery query;
  query.trace_id = ext.trace_id;
  BYC_ASSIGN_OR_RETURN(query.seq, r.ReadU64());
  query.trace_line = r.ReadText();
  return query;
}

Result<uint32_t> ParseHello(const Frame& frame) {
  if (frame.type != FrameType::kHello &&
      frame.type != FrameType::kHelloReply) {
    return Status::InvalidArgument("not a hello frame");
  }
  PayloadReader r(frame.payload);
  uint32_t version = 0;
  BYC_ASSIGN_OR_RETURN(version, r.ReadU32());
  if (r.remaining() != 0) return Status::ParseError("hello payload too long");
  return version;
}

Status WriteFrame(Socket& sock, const Frame& frame, Deadline deadline) {
  BYC_CHECK_LE(frame.payload.size(), kMaxPayload);
  uint8_t header[5];
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(len >> (8 * i));
  }
  header[4] = static_cast<uint8_t>(frame.type);
  BYC_RETURN_IF_ERROR(sock.SendAll(header, sizeof(header), deadline));
  if (!frame.payload.empty()) {
    BYC_RETURN_IF_ERROR(
        sock.SendAll(frame.payload.data(), frame.payload.size(), deadline));
  }
  return Status::OK();
}

Result<Frame> ReadFrame(Socket& sock, Deadline deadline) {
  uint8_t header[5];
  BYC_RETURN_IF_ERROR(sock.RecvAll(header, sizeof(header), deadline));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxPayload) {
    return Status::InvalidArgument("oversized frame: " + std::to_string(len) +
                                   " bytes exceeds cap " +
                                   std::to_string(kMaxPayload));
  }
  if (!IsKnownFrameType(header[4])) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(header[4]));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(len);
  if (len > 0) {
    BYC_RETURN_IF_ERROR(sock.RecvAll(frame.payload.data(), len, deadline));
  }
  return frame;
}

}  // namespace byc::service
