#include "service/wire.h"

#include <cstring>

#include "common/check.h"

namespace byc::service {

namespace {

/// Frame types a receiver recognizes; anything else poisons the
/// connection with InvalidArgument.
bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kQueryAt);
}

}  // namespace

std::string_view WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kUnspecified:
      return "Unspecified";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kNotFound:
      return "NotFound";
    case WireCode::kAlreadyExists:
      return "AlreadyExists";
    case WireCode::kOutOfRange:
      return "OutOfRange";
    case WireCode::kFailedPrecondition:
      return "FailedPrecondition";
    case WireCode::kCapacityExceeded:
      return "CapacityExceeded";
    case WireCode::kIoError:
      return "IoError";
    case WireCode::kParseError:
      return "ParseError";
    case WireCode::kInternal:
      return "Internal";
    case WireCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireCode::kUnavailable:
      return "Unavailable";
    case WireCode::kVersionMismatch:
      return "VersionMismatch";
    case WireCode::kBusy:
      return "Busy";
  }
  return "?";
}

WireCode WireCodeForStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireCode::kUnspecified;
    case StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireCode::kAlreadyExists;
    case StatusCode::kOutOfRange:
      return WireCode::kOutOfRange;
    case StatusCode::kFailedPrecondition:
      return WireCode::kFailedPrecondition;
    case StatusCode::kCapacityExceeded:
      return WireCode::kCapacityExceeded;
    case StatusCode::kIoError:
      return WireCode::kIoError;
    case StatusCode::kParseError:
      return WireCode::kParseError;
    case StatusCode::kInternal:
      return WireCode::kInternal;
    case StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return WireCode::kUnavailable;
  }
  return WireCode::kUnspecified;
}

StatusCode StatusCodeForWire(WireCode code) {
  switch (code) {
    case WireCode::kUnspecified:
      return StatusCode::kInternal;
    case WireCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireCode::kNotFound:
      return StatusCode::kNotFound;
    case WireCode::kAlreadyExists:
      return StatusCode::kAlreadyExists;
    case WireCode::kOutOfRange:
      return StatusCode::kOutOfRange;
    case WireCode::kFailedPrecondition:
      return StatusCode::kFailedPrecondition;
    case WireCode::kCapacityExceeded:
      return StatusCode::kCapacityExceeded;
    case WireCode::kIoError:
      return StatusCode::kIoError;
    case WireCode::kParseError:
      return StatusCode::kParseError;
    case WireCode::kInternal:
      return StatusCode::kInternal;
    case WireCode::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case WireCode::kUnavailable:
      return StatusCode::kUnavailable;
    case WireCode::kVersionMismatch:
      return StatusCode::kFailedPrecondition;
    case WireCode::kBusy:
      return StatusCode::kUnavailable;
  }
  return StatusCode::kInternal;
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendI32(std::vector<uint8_t>& out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendF64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

Result<uint32_t> PayloadReader::ReadU32() {
  if (size_ - pos_ < 4) return Status::ParseError("payload truncated (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::ReadU64() {
  if (size_ - pos_ < 8) return Status::ParseError("payload truncated (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> PayloadReader::ReadI32() {
  BYC_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<double> PayloadReader::ReadF64() {
  BYC_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::ReadText() {
  std::string out(reinterpret_cast<const char*>(data_ + pos_),
                  size_ - pos_);
  pos_ = size_;
  return out;
}

Frame MakeFetchFrame(const FetchRequest& req) {
  Frame f;
  f.type = FrameType::kFetch;
  AppendI32(f.payload, req.table);
  AppendI32(f.payload, req.column);
  AppendU64(f.payload, req.size_bytes);
  return f;
}

Frame MakeYieldFrame(const YieldRequest& req) {
  Frame f;
  f.type = FrameType::kYield;
  AppendI32(f.payload, req.table);
  AppendI32(f.payload, req.column);
  AppendF64(f.payload, req.yield_bytes);
  return f;
}

Frame MakeQueryFrame(std::string_view trace_line) {
  Frame f;
  f.type = FrameType::kQuery;
  f.payload.assign(trace_line.begin(), trace_line.end());
  return f;
}

Frame MakeQueryAtFrame(uint64_t seq, std::string_view trace_line) {
  Frame f;
  f.type = FrameType::kQueryAt;
  AppendU64(f.payload, seq);
  f.payload.insert(f.payload.end(), trace_line.begin(), trace_line.end());
  return f;
}

Frame MakeHelloFrame(uint32_t version) {
  Frame f;
  f.type = FrameType::kHello;
  AppendU32(f.payload, version);
  return f;
}

Frame MakeHelloReplyFrame(uint32_t version) {
  Frame f;
  f.type = FrameType::kHelloReply;
  AppendU32(f.payload, version);
  return f;
}

Frame MakeQueryReplyFrame(const QueryReply& reply) {
  Frame f;
  f.type = FrameType::kQueryReply;
  AppendU64(f.payload, reply.accesses);
  AppendU64(f.payload, reply.hits);
  AppendU64(f.payload, reply.bypasses);
  AppendU64(f.payload, reply.loads);
  AppendU64(f.payload, reply.evictions);
  AppendU64(f.payload, reply.degraded);
  AppendF64(f.payload, reply.served_cost);
  AppendF64(f.payload, reply.bypass_cost);
  AppendF64(f.payload, reply.fetch_cost);
  AppendF64(f.payload, reply.degraded_cost);
  return f;
}

Frame MakeStatsReplyFrame(const StatsReply& reply) {
  Frame f;
  f.type = FrameType::kStatsReply;
  AppendU64(f.payload, reply.queries);
  AppendU64(f.payload, reply.accesses);
  AppendU64(f.payload, reply.hits);
  AppendU64(f.payload, reply.bypasses);
  AppendU64(f.payload, reply.loads);
  AppendU64(f.payload, reply.evictions);
  AppendU64(f.payload, reply.degraded_accesses);
  AppendU64(f.payload, reply.retries);
  AppendU64(f.payload, reply.reconnects);
  AppendF64(f.payload, reply.served_cost);
  AppendF64(f.payload, reply.bypass_cost);
  AppendF64(f.payload, reply.fetch_cost);
  AppendF64(f.payload, reply.degraded_cost);
  return f;
}

Frame MakeErrorFrame(const Status& status) {
  return MakeErrorFrame(WireCodeForStatus(status.code()), status.message());
}

Frame MakeErrorFrame(WireCode code, std::string_view message) {
  Frame f;
  f.type = FrameType::kError;
  f.payload.push_back(static_cast<uint8_t>(code));
  f.payload.insert(f.payload.end(), message.begin(), message.end());
  return f;
}

Result<FetchRequest> ParseFetchRequest(const Frame& frame) {
  if (frame.type != FrameType::kFetch) {
    return Status::InvalidArgument("not a fetch frame");
  }
  PayloadReader r(frame.payload);
  FetchRequest req;
  BYC_ASSIGN_OR_RETURN(req.table, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.column, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.size_bytes, r.ReadU64());
  if (r.remaining() != 0) return Status::ParseError("fetch payload too long");
  return req;
}

Result<YieldRequest> ParseYieldRequest(const Frame& frame) {
  if (frame.type != FrameType::kYield) {
    return Status::InvalidArgument("not a yield frame");
  }
  PayloadReader r(frame.payload);
  YieldRequest req;
  BYC_ASSIGN_OR_RETURN(req.table, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.column, r.ReadI32());
  BYC_ASSIGN_OR_RETURN(req.yield_bytes, r.ReadF64());
  if (r.remaining() != 0) return Status::ParseError("yield payload too long");
  return req;
}

Result<QueryReply> ParseQueryReply(const Frame& frame) {
  if (frame.type != FrameType::kQueryReply) {
    return Status::InvalidArgument("not a query reply");
  }
  PayloadReader r(frame.payload);
  QueryReply reply;
  BYC_ASSIGN_OR_RETURN(reply.accesses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.hits, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.bypasses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.loads, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.evictions, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.degraded, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.served_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.bypass_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.fetch_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.degraded_cost, r.ReadF64());
  if (r.remaining() != 0) {
    return Status::ParseError("query reply payload too long");
  }
  return reply;
}

Result<StatsReply> ParseStatsReply(const Frame& frame) {
  if (frame.type != FrameType::kStatsReply) {
    return Status::InvalidArgument("not a stats reply");
  }
  PayloadReader r(frame.payload);
  StatsReply reply;
  BYC_ASSIGN_OR_RETURN(reply.queries, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.accesses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.hits, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.bypasses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.loads, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.evictions, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.degraded_accesses, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.retries, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.reconnects, r.ReadU64());
  BYC_ASSIGN_OR_RETURN(reply.served_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.bypass_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.fetch_cost, r.ReadF64());
  BYC_ASSIGN_OR_RETURN(reply.degraded_cost, r.ReadF64());
  if (r.remaining() != 0) {
    return Status::ParseError("stats reply payload too long");
  }
  return reply;
}

Status ParseErrorFrame(const Frame& frame) {
  if (frame.type != FrameType::kError || frame.payload.empty()) {
    return Status::Internal("malformed error frame");
  }
  std::string msg(reinterpret_cast<const char*>(frame.payload.data() + 1),
                  frame.payload.size() - 1);
  return Status(StatusCodeForWire(ErrorFrameCode(frame)), std::move(msg));
}

WireCode ErrorFrameCode(const Frame& frame) {
  if (frame.type != FrameType::kError || frame.payload.empty()) {
    return WireCode::kUnspecified;
  }
  // Round-trip through the name table: any byte a current peer can name
  // comes back unchanged; bytes from a newer (or hostile) peer collapse
  // to kUnspecified instead of escaping the enum's domain.
  WireCode code = static_cast<WireCode>(frame.payload[0]);
  return WireCodeName(code) == "?" ? WireCode::kUnspecified : code;
}

Result<SequencedQuery> ParseQueryAt(const Frame& frame) {
  if (frame.type != FrameType::kQueryAt) {
    return Status::InvalidArgument("not a kQueryAt frame");
  }
  PayloadReader r(frame.payload);
  SequencedQuery query;
  BYC_ASSIGN_OR_RETURN(query.seq, r.ReadU64());
  query.trace_line = r.ReadText();
  return query;
}

Result<uint32_t> ParseHello(const Frame& frame) {
  if (frame.type != FrameType::kHello &&
      frame.type != FrameType::kHelloReply) {
    return Status::InvalidArgument("not a hello frame");
  }
  PayloadReader r(frame.payload);
  uint32_t version = 0;
  BYC_ASSIGN_OR_RETURN(version, r.ReadU32());
  if (r.remaining() != 0) return Status::ParseError("hello payload too long");
  return version;
}

Status WriteFrame(Socket& sock, const Frame& frame, Deadline deadline) {
  BYC_CHECK_LE(frame.payload.size(), kMaxPayload);
  uint8_t header[5];
  uint32_t len = static_cast<uint32_t>(frame.payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(len >> (8 * i));
  }
  header[4] = static_cast<uint8_t>(frame.type);
  BYC_RETURN_IF_ERROR(sock.SendAll(header, sizeof(header), deadline));
  if (!frame.payload.empty()) {
    BYC_RETURN_IF_ERROR(
        sock.SendAll(frame.payload.data(), frame.payload.size(), deadline));
  }
  return Status::OK();
}

Result<Frame> ReadFrame(Socket& sock, Deadline deadline) {
  uint8_t header[5];
  BYC_RETURN_IF_ERROR(sock.RecvAll(header, sizeof(header), deadline));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxPayload) {
    return Status::InvalidArgument("oversized frame: " + std::to_string(len) +
                                   " bytes exceeds cap " +
                                   std::to_string(kMaxPayload));
  }
  if (!KnownFrameType(header[4])) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(header[4]));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(len);
  if (len > 0) {
    BYC_RETURN_IF_ERROR(sock.RecvAll(frame.payload.data(), len, deadline));
  }
  return frame;
}

}  // namespace byc::service
