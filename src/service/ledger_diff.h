#ifndef BYC_SERVICE_LEDGER_DIFF_H_
#define BYC_SERVICE_LEDGER_DIFF_H_

// Typed ledger comparison and formatting, shared by every harness that
// asserts the repo's headline invariant (resumed / merged / replayed
// ledgers byte-identical to a reference). Counters compare exactly; the
// cost doubles compare BITWISE — the claim is identity, not closeness —
// and every formatted double uses %.17g, which round-trips a binary64
// exactly, so two files of FormatLedgerLine output can be diffed with
// cmp.

#include <cstdio>
#include <string>
#include <vector>

#include "service/wire.h"

namespace byc::service {

/// One field's disagreement between two ledgers, pre-formatted (%.17g
/// for the cost doubles).
struct LedgerFieldDiff {
  const char* field = "";
  std::string want;
  std::string got;
};

/// The result of DiffLedgers: empty `diffs` means every compared field
/// matched (doubles bitwise).
struct LedgerDelta {
  std::vector<LedgerFieldDiff> diffs;
  int checked = 0;

  bool identical() const { return diffs.empty(); }

  /// Prints one "  MISMATCH <field> want=... got=..." line per diff.
  void Print(std::FILE* out = stdout) const;
};

/// Field-by-field diff of two service ledgers. Compares the seven
/// conservation counters and the four cost doubles; retries/reconnects
/// are deliberately excluded (they describe the channel weather of one
/// run, not what the policy decided).
LedgerDelta DiffLedgers(const StatsReply& want, const StatsReply& got);

/// Field-wise sum of `delta` into `into` (every counter and every cost
/// double). Callers fold per-shard ledgers in ascending shard order —
/// the same association the RouterServer uses — so a bench-side merge
/// reproduces the router's merged kStats bytes.
void AccumulateStats(StatsReply& into, const StatsReply& delta);

/// The canonical one-line ledger text of the --ledger diff files:
///
///   case=<name> clients=<n> batch=<b> queries=... D_C=<%.17g> ...
///
/// Deterministic bytes: a tracing-on run's file must compare bitwise
/// equal to a tracing-off run's.
std::string FormatLedgerLine(const std::string& case_name, size_t clients,
                             int batch, const StatsReply& ledger);

}  // namespace byc::service

#endif  // BYC_SERVICE_LEDGER_DIFF_H_
