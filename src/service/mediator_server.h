#ifndef BYC_SERVICE_MEDIATOR_SERVER_H_
#define BYC_SERVICE_MEDIATOR_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/policy.h"
#include "core/policy_factory.h"
#include "federation/mediator.h"
#include "service/config.h"
#include "service/socket.h"
#include "service/wire.h"

namespace byc::telemetry {
class MetricsRegistry;
}  // namespace byc::telemetry

namespace byc::service {

/// Network address of one backend site.
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// The SkyQuery-style mediation middleware as a network service: embeds
/// the federation::Mediator (query splitting/decomposition) and one
/// cache policy behind the wire protocol. Clients stream kQuery frames;
/// for each decomposed access the mediator either serves from its
/// collocated cache (LAN, free), asks the owning site to ship a bypassed
/// result (kYield), or loads the object (kFetch) and serves locally —
/// exactly the three flows of the paper's Fig. 1, now with a kernel
/// socket boundary, per-request deadlines, and capped-backoff retries in
/// between.
///
/// Accounting invariant: with healthy backends, the ledger (stats()) is
/// byte-identical to sim::Simulator on the same trace/policy/capacity —
/// decisions come from the same policy code in the same order, and WAN
/// costs are priced by multiplying the bytes each backend acknowledges
/// by the federation's net::CostModel per-byte link cost, the same
/// product the decomposed Access carries. Fault degradation: when a
/// backend stays unreachable past the retry budget, the lost traffic
/// goes to degraded_accesses/degraded_cost instead of D_S/D_L — the WAN
/// ledger never charges bytes that did not cross the network. Policy
/// state keeps following its own decisions (a failed load stays
/// resident, as if repaired on recovery), so cache behavior is
/// fault-schedule-independent and healthy-site accounting is unchanged.
///
/// Concurrency model (DESIGN.md §8): an accept loop dispatches each
/// client connection as a session onto a ThreadPool sized to
/// config.max_sessions; a connect beyond the cap is answered with a
/// typed kError{kBusy} and closed. Sessions read ahead at most
/// config.max_inflight frames (excess stays in kernel buffers — TCP
/// backpressure), decompose queries concurrently, and then pass through
/// ONE serialized admission stage: the policy decision path and ledger
/// are inherently sequential (the paper's replay semantics), so every
/// query is admitted under a single mutex, stamped queries (kQueryAt)
/// strictly in their global sequence order. That keeps the aggregate
/// ledger of any N-client interleaving bitwise-equal to a single-client
/// replay of the same trace. A sequence gap older than
/// config.reorder_timeout_ms (an abandoned client) is skipped by the
/// oldest waiter so one disconnect cannot wedge the service. Stop()
/// drains gracefully: sessions finish the requests they have read,
/// reply, and exit.
class MediatorServer {
 public:
  struct Options {
    /// Service knobs (deadlines, retries, session/backpressure caps).
    /// The decomposition granularity comes from PolicyConfig.
    ServiceConfig config;
    /// Optional run metrics (svc.* counters / histograms). Must outlive
    /// the server.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  /// `backends[s]` is the address of site s; must cover every site of
  /// the federation. The policy (and the decomposition granularity) is
  /// built fresh from `policy_config`.
  MediatorServer(const federation::Federation* federation,
                 const core::PolicyConfig& policy_config,
                 std::vector<BackendAddress> backends, Options options);
  ~MediatorServer() { Stop(); }

  MediatorServer(const MediatorServer&) = delete;
  MediatorServer& operator=(const MediatorServer&) = delete;

  /// Binds the listener and starts the accept thread + session pool.
  Status Start();

  /// Graceful drain: stops accepting, lets live sessions answer every
  /// frame they have already read, closes backend channels, joins.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  /// Snapshot of the server-side ledger (also served over the wire as
  /// kStats -> kStatsReply).
  StatsReply stats() const;

  /// Sessions accepted / rejected (kBusy) since Start().
  uint64_t sessions_served() const {
    return sessions_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_rejected() const {
    return sessions_rejected_.load(std::memory_order_relaxed);
  }
  /// Sequence gaps skipped by the ordered-admission stage (abandoned
  /// stamped queries, e.g. mid-replay client disconnects).
  uint64_t admission_skips() const {
    return admission_skips_.load(std::memory_order_relaxed);
  }

 private:
  /// One pooled connection to a backend site.
  struct Channel {
    BackendAddress addr;
    Socket sock;
    /// True once a connect has ever succeeded; later connects count as
    /// reconnects in the ledger.
    bool connected_once = false;
  };

  /// Accept loop: admits up to max_sessions concurrent sessions, answers
  /// the rest with kError{kBusy}.
  void AcceptLoopOn(Listener& listener);
  /// Serves one client session until it closes, poisons itself, or the
  /// server drains.
  void ServeSession(Socket& conn);
  /// Dispatches one well-formed frame; returns the reply and sets
  /// `close_after` for replies that poison the connection (version
  /// mismatch).
  Frame HandleFrame(const Frame& request, bool& close_after);
  /// Handles one query (stamped with a global sequence number when it
  /// arrived as kQueryAt); returns kQueryReply or kError.
  Frame HandleQuery(std::string_view line, std::optional<uint64_t> seq);
  /// Runs one decomposed access through the policy and the network,
  /// updating the ledger and `delta`. Caller holds mu_.
  void ProcessAccess(const core::Access& access, QueryReply& delta);

  /// The serialized admission stage: acquires mu_, and for stamped
  /// queries blocks until `seq` is next in the global order (or the
  /// reorder timeout elapses and this is the oldest waiter, which skips
  /// the gap). Unstamped queries are admitted in arrival order.
  std::unique_lock<std::mutex> AdmitOrdered(std::optional<uint64_t> seq);
  /// Releases the admission stage, advancing the order past `seq`.
  void FinishOrdered(std::optional<uint64_t> seq,
                     std::unique_lock<std::mutex> lock);

  /// One backend round trip with reconnect + capped-backoff retries.
  /// Semantic errors from the backend (kError frames) come back as their
  /// typed Status and are not retried; transport failures are retried up
  /// to the budget and end as Unavailable/DeadlineExceeded.
  Result<Frame> CallBackend(int site, const Frame& request);

  const federation::Federation* federation_;
  federation::Mediator mediator_;
  core::PolicyConfig policy_config_;
  std::vector<BackendAddress> backend_addrs_;
  Options options_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> session_pool_;

  std::atomic<int> live_sessions_{0};
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> admission_skips_{0};

  /// Everything below is the serialized admission core: the policy, the
  /// backend channels, and the ledger, guarded by one mutex so the
  /// decision path stays a total order.
  mutable std::mutex mu_;
  std::condition_variable admission_cv_;
  /// Next global sequence number the ordered stage admits.
  uint64_t admission_next_ = 0;
  /// Stamped queries currently waiting for their turn.
  std::multiset<uint64_t> admission_waiting_;
  std::unique_ptr<core::CachePolicy> policy_;
  std::vector<Channel> channels_;
  Rng retry_rng_{0xB1A5CA5E};
  StatsReply ledger_;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_MEDIATOR_SERVER_H_
