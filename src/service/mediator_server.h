#ifndef BYC_SERVICE_MEDIATOR_SERVER_H_
#define BYC_SERVICE_MEDIATOR_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/policy.h"
#include "core/policy_factory.h"
#include "federation/mediator.h"
#include "service/config.h"
#include "service/socket.h"
#include "service/wire.h"

namespace byc::telemetry {
class MetricsRegistry;
}  // namespace byc::telemetry

namespace byc::service {

/// Network address of one backend site.
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// The SkyQuery-style mediation middleware as a network service: embeds
/// the federation::Mediator (query splitting/decomposition) and one
/// cache policy behind the wire protocol. Clients stream kQuery frames;
/// for each decomposed access the mediator either serves from its
/// collocated cache (LAN, free), asks the owning site to ship a bypassed
/// result (kYield), or loads the object (kFetch) and serves locally —
/// exactly the three flows of the paper's Fig. 1, now with a kernel
/// socket boundary, per-request deadlines, and capped-backoff retries in
/// between.
///
/// Accounting invariant: with healthy backends, the ledger (stats()) is
/// byte-identical to sim::Simulator on the same trace/policy/capacity —
/// decisions come from the same policy code in the same order, and WAN
/// costs are priced by multiplying the bytes each backend acknowledges
/// by the federation's net::CostModel per-byte link cost, the same
/// product the decomposed Access carries. Fault degradation: when a
/// backend stays unreachable past the retry budget, the lost traffic
/// goes to degraded_accesses/degraded_cost instead of D_S/D_L — the WAN
/// ledger never charges bytes that did not cross the network. Policy
/// state keeps following its own decisions (a failed load stays
/// resident, as if repaired on recovery), so cache behavior is
/// fault-schedule-independent and healthy-site accounting is unchanged.
///
/// Connections are served one at a time (accept -> drain -> next): the
/// policy is inherently sequential — the paper's replay semantics — so a
/// single service loop keeps wire replays bit-comparable to the
/// simulator.
class MediatorServer {
 public:
  struct Options {
    catalog::Granularity granularity = catalog::Granularity::kTable;
    ServiceConfig config;
    /// Optional run metrics (svc.* counters / histograms). Must outlive
    /// the server.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  /// `backends[s]` is the address of site s; must cover every site of
  /// the federation. The policy is built fresh from `policy_config`.
  MediatorServer(const federation::Federation* federation,
                 const core::PolicyConfig& policy_config,
                 std::vector<BackendAddress> backends, Options options);
  ~MediatorServer() { Stop(); }

  MediatorServer(const MediatorServer&) = delete;
  MediatorServer& operator=(const MediatorServer&) = delete;

  /// Binds the listener and starts the service thread.
  Status Start();

  /// Stops serving, closes backend channels, joins. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  /// Snapshot of the server-side ledger (also served over the wire as
  /// kStats -> kStatsReply).
  StatsReply stats() const;

 private:
  /// One pooled connection to a backend site.
  struct Channel {
    BackendAddress addr;
    Socket sock;
    /// True once a connect has ever succeeded; later connects count as
    /// reconnects in the ledger.
    bool connected_once = false;
  };

  void ServeLoopOn(Listener& listener);
  /// Serves one client connection until it closes or poisons itself.
  void ServeConnection(Socket& conn);
  /// Handles one kQuery frame; returns the reply (kQueryReply or
  /// kError).
  Frame HandleQuery(const Frame& request);
  /// Runs one decomposed access through the policy and the network,
  /// updating the ledger and `delta`.
  void ProcessAccess(const core::Access& access, QueryReply& delta);

  /// One backend round trip with reconnect + capped-backoff retries.
  /// Semantic errors from the backend (kError frames) come back as their
  /// typed Status and are not retried; transport failures are retried up
  /// to the budget and end as Unavailable/DeadlineExceeded.
  Result<Frame> CallBackend(int site, const Frame& request);

  const federation::Federation* federation_;
  federation::Mediator mediator_;
  core::PolicyConfig policy_config_;
  std::vector<BackendAddress> backend_addrs_;
  Options options_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};
  std::thread serve_thread_;

  /// Everything below is touched by the service thread and by stats()
  /// readers.
  mutable std::mutex mu_;
  std::unique_ptr<core::CachePolicy> policy_;
  std::vector<Channel> channels_;
  Rng retry_rng_{0xB1A5CA5E};
  StatsReply ledger_;

  /// Client-connection fd for cross-thread shutdown in Stop().
  std::mutex conn_mu_;
  int live_conn_fd_ = -1;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_MEDIATOR_SERVER_H_
