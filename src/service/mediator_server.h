#ifndef BYC_SERVICE_MEDIATOR_SERVER_H_
#define BYC_SERVICE_MEDIATOR_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/policy.h"
#include "core/policy_factory.h"
#include "federation/mediator.h"
#include "service/config.h"
#include "service/fault.h"
#include "service/reactor.h"
#include "service/socket.h"
#include "service/wire.h"

namespace byc::shard {
class ShardMap;
}  // namespace byc::shard

namespace byc::telemetry {
class Counter;
class MetricsRegistry;
class ShardedHistogram;
class SlowQueryLog;
}  // namespace byc::telemetry

namespace byc::service {

/// Network address of one backend site.
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// The SkyQuery-style mediation middleware as a network service: embeds
/// the federation::Mediator (query splitting/decomposition) and one
/// cache policy behind the wire protocol. Clients stream kQuery frames;
/// for each decomposed access the mediator either serves from its
/// collocated cache (LAN, free), asks the owning site to ship a bypassed
/// result (kYield), or loads the object (kFetch) and serves locally —
/// exactly the three flows of the paper's Fig. 1, now with a kernel
/// socket boundary, per-request deadlines, and capped-backoff retries in
/// between.
///
/// Accounting invariant: with healthy backends, the ledger (stats()) is
/// byte-identical to sim::Simulator on the same trace/policy/capacity —
/// decisions come from the same policy code in the same order, and WAN
/// costs are priced by multiplying the bytes each backend acknowledges
/// by the federation's net::CostModel per-byte link cost, the same
/// product the decomposed Access carries. Fault degradation: when a
/// backend stays unreachable past the retry budget, the lost traffic
/// goes to degraded_accesses/degraded_cost instead of D_S/D_L — the WAN
/// ledger never charges bytes that did not cross the network. Policy
/// state keeps following its own decisions (a failed load stays
/// resident, as if repaired on recovery), so cache behavior is
/// fault-schedule-independent and healthy-site accounting is unchanged.
///
/// Concurrency model (DESIGN.md §9): connections are multiplexed by an
/// epoll Reactor whose config.io_threads I/O threads do only wire work —
/// decode frames in place, parse + decompose queries (the decomposition
/// memo has its own lock), and enqueue the result. A connect beyond
/// config.max_sessions is answered with a typed kError{kBusy} and
/// closed; admitted connections read ahead at most config.max_inflight
/// frames (excess stays in kernel buffers — TCP backpressure). The
/// policy decision path and ledger are inherently sequential (the
/// paper's replay semantics), so ONE dedicated admission thread consumes
/// the queue: unstamped queries in arrival order, stamped queries
/// (kQueryAt, and every item of a kQueryBatch) strictly in their global
/// sequence order. That keeps the aggregate ledger of any N-client
/// interleaving bitwise-equal to a single-client replay of the same
/// trace. A sequence gap older than config.reorder_timeout_ms (an
/// abandoned client) is skipped so one disconnect cannot wedge the
/// service. Replies complete their reactor slots from the admission
/// thread and flush in per-connection FIFO order. Stop() drains
/// gracefully: frame delivery stops, the admission thread finishes every
/// enqueued query, replies flush, then everything joins.
class MediatorServer {
 public:
  struct Options {
    /// Service knobs (deadlines, retries, session/backpressure caps,
    /// reactor threads). The decomposition granularity comes from
    /// PolicyConfig.
    ServiceConfig config;
    /// Optional run metrics (svc.* counters / histograms). Must outlive
    /// the server. Also the source of the kMetricsDump admin reply: a
    /// mediator without a registry answers that frame with a typed
    /// kError{kFailedPrecondition}.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Optional slow-query sink (threshold config.slow_ms; see
    /// telemetry::SlowQueryLog). Must outlive the server. Recording is
    /// a bounded in-memory push on the admission thread — the log's own
    /// writer thread does the serialization, so a slow sink never
    /// stalls admission.
    telemetry::SlowQueryLog* slow_log = nullptr;
    /// Optional fault plan (tests/benches); the mediator consults only
    /// the snapshot-path switches. Must outlive the server.
    FaultPlan* faults = nullptr;
    /// Sharded deployment (shard/router_server.h): when shard_map is
    /// set, this mediator serves shard `shard_id` of that map. The
    /// router forwards whole query lines; after decomposition this
    /// mediator keeps only the accesses the map assigns to its shard
    /// (in decomposition order), so each access of the fleet is
    /// ledgered by exactly one shard and each shard's ledger stays a
    /// bitwise-reproducible total order. The map must outlive the
    /// server; -1/nullptr (the default) is the unsharded deployment.
    int shard_id = -1;
    const shard::ShardMap* shard_map = nullptr;
  };

  /// `backends[s]` is the address of site s; must cover every site of
  /// the federation. The policy (and the decomposition granularity) is
  /// built fresh from `policy_config`.
  MediatorServer(const federation::Federation* federation,
                 const core::PolicyConfig& policy_config,
                 std::vector<BackendAddress> backends, Options options);
  ~MediatorServer() { Stop(); }

  MediatorServer(const MediatorServer&) = delete;
  MediatorServer& operator=(const MediatorServer&) = delete;

  /// Binds the listener and starts the reactor + admission thread.
  Status Start();

  /// Graceful drain: stops accepting and frame delivery, lets the
  /// admission thread answer every query already enqueued, flushes the
  /// replies, closes backend channels, joins. A query an I/O thread
  /// slipped into the queue after the admission loop exited (the drain
  /// race) is answered with a typed Unavailable, not an abrupt close.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  /// Snapshot of the server-side ledger (also served over the wire as
  /// kStats -> kStatsReply).
  StatsReply stats() const;

  /// Sessions accepted / rejected (kBusy) since Start().
  uint64_t sessions_served() const {
    return sessions_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t sessions_rejected() const {
    return sessions_rejected_.load(std::memory_order_relaxed);
  }
  /// Sequence gaps skipped by the ordered-admission stage (abandoned
  /// stamped queries, e.g. mid-replay client disconnects).
  uint64_t admission_skips() const {
    return admission_skips_.load(std::memory_order_relaxed);
  }

  /// Persistence observability (0 when snapshot_dir is unset).
  uint64_t snapshot_writes() const {
    return snapshot_writes_.load(std::memory_order_relaxed);
  }
  uint64_t snapshot_restores() const {
    return snapshot_restores_.load(std::memory_order_relaxed);
  }
  uint64_t snapshot_restore_failures() const {
    return snapshot_restore_failures_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// One pooled connection to a backend site.
  struct Channel {
    BackendAddress addr;
    Socket sock;
    /// True once a connect has ever succeeded; later connects count as
    /// reconnects in the ledger.
    bool connected_once = false;
  };

  /// Reply-side state shared by every query of one kQueryBatch frame:
  /// the slot completes once, when the last item finishes.
  struct BatchState {
    ReplyTicket ticket;
    std::vector<QueryReply> deltas;
    /// First non-OK item status; a batch with any bad line is answered
    /// with that typed kError (items after it still process and are
    /// ledgered — they were admitted).
    Status error = Status::OK();
    size_t remaining = 0;
  };

  /// One query waiting for the serialized admission stage, already
  /// parsed and decomposed on an I/O thread.
  struct AdmissionEntry {
    /// Control entry (kSnapshot frame or the periodic checkpointer): no
    /// query — the admission thread writes a snapshot when this entry's
    /// turn comes, so the cut always lands between queries.
    bool snapshot_request = false;
    std::optional<uint64_t> seq;
    /// Non-OK: the trace line did not parse. The entry still holds its
    /// slot in the total order (so successors are not stalled behind a
    /// permanent gap) but only an error reply comes back.
    Status parse_error = Status::OK();
    std::vector<core::Access> accesses;
    /// Exactly one of ticket/batch is set.
    ReplyTicket ticket;
    std::shared_ptr<BatchState> batch;
    size_t batch_index = 0;
    Clock::time_point enqueued{};
    /// Request trace id from the wire trace extension (kNoTraceId:
    /// untraced); propagated onto this query's backend fetch/yield
    /// frames.
    uint64_t trace_id = 0;
    /// I/O-thread parse + decompose time (only measured when stage
    /// timings are on).
    double decode_us = 0;
  };

  /// Reactor frame callback (I/O threads): answers ping/hello/stats/
  /// metrics-dump in place, enqueues queries for the admission thread.
  void OnFrame(FrameType type, const uint8_t* payload, size_t payload_len,
               ReplyTicket ticket);
  /// Parses + decomposes one query line and enqueues it.
  void EnqueueQuery(std::optional<uint64_t> seq, std::string_view line,
                    uint64_t trace_id, ReplyTicket ticket,
                    std::shared_ptr<BatchState> batch, size_t batch_index);
  /// Serves one kMetricsDump on an I/O thread: refreshes the live
  /// gauges, snapshots the registry, replies with the snapshot JSON.
  /// Same lock discipline as kStats — brief takes of qmu_ and the
  /// per-metric locks, never anything the admission thread holds across
  /// a backend round trip.
  void HandleMetricsDump(ReplyTicket& ticket);
  /// Publishes the point-in-time gauges (admission queue depth, oldest
  /// waiter age, reactor connection state, slow-log counters) into the
  /// registry. No-op without a registry.
  void RefreshLiveGauges();
  /// The single ordering point: consumes the admission queue, runs each
  /// query through the policy and the ledger, completes reply slots.
  void AdmissionLoop();
  void ProcessEntry(AdmissionEntry& entry);
  /// Runs one decomposed access through the policy and the network,
  /// updating the ledger and `delta`. Admission thread only; ledger
  /// mutations take mu_ briefly, never across a backend round trip.
  void ProcessAccess(const core::Access& access, QueryReply& delta);

  /// <snapshot_dir>/mediator.snap (snapshot_dir must be nonempty).
  std::string SnapshotPath() const;
  /// Serializes config + policy + ledger + admission cursor and writes
  /// the snapshot file atomically (fault plan applied). Runs on the
  /// admission thread between queries, or on the stopping thread after
  /// the admission join — the two owners of policy_. Returns the file
  /// size written.
  Result<uint64_t> WriteSnapshotNow();
  /// Loads SnapshotPath() into the freshly built policy/ledger. NotFound
  /// means no snapshot (clean cold start); any other error means the
  /// file was damaged and the caller must discard partial state.
  Status TryRestoreSnapshot();
  /// Periodic checkpointer: queues a snapshot control entry through the
  /// admission stage every config.snapshot_every_ms.
  void CheckpointLoop();

  /// One backend round trip with reconnect + capped-backoff retries.
  /// Semantic errors from the backend (kError frames) come back as their
  /// typed Status and are not retried; transport failures are retried up
  /// to the budget and end as Unavailable/DeadlineExceeded.
  Result<Frame> CallBackend(int site, const Frame& request);

  const federation::Federation* federation_;
  federation::Mediator mediator_;
  core::PolicyConfig policy_config_;
  std::vector<BackendAddress> backend_addrs_;
  Options options_;
  uint16_t port_ = 0;

  /// Per-stage instrumentation, resolved once at Start() (registry
  /// lookups lock; the per-query path must not). All null when
  /// uninstrumented — and then no stage Clock::now() calls happen
  /// either, keeping the untraced hot path identical to before.
  struct StageMetrics {
    telemetry::ShardedHistogram* decode_us = nullptr;
    telemetry::ShardedHistogram* queue_ms = nullptr;
    telemetry::ShardedHistogram* backend_ms = nullptr;
    telemetry::Counter* traced_queries = nullptr;
    telemetry::Counter* metrics_dumps = nullptr;
  };
  StageMetrics stage_;
  /// Stage timing is also needed (without a registry) when a slow log
  /// is attached.
  bool stage_timing_ = false;

  /// Scratch for the entry being processed (admission thread only, like
  /// policy_/channels_): summed backend round-trip ms and the trace id
  /// to propagate on backend frames.
  double entry_backend_ms_ = 0;
  uint64_t entry_trace_id_ = 0;

  std::atomic<bool> stop_{true};
  std::atomic<bool> running_{false};
  std::unique_ptr<Reactor> reactor_;
  std::thread admission_thread_;
  std::thread checkpoint_thread_;

  std::atomic<int> live_sessions_{0};
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> admission_skips_{0};
  std::atomic<uint64_t> snapshot_writes_{0};
  std::atomic<uint64_t> snapshot_restores_{0};
  std::atomic<uint64_t> snapshot_restore_failures_{0};

  /// Admission queue: filled by I/O threads, drained by the admission
  /// thread. Stamped entries are keyed by sequence number (multimap:
  /// duplicates are possible and admitted immediately once their turn
  /// has passed).
  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<AdmissionEntry> unstamped_;
  std::multimap<uint64_t, AdmissionEntry> stamped_;
  /// Next global sequence number the ordered stage admits (qmu_).
  uint64_t admission_next_ = 0;
  bool q_draining_ = false;

  /// The serialized decision core. The policy, channels, and rng are
  /// owned by the admission thread (Start sets them up before the
  /// thread launches; Stop touches them only after joining it) and need
  /// no lock. mu_ guards only the ledger, and the admission thread
  /// holds it only for the individual increments — never across a
  /// backend round trip — so a kStats frame answered on an I/O thread
  /// waits microseconds even while a query is burning its retry budget
  /// against a dead backend. A mid-query snapshot may see a partially
  /// applied query; the ledger is exact whenever the queue is quiet
  /// (which is when the bench and the equality tests read it).
  mutable std::mutex mu_;
  std::unique_ptr<core::CachePolicy> policy_;
  std::vector<Channel> channels_;
  Rng retry_rng_{0xB1A5CA5E};
  StatsReply ledger_;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_MEDIATOR_SERVER_H_
