#ifndef BYC_SERVICE_FAULT_H_
#define BYC_SERVICE_FAULT_H_

#include <atomic>
#include <cstdint>

namespace byc::service {

/// Runtime fault switches, all safe to flip from any thread. One plan
/// can be shared by several servers; each consults only the switches on
/// its own path (backends apply the transport faults, the mediator
/// applies the snapshot-path faults).
struct FaultPlan {
  /// Accepted connections are closed immediately (connection refused at
  /// the protocol level).
  std::atomic<bool> refuse{false};
  /// Requests are read but never answered; the connection is closed
  /// instead (lost reply).
  std::atomic<bool> drop{false};
  /// Milliseconds to sleep before every reply (slow backend; drives the
  /// mediator into its deadline).
  std::atomic<int> delay_ms{0};

  /// ---- Snapshot-path faults (mediator persistence) -------------------
  ///
  /// Each models a failure between the snapshot being written and being
  /// loaded: the write itself still reports success, and the damage is
  /// what the next Start() finds on disk. The loader must answer with a
  /// typed error and the mediator with a clean cold start — never an
  /// abort.

  /// >= 0: after the atomic write, the snapshot file is truncated to
  /// this many bytes (a torn write / lost tail). -1 off.
  std::atomic<int64_t> snapshot_truncate{-1};
  /// >= 0: after the atomic write, this bit (file-wide bit index, capped
  /// to the file) is flipped in place (media corruption; trips a section
  /// or footer CRC). -1 off.
  std::atomic<int64_t> snapshot_flip_bit{-1};
  /// Crash between the temp-file write and the rename: the temp file is
  /// written durably but never renamed, so the previous snapshot (if
  /// any) must stay the loadable one.
  std::atomic<bool> snapshot_skip_rename{false};
};

}  // namespace byc::service

#endif  // BYC_SERVICE_FAULT_H_
