#ifndef BYC_SERVICE_SOCKET_H_
#define BYC_SERVICE_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

struct iovec;

namespace byc::service {

/// An absolute point in time a blocking socket operation must finish by.
/// All service-layer I/O is deadline-bounded: a peer that stalls turns
/// into a typed DeadlineExceeded error, never a hang — the property the
/// degraded-mode tests assert.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline `ms` milliseconds from now.
  static Deadline After(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  /// A deadline that never expires (accept loops use poll timeouts plus a
  /// stop flag instead).
  static Deadline Infinite() { return Deadline(Clock::time_point::max()); }

  bool expired() const {
    return when_ != Clock::time_point::max() && Clock::now() >= when_;
  }

  /// Remaining time as a poll(2) timeout: >= 0 ms, clamped into int
  /// range; -1 for an infinite deadline.
  int PollTimeoutMs() const;

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_;
};

/// RAII wrapper of one connected stream socket (non-blocking; all I/O
/// goes through poll with a Deadline). Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connects to host:port on the loopback/local network, bounded by
  /// `deadline`. Unreachable or refusing peers return Unavailable;
  /// expiry returns DeadlineExceeded.
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                Deadline deadline);

  /// Writes exactly `len` bytes. DeadlineExceeded on expiry, Unavailable
  /// on a peer reset/close mid-write.
  Status SendAll(const void* data, size_t len, Deadline deadline);

  /// Reads exactly `len` bytes. A clean EOF before the first byte is
  /// Unavailable with message "eof"; EOF mid-buffer is Unavailable
  /// ("short read"): the caller distinguishes idle close from a torn
  /// frame.
  Status RecvAll(void* data, size_t len, Deadline deadline);

  /// Nonblocking single read for reactor loops: returns the byte count
  /// actually read (>= 1), 0 when the socket has no data right now
  /// (EAGAIN), and Unavailable("eof") on a clean peer close. Never
  /// polls — the caller is already multiplexing readiness via epoll.
  Result<size_t> RecvSome(void* data, size_t cap);

  /// Nonblocking vectored write for reactor loops: one writev(2) call,
  /// returning the byte count accepted by the kernel (possibly short),
  /// or 0 when the send buffer is full (EAGAIN — caller arms EPOLLOUT).
  /// Unavailable on peer reset/close.
  Result<size_t> SendVec(const struct iovec* iov, int iovcnt);

  /// Waits until at least one byte is readable (or EOF is pending)
  /// without consuming it. DeadlineExceeded on expiry. Server loops idle
  /// on short WaitReadable timeouts so a stop flag is noticed promptly,
  /// then read whole frames under the real request deadline — an idle
  /// timeout can never desynchronize a half-read frame.
  Status WaitReadable(Deadline deadline);

  /// Half-closes both directions (wakes a peer blocked in RecvAll) —
  /// used by Stop()/Kill() paths to abort in-flight requests.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening loopback TCP socket plus Accept. Port 0 binds an
/// ephemeral port; port() reports the actual one.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&&) = delete;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`.
  Status Listen(uint16_t port);

  /// Accepts one connection, waiting at most `timeout_ms` (so accept
  /// loops can poll a stop flag). A timeout returns DeadlineExceeded;
  /// a closed listener returns Unavailable.
  Result<Socket> Accept(int timeout_ms);

  bool listening() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  /// Raw descriptor for readiness multiplexing (reactor epoll loops).
  int fd() const { return fd_; }

  /// Stops accepting: closes the listening socket; connects arriving
  /// afterwards are refused by the OS. A Listener belongs to its accept
  /// thread — cross-thread shutdown is signalled via a stop flag checked
  /// between short Accept timeouts, not by closing from outside.
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace byc::service

#endif  // BYC_SERVICE_SOCKET_H_
