#include "service/reactor.h"

#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace byc::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Bytes asked from the kernel per recv call once the parser wants more.
constexpr size_t kReadChunk = 64 * 1024;
/// Ready slots coalesced into one writev call.
constexpr int kMaxIov = 64;
/// Spare reply buffers kept per connection for reuse.
constexpr size_t kMaxSpare = 8;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

/// Per-connection state. The read buffer and parser cursor belong to the
/// owning I/O thread exclusively; everything the reply tickets touch
/// (the slot FIFO, spare pool, epoll interest) is guarded by mu.
struct ReactorConn {
  struct Slot {
    bool ready = false;
    bool close_after = false;
    std::vector<uint8_t> bytes;
    /// When the slot became ready (instrumented connections only):
    /// retire time minus this is the completion-to-wire flush latency.
    Clock::time_point completed{};
  };

  int fd = -1;
  int epfd = -1;
  Socket sock;
  Clock::time_point opened = Clock::now();
  size_t max_inflight = 4;
  size_t max_backlog = 1 << 20;
  /// Instrumentation resolved by the reactor at accept; all null when
  /// uninstrumented. The ticket paths (TakeBuffer/Complete) only have
  /// the connection, so the pointers ride on it.
  telemetry::ShardedHistogram* flush_ms_hist = nullptr;
  telemetry::Counter* spare_hits = nullptr;
  telemetry::Counter* spare_misses = nullptr;

  // --- owner-thread-only read state ---
  std::vector<uint8_t> rbuf;
  size_t rpos = 0;  ///< First unparsed byte.
  size_t rlen = 0;  ///< One past the last received byte.
  uint64_t frames_delivered = 0;

  std::mutex mu;
  // --- guarded by mu ---
  bool closed = false;
  /// Reading stopped for good: poisoned framing, peer EOF, or drain.
  bool no_more_reads = false;
  /// The parser stopped on backpressure with bytes possibly still
  /// buffered in rbuf. Sticky until the parser re-enters: the pause can
  /// lift on a completion thread between the park and the next flush,
  /// and recomputing "was paused" there would lose the resume — with the
  /// socket idle, level-triggered EPOLLIN alone never fires for bytes
  /// already in rbuf.
  bool reads_parked = false;
  /// Close once every slot has flushed (EOF/poison paths).
  bool close_when_drained = false;
  std::deque<Slot> slots;
  uint64_t slot_base = 0;     ///< Absolute id of slots.front().
  size_t pending_slots = 0;   ///< Slots delivered but not yet completed.
  size_t head_written = 0;    ///< Bytes of slots.front() already sent.
  size_t backlog_bytes = 0;   ///< Ready-but-unflushed reply bytes.
  std::vector<std::vector<uint8_t>> spare;
  uint32_t armed = 0;  ///< Events currently registered with epoll.

  /// Recomputes and registers the epoll interest set. Caller holds mu.
  void UpdateInterest() {
    if (closed) return;
    uint32_t want = 0;
    if (!no_more_reads && !ReadsPaused()) want |= EPOLLIN;
    if (!slots.empty() && slots.front().ready) want |= EPOLLOUT;
    if (want == armed) return;
    struct epoll_event ev;
    ::memset(&ev, 0, sizeof(ev));
    ev.events = want;
    ev.data.fd = fd;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
    armed = want;
  }

  /// True when reads should pause right now (backpressure). Caller
  /// holds mu.
  bool ReadsPaused() const {
    return pending_slots >= max_inflight || backlog_bytes > max_backlog;
  }
};

std::vector<uint8_t> ReplyTicket::TakeBuffer() {
  std::vector<uint8_t> buf;
  if (conn_ != nullptr) {
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(conn_->mu);
      if (!conn_->spare.empty()) {
        buf = std::move(conn_->spare.back());
        conn_->spare.pop_back();
        hit = true;
      }
    }
    if (conn_->spare_hits != nullptr) {
      (hit ? conn_->spare_hits : conn_->spare_misses)->Increment();
    }
  }
  buf.clear();
  return buf;
}

void ReplyTicket::Complete(std::vector<uint8_t> encoded, bool close_after) {
  if (conn_ == nullptr) return;
  std::lock_guard<std::mutex> lock(conn_->mu);
  ReactorConn& c = *conn_;
  if (c.closed || slot_ < c.slot_base) return;
  size_t index = static_cast<size_t>(slot_ - c.slot_base);
  if (index >= c.slots.size()) return;
  ReactorConn::Slot& slot = c.slots[index];
  if (slot.ready) return;  // Double completion: first one wins.
  slot.ready = true;
  slot.close_after = close_after;
  slot.bytes = std::move(encoded);
  if (c.flush_ms_hist != nullptr) slot.completed = Clock::now();
  c.backlog_bytes += slot.bytes.size();
  BYC_CHECK_GT(c.pending_slots, size_t{0});
  --c.pending_slots;
  if (close_after) c.no_more_reads = true;
  // Arming EPOLLOUT (the socket is almost always writable) wakes the
  // owning I/O thread, which flushes the ready prefix and re-arms reads
  // if backpressure just lifted. This is the only cross-thread signal a
  // completion needs — no timed polls, no extra pipes.
  c.UpdateInterest();
}

void ReplyTicket::Abandon() {
  // An empty ready slot with close_after: prior replies still flush in
  // order, then the connection closes without answering this request.
  Complete({}, /*close_after=*/true);
}

Reactor::Reactor(Options options, Callbacks callbacks)
    : options_(std::move(options)), callbacks_(std::move(callbacks)) {
  BYC_CHECK_GE(options_.io_threads, 1);
}

Reactor::~Reactor() { Stop(/*flush_pending=*/false); }

Status Reactor::Start(uint16_t port) {
  BYC_CHECK(!started_);
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics != nullptr) {
    wait_ms_hist_ = &options_.metrics->histogram("svc.reactor.wait_ms");
    events_per_wake_hist_ =
        &options_.metrics->histogram("svc.reactor.events_per_wake");
    flush_ms_hist_ = &options_.metrics->histogram("svc.reactor.flush_ms");
    spare_hits_ = &options_.metrics->counter("svc.reactor.spare_hits");
    spare_misses_ = &options_.metrics->counter("svc.reactor.spare_misses");
  }
#endif
  BYC_RETURN_IF_ERROR(listener_.Listen(port));
  port_ = listener_.port();

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    listener_.Close();
    return Status::IoError(std::string("eventfd: ") + ::strerror(errno));
  }
  epoll_fds_.resize(static_cast<size_t>(options_.io_threads), -1);
  for (int i = 0; i < options_.io_threads; ++i) {
    int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0) {
      Status s =
          Status::IoError(std::string("epoll_create1: ") + ::strerror(errno));
      for (int fd : epoll_fds_) {
        if (fd >= 0) ::close(fd);
      }
      epoll_fds_.clear();
      ::close(wake_fd_);
      wake_fd_ = -1;
      listener_.Close();
      return s;
    }
    epoll_fds_[static_cast<size_t>(i)] = epfd;
    // The eventfd is registered level-triggered and never drained: one
    // write at Stop keeps every thread waking until it has exited.
    struct epoll_event ev;
    ::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
  {
    struct epoll_event ev;
    ::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = listener_.fd();
    ::epoll_ctl(epoll_fds_[0], EPOLL_CTL_ADD, listener_.fd(), &ev);
  }

  draining_.store(false, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  started_ = true;
  io_threads_.reserve(static_cast<size_t>(options_.io_threads));
  for (int i = 0; i < options_.io_threads; ++i) {
    io_threads_.emplace_back([this, i] { IoLoop(i); });
  }
  return Status::OK();
}

void Reactor::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

void Reactor::Join() {
  if (!started_ || joined_) return;
  draining_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
  for (std::thread& t : io_threads_) {
    if (t.joinable()) t.join();
  }
  io_threads_.clear();
  listener_.Close();
  joined_ = true;
}

void Reactor::Stop(bool flush_pending) {
  if (!started_) return;
  Join();

  std::vector<std::shared_ptr<ReactorConn>> leftover;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) leftover.push_back(conn);
  }
  for (const auto& conn : leftover) {
    if (flush_pending) {
      // Drained requests that completed after the I/O threads exited
      // still get their replies, each connection bounded by the I/O
      // deadline so a dead peer cannot stall shutdown.
      std::lock_guard<std::mutex> lock(conn->mu);
      Deadline deadline = Deadline::After(options_.io_deadline_ms);
      while (!conn->closed && !conn->slots.empty() &&
             conn->slots.front().ready) {
        ReactorConn::Slot& slot = conn->slots.front();
        if (conn->head_written < slot.bytes.size() &&
            !conn->sock
                 .SendAll(slot.bytes.data() + conn->head_written,
                          slot.bytes.size() - conn->head_written, deadline)
                 .ok()) {
          break;
        }
        conn->slots.pop_front();
        ++conn->slot_base;
        conn->head_written = 0;
      }
    }
    CloseConn(conn);
  }
  for (int fd : epoll_fds_) {
    if (fd >= 0) ::close(fd);
  }
  epoll_fds_.clear();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  started_ = false;
  joined_ = false;
}

void Reactor::IoLoop(int thread_index) {
  const int epfd = epoll_fds_[static_cast<size_t>(thread_index)];
  const int listener_fd = thread_index == 0 ? listener_.fd() : -1;
  struct epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n;
    if (wait_ms_hist_ != nullptr) {
      // With a -1 timeout the wait spans idle time too: the histogram
      // reads as "time between wakeups", whose low percentiles show
      // dispatch latency under load and whose tail shows idleness.
      Clock::time_point t0 = Clock::now();
      n = ::epoll_wait(epfd, events, 64, -1);
      wait_ms_hist_->Observe(MsSince(t0));
      if (n >= 0) events_per_wake_hist_->Observe(static_cast<double>(n));
    } else {
      n = ::epoll_wait(epfd, events, 64, -1);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;  // Stop flag is checked at loop top.
      if (fd == listener_fd) {
        HandleAccept();
        continue;
      }
      std::shared_ptr<ReactorConn> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        conn = it->second;
      }
      // epoll reports at most one event per fd per wait, so a close
      // during this dispatch cannot leave a second stale event for the
      // same connection in this batch.
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          (events[i].events & (EPOLLIN | EPOLLOUT)) == 0) {
        CloseConn(conn);
        continue;
      }
      Drive(conn, (events[i].events & EPOLLIN) != 0);
    }
  }
}

void Reactor::HandleAccept() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept(0);
    if (!accepted.ok()) return;  // Nothing pending (or listener closed).
    if (draining_.load(std::memory_order_acquire)) continue;  // Closes.
    AdmitDecision decision = callbacks_.admit ? callbacks_.admit()
                                              : AdmitDecision::Accept();
    switch (decision.kind) {
      case AdmitDecision::Kind::kRejectSilent:
        continue;  // Socket destructor closes.
      case AdmitDecision::Kind::kRejectWithFrame:
        // Rare and already a failure path for the client: a bounded
        // blocking write keeps the rejection typed without threading a
        // doomed connection through the reactor.
        WriteFrame(*accepted, decision.frame,
                   Deadline::After(options_.io_deadline_ms));
        continue;
      case AdmitDecision::Kind::kAccept:
        break;
    }
    auto conn = std::make_shared<ReactorConn>();
    conn->fd = accepted->fd();
    conn->sock = std::move(*accepted);
    conn->max_inflight = options_.max_inflight;
    conn->max_backlog = options_.max_write_backlog;
    conn->flush_ms_hist = flush_ms_hist_;
    conn->spare_hits = spare_hits_;
    conn->spare_misses = spare_misses_;
    int t = next_thread_;
    next_thread_ = (next_thread_ + 1) % options_.io_threads;
    conn->epfd = epoll_fds_[static_cast<size_t>(t)];
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(conn->fd, conn);
    }
    struct epoll_event ev;
    ::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    conn->armed = EPOLLIN;
    // Cross-thread ADD is the documented-safe epoll idiom; the owning
    // thread starts seeing this fd on its next epoll_wait.
    if (::epoll_ctl(conn->epfd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      // A connection that never registered would never see events:
      // close it now (CloseConn runs on_close, so the caller's session
      // accounting stays balanced instead of leaking a cap slot).
      CloseConn(conn);
    }
  }
}

void Reactor::Drive(const std::shared_ptr<ReactorConn>& conn,
                    bool read_first) {
  if (read_first) ProcessReadable(conn);
  while (FlushAndRearm(conn)) {
    ProcessReadable(conn);
  }
}

void Reactor::ProcessReadable(const std::shared_ptr<ReactorConn>& conn) {
  ReactorConn& c = *conn;
  bool progress = true;
  while (progress) {
    progress = false;
    // Parse every complete frame currently buffered, pausing when the
    // in-flight or backlog cap is hit (TCP backpressure: the rest stays
    // in kernel buffers or, transiently, in rbuf).
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(c.mu);
        if (c.closed || c.no_more_reads) return;
        if (c.ReadsPaused()) {
          c.reads_parked = true;
          c.UpdateInterest();
          return;  // FlushAndRearm re-enters once capacity frees up.
        }
        c.reads_parked = false;
      }
      if (draining_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(c.mu);
        c.no_more_reads = true;
        return;
      }
      if (c.rlen - c.rpos < kFrameHeaderBytes) break;
      const uint8_t* h = c.rbuf.data() + c.rpos;
      uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<uint32_t>(h[i]) << (8 * i);
      }
      Status framing = Status::OK();
      if (len > kMaxPayload) {
        framing = Status::InvalidArgument(
            "oversized frame: " + std::to_string(len) + " bytes exceeds cap " +
            std::to_string(kMaxPayload));
      } else if (!IsKnownFrameType(h[4])) {
        framing = Status::InvalidArgument("unknown frame type " +
                                          std::to_string(h[4]));
      }
      if (!framing.ok()) {
        // Poison: framing beyond this point is unreliable. Answer the
        // slots already reserved, then this typed error, then close.
        std::lock_guard<std::mutex> lock(c.mu);
        c.no_more_reads = true;
        c.close_when_drained = true;
        ReactorConn::Slot slot;
        slot.ready = true;
        slot.close_after = true;
        EncodeFrameInto(slot.bytes, MakeErrorFrame(framing));
        c.backlog_bytes += slot.bytes.size();
        c.slots.push_back(std::move(slot));
        c.UpdateInterest();
        return;
      }
      size_t total = kFrameHeaderBytes + len;
      if (c.rlen - c.rpos < total) {
        if (c.rbuf.size() < c.rpos + total) {
          // Make room for the whole frame without discarding the prefix.
          if (c.rpos > 0) {
            ::memmove(c.rbuf.data(), c.rbuf.data() + c.rpos,
                      c.rlen - c.rpos);
            c.rlen -= c.rpos;
            c.rpos = 0;
          }
          if (c.rbuf.size() < total) c.rbuf.resize(total);
        }
        break;  // Need more bytes.
      }
      uint64_t slot_id;
      {
        std::lock_guard<std::mutex> lock(c.mu);
        slot_id = c.slot_base + c.slots.size();
        c.slots.emplace_back();
        ++c.pending_slots;
      }
      ++c.frames_delivered;
      // The payload is a borrowed view into rbuf: decoded in place, no
      // per-request copy. The callback either completes the ticket now
      // or captures what it parsed — never the view itself.
      callbacks_.on_frame(static_cast<FrameType>(h[4]),
                          c.rbuf.data() + c.rpos + kFrameHeaderBytes, len,
                          ReplyTicket(conn, slot_id));
      c.rpos += total;
      progress = true;
    }
    if (c.rpos == c.rlen) {
      c.rpos = 0;
      c.rlen = 0;
    }
    // Top up from the kernel.
    if (c.rbuf.size() - c.rlen < kReadChunk / 2) {
      c.rbuf.resize(c.rlen + kReadChunk);
    }
    Result<size_t> got =
        c.sock.RecvSome(c.rbuf.data() + c.rlen, c.rbuf.size() - c.rlen);
    if (!got.ok()) {
      // EOF or a hard error: stop reading; pending replies still flush,
      // then the connection closes.
      bool close_now;
      {
        std::lock_guard<std::mutex> lock(c.mu);
        c.no_more_reads = true;
        c.close_when_drained = true;
        close_now = c.slots.empty();
        c.UpdateInterest();
      }
      if (close_now) CloseConn(conn);
      return;
    }
    if (*got == 0) break;  // Would block: level-triggered epoll resumes.
    c.rlen += *got;
    progress = true;
  }
}

bool Reactor::FlushAndRearm(const std::shared_ptr<ReactorConn>& conn) {
  ReactorConn& c = *conn;
  bool should_close = false;
  bool resume_reads = false;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    if (c.closed) return false;
    // Write the contiguous ready prefix with one vectored call per
    // round; loop only while the kernel keeps every byte offered.
    while (!should_close && !c.slots.empty() && c.slots.front().ready) {
      struct iovec iov[kMaxIov];
      int iovcnt = 0;
      size_t queued = 0;
      for (size_t i = 0; i < c.slots.size() && iovcnt < kMaxIov; ++i) {
        const ReactorConn::Slot& slot = c.slots[i];
        if (!slot.ready) break;
        size_t skip = i == 0 ? c.head_written : 0;
        if (slot.bytes.size() > skip) {
          iov[iovcnt].iov_base =
              const_cast<uint8_t*>(slot.bytes.data()) + skip;
          iov[iovcnt].iov_len = slot.bytes.size() - skip;
          queued += iov[iovcnt].iov_len;
          ++iovcnt;
        }
        if (slot.close_after) break;  // Nothing after this goes out.
      }
      size_t sent = 0;
      if (iovcnt > 0) {
        Result<size_t> n = c.sock.SendVec(iov, iovcnt);
        if (!n.ok()) {
          should_close = true;  // Peer reset; replies are undeliverable.
          break;
        }
        sent = *n;
      }
      BYC_CHECK_LE(sent, queued);
      const bool blocked = sent < queued;
      c.backlog_bytes -= sent;
      // Retire fully written slots, recycling their buffers.
      while (!c.slots.empty() && c.slots.front().ready) {
        ReactorConn::Slot& head = c.slots.front();
        size_t remaining = head.bytes.size() - c.head_written;
        if (sent < remaining) {
          c.head_written += sent;
          break;
        }
        sent -= remaining;
        c.head_written = 0;
        if (c.flush_ms_hist != nullptr &&
            head.completed != Clock::time_point{}) {
          c.flush_ms_hist->Observe(MsSince(head.completed));
        }
        if (head.close_after) {
          should_close = true;
          break;
        }
        head.bytes.clear();
        if (c.spare.size() < kMaxSpare && head.bytes.capacity() > 0) {
          c.spare.push_back(std::move(head.bytes));
        }
        c.slots.pop_front();
        ++c.slot_base;
      }
      if (blocked) break;  // Kernel buffer full: wait for EPOLLOUT.
    }
    if (!should_close && c.close_when_drained && c.slots.empty()) {
      should_close = true;
    }
    if (!should_close) {
      resume_reads =
          c.reads_parked && !c.ReadsPaused() && !c.no_more_reads;
      c.UpdateInterest();
    }
  }
  if (should_close) {
    CloseConn(conn);
    return false;
  }
  // When backpressure just lifted, bytes may be sitting parsed-but-
  // unread in rbuf with the socket itself idle, so a re-armed EPOLLIN
  // alone would never fire — the caller re-enters the parser directly.
  return resume_reads;
}

Reactor::LiveStats Reactor::Sample() const {
  LiveStats stats;
  std::vector<std::shared_ptr<ReactorConn>> conns;
  {
    // Copy-then-release: CloseConn holds a connection mutex while it
    // takes conns_mu_, so holding conns_mu_ while taking connection
    // mutexes here would invert the order and deadlock against a racing
    // close.
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) conns.push_back(conn);
  }
  for (const auto& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) continue;
    ++stats.connections;
    stats.pending_slots += conn->pending_slots;
    stats.backlog_bytes += conn->backlog_bytes;
    if (conn->reads_parked) ++stats.parked_reads;
  }
  return stats;
}

void Reactor::CloseConn(const std::shared_ptr<ReactorConn>& conn) {
  ReactorConn& c = *conn;
  uint64_t frames = 0;
  double ms = 0;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    if (c.closed) return;
    c.closed = true;
    ::epoll_ctl(c.epfd, EPOLL_CTL_DEL, c.fd, nullptr);
    frames = c.frames_delivered;
    ms = MsSince(c.opened);
    {
      // Deregister before closing: once close() releases the fd number
      // the kernel may hand it to a new accept, and erasing afterwards
      // would wipe that newcomer from the registry.
      std::lock_guard<std::mutex> reg(conns_mu_);
      conns_.erase(c.fd);
    }
    c.sock.Close();
  }
  if (callbacks_.on_close) callbacks_.on_close(frames, ms);
}

}  // namespace byc::service
