#ifndef BYC_SERVICE_WIRE_H_
#define BYC_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "persist/codec.h"
#include "service/socket.h"

namespace byc::service {

/// Length-prefixed binary wire protocol of the federation service.
///
/// Frame layout (little-endian):
///
///   | u32 payload_len | u8 type | payload_len bytes |
///
/// payload_len counts payload bytes only (not the 5-byte header) and is
/// capped at kMaxPayload: an oversized or garbage length prefix is
/// rejected as a typed error before any allocation, so a malformed peer
/// can neither crash the server nor balloon its memory.
///
/// Scalar payload fields are fixed-width little-endian; doubles travel as
/// their IEEE-754 bit pattern (byte-exact round trip — the property the
/// loopback-equals-simulator guarantee rests on). Queries travel in the
/// workload trace-line text format (workload::FormatTraceQuery), which
/// round-trips ResolvedQuery exactly and is validated against the
/// catalog on receipt.
/// Protocol version spoken by this build. Version 1 was the unversioned
/// PR-3 protocol (kQuery..kExecReply); version 2 adds kHello negotiation,
/// the stable WireCode error enum, and sequence-stamped kQueryAt queries.
/// Version 3 adds the append-only trace extension (a self-describing
/// trailer carrying a request trace id, see AppendTraceExt) and the
/// kMetricsDump admin frame pair.
///
/// Negotiation: a server accepts any kHello version in
/// [kMinProtocolVersion, kProtocolVersion] and echoes the CLIENT's
/// version back, so a v2 peer sees the v2 handshake it expects and is
/// served the v2 subset; anything outside the range is answered with a
/// typed kError{WireCode::kVersionMismatch} instead of a torn-frame
/// failure. The handshake is optional: a peer that opens with any other
/// frame is assumed to speak the server's version (the PR-3 behaviour).
inline constexpr uint32_t kProtocolVersion = 3;
/// Oldest protocol version this build still serves.
inline constexpr uint32_t kMinProtocolVersion = 2;

enum class FrameType : uint8_t {
  /// client -> mediator: one trace-line query.
  kQuery = 1,
  /// mediator -> client: per-query accounting delta (QueryReply).
  kQueryReply = 2,
  /// client -> mediator: request the server-side ledger (no payload).
  kStats = 3,
  /// mediator -> client: the full ledger (StatsReply).
  kStatsReply = 4,
  /// mediator -> backend: load an object into the cache (FetchRequest).
  kFetch = 5,
  /// backend -> mediator: object shipped; payload u64 bytes_shipped.
  kFetchReply = 6,
  /// mediator -> backend: evaluate a bypassed access at the site
  /// (YieldRequest); only the result crosses the WAN.
  kYield = 7,
  /// backend -> mediator: result shipped; payload f64 yield bytes.
  kYieldReply = 8,
  /// any -> any: liveness probe (no payload).
  kPing = 9,
  kPong = 10,
  /// server -> peer: typed failure; payload u8 WireCode + utf-8 text.
  kError = 11,
  /// backend: execute a full trace-line query with the site's
  /// exec::Executor and reply kExecReply (u64 rows + f64 result bytes).
  kExec = 12,
  kExecReply = 13,
  /// peer -> server: version negotiation; payload u32 protocol version.
  /// Answered with kHelloReply (server's version) on match, or
  /// kError{kVersionMismatch} followed by connection close.
  kHello = 14,
  kHelloReply = 15,
  /// client -> mediator: sequence-stamped query; payload u64 global
  /// sequence number + trace-line text. The mediator admits stamped
  /// queries in sequence order regardless of which connection they
  /// arrive on, keeping the ledger a total order under concurrency.
  kQueryAt = 16,
  /// client -> mediator: many kQueryAt payloads in one frame; payload
  /// u32 count, then count x {u64 seq, u32 line_len, line bytes}. One
  /// wire round trip amortizes framing over the whole batch; each query
  /// still holds its own slot in the mediator's admission order, so the
  /// ledger stays the same total order as unbatched replay. count is
  /// capped at kMaxQueryBatchItems (any more could not be answered with
  /// a legal kQueryBatchReply frame).
  kQueryBatch = 17,
  /// mediator -> client: payload u32 count, then count QueryReply
  /// records (one per batched query, in batch order).
  kQueryBatchReply = 18,
  /// client -> mediator: scrape the live MetricsSnapshot (no payload).
  /// Answered on the I/O thread without stopping admission; a mediator
  /// running without a metrics registry answers a typed
  /// kError{kFailedPrecondition}.
  kMetricsDump = 19,
  /// mediator -> client: the snapshot as a UTF-8 JSON document
  /// (counters/gauges/histograms/spans, the MetricsSnapshotToJson shape).
  kMetricsDumpReply = 20,
  /// client -> mediator: checkpoint the mediator's durable state (policy,
  /// residency, ledger, admission counter) to the configured snapshot
  /// directory now (no payload). Served through the admission queue so
  /// the snapshot is a consistent between-queries cut of the decision
  /// state; a mediator without BYC_SVC_SNAPSHOT_DIR answers a typed
  /// kError{kFailedPrecondition}.
  kSnapshot = 21,
  /// mediator -> client: SnapshotReply — the ledger's query count at the
  /// cut, the serialized snapshot size, and whether it reached disk.
  kSnapshotReply = 22,
  /// router -> shard mediator: shard-membership handshake; payload
  /// u32 shard_id + u32 map_version + u64 map_fingerprint. A mediator
  /// configured for that shard of that exact map answers kShardHelloReply;
  /// any disagreement (wrong shard id, version skew, fingerprint
  /// mismatch, or an unsharded mediator) is a typed
  /// kError{kShardMapMismatch} — never a silent accept that would let a
  /// router ledger objects onto the wrong shard.
  kShardHello = 23,
  /// shard mediator -> router: payload u32 shard_id + u32 map_version
  /// (echo of the accepted membership).
  kShardHelloReply = 24,
  /// client -> router or shard mediator: per-shard ledger scrape (no
  /// payload). A shard mediator answers with its own single entry; a
  /// router answers with one entry per downstream shard, so the
  /// cross-shard accounting split is observable without string parsing.
  kShardStats = 25,
  /// payload u32 count, then count x {u32 shard_id, u32 map_version,
  /// StatsReply encoding}.
  kShardStatsReply = 26,
};

/// Error codes carried in kError frames. The numeric values are the wire
/// contract — stable forever, append-only — and deliberately decoupled
/// from the in-process StatusCode enum (whose enumerators may be
/// reordered freely). Service-level conditions with no StatusCode
/// counterpart (version mismatch, session-cap rejection) live above 31.
enum class WireCode : uint8_t {
  kUnspecified = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCapacityExceeded = 6,
  kIoError = 7,
  kParseError = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kUnavailable = 11,
  /// The peer's kHello carried an unsupported protocol version.
  kVersionMismatch = 32,
  /// The server is at its session cap; retry later.
  kBusy = 33,
  /// A kShardHello named a shard id / map version / fingerprint this
  /// mediator is not serving (shard-map skew during a rollout, or a
  /// router pointed at the wrong fleet).
  kShardMapMismatch = 34,
};

std::string_view WireCodeName(WireCode code);

/// StatusCode -> wire representation (kOk and unknown codes map to
/// kUnspecified; receivers treat kUnspecified as kInternal).
WireCode WireCodeForStatus(StatusCode code);

/// Wire -> in-process StatusCode. The two service-only codes map to the
/// closest retryable semantics: kVersionMismatch -> kFailedPrecondition,
/// kBusy -> kUnavailable. Unknown bytes from a hostile peer map to
/// kInternal rather than UB.
StatusCode StatusCodeForWire(WireCode code);

/// Largest accepted payload. Queries and replies are tiny; the cap
/// exists purely to bound what a malformed length prefix can demand.
inline constexpr uint32_t kMaxPayload = 1u << 20;

/// Bytes of the frame header: u32 payload_len + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Whether `type` is a frame type this build recognizes; anything else
/// poisons the connection with InvalidArgument.
bool IsKnownFrameType(uint8_t type);

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> payload;
};

/// ---- Trace extension (protocol v3) ----------------------------------
///
/// Request frames may carry a request-scoped trace id in an append-only
/// trailer AFTER their regular payload:
///
///   | base payload | ext region (ext_len bytes) | u32 ext_len | u32 magic |
///
/// The ext region currently holds exactly one u64 — the trace id — and
/// may only ever grow by appending (readers take the first 8 bytes and
/// ignore the rest), so future fields never break old parsers. Reading
/// is backward from the payload end: no magic at the tail means no
/// extension (the v2 payload, byte-identical to what a v2 peer sends);
/// a magic with an ext_len that does not fit the payload is a typed
/// ParseError — a truncated or forged trailer never silently truncates
/// or extends the base payload. The magic's three high bytes are
/// non-ASCII, so a trace-line text payload can never end in a valid
/// trailer by accident.
inline constexpr uint32_t kTraceExtMagic = 0xB1C0DE7Au;
/// Trace id meaning "untraced" — writers omit the extension entirely.
inline constexpr uint64_t kNoTraceId = 0;
/// Bytes AppendTraceExt adds: u64 trace id + u32 ext_len + u32 magic.
inline constexpr size_t kTraceExtBytes = 8 + 4 + 4;

/// Appends the trace extension trailer for `trace_id` to a payload.
/// No-op when trace_id == kNoTraceId.
void AppendTraceExt(std::vector<uint8_t>& out, uint64_t trace_id);

/// Result of StripTraceExt: the trace id (kNoTraceId when the payload
/// carries no extension) and the length of the base payload in front of
/// the extension (== the input size when there is none).
struct TraceExt {
  uint64_t trace_id = kNoTraceId;
  size_t base_len = 0;
};

/// Detects and strips the trace extension from a received payload.
/// `min_base` is the smallest legal base payload for the frame type
/// (e.g. 16 for kFetch) — a tail that spells the magic but would leave
/// less than min_base bytes of base payload is treated as payload bytes,
/// not as an extension, which keeps v2 payloads whose *content* happens
/// to end in the magic parseable. A present magic with a malformed
/// ext_len (shorter than the 8-byte trace id or overlapping min_base)
/// is a typed ParseError.
Result<TraceExt> StripTraceExt(const uint8_t* payload, size_t size,
                               size_t min_base);

/// ---- Typed payloads -------------------------------------------------

/// kFetch: which object to load and how many bytes the mediator expects
/// the site to ship (the object's size).
struct FetchRequest {
  int32_t table = 0;
  int32_t column = -1;  // catalog::ObjectId::kWholeTable
  uint64_t size_bytes = 0;
  /// Request trace id propagated from the originating query (kNoTraceId:
  /// untraced; travels as the trace extension, not a base field).
  uint64_t trace_id = kNoTraceId;
};

/// kYield: which object a bypassed access touches and the estimated
/// result bytes the site ships back.
struct YieldRequest {
  int32_t table = 0;
  int32_t column = -1;
  double yield_bytes = 0;
  /// See FetchRequest::trace_id.
  uint64_t trace_id = kNoTraceId;
};

/// kQueryReply: what the mediator did with one query, as deltas against
/// the ledger. Doubles are bit-exact (see StatsReply).
struct QueryReply {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t bypasses = 0;
  uint64_t loads = 0;
  uint64_t evictions = 0;
  uint64_t degraded = 0;
  double served_cost = 0;
  double bypass_cost = 0;
  double fetch_cost = 0;
  double degraded_cost = 0;
};

/// kStatsReply: the mediator's full ledger, accumulated per access in
/// trace order — the number the bench diffs against sim::Simulator.
struct StatsReply {
  uint64_t queries = 0;
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t bypasses = 0;
  uint64_t loads = 0;
  uint64_t evictions = 0;
  uint64_t degraded_accesses = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  double served_cost = 0;    // D_C
  double bypass_cost = 0;    // D_S
  double fetch_cost = 0;     // D_L
  double degraded_cost = 0;  // result bytes lost to dead backends
};

/// ---- Encoding -------------------------------------------------------
///
/// The scalar codec is shared with the snapshot file format and lives in
/// persist/codec.h; the aliases keep every existing call site spelled the
/// same while guaranteeing wire payloads and snapshot sections are
/// encoded byte-identically.

using persist::AppendU32;
using persist::AppendU64;
using persist::AppendI32;
using persist::AppendF64;

/// Sequential bounds-checked reader over a received payload.
using PayloadReader = persist::ByteReader;

/// ---- EncodeInto family ----------------------------------------------
///
/// Every encoder APPENDS into a caller-owned buffer, so hot paths (the
/// reactor's per-connection reply slots, the batching client) reuse one
/// allocation across requests. The Make*Frame helpers below are thin
/// wrappers that encode into a fresh Frame for cold paths.

/// Appends the 5-byte frame header `| u32 payload_len | u8 type |`.
void EncodeFrameHeaderInto(std::vector<uint8_t>& out, FrameType type,
                           uint32_t payload_len);
/// Appends one whole frame (header + payload) — the byte sequence
/// WriteFrame puts on the wire.
void EncodeFrameInto(std::vector<uint8_t>& out, const Frame& frame);

/// Payload encoders (payload bytes only; pair with EncodeFrameHeaderInto).
void EncodeFetchInto(std::vector<uint8_t>& out, const FetchRequest& req);
void EncodeYieldInto(std::vector<uint8_t>& out, const YieldRequest& req);
void EncodeQueryReplyInto(std::vector<uint8_t>& out, const QueryReply& reply);
void EncodeStatsReplyInto(std::vector<uint8_t>& out, const StatsReply& reply);
void EncodeErrorInto(std::vector<uint8_t>& out, WireCode code,
                     std::string_view message);
void EncodeQueryAtInto(std::vector<uint8_t>& out, uint64_t seq,
                       std::string_view trace_line);

/// Incremental encoder for a kQueryBatch payload: begins with a count
/// placeholder, Add() appends items, Finish() patches the count.
///
///   std::vector<uint8_t> payload;           // reused across batches
///   QueryBatchBuilder batch(&payload);      // clears the buffer
///   batch.Add(seq, line); ...
///   batch.Finish();
class QueryBatchBuilder {
 public:
  explicit QueryBatchBuilder(std::vector<uint8_t>* payload);
  void Add(uint64_t seq, std::string_view trace_line);
  uint32_t count() const { return count_; }
  void Finish();

 private:
  std::vector<uint8_t>* payload_;
  uint32_t count_ = 0;
};

/// One decoded kQueryBatch item; `line` borrows the frame payload.
struct QueryBatchItem {
  uint64_t seq = 0;
  std::string_view line;
};

/// Decodes a kQueryBatch payload in one pass into `items` (cleared and
/// refilled — callers reuse the vector). Views stay valid as long as the
/// frame bytes do. A count that promises more items than the payload can
/// carry, or that exceeds kMaxQueryBatchItems, is a ParseError before
/// any reserve. Bytes after the last item must be a well-formed trace
/// extension (else ParseError): the frame carries ONE base trace id and
/// item i is implicitly traced as base + i, so the per-item wire format
/// is unchanged. `base_trace_id` (optional) receives that base id, or
/// kNoTraceId for an unextended frame.
Status ParseQueryBatchInto(const uint8_t* payload, size_t size,
                           std::vector<QueryBatchItem>* items,
                           uint64_t* base_trace_id = nullptr);
Status ParseQueryBatchInto(const Frame& frame,
                           std::vector<QueryBatchItem>* items,
                           uint64_t* base_trace_id = nullptr);

/// Serialized size of one QueryReply record (6 u64 counters + 4 f64
/// costs) — lets reply writers size a batch frame header up front.
inline constexpr size_t kQueryReplyWireBytes = 6 * 8 + 4 * 8;

/// Most items one kQueryBatch frame may carry. The bound comes from the
/// reply side: each item costs kQueryReplyWireBytes in the
/// kQueryBatchReply payload, which must itself fit under kMaxPayload.
/// Request-side items are as small as 12 bytes, so a protocol-legal
/// request can name far more items than any legal reply could answer —
/// ParseQueryBatchInto therefore rejects a larger count as a typed
/// ParseError before the server commits to an unanswerable batch.
inline constexpr uint32_t kMaxQueryBatchItems =
    static_cast<uint32_t>((kMaxPayload - 4) / kQueryReplyWireBytes);
static_assert(4 + static_cast<size_t>(kMaxQueryBatchItems) *
                      kQueryReplyWireBytes <=
              kMaxPayload);

/// Appends a kQueryBatchReply payload: u32 count + count QueryReplys.
void EncodeQueryBatchReplyInto(std::vector<uint8_t>& out,
                               const QueryReply* deltas, size_t count);
/// Decodes a kQueryBatchReply payload into `deltas` (cleared + refilled).
Status ParseQueryBatchReplyInto(const Frame& frame,
                                std::vector<QueryReply>* deltas);

/// Fetch/yield frames append the trace extension when req.trace_id is
/// set, so traced requests round-trip through the matching parser.
Frame MakeFetchFrame(const FetchRequest& req);
Frame MakeYieldFrame(const YieldRequest& req);
Frame MakeQueryFrame(std::string_view trace_line,
                     uint64_t trace_id = kNoTraceId);
/// kQueryAt: `seq` is the query's global position in the client-side
/// trace (0-based), shared across all connections of one replay.
Frame MakeQueryAtFrame(uint64_t seq, std::string_view trace_line,
                       uint64_t trace_id = kNoTraceId);
Frame MakeQueryReplyFrame(const QueryReply& reply);
Frame MakeStatsReplyFrame(const StatsReply& reply);
/// kError carrying `status` (must be non-OK).
Frame MakeErrorFrame(const Status& status);
/// kError carrying an explicit wire code (for the service-only codes).
Frame MakeErrorFrame(WireCode code, std::string_view message);
/// kHello / kHelloReply carrying a protocol version.
Frame MakeHelloFrame(uint32_t version);
Frame MakeHelloReplyFrame(uint32_t version);
/// kMetricsDump request (no payload).
Frame MakeMetricsDumpFrame();
/// kMetricsDumpReply carrying a serialized MetricsSnapshot JSON document.
Frame MakeMetricsDumpReplyFrame(std::string_view json);

/// kSnapshotReply: what a kSnapshot checkpoint produced.
struct SnapshotReply {
  /// Ledger query count at the snapshot cut (the admission thread takes
  /// the snapshot between queries, so this pins the cut's position).
  uint64_t queries = 0;
  /// Serialized snapshot size in bytes.
  uint64_t snapshot_bytes = 0;
  /// 1 when the file reached the snapshot directory via atomic rename;
  /// 0 when the write failed (state was still serialized, not persisted).
  uint8_t persisted = 0;
};

/// kSnapshot request (no payload).
Frame MakeSnapshotFrame();
Frame MakeSnapshotReplyFrame(const SnapshotReply& reply);
Result<SnapshotReply> ParseSnapshotReply(const Frame& frame);

/// kShardHello / kShardHelloReply: the shard-membership handshake a
/// router opens every shard channel with. The fingerprint is the
/// ShardMap's FNV-1a over its canonical serialization, so two processes
/// agree on membership iff they agree on every placement decision.
struct ShardHello {
  uint32_t shard_id = 0;
  uint32_t map_version = 0;
  uint64_t map_fingerprint = 0;
};

Frame MakeShardHelloFrame(const ShardHello& hello);
/// The reply omits the fingerprint: echoing id + version is enough once
/// the server has verified all three fields against its own map.
Frame MakeShardHelloReplyFrame(uint32_t shard_id, uint32_t map_version);
Result<ShardHello> ParseShardHello(const Frame& frame);
/// Parses a kShardHelloReply into {shard_id, map_version} (fingerprint 0).
Result<ShardHello> ParseShardHelloReply(const Frame& frame);

/// One entry of a kShardStatsReply: a shard's identity plus its full
/// ledger. A shard mediator replies with exactly one entry (its own); a
/// router concatenates its shards' entries in shard-id order.
struct ShardStatsEntry {
  uint32_t shard_id = 0;
  uint32_t map_version = 0;
  StatsReply stats;
};

/// kShardStats request (no payload).
Frame MakeShardStatsFrame();
Frame MakeShardStatsReplyFrame(const ShardStatsEntry* entries, size_t count);
Status ParseShardStatsReplyInto(const Frame& frame,
                                std::vector<ShardStatsEntry>* entries);

Result<FetchRequest> ParseFetchRequest(const Frame& frame);
Result<YieldRequest> ParseYieldRequest(const Frame& frame);
/// Decoded kQueryAt payload.
struct SequencedQuery {
  uint64_t seq = 0;
  std::string trace_line;
  uint64_t trace_id = kNoTraceId;
};
Result<SequencedQuery> ParseQueryAt(const Frame& frame);
Result<QueryReply> ParseQueryReply(const Frame& frame);
Result<StatsReply> ParseStatsReply(const Frame& frame);
/// Reconstructs the typed Status carried by a kError frame.
Status ParseErrorFrame(const Frame& frame);
/// The raw wire code of a kError frame (so callers can distinguish
/// kBusy/kVersionMismatch without string matching); kUnspecified when
/// the frame is not a well-formed error.
WireCode ErrorFrameCode(const Frame& frame);
/// The version carried by a kHello or kHelloReply frame.
Result<uint32_t> ParseHello(const Frame& frame);

/// ---- Framed I/O -----------------------------------------------------

/// Writes one frame. Errors propagate from Socket::SendAll.
Status WriteFrame(Socket& sock, const Frame& frame, Deadline deadline);

/// Reads one frame. Typed errors: DeadlineExceeded (stalled peer),
/// Unavailable (peer closed; message "eof" when between frames),
/// InvalidArgument (oversized length prefix or unknown frame type — the
/// connection is poisoned and should be closed).
Result<Frame> ReadFrame(Socket& sock, Deadline deadline);

}  // namespace byc::service

#endif  // BYC_SERVICE_WIRE_H_
