#include "service/backend_server.h"

#include <chrono>
#include <thread>
#include <utility>

#include "catalog/object_id.h"
#include "workload/trace.h"

namespace byc::service {

namespace {

/// Deadline for the reactor's final flush of one frame at teardown.
constexpr int64_t kFrameIoMs = 2000;

/// Sleeps `total_ms` in small slices so an injected delay cannot outlive
/// a Stop() by more than one slice.
void InterruptibleSleep(int total_ms, const std::atomic<bool>& stop) {
  using namespace std::chrono;
  auto until = steady_clock::now() + milliseconds(total_ms);
  while (!stop.load(std::memory_order_relaxed) &&
         steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(10));
  }
}

}  // namespace

Status BackendServer::Start() {
  BYC_CHECK(options_.federation != nullptr);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("backend already running");
  }
  Reactor::Options ropts;
  ropts.io_threads = 2;
  ropts.io_deadline_ms = kFrameIoMs;
  Reactor::Callbacks callbacks;
  callbacks.admit = [this]() -> Reactor::AdmitDecision {
    if (faults_.refuse.load(std::memory_order_relaxed)) {
      // Close the accepted socket immediately: protocol-level refusal.
      return Reactor::AdmitDecision::RejectSilent();
    }
    return Reactor::AdmitDecision::Accept();
  };
  callbacks.on_frame = [this](FrameType type, const uint8_t* payload,
                              size_t payload_len, ReplyTicket ticket) {
    OnFrame(type, payload, payload_len, std::move(ticket));
  };
  reactor_ = std::make_unique<Reactor>(ropts, std::move(callbacks));
  Status started = reactor_->Start(options_.port);
  if (!started.ok()) {
    reactor_.reset();
    return started;
  }
  port_ = reactor_->port();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void BackendServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Abrupt by design: Kill() aliases here, and a dying site owes its
  // mediators nothing — unflushed replies are simply lost.
  reactor_->Stop(/*flush_pending=*/false);
  reactor_.reset();
}

void BackendServer::OnFrame(FrameType type, const uint8_t* payload,
                            size_t payload_len, ReplyTicket ticket) {
  if (faults_.drop.load(std::memory_order_relaxed)) {
    // Read the request, never answer: a lost reply.
    ticket.Abandon();
    return;
  }
  int delay = faults_.delay_ms.load(std::memory_order_relaxed);
  if (delay > 0) InterruptibleSleep(delay, stop_);

  Frame request;
  request.type = type;
  request.payload.assign(payload, payload + payload_len);
  Frame reply = HandleRequest(request);
  bool rejected = reply.type == FrameType::kError;
  std::vector<uint8_t> out = ticket.TakeBuffer();
  EncodeFrameInto(out, reply);
  ticket.Complete(std::move(out));
  (rejected ? requests_rejected_ : requests_served_)
      .fetch_add(1, std::memory_order_relaxed);
}

Frame BackendServer::HandleRequest(const Frame& request) {
  switch (request.type) {
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      return pong;
    }
    case FrameType::kHello: {
      Result<uint32_t> version = ParseHello(request);
      if (!version.ok()) return MakeErrorFrame(version.status());
      if (*version < kMinProtocolVersion || *version > kProtocolVersion) {
        return MakeErrorFrame(
            WireCode::kVersionMismatch,
            "backend speaks protocol versions " +
                std::to_string(kMinProtocolVersion) + ".." +
                std::to_string(kProtocolVersion) + ", client sent " +
                std::to_string(*version));
      }
      // Echo the client's version (a v2 mediator gets its v2 echo); v3
      // trace extensions are an append-only trailer, so every frame a
      // v3 peer sends still parses under the v2 grammar.
      return MakeHelloReplyFrame(*version);
    }
    case FrameType::kFetch:
      return HandleFetch(request);
    case FrameType::kYield:
      return HandleYield(request);
    case FrameType::kExec:
      return HandleExec(request);
    default:
      return MakeErrorFrame(Status::InvalidArgument(
          "frame type " +
          std::to_string(static_cast<int>(request.type)) +
          " is not served by a backend"));
  }
}

Result<catalog::ObjectId> BackendServer::ResolveObject(int32_t table,
                                                       int32_t column) {
  const catalog::Catalog& catalog = options_.federation->catalog();
  if (table < 0 || table >= catalog.num_tables()) {
    return Status::NotFound("unknown table index " + std::to_string(table));
  }
  if (column != catalog::ObjectId::kWholeTable &&
      (column < 0 || column >= catalog.table(table).num_columns())) {
    return Status::NotFound("unknown column " + std::to_string(column) +
                            " of table " + std::to_string(table));
  }
  if (options_.federation->SiteOfTable(table) != options_.site) {
    return Status::NotFound("table " + std::to_string(table) +
                            " is not owned by site " +
                            std::to_string(options_.site));
  }
  return catalog::ObjectId{table, column};
}

Frame BackendServer::HandleFetch(const Frame& request) {
  Result<FetchRequest> req = ParseFetchRequest(request);
  if (!req.ok()) return MakeErrorFrame(req.status());
  Result<catalog::ObjectId> object = ResolveObject(req->table, req->column);
  if (!object.ok()) return MakeErrorFrame(object.status());
  // The site ships the object it owns; its catalog decides the size (a
  // mediator's declared size is advisory only).
  uint64_t bytes =
      ObjectSizeBytes(options_.federation->catalog(), *object);
  Frame reply;
  reply.type = FrameType::kFetchReply;
  AppendU64(reply.payload, bytes);
  return reply;
}

Frame BackendServer::HandleYield(const Frame& request) {
  Result<YieldRequest> req = ParseYieldRequest(request);
  if (!req.ok()) return MakeErrorFrame(req.status());
  Result<catalog::ObjectId> object = ResolveObject(req->table, req->column);
  if (!object.ok()) return MakeErrorFrame(object.status());
  if (!(req->yield_bytes >= 0) || req->yield_bytes != req->yield_bytes) {
    return MakeErrorFrame(
        Status::InvalidArgument("yield bytes must be finite and >= 0"));
  }
  // The backend evaluates the sub-query at the data and ships only the
  // result: the acknowledged bytes are the estimated yield it was asked
  // for, echoed bit-exactly so the mediator's cost-model pricing of the
  // ack reproduces the simulator's ledger.
  Frame reply;
  reply.type = FrameType::kYieldReply;
  AppendF64(reply.payload, req->yield_bytes);
  return reply;
}

Frame BackendServer::HandleExec(const Frame& request) {
  if (options_.executor == nullptr) {
    return MakeErrorFrame(Status::FailedPrecondition(
        "site " + std::to_string(options_.site) +
        " has no materialized data for execution"));
  }
  PayloadReader r(request.payload);
  std::string line = r.ReadText();
  Result<workload::TraceQuery> tq =
      workload::ParseTraceQuery(options_.federation->catalog(), line);
  if (!tq.ok()) return MakeErrorFrame(tq.status());
  Result<exec::ExecutionResult> result =
      options_.executor->Execute(tq->query);
  if (!result.ok()) return MakeErrorFrame(result.status());
  Frame reply;
  reply.type = FrameType::kExecReply;
  AppendU64(reply.payload, result->result_rows);
  AppendF64(reply.payload, result->result_bytes);
  return reply;
}

}  // namespace byc::service
