#include "service/backend_server.h"

#include <sys/socket.h>

#include <chrono>

#include "catalog/object_id.h"
#include "workload/trace.h"

namespace byc::service {

namespace {

/// Accept-poll interval: the latency bound on noticing Stop()/Kill().
constexpr int kPollMs = 50;
/// Deadline for reading/writing one frame once bytes are on the wire.
constexpr int64_t kFrameIoMs = 2000;

/// Sleeps `total_ms` in small slices so an injected delay cannot outlive
/// a Stop() by more than one slice.
void InterruptibleSleep(int total_ms, const std::atomic<bool>& stop) {
  using namespace std::chrono;
  auto until = steady_clock::now() + milliseconds(total_ms);
  while (!stop.load(std::memory_order_relaxed) &&
         steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(10));
  }
}

}  // namespace

Status BackendServer::Start() {
  BYC_CHECK(options_.federation != nullptr);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("backend already running");
  }
  auto listener = std::make_unique<Listener>();
  BYC_RETURN_IF_ERROR(listener->Listen(options_.port));
  port_ = listener->port();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(
      [this, listener = std::move(listener)]() mutable {
        AcceptLoopOn(*listener);
        listener->Close();
      });
  return Status::OK();
}

void BackendServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void BackendServer::AcceptLoopOn(Listener& listener) {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener.Accept(kPollMs);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      break;  // Listener broken; the server is effectively dead.
    }
    if (faults_.refuse.load(std::memory_order_relaxed)) {
      continue;  // Socket destructor closes: protocol-level refusal.
    }
    int fd = accepted->fd();
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.insert(fd);
    conn_threads_.emplace_back(
        [this, conn = std::move(accepted).value()]() mutable {
          HandleConnection(std::move(conn));
        });
  }
}

void BackendServer::HandleConnection(Socket conn) {
  while (!stop_.load(std::memory_order_acquire)) {
    Status ready = conn.WaitReadable(Deadline::After(kPollMs));
    if (!ready.ok()) {
      if (ready.IsDeadlineExceeded()) continue;  // idle; re-check stop
      break;
    }
    Result<Frame> request = ReadFrame(conn, Deadline::After(kFrameIoMs));
    if (!request.ok()) {
      // A malformed frame (oversized length, unknown type) gets a typed
      // error reply before the poisoned connection is dropped; torn
      // frames and disconnects just close.
      if (request.status().IsInvalidArgument()) {
        WriteFrame(conn, MakeErrorFrame(request.status()),
                   Deadline::After(kFrameIoMs));
      }
      break;
    }
    if (faults_.drop.load(std::memory_order_relaxed)) {
      break;  // Read the request, never answer: a lost reply.
    }
    int delay = faults_.delay_ms.load(std::memory_order_relaxed);
    if (delay > 0) InterruptibleSleep(delay, stop_);

    Frame reply = HandleRequest(*request);
    bool rejected = reply.type == FrameType::kError;
    if (!WriteFrame(conn, reply, Deadline::After(kFrameIoMs)).ok()) break;
    (rejected ? requests_rejected_ : requests_served_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(conn.fd());
  conn.Close();
}

Frame BackendServer::HandleRequest(const Frame& request) {
  switch (request.type) {
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      return pong;
    }
    case FrameType::kHello: {
      Result<uint32_t> version = ParseHello(request);
      if (!version.ok()) return MakeErrorFrame(version.status());
      if (*version != kProtocolVersion) {
        return MakeErrorFrame(
            WireCode::kVersionMismatch,
            "backend speaks protocol version " +
                std::to_string(kProtocolVersion) + ", client sent " +
                std::to_string(*version));
      }
      return MakeHelloReplyFrame(kProtocolVersion);
    }
    case FrameType::kFetch:
      return HandleFetch(request);
    case FrameType::kYield:
      return HandleYield(request);
    case FrameType::kExec:
      return HandleExec(request);
    default:
      return MakeErrorFrame(Status::InvalidArgument(
          "frame type " +
          std::to_string(static_cast<int>(request.type)) +
          " is not served by a backend"));
  }
}

Result<catalog::ObjectId> BackendServer::ResolveObject(int32_t table,
                                                       int32_t column) {
  const catalog::Catalog& catalog = options_.federation->catalog();
  if (table < 0 || table >= catalog.num_tables()) {
    return Status::NotFound("unknown table index " + std::to_string(table));
  }
  if (column != catalog::ObjectId::kWholeTable &&
      (column < 0 || column >= catalog.table(table).num_columns())) {
    return Status::NotFound("unknown column " + std::to_string(column) +
                            " of table " + std::to_string(table));
  }
  if (options_.federation->SiteOfTable(table) != options_.site) {
    return Status::NotFound("table " + std::to_string(table) +
                            " is not owned by site " +
                            std::to_string(options_.site));
  }
  return catalog::ObjectId{table, column};
}

Frame BackendServer::HandleFetch(const Frame& request) {
  Result<FetchRequest> req = ParseFetchRequest(request);
  if (!req.ok()) return MakeErrorFrame(req.status());
  Result<catalog::ObjectId> object = ResolveObject(req->table, req->column);
  if (!object.ok()) return MakeErrorFrame(object.status());
  // The site ships the object it owns; its catalog decides the size (a
  // mediator's declared size is advisory only).
  uint64_t bytes =
      ObjectSizeBytes(options_.federation->catalog(), *object);
  Frame reply;
  reply.type = FrameType::kFetchReply;
  AppendU64(reply.payload, bytes);
  return reply;
}

Frame BackendServer::HandleYield(const Frame& request) {
  Result<YieldRequest> req = ParseYieldRequest(request);
  if (!req.ok()) return MakeErrorFrame(req.status());
  Result<catalog::ObjectId> object = ResolveObject(req->table, req->column);
  if (!object.ok()) return MakeErrorFrame(object.status());
  if (!(req->yield_bytes >= 0) || req->yield_bytes != req->yield_bytes) {
    return MakeErrorFrame(
        Status::InvalidArgument("yield bytes must be finite and >= 0"));
  }
  // The backend evaluates the sub-query at the data and ships only the
  // result: the acknowledged bytes are the estimated yield it was asked
  // for, echoed bit-exactly so the mediator's cost-model pricing of the
  // ack reproduces the simulator's ledger.
  Frame reply;
  reply.type = FrameType::kYieldReply;
  AppendF64(reply.payload, req->yield_bytes);
  return reply;
}

Frame BackendServer::HandleExec(const Frame& request) {
  if (options_.executor == nullptr) {
    return MakeErrorFrame(Status::FailedPrecondition(
        "site " + std::to_string(options_.site) +
        " has no materialized data for execution"));
  }
  PayloadReader r(request.payload);
  std::string line = r.ReadText();
  Result<workload::TraceQuery> tq =
      workload::ParseTraceQuery(options_.federation->catalog(), line);
  if (!tq.ok()) return MakeErrorFrame(tq.status());
  Result<exec::ExecutionResult> result =
      options_.executor->Execute(tq->query);
  if (!result.ok()) return MakeErrorFrame(result.status());
  Frame reply;
  reply.type = FrameType::kExecReply;
  AppendU64(reply.payload, result->result_rows);
  AppendF64(reply.payload, result->result_bytes);
  return reply;
}

}  // namespace byc::service
