#ifndef BYC_SERVICE_RETRY_H_
#define BYC_SERVICE_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "common/random.h"

namespace byc::service {

/// Capped exponential backoff with multiplicative jitter, the retry
/// schedule of every backend call the mediator makes. Deterministic
/// given the Rng — service tests seed it, so retry timing is
/// reproducible.
struct RetryPolicy {
  /// Total tries per request (first attempt + retries). 1 disables
  /// retrying.
  int max_attempts = 3;
  int initial_backoff_ms = 5;
  int max_backoff_ms = 100;
  double multiplier = 2.0;
  /// Uniform jitter fraction: the delay is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter] so synchronized retry storms decorrelate.
  double jitter = 0.2;

  /// Backoff before retry attempt `attempt` (1-based count of *failed*
  /// attempts so far): initial * multiplier^(attempt-1), capped, then
  /// jittered.
  int DelayMs(int attempt, Rng& rng) const {
    double delay = initial_backoff_ms;
    for (int i = 1; i < attempt; ++i) delay *= multiplier;
    delay = std::min(delay, static_cast<double>(max_backoff_ms));
    double factor = 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
    delay *= factor;
    return std::max(0, static_cast<int>(delay));
  }
};

}  // namespace byc::service

#endif  // BYC_SERVICE_RETRY_H_
