#include "service/config.h"

#include "common/env.h"

namespace byc::service {

Result<ServiceConfig> ServiceConfig::FromEnv() {
  ServiceConfig config;
  BYC_ASSIGN_OR_RETURN(int64_t port,
                       env::IntOr("BYC_SVC_PORT", config.port, 0, 65535));
  config.port = static_cast<uint16_t>(port);
  BYC_ASSIGN_OR_RETURN(
      config.deadline_ms,
      env::DurationMsOr("BYC_SVC_DEADLINE_MS", config.deadline_ms, 1,
                        600'000));
  BYC_ASSIGN_OR_RETURN(
      int64_t retries,
      env::IntOr("BYC_SVC_RETRIES", config.retry.max_attempts - 1, 0, 16));
  config.retry.max_attempts = static_cast<int>(retries) + 1;
  BYC_ASSIGN_OR_RETURN(
      int64_t sessions,
      env::IntOr("BYC_SVC_MAX_SESSIONS", config.max_sessions, 1, 1024));
  config.max_sessions = static_cast<int>(sessions);
  BYC_ASSIGN_OR_RETURN(
      int64_t inflight,
      env::IntOr("BYC_SVC_MAX_INFLIGHT", config.max_inflight, 1, 1024));
  config.max_inflight = static_cast<int>(inflight);
  BYC_ASSIGN_OR_RETURN(
      config.reorder_timeout_ms,
      env::DurationMsOr("BYC_SVC_REORDER_MS", config.reorder_timeout_ms, 1,
                        600'000));
  BYC_ASSIGN_OR_RETURN(int64_t batch,
                       env::IntOr("BYC_SVC_BATCH", config.batch_size, 1,
                                  4096));
  config.batch_size = static_cast<int>(batch);
  BYC_ASSIGN_OR_RETURN(
      int64_t io_threads,
      env::IntOr("BYC_SVC_IO_THREADS", config.io_threads, 1, 64));
  config.io_threads = static_cast<int>(io_threads);
  BYC_ASSIGN_OR_RETURN(int64_t trace,
                       env::IntOr("BYC_SVC_TRACE", config.trace ? 1 : 0, 0,
                                  1));
  config.trace = trace != 0;
  // Unset keeps the disabled default (-1); a set value must be a valid
  // non-negative duration (0 = log everything).
  BYC_ASSIGN_OR_RETURN(
      config.slow_ms,
      env::DurationMsOr("BYC_SVC_SLOW_MS", config.slow_ms, 0, 600'000));
  BYC_ASSIGN_OR_RETURN(
      config.snapshot_dir,
      env::PathOr("BYC_SVC_SNAPSHOT_DIR", config.snapshot_dir));
  BYC_ASSIGN_OR_RETURN(config.snapshot_every_ms,
                       env::DurationMsOr("BYC_SVC_SNAPSHOT_EVERY",
                                         config.snapshot_every_ms, 0,
                                         3'600'000));
  BYC_ASSIGN_OR_RETURN(int64_t shards,
                       env::IntOr("BYC_SVC_SHARDS", config.shards, 1, 64));
  config.shards = static_cast<int>(shards);
  BYC_ASSIGN_OR_RETURN(config.shard_map,
                       env::PathOr("BYC_SVC_SHARD_MAP", config.shard_map));
  return config;
}

}  // namespace byc::service
