#include "scenario/spec.h"

#include "common/bytes.h"

namespace byc::scenario {

namespace {

// The DR1 catalog carries the same schema at 2.3x the EDR row counts, so
// the EDR era of a release-upgrade scenario is the visible prefix
// 1 / 2.3 of the DR1 tables.
constexpr double kEdrFractionOfDr1 = 1.0 / 2.3;

/// EDR-era cost density applied to a scenario of `queries` queries: the
/// published EDR sequence cost scaled by query count with the exact
/// arithmetic the legacy bench scaling uses. queries == 27,663 yields
/// exactly 1216.94 GB (x * 1.0 == x in IEEE), which is what keeps the
/// steady builtin bit-identical to MakeEdrOptions().
double EdrTargetFor(uint64_t queries) {
  return (1216.94 * kGB) *
         (static_cast<double>(queries) / 27'663.0);
}

double Dr1TargetFor(uint64_t queries) {
  return (1980.4 * kGB) *
         (static_cast<double>(queries) / 24'567.0);
}

workload::ClassMix Dr1Mix() {
  workload::ClassMix mix;
  mix.p_range = 0.49;
  mix.p_spatial = 0.09;
  mix.p_identity = 0.14;
  mix.p_aggregate = 0.11;
  mix.p_join = 0.12;
  return mix;
}

/// Shared EDR-shaped shell: phases are appended by each builtin.
ScenarioSpec EdrShell(std::string name) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  // All the template-machinery defaults already equal MakeEdrOptions().
  return spec;
}

PhaseSpec MakePhase(std::string name, uint64_t queries) {
  PhaseSpec phase;
  phase.name = std::move(name);
  phase.queries = queries;
  return phase;
}

/// The legacy EDR workload as a one-phase scenario; bit-identical to
/// TraceGenerator(MakeEdrOptions()).Generate().
ScenarioSpec Steady() {
  ScenarioSpec spec = EdrShell("steady");
  spec.target_bytes = EdrTargetFor(27'663);
  PhaseSpec phase = MakePhase("steady", 27'663);
  phase.mix = spec.default_mix;
  phase.dist = spec.default_dist;
  spec.phases.push_back(std::move(phase));
  return spec;
}

/// Alternating day/night load: days are interactive (peaked Zipf reuse,
/// high arrival rate), nights are batch (flatter reuse, aggregate/join
/// heavy, a quarter of the day rate).
ScenarioSpec Diurnal() {
  ScenarioSpec spec = EdrShell("diurnal");
  spec.target_bytes = EdrTargetFor(24'000);
  for (int day = 0; day < 3; ++day) {
    PhaseSpec day_phase = MakePhase("day" + std::to_string(day + 1), 6'000);
    day_phase.load_scale = 1.6;
    day_phase.mix = spec.default_mix;
    day_phase.dist = spec.default_dist;
    spec.phases.push_back(std::move(day_phase));

    PhaseSpec night = MakePhase("night" + std::to_string(day + 1), 2'000);
    night.load_scale = 0.4;
    night.mix.p_range = 0.38;
    night.mix.p_spatial = 0.05;
    night.mix.p_identity = 0.05;
    night.mix.p_aggregate = 0.25;
    night.mix.p_join = 0.20;
    night.dist.theta = 0.6;  // batch jobs reuse templates far less
    spec.phases.push_back(std::move(night));
  }
  return spec;
}

/// A supernova announcement: calm traffic, then a flash crowd pinning
/// most region queries to one sky region while template reuse collapses
/// onto a small drifting hot set, then a long cool-down.
ScenarioSpec FlashCrowd() {
  ScenarioSpec spec = EdrShell("flashcrowd");
  spec.target_bytes = EdrTargetFor(22'000);

  PhaseSpec calm = MakePhase("calm", 8'000);
  calm.mix = spec.default_mix;
  calm.dist = spec.default_dist;
  spec.phases.push_back(std::move(calm));

  PhaseSpec flash = MakePhase("flash", 6'000);
  flash.load_scale = 3.0;
  flash.mix = spec.default_mix;
  flash.mix.p_range = 0.58;
  flash.mix.p_spatial = 0.12;
  flash.mix.p_identity = 0.10;
  flash.mix.p_aggregate = 0.06;
  flash.mix.p_join = 0.10;
  flash.dist.kind = workload::DistKind::kHotspot;
  flash.dist.hot_fraction = 0.92;
  flash.dist.hot_ranks = 0.25;
  flash.dist.drift = 4;
  flash.region_boost = 0.85;
  flash.region_lo = 131'072;
  flash.region_span = 4'096;
  spec.phases.push_back(std::move(flash));

  PhaseSpec cooldown = MakePhase("cooldown", 8'000);
  cooldown.mix = spec.default_mix;
  cooldown.dist = spec.default_dist;
  cooldown.region_boost = 0.25;
  cooldown.region_lo = 131'072;
  cooldown.region_span = 4'096;
  spec.phases.push_back(std::move(cooldown));
  return spec;
}

/// EDR-to-DR1 data release against the DR1 catalog: the EDR era sees
/// only the 1/2.3 visible row prefix with the EDR mix; release day makes
/// everything visible and shifts to the more dispersed DR1 mix.
ScenarioSpec ReleaseUpgrade() {
  ScenarioSpec spec = EdrShell("release_upgrade");
  spec.dr1 = true;
  spec.seed = 20050406;
  spec.churn = 0.55;
  spec.churn_phases = 10;
  spec.target_bytes = Dr1TargetFor(26'000);

  PhaseSpec edr_era = MakePhase("edr_era", 14'000);
  edr_era.mix = spec.default_mix;  // the EDR-shaped mix
  edr_era.dist = spec.default_dist;
  edr_era.visible_lo = kEdrFractionOfDr1;
  edr_era.visible_hi = kEdrFractionOfDr1;
  spec.phases.push_back(std::move(edr_era));

  PhaseSpec dr1_era = MakePhase("dr1_era", 12'000);
  dr1_era.mix = Dr1Mix();
  dr1_era.dist = spec.default_dist;
  dr1_era.dist.theta = 0.9;
  dr1_era.visible_lo = 1.0;
  dr1_era.visible_hi = 1.0;
  spec.phases.push_back(std::move(dr1_era));
  return spec;
}

/// A repository in active ingest: the visible universe grows from a
/// quarter of the release to all of it across three observing seasons —
/// object identifiers and sky anchors only ever extend forward.
ScenarioSpec GrowingRepo() {
  ScenarioSpec spec = EdrShell("growing_repo");
  spec.target_bytes = EdrTargetFor(27'000);
  const double kEdges[] = {0.25, 0.50, 0.75, 1.0};
  const char* kNames[] = {"season1", "season2", "season3"};
  for (int i = 0; i < 3; ++i) {
    PhaseSpec phase = MakePhase(kNames[i], 9'000);
    phase.mix = spec.default_mix;
    phase.dist = spec.default_dist;
    phase.visible_lo = kEdges[i];
    phase.visible_hi = kEdges[i + 1];
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

/// Three client populations sharing the archive: an interactive
/// astronomer (peaked Zipf reuse), a survey robot (drifting hotspot),
/// and an archive crawler (uniform, no reuse to speak of).
ScenarioSpec MultiTenant() {
  ScenarioSpec spec = EdrShell("multi_tenant");
  spec.target_bytes = EdrTargetFor(24'000);
  PhaseSpec phase = MakePhase("shared", 24'000);
  phase.mix = spec.default_mix;
  phase.dist = spec.default_dist;

  TenantSpec interactive;
  interactive.name = "interactive";
  interactive.weight = 0.55;
  interactive.dist = spec.default_dist;
  interactive.dist.theta = 1.2;
  phase.tenants.push_back(std::move(interactive));

  TenantSpec robot;
  robot.name = "robot";
  robot.weight = 0.30;
  robot.dist.kind = workload::DistKind::kHotspot;
  robot.dist.hot_fraction = 0.95;
  robot.dist.hot_ranks = 0.15;
  robot.dist.drift = 8;
  phase.tenants.push_back(std::move(robot));

  TenantSpec crawler;
  crawler.name = "crawler";
  crawler.weight = 0.15;
  crawler.dist.kind = workload::DistKind::kUniform;
  phase.tenants.push_back(std::move(crawler));

  spec.phases.push_back(std::move(phase));
  return spec;
}

}  // namespace

const std::vector<std::string>& BuiltinScenarioNames() {
  static const std::vector<std::string> kNames = {
      "steady",       "diurnal",      "flashcrowd",
      "release_upgrade", "growing_repo", "multi_tenant"};
  return kNames;
}

Result<ScenarioSpec> BuiltinScenario(std::string_view name) {
  ScenarioSpec spec;
  if (name == "steady") {
    spec = Steady();
  } else if (name == "diurnal") {
    spec = Diurnal();
  } else if (name == "flashcrowd") {
    spec = FlashCrowd();
  } else if (name == "release_upgrade") {
    spec = ReleaseUpgrade();
  } else if (name == "growing_repo") {
    spec = GrowingRepo();
  } else if (name == "multi_tenant") {
    spec = MultiTenant();
  } else {
    return Status::NotFound("unknown builtin scenario '" + std::string(name) +
                            "'");
  }
  Status st = ValidateScenarioSpec(spec);
  if (!st.ok()) {
    return Status::Internal("builtin scenario '" + std::string(name) +
                            "' failed validation: " + st.message());
  }
  return spec;
}

}  // namespace byc::scenario
