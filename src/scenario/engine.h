#ifndef BYC_SCENARIO_ENGINE_H_
#define BYC_SCENARIO_ENGINE_H_

// Turns a validated ScenarioSpec into one seed-deterministic Trace. The
// engine owns a single Rng seeded with the scenario seed and threads it
// through every phase in order, so the whole trace — not each phase in
// isolation — is a pure function of (catalog, spec). A one-phase
// scenario whose knobs match a GeneratorOptions preset reproduces the
// legacy TraceGenerator::Generate() trace byte-for-byte: same Rng, same
// draw sequence, same calibration pass.

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "scenario/spec.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace byc::scenario {

/// A generated scenario trace plus the phase/tenant structure the flat
/// query list came from — enough for the bench layer to weight phases
/// by load and for tests to assert per-phase properties.
struct ScenarioTrace {
  workload::Trace trace;
  /// phases.size() + 1 offsets; phase i covers queries
  /// [phase_offsets[i], phase_offsets[i + 1]).
  std::vector<size_t> phase_offsets;
  /// Per-query tenant index inside its phase (0 when the phase has no
  /// explicit tenants).
  std::vector<uint16_t> tenant_of_query;

  size_t num_phases() const {
    return phase_offsets.empty() ? 0 : phase_offsets.size() - 1;
  }
};

/// Emits one phase's queries into the shared trace. The engine hands
/// every generator the same Rng in phase order; implementations draw all
/// randomness from it so the cross-phase stream stays deterministic.
class PhaseGenerator {
 public:
  virtual ~PhaseGenerator() = default;

  virtual const PhaseSpec& phase() const = 0;

  /// Appends phase().queries queries (and one tenant id each) to `out`.
  virtual void Generate(Rng& rng, workload::Trace& out,
                        std::vector<uint16_t>& tenants) = 0;
};

/// The standard phase generator: class-mix query sampling through a
/// per-tenant RankSampler, with visibility interpolation (growing
/// repository), region pinning (flash crowd), and hotspot drift driven
/// by phase progress.
class MixPhaseGenerator : public PhaseGenerator {
 public:
  /// `global_start` is the phase's first global query index and
  /// `total_queries` the scenario total; together they place each query
  /// in the scenario-wide template-churn epoch timeline.
  MixPhaseGenerator(workload::TraceGenerator* generator,
                    const PhaseSpec& phase, uint64_t global_start,
                    uint64_t total_queries);

  const PhaseSpec& phase() const override { return phase_; }

  void Generate(Rng& rng, workload::Trace& out,
                std::vector<uint16_t>& tenants) override;

 private:
  workload::TraceGenerator* generator_;
  PhaseSpec phase_;
  uint64_t global_start_;
  uint64_t total_queries_;
  /// One sampler per tenant; a single implicit sampler when the phase
  /// declares none.
  std::vector<workload::RankSampler> samplers_;
  std::vector<double> cumulative_weight_;
};

/// Drives the phase generators over a shared TraceGenerator and
/// calibrates the assembled trace to the scenario target.
class ScenarioEngine {
 public:
  /// The spec must be valid (ValidateScenarioSpec). The EDR/DR1 flag in
  /// the spec must match the catalog the caller resolved.
  ScenarioEngine(const catalog::Catalog* catalog, const ScenarioSpec& spec);

  const ScenarioSpec& spec() const { return spec_; }

  /// Generates the whole scenario trace. Deterministic given
  /// (catalog, spec); callable repeatedly, each call re-runs from the
  /// scenario seed.
  ScenarioTrace Generate();

  /// The visible-universe fraction in effect at a global query index
  /// (for tests asserting growing-repository monotonicity).
  double VisibleFractionAt(uint64_t global_index) const;

 private:
  const catalog::Catalog* catalog_;
  ScenarioSpec spec_;
  workload::TraceGenerator generator_;
};

}  // namespace byc::scenario

#endif  // BYC_SCENARIO_ENGINE_H_
