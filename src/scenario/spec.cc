#include "scenario/spec.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace byc::scenario {

namespace {

// %.17g prints a double with enough digits that strtod reproduces the
// exact bit pattern — required so a parsed scenario replays
// bit-identically to the original (the repo's determinism contract).
void AppendDouble(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.17g", key, value);
  out += buf;
}

void AppendU64(std::string& out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, value);
  out += buf;
}

Result<uint64_t> ParseU64Value(std::string_view key, std::string_view text) {
  std::string owned(text);
  if (owned.empty() || owned[0] == '-' || owned[0] == '+') {
    return Status::InvalidArgument("ScenarioSpec: bad " + std::string(key) +
                                   " value '" + owned + "'");
  }
  errno = 0;
  char* end = nullptr;
  uint64_t value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return Status::InvalidArgument("ScenarioSpec: bad " + std::string(key) +
                                   " value '" + owned + "'");
  }
  return value;
}

Result<double> ParseDoubleValue(std::string_view key, std::string_view text) {
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(owned.c_str(), &end);
  if (owned.empty() || errno != 0 || end != owned.c_str() + owned.size()) {
    return Status::InvalidArgument("ScenarioSpec: bad " + std::string(key) +
                                   " value '" + owned + "'");
  }
  return value;
}

void AppendMix(std::string& out, const workload::ClassMix& mix) {
  AppendDouble(out, "p_range", mix.p_range);
  AppendDouble(out, "p_spatial", mix.p_spatial);
  AppendDouble(out, "p_identity", mix.p_identity);
  AppendDouble(out, "p_aggregate", mix.p_aggregate);
  AppendDouble(out, "p_join", mix.p_join);
}

void AppendDist(std::string& out, const workload::DistributionSpec& dist) {
  out += " dist=";
  out += workload::DistKindName(dist.kind);
  AppendDouble(out, "theta", dist.theta);
  AppendDouble(out, "hot_fraction", dist.hot_fraction);
  AppendDouble(out, "hot_ranks", dist.hot_ranks);
  AppendDouble(out, "drift", dist.drift);
}

/// Consumes a mix key if `key` is one; reports via `handled`.
Status TryMixKey(workload::ClassMix& mix, std::string_view key,
                 std::string_view value, bool& handled) {
  handled = true;
  double* field = nullptr;
  if (key == "p_range") {
    field = &mix.p_range;
  } else if (key == "p_spatial") {
    field = &mix.p_spatial;
  } else if (key == "p_identity") {
    field = &mix.p_identity;
  } else if (key == "p_aggregate") {
    field = &mix.p_aggregate;
  } else if (key == "p_join") {
    field = &mix.p_join;
  } else {
    handled = false;
    return Status::OK();
  }
  BYC_ASSIGN_OR_RETURN(*field, ParseDoubleValue(key, value));
  return Status::OK();
}

/// Consumes a distribution key if `key` is one; reports via `handled`.
Status TryDistKey(workload::DistributionSpec& dist, std::string_view key,
                  std::string_view value, bool& handled) {
  handled = true;
  if (key == "dist") {
    std::optional<workload::DistKind> kind = workload::ParseDistKind(value);
    if (!kind) {
      return Status::InvalidArgument("ScenarioSpec: unknown dist '" +
                                     std::string(value) + "'");
    }
    dist.kind = *kind;
    return Status::OK();
  }
  double* field = nullptr;
  if (key == "theta") {
    field = &dist.theta;
  } else if (key == "hot_fraction") {
    field = &dist.hot_fraction;
  } else if (key == "hot_ranks") {
    field = &dist.hot_ranks;
  } else if (key == "drift") {
    field = &dist.drift;
  } else {
    handled = false;
    return Status::OK();
  }
  BYC_ASSIGN_OR_RETURN(*field, ParseDoubleValue(key, value));
  return Status::OK();
}

struct Pair {
  std::string_view key;
  std::string_view value;
};

Result<std::vector<Pair>> SplitPairs(std::string_view line,
                                     std::string_view record) {
  std::vector<Pair> pairs;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) break;
    size_t end = line.find(' ', pos);
    if (end == std::string_view::npos) end = line.size();
    std::string_view pair = line.substr(pos, end - pos);
    pos = end;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("ScenarioSpec: malformed " +
                                     std::string(record) + " pair '" +
                                     std::string(pair) + "'");
    }
    pairs.push_back({pair.substr(0, eq), pair.substr(eq + 1)});
  }
  return pairs;
}

Status CheckName(std::string_view what, std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("ScenarioSpec: empty " + std::string(what) +
                                   " name");
  }
  for (char c : name) {
    if (c == ' ' || c == '=' || c == '#' || c == '\n' || c == '\t') {
      return Status::InvalidArgument("ScenarioSpec: invalid " +
                                     std::string(what) + " name '" +
                                     std::string(name) + "'");
    }
  }
  return Status::OK();
}

Status CheckFraction(std::string_view key, double v) {
  if (!(v >= 0.0 && v <= 1.0)) {
    return Status::InvalidArgument("ScenarioSpec: " + std::string(key) +
                                   " must be in [0, 1]");
  }
  return Status::OK();
}

Status CheckMix(std::string_view where, const workload::ClassMix& mix) {
  for (double p : {mix.p_range, mix.p_spatial, mix.p_identity,
                   mix.p_aggregate, mix.p_join}) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("ScenarioSpec: " + std::string(where) +
                                     " class probabilities must be in [0, 1]");
    }
  }
  if (!(mix.hot_mass() <= 1.0 + 1e-9)) {
    return Status::InvalidArgument("ScenarioSpec: " + std::string(where) +
                                   " class probabilities sum past 1");
  }
  return Status::OK();
}

Status CheckDist(std::string_view where,
                 const workload::DistributionSpec& dist) {
  if (!(dist.theta >= 0.0)) {
    return Status::InvalidArgument("ScenarioSpec: " + std::string(where) +
                                   " theta must be >= 0");
  }
  if (!(dist.hot_fraction >= 0.0 && dist.hot_fraction <= 1.0) ||
      !(dist.hot_ranks >= 0.0 && dist.hot_ranks <= 1.0)) {
    return Status::InvalidArgument("ScenarioSpec: " + std::string(where) +
                                   " hot_fraction/hot_ranks must be in [0, 1]");
  }
  if (!(dist.drift >= 0.0)) {
    return Status::InvalidArgument("ScenarioSpec: " + std::string(where) +
                                   " drift must be >= 0");
  }
  return Status::OK();
}

Status ParseScenarioLine(ScenarioSpec& spec, std::string_view line) {
  BYC_ASSIGN_OR_RETURN(std::vector<Pair> pairs, SplitPairs(line, "scenario"));
  for (const Pair& p : pairs) {
    bool handled = false;
    Status st = TryMixKey(spec.default_mix, p.key, p.value, handled);
    if (!st.ok()) return st;
    if (handled) continue;
    st = TryDistKey(spec.default_dist, p.key, p.value, handled);
    if (!st.ok()) return st;
    if (handled) continue;
    if (p.key == "name") {
      spec.name = std::string(p.value);
    } else if (p.key == "catalog") {
      if (p.value == "EDR") {
        spec.dr1 = false;
      } else if (p.value == "DR1") {
        spec.dr1 = true;
      } else {
        return Status::InvalidArgument("ScenarioSpec: unknown catalog '" +
                                       std::string(p.value) + "'");
      }
    } else if (p.key == "seed") {
      BYC_ASSIGN_OR_RETURN(spec.seed, ParseU64Value(p.key, p.value));
    } else if (p.key == "target_bytes") {
      BYC_ASSIGN_OR_RETURN(spec.target_bytes, ParseDoubleValue(p.key, p.value));
    } else if (p.key == "templates") {
      BYC_ASSIGN_OR_RETURN(spec.templates_per_class,
                           ParseU64Value(p.key, p.value));
    } else if (p.key == "hot_columns") {
      BYC_ASSIGN_OR_RETURN(spec.hot_columns, ParseU64Value(p.key, p.value));
    } else if (p.key == "churn_phases") {
      BYC_ASSIGN_OR_RETURN(spec.churn_phases, ParseU64Value(p.key, p.value));
    } else if (p.key == "churn") {
      BYC_ASSIGN_OR_RETURN(spec.churn, ParseDoubleValue(p.key, p.value));
    } else if (p.key == "sigma") {
      BYC_ASSIGN_OR_RETURN(spec.sigma, ParseDoubleValue(p.key, p.value));
    } else if (p.key == "sky_cells") {
      BYC_ASSIGN_OR_RETURN(spec.sky_cells, ParseU64Value(p.key, p.value));
    } else {
      return Status::InvalidArgument("ScenarioSpec: unknown scenario key '" +
                                     std::string(p.key) + "'");
    }
  }
  return Status::OK();
}

Status ParsePhaseLine(const ScenarioSpec& spec, PhaseSpec& phase,
                      std::string_view line) {
  phase.mix = spec.default_mix;
  phase.dist = spec.default_dist;
  BYC_ASSIGN_OR_RETURN(std::vector<Pair> pairs, SplitPairs(line, "phase"));
  for (const Pair& p : pairs) {
    bool handled = false;
    Status st = TryMixKey(phase.mix, p.key, p.value, handled);
    if (!st.ok()) return st;
    if (handled) continue;
    st = TryDistKey(phase.dist, p.key, p.value, handled);
    if (!st.ok()) return st;
    if (handled) continue;
    if (p.key == "name") {
      phase.name = std::string(p.value);
    } else if (p.key == "queries") {
      BYC_ASSIGN_OR_RETURN(phase.queries, ParseU64Value(p.key, p.value));
    } else if (p.key == "load") {
      BYC_ASSIGN_OR_RETURN(phase.load_scale, ParseDoubleValue(p.key, p.value));
    } else if (p.key == "region_boost") {
      BYC_ASSIGN_OR_RETURN(phase.region_boost,
                           ParseDoubleValue(p.key, p.value));
    } else if (p.key == "region_lo") {
      BYC_ASSIGN_OR_RETURN(phase.region_lo, ParseU64Value(p.key, p.value));
    } else if (p.key == "region_span") {
      BYC_ASSIGN_OR_RETURN(phase.region_span, ParseU64Value(p.key, p.value));
    } else if (p.key == "visible_lo") {
      BYC_ASSIGN_OR_RETURN(phase.visible_lo, ParseDoubleValue(p.key, p.value));
    } else if (p.key == "visible_hi") {
      BYC_ASSIGN_OR_RETURN(phase.visible_hi, ParseDoubleValue(p.key, p.value));
    } else {
      return Status::InvalidArgument("ScenarioSpec: unknown phase key '" +
                                     std::string(p.key) + "'");
    }
  }
  return Status::OK();
}

Status ParseTenantLine(const PhaseSpec& phase, TenantSpec& tenant,
                       std::string_view line) {
  tenant.dist = phase.dist;
  BYC_ASSIGN_OR_RETURN(std::vector<Pair> pairs, SplitPairs(line, "tenant"));
  for (const Pair& p : pairs) {
    bool handled = false;
    Status st = TryDistKey(tenant.dist, p.key, p.value, handled);
    if (!st.ok()) return st;
    if (handled) continue;
    if (p.key == "name") {
      tenant.name = std::string(p.value);
    } else if (p.key == "weight") {
      BYC_ASSIGN_OR_RETURN(tenant.weight, ParseDoubleValue(p.key, p.value));
    } else {
      return Status::InvalidArgument("ScenarioSpec: unknown tenant key '" +
                                     std::string(p.key) + "'");
    }
  }
  return Status::OK();
}

}  // namespace

workload::GeneratorOptions ScenarioSpec::BaseOptions() const {
  workload::GeneratorOptions options;
  options.seed = seed;
  options.num_queries = total_queries();
  options.target_sequence_cost = 0;  // the engine calibrates explicitly
  options.mix = default_mix;
  options.templates_per_class = static_cast<int>(templates_per_class);
  options.template_dist = default_dist;
  options.hot_columns_per_table = static_cast<int>(hot_columns);
  options.num_phases = static_cast<int>(churn_phases);
  options.phase_churn = churn;
  options.selectivity_sigma = sigma;
  options.num_sky_cells = static_cast<int64_t>(sky_cells);
  return options;
}

std::string FormatScenarioSpec(const ScenarioSpec& spec) {
  std::string out = "scenario name=" + spec.name;
  out += " catalog=";
  out += spec.dr1 ? "DR1" : "EDR";
  AppendU64(out, "seed", spec.seed);
  AppendDouble(out, "target_bytes", spec.target_bytes);
  AppendU64(out, "templates", spec.templates_per_class);
  AppendU64(out, "hot_columns", spec.hot_columns);
  AppendU64(out, "churn_phases", spec.churn_phases);
  AppendDouble(out, "churn", spec.churn);
  AppendDouble(out, "sigma", spec.sigma);
  AppendU64(out, "sky_cells", spec.sky_cells);
  AppendMix(out, spec.default_mix);
  AppendDist(out, spec.default_dist);
  out += '\n';
  for (const PhaseSpec& phase : spec.phases) {
    out += "phase name=" + phase.name;
    AppendU64(out, "queries", phase.queries);
    AppendDouble(out, "load", phase.load_scale);
    AppendMix(out, phase.mix);
    AppendDist(out, phase.dist);
    AppendDouble(out, "region_boost", phase.region_boost);
    AppendU64(out, "region_lo", phase.region_lo);
    AppendU64(out, "region_span", phase.region_span);
    AppendDouble(out, "visible_lo", phase.visible_lo);
    AppendDouble(out, "visible_hi", phase.visible_hi);
    out += '\n';
    for (const TenantSpec& tenant : phase.tenants) {
      out += "tenant name=" + tenant.name;
      AppendDouble(out, "weight", tenant.weight);
      AppendDist(out, tenant.dist);
      out += '\n';
    }
  }
  return out;
}

Result<ScenarioSpec> ParseScenarioSpec(std::string_view text) {
  ScenarioSpec spec;
  bool saw_scenario = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    size_t sp = line.find(' ');
    std::string_view record = line.substr(0, sp);
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view() : line.substr(sp);
    if (record == "scenario") {
      if (saw_scenario) {
        return Status::InvalidArgument(
            "ScenarioSpec: duplicate scenario record");
      }
      if (!spec.phases.empty()) {
        return Status::InvalidArgument(
            "ScenarioSpec: scenario record must precede phases");
      }
      saw_scenario = true;
      Status st = ParseScenarioLine(spec, rest);
      if (!st.ok()) return st;
    } else if (record == "phase") {
      if (!saw_scenario) {
        return Status::InvalidArgument(
            "ScenarioSpec: phase record before scenario record");
      }
      PhaseSpec phase;
      Status st = ParsePhaseLine(spec, phase, rest);
      if (!st.ok()) return st;
      spec.phases.push_back(std::move(phase));
    } else if (record == "tenant") {
      if (spec.phases.empty()) {
        return Status::InvalidArgument(
            "ScenarioSpec: tenant record before any phase");
      }
      TenantSpec tenant;
      Status st = ParseTenantLine(spec.phases.back(), tenant, rest);
      if (!st.ok()) return st;
      spec.phases.back().tenants.push_back(std::move(tenant));
    } else {
      return Status::InvalidArgument("ScenarioSpec: unknown record '" +
                                     std::string(record) + "'");
    }
  }
  if (!saw_scenario) {
    return Status::InvalidArgument("ScenarioSpec: missing scenario record");
  }
  Status st = ValidateScenarioSpec(spec);
  if (!st.ok()) return st;
  return spec;
}

Result<ScenarioSpec> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("scenario file '" + path + "' not readable");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("scenario file '" + path + "' read failed");
  }
  return ParseScenarioSpec(buffer.str());
}

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  Status st = CheckName("scenario", spec.name);
  if (!st.ok()) return st;
  if (spec.templates_per_class < 1 || spec.churn_phases < 1 ||
      spec.hot_columns < 1 || spec.sky_cells < 1) {
    return Status::InvalidArgument(
        "ScenarioSpec: templates/hot_columns/churn_phases/sky_cells must be "
        ">= 1");
  }
  st = CheckFraction("churn", spec.churn);
  if (!st.ok()) return st;
  if (!(spec.sigma >= 0.0)) {
    return Status::InvalidArgument("ScenarioSpec: sigma must be >= 0");
  }
  if (!(spec.target_bytes >= 0.0)) {
    return Status::InvalidArgument("ScenarioSpec: target_bytes must be >= 0");
  }
  st = CheckMix("scenario", spec.default_mix);
  if (!st.ok()) return st;
  st = CheckDist("scenario", spec.default_dist);
  if (!st.ok()) return st;
  if (spec.phases.empty()) {
    return Status::InvalidArgument("ScenarioSpec: scenario has no phases");
  }
  double prev_hi = 0;
  for (const PhaseSpec& phase : spec.phases) {
    st = CheckName("phase", phase.name);
    if (!st.ok()) return st;
    if (phase.queries < 1) {
      return Status::InvalidArgument("ScenarioSpec: phase '" + phase.name +
                                     "' has zero queries");
    }
    if (!(phase.load_scale > 0.0)) {
      return Status::InvalidArgument("ScenarioSpec: phase '" + phase.name +
                                     "' load must be > 0");
    }
    st = CheckMix("phase", phase.mix);
    if (!st.ok()) return st;
    st = CheckDist("phase", phase.dist);
    if (!st.ok()) return st;
    st = CheckFraction("region_boost", phase.region_boost);
    if (!st.ok()) return st;
    if (phase.region_boost > 0.0) {
      if (phase.region_span < 1 ||
          phase.region_lo + phase.region_span > spec.sky_cells) {
        return Status::InvalidArgument(
            "ScenarioSpec: phase '" + phase.name +
            "' pinned region must fit in [0, sky_cells)");
      }
    }
    if (!(phase.visible_lo > 0.0 && phase.visible_lo <= 1.0) ||
        !(phase.visible_hi > 0.0 && phase.visible_hi <= 1.0)) {
      return Status::InvalidArgument("ScenarioSpec: phase '" + phase.name +
                                     "' visibility must be in (0, 1]");
    }
    if (phase.visible_lo > phase.visible_hi ||
        phase.visible_lo < prev_hi) {
      // Objects only ever appear: the visible universe grows monotonically
      // within a phase and across phase boundaries.
      return Status::InvalidArgument("ScenarioSpec: phase '" + phase.name +
                                     "' visibility must be non-decreasing");
    }
    prev_hi = phase.visible_hi;
    if (phase.tenants.size() > 65'535) {
      return Status::InvalidArgument("ScenarioSpec: phase '" + phase.name +
                                     "' has too many tenants");
    }
    for (const TenantSpec& tenant : phase.tenants) {
      st = CheckName("tenant", tenant.name);
      if (!st.ok()) return st;
      if (!(tenant.weight > 0.0)) {
        return Status::InvalidArgument("ScenarioSpec: tenant '" + tenant.name +
                                       "' weight must be > 0");
      }
      st = CheckDist("tenant", tenant.dist);
      if (!st.ok()) return st;
    }
  }
  return Status::OK();
}

ScenarioSpec ScaleScenarioQueries(ScenarioSpec spec, uint64_t total_queries) {
  uint64_t old_total = spec.total_queries();
  if (total_queries == 0 || old_total == 0 || old_total == total_queries) {
    return spec;
  }
  BYC_CHECK_GE(total_queries, spec.phases.size());
  uint64_t assigned = 0;
  for (size_t i = 0; i + 1 < spec.phases.size(); ++i) {
    PhaseSpec& phase = spec.phases[i];
    uint64_t scaled = static_cast<uint64_t>(
        static_cast<unsigned __int128>(phase.queries) * total_queries /
        old_total);
    scaled = std::max<uint64_t>(scaled, 1);
    // Leave at least one query for every remaining phase.
    uint64_t reserve = spec.phases.size() - i - 1;
    scaled = std::min(scaled, total_queries - assigned - reserve);
    phase.queries = scaled;
    assigned += scaled;
  }
  spec.phases.back().queries = total_queries - assigned;
  // Keep per-query cost density: the same arithmetic the legacy bench
  // path (MakeRelease) uses to shrink a preset, so a scaled one-phase
  // scenario stays bit-identical to the scaled legacy generator.
  if (spec.target_bytes > 0) {
    spec.target_bytes *= static_cast<double>(total_queries) /
                         static_cast<double>(old_total);
  }
  return spec;
}

}  // namespace byc::scenario
