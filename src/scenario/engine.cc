#include "scenario/engine.h"

#include <algorithm>

#include "common/check.h"

namespace byc::scenario {

MixPhaseGenerator::MixPhaseGenerator(workload::TraceGenerator* generator,
                                     const PhaseSpec& phase,
                                     uint64_t global_start,
                                     uint64_t total_queries)
    : generator_(generator),
      phase_(phase),
      global_start_(global_start),
      total_queries_(total_queries) {
  BYC_CHECK_GE(total_queries_, 1u);
  size_t templates = generator_->options().templates_per_class > 0
                         ? static_cast<size_t>(
                               generator_->options().templates_per_class)
                         : 1;
  if (phase_.tenants.empty()) {
    samplers_.emplace_back(templates, phase_.dist);
    cumulative_weight_.push_back(1.0);
  } else {
    double sum = 0;
    for (const TenantSpec& tenant : phase_.tenants) {
      samplers_.emplace_back(templates, tenant.dist);
      sum += tenant.weight;
      cumulative_weight_.push_back(sum);
    }
  }
}

void MixPhaseGenerator::Generate(Rng& rng, workload::Trace& out,
                                 std::vector<uint16_t>& tenants) {
  workload::SampleWindow window;
  window.pin_fraction = phase_.region_boost;
  window.region_lo = static_cast<int64_t>(phase_.region_lo);
  window.region_span = static_cast<int64_t>(phase_.region_span);

  size_t churn_phases = generator_->num_churn_phases();
  BYC_CHECK_GE(churn_phases, 1u);
  for (uint64_t i = 0; i < phase_.queries; ++i) {
    uint64_t global = global_start_ + i;
    size_t churn = static_cast<size_t>(global * churn_phases /
                                       total_queries_);
    double progress = static_cast<double>(i + 1) /
                      static_cast<double>(phase_.queries);
    // Lerp is exact at the unconstrained endpoints: lo == hi == 1 yields
    // exactly 1.0, which keeps Instantiate on the legacy draw path.
    window.visible_fraction =
        phase_.visible_lo +
        (phase_.visible_hi - phase_.visible_lo) * progress;

    size_t tenant = 0;
    if (samplers_.size() > 1) {
      double u = rng.NextDouble() * cumulative_weight_.back();
      tenant = static_cast<size_t>(
          std::upper_bound(cumulative_weight_.begin(),
                           cumulative_weight_.end(), u) -
          cumulative_weight_.begin());
      tenant = std::min(tenant, samplers_.size() - 1);
    }
    out.queries.push_back(generator_->SampleQuery(
        rng, phase_.mix, samplers_[tenant], churn, progress, window));
    tenants.push_back(static_cast<uint16_t>(tenant));
  }
}

ScenarioEngine::ScenarioEngine(const catalog::Catalog* catalog,
                               const ScenarioSpec& spec)
    : catalog_(catalog), spec_(spec), generator_(catalog, spec.BaseOptions()) {
  BYC_CHECK(!spec_.phases.empty());
  generator_.EnsureTemplates();
}

ScenarioTrace ScenarioEngine::Generate() {
  uint64_t total = spec_.total_queries();
  ScenarioTrace result;
  result.trace.name = catalog_->name();
  result.trace.queries.reserve(total);
  result.tenant_of_query.reserve(total);
  result.phase_offsets.push_back(0);

  // One Rng across every phase: the scenario, not the phase, is the unit
  // of determinism.
  Rng rng(spec_.seed);
  uint64_t start = 0;
  for (const PhaseSpec& phase : spec_.phases) {
    MixPhaseGenerator generator(&generator_, phase, start, total);
    generator.Generate(rng, result.trace, result.tenant_of_query);
    start += phase.queries;
    result.phase_offsets.push_back(result.trace.queries.size());
  }
  BYC_CHECK_EQ(result.trace.queries.size(), total);

  generator_.CalibrateTo(result.trace, spec_.target_bytes);
  return result;
}

double ScenarioEngine::VisibleFractionAt(uint64_t global_index) const {
  uint64_t start = 0;
  for (const PhaseSpec& phase : spec_.phases) {
    if (global_index < start + phase.queries) {
      double progress = static_cast<double>(global_index - start + 1) /
                        static_cast<double>(phase.queries);
      return phase.visible_lo +
             (phase.visible_hi - phase.visible_lo) * progress;
    }
    start += phase.queries;
  }
  return spec_.phases.back().visible_hi;
}

}  // namespace byc::scenario
