#ifndef BYC_SCENARIO_SPEC_H_
#define BYC_SCENARIO_SPEC_H_

// Declarative workload scenarios: a ScenarioSpec composes an ordered
// list of phases — each with a duration (query count), a tenant mix,
// and a rank distribution — into one replayable, seed-deterministic
// workload. The text format follows the PolicyConfig discipline: one
// record per line of space-separated key=value pairs, doubles printed
// %.17g so ParseScenarioSpec(FormatScenarioSpec(s)) reproduces every
// field bit-for-bit, and malformed or unknown keys are typed
// InvalidArgument errors, never silent defaults.
//
// Grammar (see DESIGN.md §14 for the full key table):
//
//   scenario name=<id> catalog=EDR|DR1 seed=<u64> target_bytes=<f> ...
//   phase    name=<id> queries=<u64> load=<f> p_range=<f> ... dist=<kind>
//            theta=<f> ... region_boost=<f> region_lo=<u64>
//            region_span=<u64> visible_lo=<f> visible_hi=<f>
//   tenant   name=<id> weight=<f> dist=<kind> theta=<f> ...
//
// `phase` records run in file order; `tenant` records attach to the
// most recent phase. Lines that are blank or start with '#' are
// ignored on input (checked-in scenario files carry comment headers);
// FormatScenarioSpec emits no comments, so the canonical form
// round-trips byte-exactly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "workload/distribution.h"
#include "workload/generator.h"

namespace byc::scenario {

/// One client population inside a phase. Tenants partition a phase's
/// queries by weight; each tenant reuses templates through its own rank
/// distribution (the interactive astronomer is Zipf-peaked, the survey
/// robot hammers a drifting hotspot, the archive crawler is uniform).
struct TenantSpec {
  std::string name = "tenant";
  double weight = 1.0;
  workload::DistributionSpec dist;

  bool operator==(const TenantSpec&) const = default;
};

/// One phase: `queries` consecutive queries drawn from a class mix, a
/// rank distribution (or per-tenant distributions), an optional pinned
/// sky region (flash crowd), and a visible-universe window (growing
/// repository / release upgrade). All values are fully resolved —
/// parsing applies scenario-level defaults, so a PhaseSpec never needs
/// its parent to be interpreted.
struct PhaseSpec {
  std::string name = "phase";
  uint64_t queries = 0;
  /// Declared relative arrival rate of this phase (diurnal swings).
  /// Replay is offered-load agnostic; the scenario matrix publishes
  /// load-weighted qps per cell from this.
  double load_scale = 1.0;
  workload::ClassMix mix;
  workload::DistributionSpec dist;
  /// Flash crowd: this fraction of the phase's region queries is pinned
  /// inside [region_lo, region_lo + region_span) sky cells.
  double region_boost = 0;
  uint64_t region_lo = 0;
  uint64_t region_span = 0;
  /// Growing repository: fraction of every table's rows (and of the sky
  /// cell universe) that exists at phase start/end; linearly
  /// interpolated inside the phase. Monotone within a phase and across
  /// phase boundaries — objects only ever appear.
  double visible_lo = 1.0;
  double visible_hi = 1.0;
  /// Tenant populations; empty means one implicit tenant using `dist`.
  std::vector<TenantSpec> tenants;

  bool operator==(const PhaseSpec&) const = default;
};

/// A whole scenario: the shared template-machinery knobs (the
/// GeneratorOptions vocabulary) plus the ordered phases.
struct ScenarioSpec {
  std::string name = "scenario";
  /// Catalog the workload runs against ("EDR" or "DR1").
  bool dr1 = false;
  uint64_t seed = 20050405;
  /// Whole-trace sequence-cost calibration target in bytes (0: off).
  double target_bytes = 0;
  /// Template machinery (see GeneratorOptions for semantics).
  uint64_t templates_per_class = 12;
  uint64_t hot_columns = 32;
  uint64_t churn_phases = 8;
  double churn = 0.35;
  double sigma = 0.30;
  uint64_t sky_cells = 262'144;
  /// Scenario-level defaults a phase record inherits for any key it
  /// omits (Format always writes the resolved per-phase values).
  workload::ClassMix default_mix;
  workload::DistributionSpec default_dist;
  std::vector<PhaseSpec> phases;

  uint64_t total_queries() const {
    uint64_t total = 0;
    for (const PhaseSpec& p : phases) total += p.queries;
    return total;
  }

  /// The GeneratorOptions equivalent of the scenario's shared knobs
  /// (target 0 — the engine calibrates the assembled trace itself).
  workload::GeneratorOptions BaseOptions() const;

  bool operator==(const ScenarioSpec&) const = default;
};

/// Serializes a spec in the canonical line format. Doubles are printed
/// %.17g; ParseScenarioSpec(FormatScenarioSpec(s)) == s bit-for-bit.
std::string FormatScenarioSpec(const ScenarioSpec& spec);

/// Parses the FormatScenarioSpec format (plus '#' comments and blank
/// lines). Malformed pairs, unknown record types or keys, out-of-range
/// values, and structurally invalid scenarios (no phases, zero-length
/// phase, non-monotone visibility, tenant weights <= 0, ...) are
/// InvalidArgument.
Result<ScenarioSpec> ParseScenarioSpec(std::string_view text);

/// Reads and parses a scenario file (see ParseScenarioSpec).
Result<ScenarioSpec> LoadScenarioFile(const std::string& path);

/// Structural validation shared by ParseScenarioSpec and code-built
/// specs (the builtins, tests, callers assembling specs directly).
Status ValidateScenarioSpec(const ScenarioSpec& spec);

/// Rescales every phase's query count proportionally so the scenario
/// totals `total_queries` (each phase keeps >= 1 query; the last phase
/// absorbs rounding), and rescales the calibration target with the
/// exact arithmetic the legacy bench path uses. No-op when the total
/// already matches or total_queries == 0.
ScenarioSpec ScaleScenarioQueries(ScenarioSpec spec, uint64_t total_queries);

/// The six standing regression scenarios, by name: "steady", "diurnal",
/// "flashcrowd", "release_upgrade", "growing_repo", "multi_tenant".
/// Unknown names are NotFound. The checked-in files under
/// examples/scenarios/ carry exactly these specs.
Result<ScenarioSpec> BuiltinScenario(std::string_view name);
const std::vector<std::string>& BuiltinScenarioNames();

}  // namespace byc::scenario

#endif  // BYC_SCENARIO_SPEC_H_
