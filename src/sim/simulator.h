#ifndef BYC_SIM_SIMULATOR_H_
#define BYC_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "core/policy.h"
#include "federation/mediator.h"
#include "sim/accounting.h"
#include "workload/trace.h"

namespace byc::sim {

/// One sample of the cumulative-WAN-traffic curve (Figs. 7 and 8).
struct TimePoint {
  uint32_t query_index = 0;
  double cumulative_wan = 0;
};

/// Result of replaying a trace through one policy.
struct SimResult {
  std::string policy_name;
  CostBreakdown totals;
  std::vector<TimePoint> series;
};

/// Replays query traces through a cache policy, doing the mediator-side
/// decomposition and the WAN cost accounting. Consistency between the
/// policy's reported decisions and its residency is cross-checked on
/// every access.
class Simulator {
 public:
  struct Options {
    /// Sample the cumulative-cost series every N queries (0: no series).
    uint32_t sample_every = 64;
  };

  Simulator(const federation::Federation* federation,
            catalog::Granularity granularity)
      : mediator_(federation, granularity), options_(Options{}) {}

  Simulator(const federation::Federation* federation,
            catalog::Granularity granularity, const Options& options)
      : mediator_(federation, granularity), options_(options) {}

  const federation::Mediator& mediator() const { return mediator_; }

  /// Decomposes a trace into per-query access lists once; reuse the
  /// result to replay the same trace through many policies.
  std::vector<std::vector<core::Access>> DecomposeTrace(
      const workload::Trace& trace) const;

  /// Replays pre-decomposed accesses through `policy`.
  SimResult Run(core::CachePolicy& policy,
                const std::vector<std::vector<core::Access>>& queries) const;

  /// Convenience: decompose + run.
  SimResult Run(core::CachePolicy& policy,
                const workload::Trace& trace) const;

  /// Flattens per-query accesses (for offline static-set selection).
  static std::vector<core::Access> Flatten(
      const std::vector<std::vector<core::Access>>& queries);

 private:
  federation::Mediator mediator_;
  Options options_;
};

}  // namespace byc::sim

#endif  // BYC_SIM_SIMULATOR_H_
