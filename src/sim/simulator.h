#ifndef BYC_SIM_SIMULATOR_H_
#define BYC_SIM_SIMULATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/policy.h"
#include "federation/mediator.h"
#include "sim/accounting.h"
#include "workload/trace.h"

namespace byc::telemetry {
class DecisionTracer;
class MetricsRegistry;
}  // namespace byc::telemetry

namespace byc::sim {

/// One sample of the cumulative-WAN-traffic curve (Figs. 7 and 8).
struct TimePoint {
  uint32_t query_index = 0;
  double cumulative_wan = 0;
};

/// Result of replaying a trace through one policy.
struct SimResult {
  std::string policy_name;
  CostBreakdown totals;
  std::vector<TimePoint> series;
};

/// A trace decomposed once into a single flat, contiguous access stream
/// with per-query boundaries. This is the shared immutable input of a
/// sweep: decompose once per (release, granularity), then replay it
/// through any number of policy configurations (serially or via
/// SweepRunner) without re-decomposing or re-flattening. Query q's
/// accesses are accesses[offsets[q] .. offsets[q+1]).
struct DecomposedTrace {
  std::vector<core::Access> accesses;
  std::vector<size_t> offsets;  // size == num_queries() + 1

  size_t num_queries() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  size_t num_accesses() const { return accesses.size(); }
};

/// Replays query traces through a cache policy, doing the mediator-side
/// decomposition and the WAN cost accounting. Consistency between the
/// policy's reported decisions and its residency is cross-checked on
/// every access.
class Simulator {
 public:
  struct Options {
    /// Sample the cumulative-cost series every N queries (0: no series).
    /// When sampling is on, the final cumulative point is always emitted
    /// exactly once, whether or not sample_every divides the query count.
    uint32_t sample_every = 64;
    /// Telemetry sinks; null (the default) disables all instrumentation
    /// — the replay hot path then pays one branch per access and emits
    /// nothing, keeping results and outputs identical to an
    /// uninstrumented build. `metrics` receives phase spans (decompose /
    /// replay), replay throughput counters, and the decomposition-memo
    /// hit/miss gauges; it must be thread-safe across sweep workers
    /// (MetricsRegistry is). `tracer` receives one structured event per
    /// access (plus one per eviction) and belongs to a single replay —
    /// never share one tracer across parallel configurations.
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::DecisionTracer* tracer = nullptr;
  };

  Simulator(const federation::Federation* federation,
            catalog::Granularity granularity)
      : mediator_(federation, granularity), options_(Options{}) {}

  Simulator(const federation::Federation* federation,
            catalog::Granularity granularity, const Options& options)
      : mediator_(federation, granularity), options_(options) {}

  const federation::Mediator& mediator() const { return mediator_; }

  /// Decomposes a trace into per-query access lists once; reuse the
  /// result to replay the same trace through many policies.
  std::vector<std::vector<core::Access>> DecomposeTrace(
      const workload::Trace& trace) const;

  /// Decomposes a trace into the flat shared-sweep representation: one
  /// contiguous access vector plus query offsets (no per-query vectors,
  /// no later re-flattening for static-set selection).
  DecomposedTrace DecomposeFlat(const workload::Trace& trace) const;

  /// Replays pre-decomposed accesses through `policy`.
  SimResult Run(core::CachePolicy& policy,
                const std::vector<std::vector<core::Access>>& queries) const;

  /// Replays a flat decomposed trace through `policy`. Bit-identical to
  /// the nested-vector overload on the same decomposition.
  SimResult Run(core::CachePolicy& policy,
                const DecomposedTrace& trace) const;

  /// Convenience: decompose + run.
  SimResult Run(core::CachePolicy& policy,
                const workload::Trace& trace) const;

  /// Flattens per-query accesses (for offline static-set selection).
  static std::vector<core::Access> Flatten(
      const std::vector<std::vector<core::Access>>& queries);

 private:
  /// Scrapes decompose-phase counters and the mediator's memo hit/miss
  /// gauges into options_.metrics (no-op when telemetry is off).
  void RecordDecomposeMetrics(size_t num_queries) const;

  federation::Mediator mediator_;
  Options options_;
};

/// Replays a flat decomposed trace through `policy` with the given
/// options. The accesses carry all sizes and costs, so no federation or
/// mediator is needed — this is the hot path SweepRunner fans out across
/// threads.
SimResult ReplayDecomposed(core::CachePolicy& policy,
                           const DecomposedTrace& trace,
                           const Simulator::Options& options);

}  // namespace byc::sim

#endif  // BYC_SIM_SIMULATOR_H_
