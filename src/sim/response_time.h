#ifndef BYC_SIM_RESPONSE_TIME_H_
#define BYC_SIM_RESPONSE_TIME_H_

#include <vector>

#include "common/stats.h"
#include "core/policy.h"
#include "sim/accounting.h"

namespace byc::sim {

/// Simple WAN link timing: latency plus bandwidth-limited transfer.
struct LinkModel {
  /// One-way setup latency per transfer (seconds).
  double rtt_seconds = 0.05;
  /// Sustained throughput (bytes/second). Default: ~100 Mbit/s WAN.
  double bandwidth_bytes_per_second = 12.5e6;
  /// The mediator/client LAN, which the paper treats as free and
  /// scalable; it still takes nonzero time to move bytes locally.
  double lan_bandwidth_bytes_per_second = 1.25e9;  // ~10 Gbit/s

  double WanSeconds(double bytes) const {
    return rtt_seconds + bytes / bandwidth_bytes_per_second;
  }
  double LanSeconds(double bytes) const {
    return bytes / lan_bandwidth_bytes_per_second;
  }
};

/// Per-policy response-time results.
struct ResponseTimeResult {
  CostBreakdown totals;
  /// Per-query response times in seconds.
  StatAccumulator response;
  QuantileSketch response_quantiles;
};

/// Replays pre-decomposed queries through a policy and models each
/// query's response time under the federation's parallel evaluation
/// (§1: "sub-queries are evaluated in parallel"):
///
///  * bypassed accesses run at their sites concurrently — each
///    contributes rtt + result/bandwidth, and the query waits for the
///    slowest;
///  * a load blocks its access for rtt + object/bandwidth before the
///    result moves over the LAN;
///  * cache-served accesses move result bytes over the LAN only.
///
/// The query's response time is the maximum over its accesses. This is
/// the paper's motivating "responsiveness" metric: altruistic caching
/// must not merely save bytes, it must not slow queries down.
ResponseTimeResult RunWithResponseTimes(
    core::CachePolicy& policy,
    const std::vector<std::vector<core::Access>>& queries,
    const LinkModel& link);

}  // namespace byc::sim

#endif  // BYC_SIM_RESPONSE_TIME_H_
