#include "sim/hierarchy.h"

#include "common/check.h"

namespace byc::sim {

HierarchySimulator::HierarchySimulator(
    Options options,
    std::vector<std::unique_ptr<core::CachePolicy>> children,
    std::unique_ptr<core::CachePolicy> parent)
    : options_(options),
      children_(std::move(children)),
      parent_(std::move(parent)) {
  BYC_CHECK_EQ(static_cast<int>(children_.size()), options_.num_children);
  BYC_CHECK(parent_ != nullptr);
  BYC_CHECK_GT(options_.parent_link_fraction, 0);
  BYC_CHECK_LE(options_.parent_link_fraction, 1.0);
}

double HierarchySimulator::OnAccess(int child_index,
                                    const core::Access& access) {
  BYC_CHECK_GE(child_index, 0);
  BYC_CHECK_LT(child_index, static_cast<int>(children_.size()));
  core::CachePolicy& child = *children_[static_cast<size_t>(child_index)];

  double cost = 0;
  ++child_totals_.accesses;
  core::Decision child_decision = child.OnAccess(access);
  child_totals_.evictions += child_decision.evictions.size();

  switch (child_decision.action) {
    case core::Action::kServeFromCache:
      ++child_totals_.hits;
      child_totals_.served_cost += access.bypass_cost;
      break;

    case core::Action::kLoadAndServe: {
      ++child_totals_.loads;
      // The child pulls the object from the parent when possible —
      // cheap link — otherwise from the servers. Loading through the
      // parent counts as a parent touch so its utility state stays
      // honest (modeled by re-presenting the access below only for
      // bypasses; a resident parent object's metadata is refreshed by
      // its own accesses).
      if (parent_->Contains(access.object)) {
        double link_cost = static_cast<double>(access.size_bytes) *
                           options_.parent_link_fraction;
        costs_.parent_link_traffic += link_cost;
        cost += link_cost;
      } else {
        costs_.server_traffic += access.fetch_cost;
        cost += access.fetch_cost;
      }
      child_totals_.fetch_cost += cost;
      child_totals_.served_cost += access.bypass_cost;
      break;
    }

    case core::Action::kBypass: {
      ++child_totals_.bypasses;
      // Offer the access to the shared parent.
      ++parent_totals_.accesses;
      core::Decision parent_decision = parent_->OnAccess(access);
      parent_totals_.evictions += parent_decision.evictions.size();
      switch (parent_decision.action) {
        case core::Action::kServeFromCache: {
          ++parent_totals_.hits;
          double link_cost =
              access.bypass_cost * options_.parent_link_fraction;
          costs_.parent_link_traffic += link_cost;
          parent_totals_.served_cost += access.bypass_cost;
          cost += link_cost;
          break;
        }
        case core::Action::kLoadAndServe: {
          ++parent_totals_.loads;
          double link_cost =
              access.bypass_cost * options_.parent_link_fraction;
          costs_.server_traffic += access.fetch_cost;
          costs_.parent_link_traffic += link_cost;
          parent_totals_.fetch_cost += access.fetch_cost;
          parent_totals_.served_cost += access.bypass_cost;
          cost += access.fetch_cost + link_cost;
          break;
        }
        case core::Action::kBypass: {
          ++parent_totals_.bypasses;
          costs_.server_traffic += access.bypass_cost;
          parent_totals_.bypass_cost += access.bypass_cost;
          cost += access.bypass_cost;
          break;
        }
      }
      break;
    }
  }
  return cost;
}

}  // namespace byc::sim
