#include "sim/sweep.h"

#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace byc::sim {

namespace {

SweepOutcome RunOneConfig(const DecomposedTrace& trace,
                          const core::PolicyConfig& config,
                          const SweepRunner::Options& options) {
  std::unique_ptr<core::CachePolicy> policy = core::MakePolicy(config);
  SweepOutcome outcome;
  Simulator::Options sim_options = options.sim;
#if BYC_TELEMETRY_ENABLED
  std::unique_ptr<telemetry::DecisionTracer> tracer;
  if (options.trace_decisions) {
    telemetry::DecisionTracer::Options tracer_options;
    tracer_options.ring_capacity = options.trace_ring_capacity;
    tracer = std::make_unique<telemetry::DecisionTracer>(tracer_options);
    sim_options.tracer = tracer.get();
  }
#endif
  outcome.result = ReplayDecomposed(*policy, trace, sim_options);
  const core::PolicyStats stats = policy->stats();
  outcome.used_bytes = stats.used_bytes;
  outcome.metadata_entries = stats.metadata_entries;
#if BYC_TELEMETRY_ENABLED
  if (tracer != nullptr) {
    outcome.events = tracer->events();
    outcome.events_recorded = tracer->total_recorded();
    outcome.traced_bypass_bytes = tracer->bypass_bytes();
    outcome.traced_load_bytes = tracer->load_bytes();
  }
#endif
  return outcome;
}

}  // namespace

std::vector<SweepOutcome> SweepRunner::Run(
    const DecomposedTrace& trace,
    const std::vector<core::PolicyConfig>& configs) const {
  // Per-config tracers are created inside the runner; a caller-supplied
  // tracer would be shared by concurrent replays.
  BYC_CHECK(options_.sim.tracer == nullptr);
  telemetry::ScopedSpan span(options_.sim.metrics, "sweep-fan-out");
  std::vector<SweepOutcome> outcomes(configs.size());

  unsigned threads = options_.threads;
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  if (threads <= 1 || configs.size() <= 1) {
    // Serial fast path: no pool, same replay code, same results.
    for (size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = RunOneConfig(trace, configs[i], options_);
    }
    return outcomes;
  }

  ThreadPool pool(threads);
  for (size_t i = 0; i < configs.size(); ++i) {
    // Each task touches only its own outcome slot; the shared trace and
    // config list are read-only. Wait() orders all writes before the
    // return, so the caller sees submission-ordered results.
    pool.Submit([&trace, &configs, &outcomes, i, this] {
      outcomes[i] = RunOneConfig(trace, configs[i], options_);
    });
  }
  pool.Wait();
  return outcomes;
}

std::vector<std::vector<SweepOutcome>> SweepRunner::RunMatrix(
    const std::vector<ScenarioCase>& scenarios) const {
  BYC_CHECK(options_.sim.tracer == nullptr);
  telemetry::ScopedSpan span(options_.sim.metrics, "sweep-matrix");
  std::vector<std::vector<SweepOutcome>> outcomes(scenarios.size());
  size_t total = 0;
  for (size_t s = 0; s < scenarios.size(); ++s) {
    BYC_CHECK(scenarios[s].trace != nullptr);
    outcomes[s].resize(scenarios[s].configs.size());
    total += scenarios[s].configs.size();
  }

  unsigned threads = options_.threads;
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  if (threads <= 1 || total <= 1) {
    for (size_t s = 0; s < scenarios.size(); ++s) {
      for (size_t c = 0; c < scenarios[s].configs.size(); ++c) {
        outcomes[s][c] = RunOneConfig(*scenarios[s].trace,
                                      scenarios[s].configs[c], options_);
      }
    }
    return outcomes;
  }

  // Flatten the scenario x config product into one task list: every cell
  // is independent (fresh policy, read-only trace), so the pool stays
  // saturated even when one scenario has fewer configs than workers.
  ThreadPool pool(threads);
  for (size_t s = 0; s < scenarios.size(); ++s) {
    for (size_t c = 0; c < scenarios[s].configs.size(); ++c) {
      pool.Submit([&scenarios, &outcomes, s, c, this] {
        outcomes[s][c] = RunOneConfig(*scenarios[s].trace,
                                      scenarios[s].configs[c], options_);
      });
    }
  }
  pool.Wait();
  return outcomes;
}

}  // namespace byc::sim
