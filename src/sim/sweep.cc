#include "sim/sweep.h"

#include <memory>

#include "common/thread_pool.h"

namespace byc::sim {

namespace {

SweepOutcome RunOneConfig(const DecomposedTrace& trace,
                          const core::PolicyConfig& config,
                          const Simulator::Options& sim_options) {
  std::unique_ptr<core::CachePolicy> policy = core::MakePolicy(config);
  SweepOutcome outcome;
  outcome.result = ReplayDecomposed(*policy, trace, sim_options);
  outcome.used_bytes = policy->used_bytes();
  outcome.metadata_entries = policy->metadata_entries();
  return outcome;
}

}  // namespace

std::vector<SweepOutcome> SweepRunner::Run(
    const DecomposedTrace& trace,
    const std::vector<core::PolicyConfig>& configs) const {
  std::vector<SweepOutcome> outcomes(configs.size());

  unsigned threads = options_.threads;
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  if (threads <= 1 || configs.size() <= 1) {
    // Serial fast path: no pool, same replay code, same results.
    for (size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = RunOneConfig(trace, configs[i], options_.sim);
    }
    return outcomes;
  }

  ThreadPool pool(threads);
  for (size_t i = 0; i < configs.size(); ++i) {
    // Each task touches only its own outcome slot; the shared trace and
    // config list are read-only. Wait() orders all writes before the
    // return, so the caller sees submission-ordered results.
    pool.Submit([&trace, &configs, &outcomes, i, this] {
      outcomes[i] = RunOneConfig(trace, configs[i], options_.sim);
    });
  }
  pool.Wait();
  return outcomes;
}

}  // namespace byc::sim
