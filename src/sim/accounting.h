#ifndef BYC_SIM_ACCOUNTING_H_
#define BYC_SIM_ACCOUNTING_H_

#include <cstdint>
#include <string>

namespace byc::sim {

/// WAN cost ledger of one simulation run, in the paper's three flows
/// (Fig. 1): D_S (bypass), D_L (cache loads), D_C (served from cache —
/// LAN-only, not WAN). The minimized quantity is D_S + D_L; the
/// application always receives D_A = D_S + D_C.
///
/// Costs are byte-counts weighted by link cost (equal to plain bytes on
/// uniform networks, matching the paper's GB figures).
struct CostBreakdown {
  double bypass_cost = 0;  // D_S: results shipped server -> client
  double fetch_cost = 0;   // D_L: objects loaded into the cache
  double served_cost = 0;  // D_C: results produced out of the cache

  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t bypasses = 0;
  uint64_t loads = 0;
  uint64_t evictions = 0;

  /// The paper's "Total Cost": WAN traffic.
  double total_wan() const { return bypass_cost + fetch_cost; }
  /// D_A: data delivered to the application.
  double delivered() const { return bypass_cost + served_cost; }

  std::string ToString() const;
};

}  // namespace byc::sim

#endif  // BYC_SIM_ACCOUNTING_H_
