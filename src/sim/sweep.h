#ifndef BYC_SIM_SWEEP_H_
#define BYC_SIM_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "telemetry/trace.h"

namespace byc::sim {

/// Result of one sweep configuration: the replay result plus the policy
/// state the exhibit binaries report after a run.
struct SweepOutcome {
  SimResult result;
  uint64_t used_bytes = 0;       // policy residency after the replay
  size_t metadata_entries = 0;   // non-resident metadata footprint
  /// Decision-trace capture for this configuration (only populated when
  /// Options::trace_decisions is set): the most recent events from this
  /// config's private tracer, plus the full-run byte totals that
  /// reconcile with result.totals regardless of ring overflow.
  std::vector<telemetry::TraceEvent> events;
  uint64_t events_recorded = 0;
  double traced_bypass_bytes = 0;  // == result.totals.bypass_cost (D_S)
  double traced_load_bytes = 0;    // == result.totals.fetch_cost (D_L)
};

/// Fans independent (policy, capacity) configurations of one shared,
/// immutably decomposed trace across a thread pool. The paper's
/// evaluation (Figs. 9/10, Tables 1/2) is an embarrassingly parallel
/// sweep over cache configurations: every configuration gets a fresh
/// policy instance built from its PolicyConfig and replays the same
/// const access stream, so runs share nothing but read-only data.
///
/// Determinism: results are collected in submission order, each policy
/// is seeded from its own config, and the replay path is the same code
/// serial callers use — sweep output is bit-identical to running
/// Simulator::Run over the configs one by one, at any thread count.
class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 uses ThreadPool::DefaultThreadCount() (the
    /// BYC_THREADS environment variable, else hardware concurrency).
    unsigned threads = 0;
    /// Replay options applied to every configuration. `sim.metrics` is
    /// shared by every worker (thread-safe); `sim.tracer` must stay null
    /// — per-config tracers are created by the runner when
    /// trace_decisions is set, which keeps each configuration's event
    /// stream identical at any thread count.
    Simulator::Options sim;
    /// Give every configuration its own DecisionTracer and return its
    /// capture in SweepOutcome::events.
    bool trace_decisions = false;
    /// Ring capacity of each per-config tracer (most recent events
    /// kept). Byte totals always cover the whole run.
    size_t trace_ring_capacity = 1 << 16;
  };

  SweepRunner() : SweepRunner(Options{}) {}
  explicit SweepRunner(const Options& options) : options_(options) {}

  /// One row of a scenario x policy x capacity matrix: a named,
  /// already-decomposed workload plus the policy/capacity configs to
  /// replay against it. Configs are per-row because some of them derive
  /// from the trace itself (the StaticCache contents are selected from
  /// the row's access stream). The trace is borrowed, not owned, and
  /// must outlive the RunMatrix call; rows may share a trace.
  struct ScenarioCase {
    std::string name;
    const DecomposedTrace* trace = nullptr;
    std::vector<core::PolicyConfig> configs;
  };

  /// Replays `trace` through a fresh policy per config, in parallel.
  /// outcome[i] corresponds to configs[i].
  std::vector<SweepOutcome> Run(
      const DecomposedTrace& trace,
      const std::vector<core::PolicyConfig>& configs) const;

  /// The scenario axis: replays every row's configs against that row's
  /// trace. outcome[s][c] corresponds to scenarios[s].configs[c]. The
  /// whole scenario x config product is fanned over one pool, so a
  /// matrix saturates the workers even when a single scenario has fewer
  /// configs than threads; determinism matches Run (slot-per-task,
  /// submission-ordered collection, bit-identical at any thread count).
  std::vector<std::vector<SweepOutcome>> RunMatrix(
      const std::vector<ScenarioCase>& scenarios) const;

 private:
  Options options_;
};

}  // namespace byc::sim

#endif  // BYC_SIM_SWEEP_H_
