#include "sim/response_time.h"

#include <algorithm>

#include "common/check.h"

namespace byc::sim {

ResponseTimeResult RunWithResponseTimes(
    core::CachePolicy& policy,
    const std::vector<std::vector<core::Access>>& queries,
    const LinkModel& link) {
  BYC_CHECK_GT(link.bandwidth_bytes_per_second, 0);
  BYC_CHECK_GT(link.lan_bandwidth_bytes_per_second, 0);

  ResponseTimeResult result;
  for (const auto& accesses : queries) {
    double slowest = 0;
    for (const core::Access& access : accesses) {
      core::Decision d = policy.OnAccess(access);
      ++result.totals.accesses;
      result.totals.evictions += d.evictions.size();
      double seconds = 0;
      switch (d.action) {
        case core::Action::kServeFromCache:
          ++result.totals.hits;
          result.totals.served_cost += access.bypass_cost;
          seconds = link.LanSeconds(access.yield_bytes);
          break;
        case core::Action::kBypass:
          ++result.totals.bypasses;
          result.totals.bypass_cost += access.bypass_cost;
          seconds = link.WanSeconds(access.yield_bytes);
          break;
        case core::Action::kLoadAndServe:
          ++result.totals.loads;
          result.totals.fetch_cost += access.fetch_cost;
          result.totals.served_cost += access.bypass_cost;
          // The load blocks this access, then the result moves locally.
          seconds =
              link.WanSeconds(static_cast<double>(access.size_bytes)) +
              link.LanSeconds(access.yield_bytes);
          break;
      }
      slowest = std::max(slowest, seconds);
    }
    result.response.Add(slowest);
    result.response_quantiles.Add(slowest);
  }
  return result;
}

}  // namespace byc::sim
