#include "sim/simulator.h"

#include <chrono>
#include <cstdio>

#include "common/bytes.h"
#include "common/check.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace.h"

namespace byc::sim {

namespace {

using Clock = std::chrono::steady_clock;

/// Timestamp for replay-throughput metrics; skipped entirely (no clock
/// read) when no registry is attached.
inline Clock::time_point MaybeNow(const telemetry::MetricsRegistry* metrics) {
  return metrics != nullptr ? Clock::now() : Clock::time_point{};
}

inline double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

#if BYC_TELEMETRY_ENABLED
/// Emits the structured decision events for one accounted access: one
/// kEvict per victim, then the action event itself. Byte fields mirror
/// the ledger exactly (yield_bytes = bypass_cost, load_bytes =
/// fetch_cost) so traced streams reconcile with D_S/D_L/D_C.
void TraceDecision(telemetry::DecisionTracer& tracer,
                   const core::CachePolicy& policy,
                   const core::Access& access,
                   const core::Decision& decision, uint64_t query_seq) {
  telemetry::TraceEvent event;
  event.query_seq = query_seq;
  event.cache_bytes_after = policy.stats().used_bytes;
  for (const catalog::ObjectId& victim : decision.evictions) {
    event.object = victim;
    event.action = telemetry::TraceAction::kEvict;
    tracer.Record(event);
  }
  event.object = access.object;
  event.yield_bytes = access.bypass_cost;
  event.utility_score = decision.utility_score;
  switch (decision.action) {
    case core::Action::kServeFromCache:
      event.action = telemetry::TraceAction::kServe;
      break;
    case core::Action::kBypass:
      event.action = telemetry::TraceAction::kBypass;
      break;
    case core::Action::kLoadAndServe:
      event.action = telemetry::TraceAction::kLoad;
      event.load_bytes = access.fetch_cost;
      break;
  }
  tracer.Record(event);
}
#endif  // BYC_TELEMETRY_ENABLED

/// Applies one policy decision to the cost ledger (the paper's three
/// flows) and cross-checks residency against the reported action.
/// `query_seq` is the 1-based query this access belongs to; `tracer`,
/// when non-null, receives the decision as structured events.
inline void AccountAccess(core::CachePolicy& policy,
                          const core::Access& access, CostBreakdown& totals,
                          telemetry::DecisionTracer* tracer,
                          uint64_t query_seq) {
  core::Decision decision = policy.OnAccess(access);
  ++totals.accesses;
  totals.evictions += decision.evictions.size();
  switch (decision.action) {
    case core::Action::kServeFromCache:
      BYC_CHECK(policy.Contains(access.object));
      totals.served_cost += access.bypass_cost;
      ++totals.hits;
      break;
    case core::Action::kBypass:
      totals.bypass_cost += access.bypass_cost;
      ++totals.bypasses;
      break;
    case core::Action::kLoadAndServe:
      BYC_CHECK(policy.Contains(access.object));
      totals.fetch_cost += access.fetch_cost;
      totals.served_cost += access.bypass_cost;
      ++totals.loads;
      break;
  }
#if BYC_TELEMETRY_ENABLED
  if (tracer != nullptr) {
    TraceDecision(*tracer, policy, access, decision, query_seq);
  }
#else
  (void)tracer;
  (void)query_seq;
#endif
}

/// Replay-side scrape: throughput counters and the per-replay wall-time
/// histogram (sweep workers observe concurrently via per-thread shards).
void RecordReplayMetrics(telemetry::MetricsRegistry* metrics,
                         const CostBreakdown& totals, double wall_ms) {
#if BYC_TELEMETRY_ENABLED
  if (metrics == nullptr) return;
  metrics->counter("replay.runs").Increment();
  metrics->counter("replay.accesses").Increment(totals.accesses);
  metrics->counter("replay.hits").Increment(totals.hits);
  metrics->counter("replay.bypasses").Increment(totals.bypasses);
  metrics->counter("replay.loads").Increment(totals.loads);
  metrics->counter("replay.evictions").Increment(totals.evictions);
  metrics->histogram("replay.ms").Observe(wall_ms);
#else
  (void)metrics;
  (void)totals;
  (void)wall_ms;
#endif
}

/// Emits the final cumulative point if the per-query sampling did not
/// already land on it — every sampled series ends at the trace's total,
/// regardless of whether sample_every divides the query count.
inline void FinishSeries(const Simulator::Options& options,
                         size_t num_queries, const CostBreakdown& totals,
                         std::vector<TimePoint>& series) {
  if (options.sample_every == 0 || num_queries == 0) return;
  uint32_t last = static_cast<uint32_t>(num_queries);
  if (series.empty() || series.back().query_index != last) {
    series.push_back(TimePoint{last, totals.total_wan()});
  }
}

}  // namespace

std::string CostBreakdown::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "bypass=%s fetch=%s total=%s served=%s "
                "(hits=%llu bypasses=%llu loads=%llu evictions=%llu)",
                FormatBytes(bypass_cost).c_str(),
                FormatBytes(fetch_cost).c_str(),
                FormatBytes(total_wan()).c_str(),
                FormatBytes(served_cost).c_str(),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(bypasses),
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(evictions));
  return buf;
}

std::vector<std::vector<core::Access>> Simulator::DecomposeTrace(
    const workload::Trace& trace) const {
  telemetry::ScopedSpan span(options_.metrics, "decompose");
  std::vector<std::vector<core::Access>> out;
  out.reserve(trace.queries.size());
  for (const workload::TraceQuery& tq : trace.queries) {
    out.push_back(mediator_.Decompose(tq.query));
  }
  RecordDecomposeMetrics(trace.queries.size());
  return out;
}

DecomposedTrace Simulator::DecomposeFlat(const workload::Trace& trace) const {
  telemetry::ScopedSpan span(options_.metrics, "decompose");
  DecomposedTrace out;
  out.offsets.reserve(trace.queries.size() + 1);
  // Typical traces decompose to a handful of accesses per query; reserve
  // to keep the flat stream from reallocating throughout the pass.
  out.accesses.reserve(trace.queries.size() * 4);
  out.offsets.push_back(0);
  for (const workload::TraceQuery& tq : trace.queries) {
    std::vector<core::Access> accesses = mediator_.Decompose(tq.query);
    out.accesses.insert(out.accesses.end(), accesses.begin(), accesses.end());
    out.offsets.push_back(out.accesses.size());
  }
  RecordDecomposeMetrics(trace.queries.size());
  return out;
}

void Simulator::RecordDecomposeMetrics(size_t num_queries) const {
#if BYC_TELEMETRY_ENABLED
  if (options_.metrics == nullptr) return;
  options_.metrics->counter("decompose.queries").Increment(num_queries);
  mediator_.ExportMemoMetrics(*options_.metrics);
#else
  (void)num_queries;
#endif
}

std::vector<core::Access> Simulator::Flatten(
    const std::vector<std::vector<core::Access>>& queries) {
  std::vector<core::Access> out;
  size_t total = 0;
  for (const auto& q : queries) total += q.size();
  out.reserve(total);
  for (const auto& q : queries) out.insert(out.end(), q.begin(), q.end());
  return out;
}

SimResult Simulator::Run(
    core::CachePolicy& policy,
    const std::vector<std::vector<core::Access>>& queries) const {
  telemetry::ScopedSpan span(options_.metrics, "replay");
  Clock::time_point start = MaybeNow(options_.metrics);
  SimResult result;
  result.policy_name = std::string(policy.name());

  uint32_t qidx = 0;
  for (const auto& accesses : queries) {
    for (const core::Access& access : accesses) {
      AccountAccess(policy, access, result.totals, options_.tracer, qidx + 1);
    }
    ++qidx;
    if (options_.sample_every != 0 && qidx % options_.sample_every == 0) {
      result.series.push_back(TimePoint{qidx, result.totals.total_wan()});
    }
  }
  FinishSeries(options_, queries.size(), result.totals, result.series);
  RecordReplayMetrics(options_.metrics, result.totals, ElapsedMs(start));
  return result;
}

SimResult Simulator::Run(core::CachePolicy& policy,
                         const DecomposedTrace& trace) const {
  telemetry::ScopedSpan span(options_.metrics, "replay");
  return ReplayDecomposed(policy, trace, options_);
}

SimResult Simulator::Run(core::CachePolicy& policy,
                         const workload::Trace& trace) const {
  return Run(policy, DecomposeTrace(trace));
}

SimResult ReplayDecomposed(core::CachePolicy& policy,
                           const DecomposedTrace& trace,
                           const Simulator::Options& options) {
  Clock::time_point start = MaybeNow(options.metrics);
  SimResult result;
  result.policy_name = std::string(policy.name());

  const size_t num_queries = trace.num_queries();
  const core::Access* accesses = trace.accesses.data();
  telemetry::DecisionTracer* tracer = options.tracer;
  for (size_t q = 0; q < num_queries; ++q) {
    const size_t end = trace.offsets[q + 1];
    for (size_t i = trace.offsets[q]; i < end; ++i) {
      AccountAccess(policy, accesses[i], result.totals, tracer, q + 1);
    }
    uint32_t qidx = static_cast<uint32_t>(q + 1);
    if (options.sample_every != 0 && qidx % options.sample_every == 0) {
      result.series.push_back(TimePoint{qidx, result.totals.total_wan()});
    }
  }
  FinishSeries(options, num_queries, result.totals, result.series);
  RecordReplayMetrics(options.metrics, result.totals, ElapsedMs(start));
  return result;
}

}  // namespace byc::sim
