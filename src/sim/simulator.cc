#include "sim/simulator.h"

#include <cstdio>

#include "common/bytes.h"
#include "common/check.h"

namespace byc::sim {

namespace {

/// Applies one policy decision to the cost ledger (the paper's three
/// flows) and cross-checks residency against the reported action.
inline void AccountAccess(core::CachePolicy& policy,
                          const core::Access& access,
                          CostBreakdown& totals) {
  core::Decision decision = policy.OnAccess(access);
  ++totals.accesses;
  totals.evictions += decision.evictions.size();
  switch (decision.action) {
    case core::Action::kServeFromCache:
      BYC_CHECK(policy.Contains(access.object));
      totals.served_cost += access.bypass_cost;
      ++totals.hits;
      break;
    case core::Action::kBypass:
      totals.bypass_cost += access.bypass_cost;
      ++totals.bypasses;
      break;
    case core::Action::kLoadAndServe:
      BYC_CHECK(policy.Contains(access.object));
      totals.fetch_cost += access.fetch_cost;
      totals.served_cost += access.bypass_cost;
      ++totals.loads;
      break;
  }
}

/// Emits the final cumulative point if the per-query sampling did not
/// already land on it — every sampled series ends at the trace's total,
/// regardless of whether sample_every divides the query count.
inline void FinishSeries(const Simulator::Options& options,
                         size_t num_queries, const CostBreakdown& totals,
                         std::vector<TimePoint>& series) {
  if (options.sample_every == 0 || num_queries == 0) return;
  uint32_t last = static_cast<uint32_t>(num_queries);
  if (series.empty() || series.back().query_index != last) {
    series.push_back(TimePoint{last, totals.total_wan()});
  }
}

}  // namespace

std::string CostBreakdown::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "bypass=%s fetch=%s total=%s served=%s "
                "(hits=%llu bypasses=%llu loads=%llu evictions=%llu)",
                FormatBytes(bypass_cost).c_str(),
                FormatBytes(fetch_cost).c_str(),
                FormatBytes(total_wan()).c_str(),
                FormatBytes(served_cost).c_str(),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(bypasses),
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(evictions));
  return buf;
}

std::vector<std::vector<core::Access>> Simulator::DecomposeTrace(
    const workload::Trace& trace) const {
  std::vector<std::vector<core::Access>> out;
  out.reserve(trace.queries.size());
  for (const workload::TraceQuery& tq : trace.queries) {
    out.push_back(mediator_.Decompose(tq.query));
  }
  return out;
}

DecomposedTrace Simulator::DecomposeFlat(const workload::Trace& trace) const {
  DecomposedTrace out;
  out.offsets.reserve(trace.queries.size() + 1);
  // Typical traces decompose to a handful of accesses per query; reserve
  // to keep the flat stream from reallocating throughout the pass.
  out.accesses.reserve(trace.queries.size() * 4);
  out.offsets.push_back(0);
  for (const workload::TraceQuery& tq : trace.queries) {
    std::vector<core::Access> accesses = mediator_.Decompose(tq.query);
    out.accesses.insert(out.accesses.end(), accesses.begin(), accesses.end());
    out.offsets.push_back(out.accesses.size());
  }
  return out;
}

std::vector<core::Access> Simulator::Flatten(
    const std::vector<std::vector<core::Access>>& queries) {
  std::vector<core::Access> out;
  size_t total = 0;
  for (const auto& q : queries) total += q.size();
  out.reserve(total);
  for (const auto& q : queries) out.insert(out.end(), q.begin(), q.end());
  return out;
}

SimResult Simulator::Run(
    core::CachePolicy& policy,
    const std::vector<std::vector<core::Access>>& queries) const {
  SimResult result;
  result.policy_name = std::string(policy.name());

  uint32_t qidx = 0;
  for (const auto& accesses : queries) {
    for (const core::Access& access : accesses) {
      AccountAccess(policy, access, result.totals);
    }
    ++qidx;
    if (options_.sample_every != 0 && qidx % options_.sample_every == 0) {
      result.series.push_back(TimePoint{qidx, result.totals.total_wan()});
    }
  }
  FinishSeries(options_, queries.size(), result.totals, result.series);
  return result;
}

SimResult Simulator::Run(core::CachePolicy& policy,
                         const DecomposedTrace& trace) const {
  return ReplayDecomposed(policy, trace, options_);
}

SimResult Simulator::Run(core::CachePolicy& policy,
                         const workload::Trace& trace) const {
  return Run(policy, DecomposeTrace(trace));
}

SimResult ReplayDecomposed(core::CachePolicy& policy,
                           const DecomposedTrace& trace,
                           const Simulator::Options& options) {
  SimResult result;
  result.policy_name = std::string(policy.name());

  const size_t num_queries = trace.num_queries();
  const core::Access* accesses = trace.accesses.data();
  for (size_t q = 0; q < num_queries; ++q) {
    const size_t end = trace.offsets[q + 1];
    for (size_t i = trace.offsets[q]; i < end; ++i) {
      AccountAccess(policy, accesses[i], result.totals);
    }
    uint32_t qidx = static_cast<uint32_t>(q + 1);
    if (options.sample_every != 0 && qidx % options.sample_every == 0) {
      result.series.push_back(TimePoint{qidx, result.totals.total_wan()});
    }
  }
  FinishSeries(options, num_queries, result.totals, result.series);
  return result;
}

}  // namespace byc::sim
