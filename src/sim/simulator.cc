#include "sim/simulator.h"

#include <cstdio>

#include "common/bytes.h"
#include "common/check.h"

namespace byc::sim {

std::string CostBreakdown::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "bypass=%s fetch=%s total=%s served=%s "
                "(hits=%llu bypasses=%llu loads=%llu evictions=%llu)",
                FormatBytes(bypass_cost).c_str(),
                FormatBytes(fetch_cost).c_str(),
                FormatBytes(total_wan()).c_str(),
                FormatBytes(served_cost).c_str(),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(bypasses),
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(evictions));
  return buf;
}

std::vector<std::vector<core::Access>> Simulator::DecomposeTrace(
    const workload::Trace& trace) const {
  std::vector<std::vector<core::Access>> out;
  out.reserve(trace.queries.size());
  for (const workload::TraceQuery& tq : trace.queries) {
    out.push_back(mediator_.Decompose(tq.query));
  }
  return out;
}

std::vector<core::Access> Simulator::Flatten(
    const std::vector<std::vector<core::Access>>& queries) {
  std::vector<core::Access> out;
  size_t total = 0;
  for (const auto& q : queries) total += q.size();
  out.reserve(total);
  for (const auto& q : queries) out.insert(out.end(), q.begin(), q.end());
  return out;
}

SimResult Simulator::Run(
    core::CachePolicy& policy,
    const std::vector<std::vector<core::Access>>& queries) const {
  SimResult result;
  result.policy_name = std::string(policy.name());

  uint32_t qidx = 0;
  for (const auto& accesses : queries) {
    for (const core::Access& access : accesses) {
      core::Decision decision = policy.OnAccess(access);
      ++result.totals.accesses;
      result.totals.evictions += decision.evictions.size();
      switch (decision.action) {
        case core::Action::kServeFromCache:
          BYC_CHECK(policy.Contains(access.object));
          result.totals.served_cost += access.bypass_cost;
          ++result.totals.hits;
          break;
        case core::Action::kBypass:
          result.totals.bypass_cost += access.bypass_cost;
          ++result.totals.bypasses;
          break;
        case core::Action::kLoadAndServe:
          BYC_CHECK(policy.Contains(access.object));
          result.totals.fetch_cost += access.fetch_cost;
          result.totals.served_cost += access.bypass_cost;
          ++result.totals.loads;
          break;
      }
    }
    ++qidx;
    if (options_.sample_every != 0 &&
        (qidx % options_.sample_every == 0 || qidx == queries.size())) {
      result.series.push_back(TimePoint{qidx, result.totals.total_wan()});
    }
  }
  return result;
}

SimResult Simulator::Run(core::CachePolicy& policy,
                         const workload::Trace& trace) const {
  return Run(policy, DecomposeTrace(trace));
}

}  // namespace byc::sim
