#ifndef BYC_SIM_HIERARCHY_H_
#define BYC_SIM_HIERARCHY_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/policy.h"
#include "sim/accounting.h"

namespace byc::sim {

/// Two-level bypass-yield cache hierarchy — the extension the paper
/// defers ("At this time, we do not consider hierarchies of caches or
/// coordinated caching within hierarchies", §3).
///
/// Topology: K child caches (one per client community / regional
/// mediator) share one parent cache sitting between them and the
/// federation. The parent link (child <-> parent) is cheaper per byte
/// than the server link (anything <-> federation servers):
///
///   servers --(server_cost/byte)--> parent --(parent_cost/byte)--> child
///
/// Access flow: each access is routed to its community's child cache.
///  * child serves        -> free;
///  * child loads         -> the object ships from the parent if the
///    parent holds it (size x parent_cost), else from the servers
///    (fetch_cost); either way the access is then served locally;
///  * child bypasses      -> the access is offered to the parent:
///      - parent serves   -> results cross only the parent link
///                           (yield x parent_cost);
///      - parent loads    -> fetch_cost from the servers, results then
///                           cross the parent link;
///      - parent bypasses -> the query runs at the servers and results
///                           ship directly to the client (bypass_cost),
///                           preserving federation parallelism.
///
/// Child policies decide on server-priced accesses (conservative: a
/// child cannot know ahead of time whether the parent will hold an
/// object); the accounting charges actual link-priced traffic.
class HierarchySimulator {
 public:
  struct Options {
    int num_children = 4;
    /// Per-byte cost of the child<->parent link, as a fraction of the
    /// server link cost already baked into fetch/bypass costs (0.25 =
    /// the parent is 4x closer than the federation).
    double parent_link_fraction = 0.25;
  };

  struct LevelCosts {
    /// Traffic on the server links (the scarce WAN resource).
    double server_traffic = 0;
    /// Traffic on the child<->parent links (already cost-weighted by
    /// parent_link_fraction).
    double parent_link_traffic = 0;
    double total() const { return server_traffic + parent_link_traffic; }
  };

  /// `children[i]` is community i's cache; `parent` the shared cache.
  HierarchySimulator(Options options,
                     std::vector<std::unique_ptr<core::CachePolicy>> children,
                     std::unique_ptr<core::CachePolicy> parent);

  /// Routes one access for community `child_index` through the
  /// hierarchy; returns the WAN cost incurred and updates the ledger.
  double OnAccess(int child_index, const core::Access& access);

  const LevelCosts& costs() const { return costs_; }
  const CostBreakdown& child_totals() const { return child_totals_; }
  const CostBreakdown& parent_totals() const { return parent_totals_; }
  int num_children() const { return static_cast<int>(children_.size()); }

 private:
  Options options_;
  std::vector<std::unique_ptr<core::CachePolicy>> children_;
  std::unique_ptr<core::CachePolicy> parent_;
  LevelCosts costs_;
  CostBreakdown child_totals_;
  CostBreakdown parent_totals_;
};

}  // namespace byc::sim

#endif  // BYC_SIM_HIERARCHY_H_
