#ifndef BYC_CATALOG_CATALOG_H_
#define BYC_CATALOG_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"

namespace byc::catalog {

/// The schema of one federated database (one data release in SDSS terms).
/// A Catalog owns its tables; it is the reference frame for ObjectIds,
/// query resolution, and yield estimation.
class Catalog {
 public:
  explicit Catalog(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a table; returns its index. Fails on duplicate names.
  Result<int> AddTable(Table table);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int i) const { return tables_[static_cast<size_t>(i)]; }
  Table& mutable_table(int i) { return tables_[static_cast<size_t>(i)]; }

  /// Index of the named table (case-sensitive), or NotFound.
  Result<int> FindTable(std::string_view name) const;

  /// Sum of all table sizes.
  uint64_t total_size_bytes() const;

  /// Total number of (table, column) pairs.
  int total_columns() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace byc::catalog

#endif  // BYC_CATALOG_CATALOG_H_
