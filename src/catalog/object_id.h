#ifndef BYC_CATALOG_OBJECT_ID_H_
#define BYC_CATALOG_OBJECT_ID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "catalog/catalog.h"

namespace byc::catalog {

/// Granularity of cacheable database objects. The paper's §6.1 compares
/// caching whole tables against caching individual columns (attributes).
enum class Granularity : uint8_t {
  kTable,
  kColumn,
};

/// Identity of a cacheable database object within a Catalog: a whole table
/// (column == kWholeTable) or one column of a table.
struct ObjectId {
  static constexpr int32_t kWholeTable = -1;

  int32_t table = 0;
  int32_t column = kWholeTable;

  static ObjectId ForTable(int32_t table_idx) {
    return ObjectId{table_idx, kWholeTable};
  }
  static ObjectId ForColumn(int32_t table_idx, int32_t column_idx) {
    return ObjectId{table_idx, column_idx};
  }

  bool is_table() const { return column == kWholeTable; }

  bool operator==(const ObjectId& other) const = default;

  /// Dense key usable for hashing / array indexing (table in the high
  /// bits, column+1 in the low bits).
  uint64_t Key() const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(table)) << 32) |
           static_cast<uint32_t>(column + 1);
  }

  /// "PhotoObj" or "PhotoObj.ra".
  std::string ToString(const Catalog& catalog) const;
};

/// Size in bytes of the object (table size or column size).
uint64_t ObjectSizeBytes(const Catalog& catalog, const ObjectId& id);

/// All objects of the catalog at the given granularity, in a deterministic
/// order (table index, then column index).
std::vector<ObjectId> EnumerateObjects(const Catalog& catalog,
                                       Granularity granularity);

struct ObjectIdHash {
  size_t operator()(const ObjectId& id) const {
    return std::hash<uint64_t>{}(id.Key());
  }
};

}  // namespace byc::catalog

#endif  // BYC_CATALOG_OBJECT_ID_H_
