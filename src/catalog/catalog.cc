#include "catalog/catalog.h"

#include "catalog/column.h"

namespace byc::catalog {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt16:
      return "int16";
    case ColumnType::kInt32:
      return "int32";
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kFloat32:
      return "float32";
    case ColumnType::kFloat64:
      return "float64";
    case ColumnType::kChar8:
      return "char8";
    case ColumnType::kChar32:
      return "char32";
  }
  return "unknown";
}

int Table::AddColumn(std::string name, ColumnType type) {
  columns_.push_back(Column{std::move(name), type});
  row_width_ += columns_.back().width_bytes();
  return static_cast<int>(columns_.size()) - 1;
}

int Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Catalog::AddTable(Table table) {
  if (by_name_.count(table.name()) != 0) {
    return Status::AlreadyExists("table exists: " + table.name());
  }
  int idx = static_cast<int>(tables_.size());
  by_name_.emplace(table.name(), idx);
  tables_.push_back(std::move(table));
  return idx;
}

Result<int> Catalog::FindTable(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return it->second;
}

uint64_t Catalog::total_size_bytes() const {
  uint64_t total = 0;
  for (const auto& t : tables_) total += t.size_bytes();
  return total;
}

int Catalog::total_columns() const {
  int total = 0;
  for (const auto& t : tables_) total += t.num_columns();
  return total;
}

}  // namespace byc::catalog
