#ifndef BYC_CATALOG_COLUMN_H_
#define BYC_CATALOG_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace byc::catalog {

/// Storage types for catalog columns. Widths follow SQL Server conventions
/// used by the SDSS archive (the paper computes per-column yields from
/// "storage size of the attribute", e.g. objID = 8 bytes).
enum class ColumnType : uint8_t {
  kInt16,
  kInt32,
  kInt64,
  kFloat32,
  kFloat64,
  kChar8,   // short fixed-width string (e.g. object class codes)
  kChar32,  // fixed-width string (e.g. names)
};

/// Bytes of storage for one value of the given type.
constexpr uint32_t ColumnTypeWidth(ColumnType type) {
  switch (type) {
    case ColumnType::kInt16:
      return 2;
    case ColumnType::kInt32:
      return 4;
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kFloat32:
      return 4;
    case ColumnType::kFloat64:
      return 8;
    case ColumnType::kChar8:
      return 8;
    case ColumnType::kChar32:
      return 32;
  }
  return 0;
}

std::string_view ColumnTypeName(ColumnType type);

/// One column of a relational table.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kFloat32;

  uint32_t width_bytes() const { return ColumnTypeWidth(type); }
};

}  // namespace byc::catalog

#endif  // BYC_CATALOG_COLUMN_H_
