#ifndef BYC_CATALOG_TABLE_H_
#define BYC_CATALOG_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/column.h"

namespace byc::catalog {

/// A relational table: name, cardinality, and column layout. Tables are
/// the unit of table-granularity caching; (table, column) pairs are the
/// unit of column-granularity caching.
class Table {
 public:
  Table(std::string name, uint64_t row_count)
      : name_(std::move(name)), row_count_(row_count) {}

  const std::string& name() const { return name_; }
  uint64_t row_count() const { return row_count_; }

  /// Appends a column; returns its index.
  int AddColumn(std::string name, ColumnType type);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or -1.
  int FindColumn(std::string_view name) const;

  /// Bytes per row (sum of column widths).
  uint64_t row_width_bytes() const { return row_width_; }

  /// Total table size in bytes: row_count * row_width.
  uint64_t size_bytes() const { return row_count_ * row_width_; }

  /// Size of one column across all rows.
  uint64_t column_size_bytes(int i) const {
    return row_count_ * column(i).width_bytes();
  }

 private:
  std::string name_;
  uint64_t row_count_;
  std::vector<Column> columns_;
  uint64_t row_width_ = 0;
};

}  // namespace byc::catalog

#endif  // BYC_CATALOG_TABLE_H_
