#ifndef BYC_CATALOG_SDSS_H_
#define BYC_CATALOG_SDSS_H_

#include "catalog/catalog.h"

namespace byc::catalog {

/// Builders for SDSS-like catalogs modeled on the Sloan Digital Sky Survey
/// public schema. The paper evaluates on two data releases of the largest
/// SkyQuery federation node:
///
///  * EDR (Early Data Release)  — built here at ~0.7 GB total, matching
///    the paper's note that the (hot) SDSS data is about 700 MB.
///  * DR1 (Data Release 1)      — the same schema with ~2.3x the rows.
///
/// Table and column names, types, and storage widths follow the public
/// SDSS SkyServer schema (PhotoObj, SpecObj, Neighbors, Field, ...); row
/// counts are scaled so that object-size distributions — which drive all
/// caching decisions — are realistic at simulation scale.
Catalog MakeSdssEdrCatalog();
Catalog MakeSdssDr1Catalog();

/// Shared implementation: builds the SDSS schema with every table's row
/// count multiplied by `row_scale` (EDR uses 1.0, DR1 uses 2.3).
Catalog MakeSdssCatalog(const std::string& name, double row_scale);

/// Variant with independent scales for the hot/warm tables (PhotoObj,
/// SpecObj, PhotoZ, Field, Frame, PlateX) and the cold archive tables
/// (Neighbors, PhotoProfile, cross-match surveys, Mask, Tiles). Used by
/// the database-size-scaling study (§6.3's open question): growing only
/// the cold archive grows the database without growing the workload's
/// working set.
Catalog MakeSdssCatalogSplitScale(const std::string& name, double hot_scale,
                                  double cold_scale);

}  // namespace byc::catalog

#endif  // BYC_CATALOG_SDSS_H_
