#include "catalog/sdss.h"

#include <cmath>

#include "common/check.h"

namespace byc::catalog {

namespace {

uint64_t Scale(uint64_t rows, double row_scale) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(rows) *
                                            row_scale));
}

/// PhotoObj: the photometric-object table, the workload's hottest table.
/// Per-band photometric quantities are emitted for the five SDSS bands.
/// Sized (~140 MB at EDR scale) so that, as in the paper, the hot tables
/// fit in a cache of 20-30% of the database (Fig. 9's knee).
Table MakePhotoObj(double row_scale) {
  Table t("PhotoObj", Scale(460'000, row_scale));
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("ra", ColumnType::kFloat64);
  t.AddColumn("dec", ColumnType::kFloat64);
  t.AddColumn("run", ColumnType::kInt32);
  t.AddColumn("rerun", ColumnType::kInt32);
  t.AddColumn("camcol", ColumnType::kInt32);
  t.AddColumn("field", ColumnType::kInt32);
  t.AddColumn("obj", ColumnType::kInt32);
  t.AddColumn("mode", ColumnType::kInt16);
  t.AddColumn("type", ColumnType::kInt16);
  t.AddColumn("flags", ColumnType::kInt64);
  t.AddColumn("rowc", ColumnType::kFloat32);
  t.AddColumn("colc", ColumnType::kFloat32);
  t.AddColumn("status", ColumnType::kInt32);
  t.AddColumn("htmID", ColumnType::kInt64);
  t.AddColumn("specObjID", ColumnType::kInt64);

  static constexpr const char* kBands[] = {"u", "g", "r", "i", "z"};
  static constexpr const char* kFamilies[] = {
      "modelMag", "modelMagErr", "psfMag",   "psfMagErr", "petroMag",
      "petroMagErr", "petroRad", "petroR50", "fiberMag",  "extinction",
      "dered"};
  for (const char* family : kFamilies) {
    for (const char* band : kBands) {
      t.AddColumn(std::string(family) + "_" + band, ColumnType::kFloat32);
    }
  }
  return t;
}

/// SpecObj: spectroscopic objects; the paper's example query joins
/// SpecObj with PhotoObj on objID and filters on specClass/zConf/z.
Table MakeSpecObj(double row_scale) {
  Table t("SpecObj", Scale(500'000, row_scale));
  t.AddColumn("specObjID", ColumnType::kInt64);
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("ra", ColumnType::kFloat64);
  t.AddColumn("dec", ColumnType::kFloat64);
  t.AddColumn("z", ColumnType::kFloat32);
  t.AddColumn("zErr", ColumnType::kFloat32);
  t.AddColumn("zConf", ColumnType::kFloat32);
  t.AddColumn("zStatus", ColumnType::kInt16);
  t.AddColumn("specClass", ColumnType::kInt16);
  t.AddColumn("plate", ColumnType::kInt32);
  t.AddColumn("mjd", ColumnType::kInt32);
  t.AddColumn("fiberID", ColumnType::kInt32);
  t.AddColumn("sn_0", ColumnType::kFloat32);
  t.AddColumn("sn_1", ColumnType::kFloat32);
  t.AddColumn("sn_2", ColumnType::kFloat32);
  t.AddColumn("mag_0", ColumnType::kFloat32);
  t.AddColumn("mag_1", ColumnType::kFloat32);
  t.AddColumn("mag_2", ColumnType::kFloat32);
  t.AddColumn("velDisp", ColumnType::kFloat32);
  t.AddColumn("velDispErr", ColumnType::kFloat32);
  t.AddColumn("eClass", ColumnType::kFloat32);
  t.AddColumn("eCoeff_0", ColumnType::kFloat32);
  t.AddColumn("eCoeff_1", ColumnType::kFloat32);
  t.AddColumn("eCoeff_2", ColumnType::kFloat32);
  t.AddColumn("eCoeff_3", ColumnType::kFloat32);
  t.AddColumn("eCoeff_4", ColumnType::kFloat32);
  return t;
}

Table MakeNeighbors(double row_scale) {
  Table t("Neighbors", Scale(6'500'000, row_scale));
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("neighborObjID", ColumnType::kInt64);
  t.AddColumn("distance", ColumnType::kFloat32);
  t.AddColumn("neighborType", ColumnType::kInt16);
  t.AddColumn("neighborMode", ColumnType::kInt16);
  return t;
}

Table MakeField(double row_scale) {
  Table t("Field", Scale(120'000, row_scale));
  t.AddColumn("fieldID", ColumnType::kInt64);
  t.AddColumn("run", ColumnType::kInt32);
  t.AddColumn("rerun", ColumnType::kInt32);
  t.AddColumn("camcol", ColumnType::kInt32);
  t.AddColumn("field", ColumnType::kInt32);
  t.AddColumn("nObjects", ColumnType::kInt32);
  t.AddColumn("nStars", ColumnType::kInt32);
  t.AddColumn("nGalaxies", ColumnType::kInt32);
  t.AddColumn("quality", ColumnType::kInt16);
  t.AddColumn("mjd", ColumnType::kFloat64);
  static constexpr const char* kBands[] = {"u", "g", "r", "i", "z"};
  for (const char* band : kBands) {
    t.AddColumn(std::string("psfWidth_") + band, ColumnType::kFloat32);
  }
  for (const char* band : kBands) {
    t.AddColumn(std::string("sky_") + band, ColumnType::kFloat32);
  }
  t.AddColumn("gain", ColumnType::kFloat32);
  return t;
}

Table MakeFrame(double row_scale) {
  Table t("Frame", Scale(200'000, row_scale));
  t.AddColumn("frameID", ColumnType::kInt64);
  t.AddColumn("fieldID", ColumnType::kInt64);
  t.AddColumn("filter", ColumnType::kChar8);
  t.AddColumn("mu", ColumnType::kFloat64);
  t.AddColumn("nu", ColumnType::kFloat64);
  t.AddColumn("a", ColumnType::kFloat64);
  t.AddColumn("b", ColumnType::kFloat64);
  t.AddColumn("c", ColumnType::kFloat64);
  t.AddColumn("d", ColumnType::kFloat64);
  t.AddColumn("e", ColumnType::kFloat64);
  t.AddColumn("f", ColumnType::kFloat64);
  t.AddColumn("raMin", ColumnType::kFloat64);
  t.AddColumn("raMax", ColumnType::kFloat64);
  t.AddColumn("decMin", ColumnType::kFloat64);
  t.AddColumn("decMax", ColumnType::kFloat64);
  return t;
}

Table MakePlateX(double row_scale) {
  Table t("PlateX", Scale(30'000, row_scale));
  t.AddColumn("plateID", ColumnType::kInt64);
  t.AddColumn("plate", ColumnType::kInt32);
  t.AddColumn("mjd", ColumnType::kInt32);
  t.AddColumn("ra", ColumnType::kFloat64);
  t.AddColumn("dec", ColumnType::kFloat64);
  t.AddColumn("nObjects", ColumnType::kInt32);
  t.AddColumn("quality", ColumnType::kInt16);
  t.AddColumn("program", ColumnType::kChar32);
  return t;
}

Table MakePhotoZ(double row_scale) {
  Table t("PhotoZ", Scale(1'500'000, row_scale));
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("z", ColumnType::kFloat32);
  t.AddColumn("zErr", ColumnType::kFloat32);
  t.AddColumn("t", ColumnType::kFloat32);
  t.AddColumn("tErr", ColumnType::kFloat32);
  t.AddColumn("quality", ColumnType::kInt16);
  return t;
}

Table MakeTiles(double row_scale) {
  Table t("Tiles", Scale(50'000, row_scale));
  t.AddColumn("tileID", ColumnType::kInt64);
  t.AddColumn("ra", ColumnType::kFloat64);
  t.AddColumn("dec", ColumnType::kFloat64);
  t.AddColumn("completeness", ColumnType::kFloat32);
  return t;
}

Table MakeMask(double row_scale) {
  Table t("Mask", Scale(100'000, row_scale));
  t.AddColumn("maskID", ColumnType::kInt64);
  t.AddColumn("ra", ColumnType::kFloat64);
  t.AddColumn("dec", ColumnType::kFloat64);
  t.AddColumn("radius", ColumnType::kFloat32);
  t.AddColumn("type", ColumnType::kInt16);
  return t;
}

/// PhotoProfile: radial surface-brightness profile bins — a large, rarely
/// queried table (the kind of object a bypass cache should never load).
Table MakePhotoProfile(double row_scale) {
  Table t("PhotoProfile", Scale(9'000'000, row_scale));
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("bin", ColumnType::kInt32);
  t.AddColumn("profMean", ColumnType::kFloat32);
  t.AddColumn("profErr", ColumnType::kFloat32);
  return t;
}

/// Cross-match tables against external surveys (FIRST radio, ROSAT X-ray,
/// USNO astrometry): cold, moderate-size tables in the tail of the
/// workload.
Table MakeFirst(double row_scale) {
  Table t("First", Scale(1'000'000, row_scale));
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("firstID", ColumnType::kInt64);
  t.AddColumn("peak", ColumnType::kFloat32);
  t.AddColumn("integr", ColumnType::kFloat32);
  t.AddColumn("rms", ColumnType::kFloat32);
  t.AddColumn("major", ColumnType::kFloat32);
  t.AddColumn("minor", ColumnType::kFloat32);
  t.AddColumn("pa", ColumnType::kFloat32);
  return t;
}

Table MakeRosat(double row_scale) {
  Table t("Rosat", Scale(500'000, row_scale));
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("rosatID", ColumnType::kInt64);
  t.AddColumn("cps", ColumnType::kFloat32);
  t.AddColumn("hr1", ColumnType::kFloat32);
  t.AddColumn("hr2", ColumnType::kFloat32);
  t.AddColumn("ext", ColumnType::kFloat32);
  t.AddColumn("posErr", ColumnType::kFloat32);
  return t;
}

Table MakeUsno(double row_scale) {
  Table t("USNO", Scale(1'000'000, row_scale));
  t.AddColumn("objID", ColumnType::kInt64);
  t.AddColumn("usnoID", ColumnType::kInt64);
  t.AddColumn("properMotion", ColumnType::kFloat32);
  t.AddColumn("angle", ColumnType::kFloat32);
  t.AddColumn("blue", ColumnType::kFloat32);
  t.AddColumn("red", ColumnType::kFloat32);
  t.AddColumn("delta", ColumnType::kFloat32);
  return t;
}

}  // namespace

Catalog MakeSdssCatalogSplitScale(const std::string& name, double hot_scale,
                                  double cold_scale) {
  BYC_CHECK_GT(hot_scale, 0.0);
  BYC_CHECK_GT(cold_scale, 0.0);
  Catalog catalog(name);
  BYC_CHECK(catalog.AddTable(MakePhotoObj(hot_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeSpecObj(hot_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeNeighbors(cold_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeField(hot_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeFrame(hot_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakePlateX(hot_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakePhotoZ(hot_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeTiles(cold_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeMask(cold_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakePhotoProfile(cold_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeFirst(cold_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeRosat(cold_scale)).ok());
  BYC_CHECK(catalog.AddTable(MakeUsno(cold_scale)).ok());
  return catalog;
}

Catalog MakeSdssCatalog(const std::string& name, double row_scale) {
  return MakeSdssCatalogSplitScale(name, row_scale, row_scale);
}

Catalog MakeSdssEdrCatalog() { return MakeSdssCatalog("EDR", 1.0); }

Catalog MakeSdssDr1Catalog() { return MakeSdssCatalog("DR1", 2.3); }

}  // namespace byc::catalog
