#include "catalog/object_id.h"

#include "common/check.h"

namespace byc::catalog {

std::string ObjectId::ToString(const Catalog& catalog) const {
  const Table& t = catalog.table(table);
  if (is_table()) return t.name();
  return t.name() + "." + t.column(column).name;
}

uint64_t ObjectSizeBytes(const Catalog& catalog, const ObjectId& id) {
  BYC_CHECK_LT(id.table, catalog.num_tables());
  const Table& t = catalog.table(id.table);
  if (id.is_table()) return t.size_bytes();
  BYC_CHECK_LT(id.column, t.num_columns());
  return t.column_size_bytes(id.column);
}

std::vector<ObjectId> EnumerateObjects(const Catalog& catalog,
                                       Granularity granularity) {
  std::vector<ObjectId> out;
  for (int t = 0; t < catalog.num_tables(); ++t) {
    if (granularity == Granularity::kTable) {
      out.push_back(ObjectId::ForTable(t));
    } else {
      for (int c = 0; c < catalog.table(t).num_columns(); ++c) {
        out.push_back(ObjectId::ForColumn(t, c));
      }
    }
  }
  return out;
}

}  // namespace byc::catalog
