#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>

#include "catalog/sdss.h"
#include "common/bytes.h"
#include "query/signature.h"
#include "workload/trace_stats.h"

namespace byc::workload {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : catalog_(catalog::MakeSdssEdrCatalog()) {}

  Trace Generate(GeneratorOptions options) {
    TraceGenerator gen(&catalog_, options);
    return gen.Generate();
  }

  catalog::Catalog catalog_;
};

TEST_F(GeneratorTest, ProducesRequestedQueryCount) {
  GeneratorOptions options;
  options.num_queries = 500;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  EXPECT_EQ(trace.queries.size(), 500u);
  EXPECT_EQ(trace.name, "EDR");
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  GeneratorOptions options;
  options.num_queries = 300;
  options.target_sequence_cost = 0;
  Trace a = Generate(options);
  Trace b = Generate(options);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    ASSERT_EQ(a.queries[i].klass, b.queries[i].klass);
    ASSERT_EQ(a.queries[i].cells, b.queries[i].cells);
    ASSERT_EQ(query::SchemaSignature(a.queries[i].query),
              query::SchemaSignature(b.queries[i].query));
  }
}

TEST_F(GeneratorTest, DifferentSeedsProduceDifferentTraces) {
  GeneratorOptions a_options, b_options;
  a_options.num_queries = b_options.num_queries = 200;
  a_options.target_sequence_cost = b_options.target_sequence_cost = 0;
  a_options.seed = 1;
  b_options.seed = 2;
  Trace a = Generate(a_options);
  Trace b = Generate(b_options);
  int diffs = 0;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    diffs += a.queries[i].klass != b.queries[i].klass;
  }
  EXPECT_GT(diffs, 0);
}

TEST_F(GeneratorTest, ClassMixTracksConfiguredProbabilities) {
  GeneratorOptions options;
  options.num_queries = 8000;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  std::map<QueryClass, int> counts;
  for (const auto& tq : trace.queries) ++counts[tq.klass];
  double n = static_cast<double>(trace.queries.size());
  // Cold-tail queries are emitted as kRange, so range absorbs the
  // remainder mass.
  double p_cold = 1.0 - options.mix.p_range - options.mix.p_spatial -
                  options.mix.p_identity - options.mix.p_aggregate - options.mix.p_join;
  EXPECT_NEAR(counts[QueryClass::kRange] / n, options.mix.p_range + p_cold,
              0.02);
  EXPECT_NEAR(counts[QueryClass::kSpatial] / n, options.mix.p_spatial, 0.02);
  EXPECT_NEAR(counts[QueryClass::kIdentity] / n, options.mix.p_identity, 0.02);
  EXPECT_NEAR(counts[QueryClass::kAggregate] / n, options.mix.p_aggregate, 0.02);
  EXPECT_NEAR(counts[QueryClass::kJoin] / n, options.mix.p_join, 0.02);
}

TEST_F(GeneratorTest, CalibrationHitsPublishedSequenceCost) {
  GeneratorOptions options = MakeEdrOptions();
  options.num_queries = 4000;  // scaled-down trace, scaled-down target
  options.target_sequence_cost = 1216.94 * kGB * 4000 / 27663;
  TraceGenerator gen(&catalog_, options);
  Trace trace = gen.Generate();
  double cost = gen.SequenceCost(trace);
  EXPECT_NEAR(cost / options.target_sequence_cost, 1.0, 0.03);
}

TEST_F(GeneratorTest, SelectivitiesStayInRange) {
  GeneratorOptions options;
  options.num_queries = 1000;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  for (const auto& tq : trace.queries) {
    for (const auto& f : tq.query.filters) {
      EXPECT_GT(f.selectivity, 0);
      EXPECT_LE(f.selectivity, 1);
    }
  }
}

TEST_F(GeneratorTest, IdentityQueriesCarryFreshIdentifiers) {
  GeneratorOptions options;
  options.num_queries = 3000;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  std::map<int64_t, int> id_counts;
  int identity_queries = 0;
  for (const auto& tq : trace.queries) {
    if (tq.klass != QueryClass::kIdentity) continue;
    ++identity_queries;
    ASSERT_EQ(tq.cells.size(), 1u);
    ++id_counts[tq.cells[0]];
  }
  ASSERT_GT(identity_queries, 100);
  // "Schema reuse against different data": almost all identifiers are
  // distinct.
  int repeats = 0;
  for (const auto& [id, count] : id_counts) repeats += count - 1;
  EXPECT_LT(repeats, identity_queries / 20);
}

TEST_F(GeneratorTest, SchemaReuseIsHeavy) {
  // Few distinct schema signatures despite thousands of queries (§1.1:
  // workloads "exhibit schema reuse").
  GeneratorOptions options;
  options.num_queries = 5000;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  std::map<uint64_t, int> signature_counts;
  for (const auto& tq : trace.queries) {
    ++signature_counts[query::SchemaSignature(tq.query)];
  }
  EXPECT_LT(signature_counts.size(), 200u);
  // The head signatures dominate.
  int max_count = 0;
  for (const auto& [sig, count] : signature_counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, 200);
}

TEST_F(GeneratorTest, QueryContainmentIsRare) {
  GeneratorOptions options;
  options.num_queries = 5000;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  ContainmentStats stats = AnalyzeContainment(trace, 50);
  ASSERT_GT(stats.num_queries, 1000u);
  EXPECT_LT(static_cast<double>(stats.fully_contained) /
                static_cast<double>(stats.num_queries),
            0.02);
  EXPECT_LT(stats.mean_overlap, 0.05);
}

TEST_F(GeneratorTest, SchemaLocalityConcentratesReferences) {
  GeneratorOptions options;
  options.num_queries = 5000;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  LocalityStats stats = AnalyzeSchemaLocality(catalog_, trace,
                                              catalog::Granularity::kColumn);
  // 90% of references land in well under half the schema's columns.
  EXPECT_LT(stats.objects_for_90pct,
            static_cast<size_t>(catalog_.total_columns()) / 2);
  // And the hot columns stay hot across the whole trace.
  EXPECT_GT(stats.hot_span_fraction, 0.9);
}

TEST_F(GeneratorTest, Dr1PresetIsMoreDispersed) {
  auto dr1_catalog = catalog::MakeSdssDr1Catalog();
  GeneratorOptions edr = MakeEdrOptions();
  GeneratorOptions dr1 = MakeDr1Options();
  EXPECT_LT(dr1.num_queries, edr.num_queries);
  EXPECT_GT(dr1.target_sequence_cost, edr.target_sequence_cost);
  EXPECT_GT(dr1.phase_churn, edr.phase_churn);
  // Cold mass (remainder) is larger for DR1.
  double edr_cold = 1 - edr.mix.p_range - edr.mix.p_spatial - edr.mix.p_identity -
                    edr.mix.p_aggregate - edr.mix.p_join;
  double dr1_cold = 1 - dr1.mix.p_range - dr1.mix.p_spatial - dr1.mix.p_identity -
                    dr1.mix.p_aggregate - dr1.mix.p_join;
  EXPECT_GT(dr1_cold, edr_cold);
}

TEST_F(GeneratorTest, RegionQueriesCoverBoundedCellRuns) {
  GeneratorOptions options;
  options.num_queries = 2000;
  options.target_sequence_cost = 0;
  Trace trace = Generate(options);
  for (const auto& tq : trace.queries) {
    if (tq.klass != QueryClass::kRange && tq.klass != QueryClass::kSpatial)
      continue;
    ASSERT_FALSE(tq.cells.empty());
    ASSERT_LE(tq.cells.size(), 64u);
    for (size_t i = 1; i < tq.cells.size(); ++i) {
      ASSERT_EQ(tq.cells[i], tq.cells[i - 1] + 1);  // contiguous run
    }
    ASSERT_GE(tq.cells.front(), 0);
    ASSERT_LT(tq.cells.back(), options.num_sky_cells);
  }
}

}  // namespace
}  // namespace byc::workload
