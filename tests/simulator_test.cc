#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "catalog/sdss.h"
#include "core/inline_policies.h"
#include "core/no_cache_policy.h"
#include "core/policy_factory.h"
#include "core/rate_profile_policy.h"
#include "core/static_policy.h"
#include "workload/generator.h"

namespace byc::sim {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : federation_(federation::Federation::SingleSite(
            catalog::MakeSdssEdrCatalog())) {
    workload::GeneratorOptions options;
    options.num_queries = 400;
    options.target_sequence_cost = 0;
    workload::TraceGenerator gen(&federation_.catalog(), options);
    trace_ = gen.Generate();
  }

  federation::Federation federation_;
  workload::Trace trace_;
};

TEST_F(SimulatorTest, NoCacheCostEqualsSequenceCost) {
  Simulator simulator(&federation_, catalog::Granularity::kTable);
  auto queries = simulator.DecomposeTrace(trace_);
  double sequence_cost = 0;
  for (const auto& q : queries) {
    for (const auto& a : q) sequence_cost += a.bypass_cost;
  }
  core::NoCachePolicy policy;
  SimResult result = simulator.Run(policy, queries);
  EXPECT_DOUBLE_EQ(result.totals.bypass_cost, sequence_cost);
  EXPECT_DOUBLE_EQ(result.totals.fetch_cost, 0);
  EXPECT_DOUBLE_EQ(result.totals.served_cost, 0);
  EXPECT_EQ(result.totals.hits, 0u);
  EXPECT_EQ(result.totals.loads, 0u);
}

TEST_F(SimulatorTest, DeliveredBytesInvariantAcrossPolicies) {
  // D_A = D_S + D_C must equal the sequence cost for every policy: the
  // client sees the same result data regardless of caching.
  Simulator simulator(&federation_, catalog::Granularity::kColumn);
  auto queries = simulator.DecomposeTrace(trace_);
  double sequence_cost = 0;
  for (const auto& q : queries) {
    for (const auto& a : q) sequence_cost += a.bypass_cost;
  }
  uint64_t capacity = federation_.catalog().total_size_bytes() * 3 / 10;
  for (core::PolicyKind kind :
       {core::PolicyKind::kNoCache, core::PolicyKind::kLru,
        core::PolicyKind::kGds, core::PolicyKind::kGdsp,
        core::PolicyKind::kLfu, core::PolicyKind::kRateProfile,
        core::PolicyKind::kOnlineBy, core::PolicyKind::kSpaceEffBy}) {
    core::PolicyConfig config;
    config.kind = kind;
    config.capacity_bytes = capacity;
    auto policy = core::MakePolicy(config);
    SimResult result = simulator.Run(*policy, queries);
    EXPECT_NEAR(result.totals.delivered(), sequence_cost,
                1e-6 * sequence_cost)
        << core::PolicyKindName(kind);
    EXPECT_EQ(result.totals.accesses,
              result.totals.hits + result.totals.bypasses +
                  result.totals.loads)
        << core::PolicyKindName(kind);
  }
}

TEST_F(SimulatorTest, SeriesIsMonotoneAndEndsAtTotal) {
  Simulator::Options options;
  options.sample_every = 16;
  Simulator simulator(&federation_, catalog::Granularity::kTable, options);
  core::RateProfilePolicy::Options rp;
  rp.capacity_bytes = federation_.catalog().total_size_bytes() / 4;
  core::RateProfilePolicy policy(rp);
  SimResult result = simulator.Run(policy, trace_);
  ASSERT_FALSE(result.series.empty());
  for (size_t i = 1; i < result.series.size(); ++i) {
    EXPECT_LE(result.series[i - 1].cumulative_wan,
              result.series[i].cumulative_wan);
    EXPECT_LT(result.series[i - 1].query_index,
              result.series[i].query_index);
  }
  EXPECT_EQ(result.series.back().query_index, trace_.queries.size());
  EXPECT_DOUBLE_EQ(result.series.back().cumulative_wan,
                   result.totals.total_wan());
}

TEST_F(SimulatorTest, SeriesFinalPointEmittedWhenSampleEveryDoesNotDivide) {
  // 400 queries, sample_every = 7: the last modulo sample lands at query
  // 399, so the final cumulative point must be appended separately.
  Simulator::Options options;
  options.sample_every = 7;
  Simulator simulator(&federation_, catalog::Granularity::kTable, options);
  core::NoCachePolicy policy;
  SimResult result = simulator.Run(policy, trace_);
  ASSERT_FALSE(result.series.empty());
  EXPECT_EQ(result.series.back().query_index, trace_.queries.size());
  EXPECT_DOUBLE_EQ(result.series.back().cumulative_wan,
                   result.totals.total_wan());
  // 57 modulo samples (7, 14, ..., 399) plus the final point.
  EXPECT_EQ(result.series.size(), 400u / 7 + 1);
}

TEST_F(SimulatorTest, SeriesFinalPointNotDuplicatedWhenSampleEveryDivides) {
  // 400 queries, sample_every = 16: the modulo sample at query 400 IS the
  // final point; it must not be emitted twice.
  Simulator::Options options;
  options.sample_every = 16;
  Simulator simulator(&federation_, catalog::Granularity::kTable, options);
  core::NoCachePolicy policy;
  SimResult result = simulator.Run(policy, trace_);
  ASSERT_EQ(result.series.size(), 400u / 16);
  EXPECT_EQ(result.series.back().query_index, trace_.queries.size());
  for (size_t i = 1; i < result.series.size(); ++i) {
    EXPECT_LT(result.series[i - 1].query_index, result.series[i].query_index);
  }
}

TEST_F(SimulatorTest, SeriesHasExactlyOnePointWhenSampleEveryExceedsTrace) {
  Simulator::Options options;
  options.sample_every = 100000;
  Simulator simulator(&federation_, catalog::Granularity::kTable, options);
  core::NoCachePolicy policy;
  SimResult result = simulator.Run(policy, trace_);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_EQ(result.series[0].query_index, trace_.queries.size());
  EXPECT_DOUBLE_EQ(result.series[0].cumulative_wan,
                   result.totals.total_wan());
}

TEST_F(SimulatorTest, SeriesDisabledWhenSampleEveryZero) {
  Simulator::Options options;
  options.sample_every = 0;
  Simulator simulator(&federation_, catalog::Granularity::kTable, options);
  core::NoCachePolicy policy;
  SimResult result = simulator.Run(policy, trace_);
  EXPECT_TRUE(result.series.empty());
}

TEST_F(SimulatorTest, StaticCacheNeverEvicts) {
  Simulator simulator(&federation_, catalog::Granularity::kTable);
  auto queries = simulator.DecomposeTrace(trace_);
  auto flat = Simulator::Flatten(queries);
  uint64_t capacity = federation_.catalog().total_size_bytes() * 3 / 10;
  core::StaticPolicy::Options options;
  options.capacity_bytes = capacity;
  core::StaticPolicy policy(options,
                            core::SelectStaticSet(flat, capacity));
  SimResult result = simulator.Run(policy, queries);
  EXPECT_EQ(result.totals.evictions, 0u);
  // Loads are bounded by the number of statically placed objects.
  EXPECT_LE(result.totals.loads, 16u);
}

TEST_F(SimulatorTest, FlattenPreservesAllAccesses) {
  Simulator simulator(&federation_, catalog::Granularity::kColumn);
  auto queries = simulator.DecomposeTrace(trace_);
  auto flat = Simulator::Flatten(queries);
  size_t total = 0;
  for (const auto& q : queries) total += q.size();
  EXPECT_EQ(flat.size(), total);
}

TEST_F(SimulatorTest, GranularityChangesAccessStream) {
  Simulator tables(&federation_, catalog::Granularity::kTable);
  Simulator columns(&federation_, catalog::Granularity::kColumn);
  auto t = Simulator::Flatten(tables.DecomposeTrace(trace_));
  auto c = Simulator::Flatten(columns.DecomposeTrace(trace_));
  // Column decomposition yields strictly more accesses, same total cost.
  EXPECT_GT(c.size(), t.size());
  double t_sum = 0, c_sum = 0;
  for (const auto& a : t) t_sum += a.bypass_cost;
  for (const auto& a : c) c_sum += a.bypass_cost;
  EXPECT_NEAR(t_sum, c_sum, 1e-6 * t_sum);
}

TEST_F(SimulatorTest, CostBreakdownToStringMentionsFlows) {
  CostBreakdown totals;
  totals.bypass_cost = 1.5e9;
  totals.fetch_cost = 5e8;
  std::string text = totals.ToString();
  EXPECT_NE(text.find("bypass="), std::string::npos);
  EXPECT_NE(text.find("fetch="), std::string::npos);
  EXPECT_NE(text.find("total="), std::string::npos);
}

}  // namespace
}  // namespace byc::sim
