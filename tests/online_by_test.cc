#include "core/online_by_policy.h"

#include <gtest/gtest.h>

#include "core/space_eff_by_policy.h"
#include "test_util.h"

namespace byc::core {
namespace {

using test::MakeAccess;

OnlineByPolicy::Options Opts(uint64_t capacity,
                             AobjKind aobj = AobjKind::kRentToBuy) {
  OnlineByPolicy::Options options;
  options.capacity_bytes = capacity;
  options.aobj = aobj;
  return options;
}

TEST(OnlineByTest, ByuAccumulatesYieldOverSize) {
  OnlineByPolicy policy(Opts(10000));
  Access access = MakeAccess(0, 30.0, 100);
  policy.OnAccess(access);
  EXPECT_DOUBLE_EQ(policy.ByuOf(access.object), 0.3);
  policy.OnAccess(access);
  EXPECT_DOUBLE_EQ(policy.ByuOf(access.object), 0.6);
}

TEST(OnlineByTest, CrossingOneGeneratesObjectRequest) {
  OnlineByPolicy policy(Opts(10000));
  Access access = MakeAccess(0, 60.0, 100);
  policy.OnAccess(access);  // BYU 0.6
  Decision d = policy.OnAccess(access);  // BYU 1.2 -> request, minus 1
  EXPECT_NEAR(policy.ByuOf(access.object), 0.2, 1e-12);
  // RentToBuy bypasses the first object-request.
  EXPECT_EQ(d.action, Action::kBypass);
}

TEST(OnlineByTest, SecondGroupLoadsUnderRentToBuy) {
  OnlineByPolicy policy(Opts(10000));
  Access access = MakeAccess(0, 100.0, 100);  // one group per access
  Decision d1 = policy.OnAccess(access);
  EXPECT_EQ(d1.action, Action::kBypass);  // group 1: rent
  Decision d2 = policy.OnAccess(access);
  EXPECT_EQ(d2.action, Action::kLoadAndServe);  // group 2: buy
  EXPECT_TRUE(policy.Contains(access.object));
  Decision d3 = policy.OnAccess(access);
  EXPECT_EQ(d3.action, Action::kServeFromCache);
}

TEST(OnlineByTest, LandlordAobjLoadsOnFirstGroup) {
  OnlineByPolicy policy(Opts(10000, AobjKind::kLandlord));
  Access access = MakeAccess(0, 100.0, 100);
  Decision d1 = policy.OnAccess(access);
  EXPECT_EQ(d1.action, Action::kLoadAndServe);
}

TEST(OnlineByTest, SubUnitYieldsNeverTriggerRequests) {
  OnlineByPolicy policy(Opts(10000, AobjKind::kLandlord));
  Access access = MakeAccess(0, 10.0, 1000);
  for (int i = 0; i < 99; ++i) {
    EXPECT_EQ(policy.OnAccess(access).action, Action::kBypass);
  }
  // The 100th access crosses BYU = 1 and (Landlord) loads.
  EXPECT_EQ(policy.OnAccess(access).action, Action::kLoadAndServe);
}

TEST(OnlineByTest, GiantYieldCompletesMultipleGroupsAtOnce) {
  OnlineByPolicy policy(Opts(10000, AobjKind::kRentToBuy));
  // yield = 2.5x size: 2 groups complete in one access -> rent then buy
  // within the same access.
  Access access = MakeAccess(0, 250.0, 100);
  Decision d = policy.OnAccess(access);
  EXPECT_EQ(d.action, Action::kLoadAndServe);
  EXPECT_NEAR(policy.ByuOf(access.object), 0.5, 1e-12);
}

TEST(OnlineByTest, ResidencyMirrorsAobj) {
  OnlineByPolicy policy(Opts(300, AobjKind::kLandlord));
  Access a = MakeAccess(0, 200.0, 200);
  Access b = MakeAccess(1, 200.0, 200);
  policy.OnAccess(a);  // loads a
  EXPECT_TRUE(policy.Contains(a.object));
  policy.OnAccess(b);  // loads b, evicting a
  EXPECT_TRUE(policy.Contains(b.object));
  EXPECT_FALSE(policy.Contains(a.object));
  EXPECT_EQ(policy.stats().used_bytes, policy.aobj().stats().used_bytes);
}

TEST(OnlineByTest, ObjectLargerThanCacheAlwaysBypassed) {
  OnlineByPolicy policy(Opts(100));
  Access big = MakeAccess(0, 900.0, 300);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.OnAccess(big).action, Action::kBypass);
  }
}

// Single-object competitive sanity check: for any repetition count, the
// cost of OnlineBY(RentToBuy) is within a small constant of the offline
// optimum min(total yield, fetch + leftovers).
TEST(OnlineByTest, SingleObjectCostWithinConstantOfOptimal) {
  const uint64_t size = 100;
  const double yield = 40.0;  // 0.4 groups per access
  for (int n : {1, 2, 3, 5, 8, 13, 40, 200}) {
    OnlineByPolicy policy(Opts(1000));
    double online_cost = 0;
    for (int i = 0; i < n; ++i) {
      Decision d = policy.OnAccess(MakeAccess(0, yield, size));
      if (d.action == Action::kBypass) online_cost += yield;
      if (d.action == Action::kLoadAndServe)
        online_cost += static_cast<double>(size);
    }
    double opt = std::min(yield * n, static_cast<double>(size));
    // Theorem 5.1 allows (4a+2) OPT; the single-object case lands well
    // inside 6x even with grouping round-off.
    EXPECT_LE(online_cost, 6 * opt + 1e-9) << "n=" << n;
  }
}

TEST(SpaceEffByTest, DeterministicForFixedSeed) {
  SpaceEffByPolicy::Options options;
  options.capacity_bytes = 1000;
  options.seed = 99;
  SpaceEffByPolicy a(options), b(options);
  for (int i = 0; i < 200; ++i) {
    Access access = MakeAccess(i % 7, 50.0, 100);
    EXPECT_EQ(a.OnAccess(access).action, b.OnAccess(access).action);
  }
}

TEST(SpaceEffByTest, ZeroYieldNeverLoads) {
  SpaceEffByPolicy::Options options;
  options.capacity_bytes = 1000;
  SpaceEffByPolicy policy(options);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(policy.OnAccess(MakeAccess(0, 0.0, 100)).action,
              Action::kBypass);
  }
}

TEST(SpaceEffByTest, FullYieldLoadsImmediatelyUnderLandlord) {
  SpaceEffByPolicy::Options options;
  options.capacity_bytes = 1000;
  options.aobj = AobjKind::kLandlord;
  SpaceEffByPolicy policy(options);
  // p = min(1, y/s) = 1: the first access must present the object.
  Decision d = policy.OnAccess(MakeAccess(0, 100.0, 100));
  EXPECT_EQ(d.action, Action::kLoadAndServe);
}

TEST(SpaceEffByTest, LoadProbabilityTracksYieldFraction) {
  // Over many independent objects with p = 0.3, roughly 30% of first
  // accesses should load (Landlord admits on first request).
  SpaceEffByPolicy::Options options;
  options.capacity_bytes = 1u << 30;
  options.aobj = AobjKind::kLandlord;
  options.seed = 7;
  SpaceEffByPolicy policy(options);
  int loads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Decision d = policy.OnAccess(MakeAccess(i, 30.0, 100));
    loads += d.action == Action::kLoadAndServe;
  }
  EXPECT_NEAR(static_cast<double>(loads) / n, 0.3, 0.02);
}

TEST(SpaceEffByTest, DifferentSeedsDiverge) {
  SpaceEffByPolicy::Options a_options, b_options;
  a_options.capacity_bytes = b_options.capacity_bytes = 1u << 20;
  a_options.seed = 1;
  b_options.seed = 2;
  SpaceEffByPolicy a(a_options), b(b_options);
  int diffs = 0;
  for (int i = 0; i < 500; ++i) {
    Access access = MakeAccess(i, 50.0, 100);
    diffs += a.OnAccess(access).action != b.OnAccess(access).action;
  }
  EXPECT_GT(diffs, 0);
}

}  // namespace
}  // namespace byc::core
