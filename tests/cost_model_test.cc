#include "net/cost_model.h"

#include <gtest/gtest.h>

#include "catalog/sdss.h"
#include "federation/federation.h"
#include "federation/mediator.h"
#include "query/binder.h"

namespace byc::net {
namespace {

TEST(CostModelTest, UniformChargesSameEverywhere) {
  UniformCostModel model(2.5);
  EXPECT_DOUBLE_EQ(model.CostPerByte(0), 2.5);
  EXPECT_DOUBLE_EQ(model.CostPerByte(7), 2.5);
}

TEST(CostModelTest, UniformDefaultsToUnitCost) {
  UniformCostModel model;
  EXPECT_DOUBLE_EQ(model.CostPerByte(0), 1.0);
}

TEST(CostModelTest, PerSiteCharges) {
  PerSiteCostModel model({1.0, 3.0, 0.5});
  EXPECT_EQ(model.num_sites(), 3);
  EXPECT_DOUBLE_EQ(model.CostPerByte(0), 1.0);
  EXPECT_DOUBLE_EQ(model.CostPerByte(1), 3.0);
  EXPECT_DOUBLE_EQ(model.CostPerByte(2), 0.5);
}

TEST(CostModelTest, FederationExposesItsModel) {
  auto fed =
      federation::Federation::SingleSite(catalog::MakeSdssEdrCatalog(), 2.0);
  // The accessor the service accounting path prices through.
  EXPECT_DOUBLE_EQ(fed.cost_model().CostPerByte(0), 2.0);
  catalog::ObjectId t0 = catalog::ObjectId::ForTable(0);
  EXPECT_DOUBLE_EQ(fed.TransferCost(t0, 50.0),
                   50.0 * fed.cost_model().CostPerByte(0));
}

TEST(CostModelTest, PerSitePricingMatchesFederationTransferCost) {
  auto catalog = catalog::MakeSdssEdrCatalog();
  int n = catalog.num_tables();
  std::vector<int> table_site(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) table_site[static_cast<size_t>(t)] = t % 3;
  auto fed = federation::Federation::MultiSite(std::move(catalog),
                                               table_site, {1.0, 2.5, 0.5});
  ASSERT_TRUE(fed.ok());
  for (int t = 0; t < n; ++t) {
    catalog::ObjectId object = catalog::ObjectId::ForTable(t);
    int site = fed->SiteOfTable(t);
    // TransferCost is exactly bytes * CostPerByte(owning site) — the
    // identity the wire accounting relies on when it prices
    // backend-acknowledged bytes instead of precomputed costs.
    EXPECT_DOUBLE_EQ(fed->TransferCost(object, 1000.0),
                     1000.0 * fed->cost_model().CostPerByte(site));
  }
}

TEST(CostModelTest, DecomposedCostsCarryPerSitePrices) {
  auto catalog = catalog::MakeSdssEdrCatalog();
  int n = catalog.num_tables();
  std::vector<int> table_site(static_cast<size_t>(n), 0);
  table_site[0] = 1;  // table 0 at the expensive site
  std::vector<double> costs = {1.0, 4.0};
  auto fed = federation::Federation::MultiSite(std::move(catalog),
                                               table_site, costs);
  ASSERT_TRUE(fed.ok());
  federation::Mediator mediator(&fed.value(),
                                catalog::Granularity::kTable);
  const catalog::Table& table0 = fed->catalog().table(0);
  auto bound = query::ParseAndBind(
      fed->catalog(), "SELECT " + table0.column(0).name + ", " +
                          table0.column(1).name + " FROM " + table0.name());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto accesses = mediator.Decompose(*bound);
  ASSERT_FALSE(accesses.empty());
  for (const auto& access : accesses) {
    int site = fed->SiteOfTable(access.object.table);
    double per_byte = fed->cost_model().CostPerByte(site);
    EXPECT_DOUBLE_EQ(access.bypass_cost, access.yield_bytes * per_byte);
    EXPECT_DOUBLE_EQ(
        access.fetch_cost,
        static_cast<double>(access.size_bytes) * per_byte);
  }
}

}  // namespace
}  // namespace byc::net
