#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "catalog/object_id.h"
#include "catalog/sdss.h"

namespace byc::catalog {
namespace {

Table MakeToyTable() {
  Table t("Toy", 100);
  t.AddColumn("id", ColumnType::kInt64);
  t.AddColumn("x", ColumnType::kFloat32);
  t.AddColumn("flag", ColumnType::kInt16);
  return t;
}

TEST(ColumnTest, TypeWidths) {
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kInt16), 2u);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kInt32), 4u);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kInt64), 8u);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kFloat32), 4u);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kFloat64), 8u);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kChar8), 8u);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kChar32), 32u);
}

TEST(TableTest, RowWidthAccumulates) {
  Table t = MakeToyTable();
  EXPECT_EQ(t.row_width_bytes(), 8u + 4u + 2u);
  EXPECT_EQ(t.size_bytes(), 100u * 14u);
}

TEST(TableTest, ColumnSize) {
  Table t = MakeToyTable();
  EXPECT_EQ(t.column_size_bytes(0), 800u);
  EXPECT_EQ(t.column_size_bytes(1), 400u);
  EXPECT_EQ(t.column_size_bytes(2), 200u);
}

TEST(TableTest, FindColumn) {
  Table t = MakeToyTable();
  EXPECT_EQ(t.FindColumn("x"), 1);
  EXPECT_EQ(t.FindColumn("missing"), -1);
  EXPECT_EQ(t.FindColumn("X"), -1);  // case sensitive
}

TEST(CatalogTest, AddAndFindTables) {
  Catalog cat("test");
  ASSERT_TRUE(cat.AddTable(MakeToyTable()).ok());
  Result<int> idx = cat.FindTable("Toy");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0);
  EXPECT_FALSE(cat.FindTable("Nope").ok());
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat("test");
  ASSERT_TRUE(cat.AddTable(MakeToyTable()).ok());
  Result<int> dup = cat.AddTable(MakeToyTable());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, TotalsAggregate) {
  Catalog cat("test");
  ASSERT_TRUE(cat.AddTable(MakeToyTable()).ok());
  Table other("Other", 10);
  other.AddColumn("a", ColumnType::kFloat64);
  ASSERT_TRUE(cat.AddTable(std::move(other)).ok());
  EXPECT_EQ(cat.total_size_bytes(), 1400u + 80u);
  EXPECT_EQ(cat.total_columns(), 4);
}

TEST(ObjectIdTest, TableVsColumn) {
  ObjectId table = ObjectId::ForTable(3);
  ObjectId column = ObjectId::ForColumn(3, 7);
  EXPECT_TRUE(table.is_table());
  EXPECT_FALSE(column.is_table());
  EXPECT_NE(table, column);
  EXPECT_EQ(table, ObjectId::ForTable(3));
}

TEST(ObjectIdTest, KeysAreUnique) {
  std::set<uint64_t> keys;
  for (int t = 0; t < 10; ++t) {
    keys.insert(ObjectId::ForTable(t).Key());
    for (int c = 0; c < 20; ++c) {
      keys.insert(ObjectId::ForColumn(t, c).Key());
    }
  }
  EXPECT_EQ(keys.size(), 10u * 21u);
}

TEST(ObjectIdTest, ToStringUsesNames) {
  Catalog cat("test");
  ASSERT_TRUE(cat.AddTable(MakeToyTable()).ok());
  EXPECT_EQ(ObjectId::ForTable(0).ToString(cat), "Toy");
  EXPECT_EQ(ObjectId::ForColumn(0, 1).ToString(cat), "Toy.x");
}

TEST(ObjectIdTest, SizeBytes) {
  Catalog cat("test");
  ASSERT_TRUE(cat.AddTable(MakeToyTable()).ok());
  EXPECT_EQ(ObjectSizeBytes(cat, ObjectId::ForTable(0)), 1400u);
  EXPECT_EQ(ObjectSizeBytes(cat, ObjectId::ForColumn(0, 0)), 800u);
}

TEST(ObjectIdTest, EnumerateBothGranularities) {
  Catalog cat("test");
  ASSERT_TRUE(cat.AddTable(MakeToyTable()).ok());
  EXPECT_EQ(EnumerateObjects(cat, Granularity::kTable).size(), 1u);
  EXPECT_EQ(EnumerateObjects(cat, Granularity::kColumn).size(), 3u);
}

// --- SDSS catalog properties, parameterized over both releases. ---

struct SdssCase {
  const char* name;
  double row_scale;
};

class SdssCatalogTest : public ::testing::TestWithParam<SdssCase> {};

TEST_P(SdssCatalogTest, HasExpectedTables) {
  Catalog cat = MakeSdssCatalog(GetParam().name, GetParam().row_scale);
  for (const char* table : {"PhotoObj", "SpecObj", "Neighbors", "Field",
                            "Frame", "PlateX", "PhotoZ", "Tiles", "Mask",
                            "PhotoProfile", "First", "Rosat", "USNO"}) {
    EXPECT_TRUE(cat.FindTable(table).ok()) << table;
  }
}

TEST_P(SdssCatalogTest, PaperExampleColumnsExist) {
  Catalog cat = MakeSdssCatalog(GetParam().name, GetParam().row_scale);
  const Table& photo = cat.table(*cat.FindTable("PhotoObj"));
  EXPECT_GE(photo.FindColumn("objID"), 0);
  EXPECT_GE(photo.FindColumn("ra"), 0);
  EXPECT_GE(photo.FindColumn("dec"), 0);
  EXPECT_GE(photo.FindColumn("modelMag_g"), 0);
  const Table& spec = cat.table(*cat.FindTable("SpecObj"));
  EXPECT_GE(spec.FindColumn("objID"), 0);
  EXPECT_GE(spec.FindColumn("z"), 0);
  EXPECT_GE(spec.FindColumn("zConf"), 0);
  EXPECT_GE(spec.FindColumn("specClass"), 0);
}

TEST_P(SdssCatalogTest, KeyColumnsComeFirst) {
  Catalog cat = MakeSdssCatalog(GetParam().name, GetParam().row_scale);
  for (int t = 0; t < cat.num_tables(); ++t) {
    EXPECT_EQ(cat.table(t).column(0).type, ColumnType::kInt64)
        << cat.table(t).name();
  }
}

TEST_P(SdssCatalogTest, HotTablesFitInThirtyPercentCache) {
  // The paper's Fig. 9 knee: a cache of 20-30% of the database suffices.
  // That requires the hot tables (PhotoObj + SpecObj) to fit there.
  Catalog cat = MakeSdssCatalog(GetParam().name, GetParam().row_scale);
  uint64_t hot = cat.table(*cat.FindTable("PhotoObj")).size_bytes() +
                 cat.table(*cat.FindTable("SpecObj")).size_bytes();
  EXPECT_LT(hot, cat.total_size_bytes() * 3 / 10);
}

TEST_P(SdssCatalogTest, ColdTablesAreMajority) {
  // The uncachable tail must be large enough that in-line caching hurts.
  Catalog cat = MakeSdssCatalog(GetParam().name, GetParam().row_scale);
  uint64_t cold = 0;
  for (const char* name : {"Neighbors", "PhotoProfile", "First", "Rosat",
                           "USNO"}) {
    cold += cat.table(*cat.FindTable(name)).size_bytes();
  }
  EXPECT_GT(cold, cat.total_size_bytes() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Releases, SdssCatalogTest,
    ::testing::Values(SdssCase{"EDR", 1.0}, SdssCase{"DR1", 2.3}),
    [](const ::testing::TestParamInfo<SdssCase>& info) {
      return info.param.name;
    });

TEST(SdssCatalogTest, EdrIsAbout700MB) {
  Catalog cat = MakeSdssEdrCatalog();
  double mb = static_cast<double>(cat.total_size_bytes()) / (1024.0 * 1024.0);
  EXPECT_GT(mb, 600);
  EXPECT_LT(mb, 800);
}

TEST(SdssCatalogTest, Dr1ScalesRows) {
  Catalog edr = MakeSdssEdrCatalog();
  Catalog dr1 = MakeSdssDr1Catalog();
  const Table& e = edr.table(*edr.FindTable("PhotoObj"));
  const Table& d = dr1.table(*dr1.FindTable("PhotoObj"));
  EXPECT_NEAR(static_cast<double>(d.row_count()) /
                  static_cast<double>(e.row_count()),
              2.3, 0.01);
  // Same schema.
  EXPECT_EQ(e.num_columns(), d.num_columns());
}

}  // namespace
}  // namespace byc::catalog
