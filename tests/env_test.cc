#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace byc::env {
namespace {

/// Sets an environment variable for the duration of one test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(EnvTest, RawDistinguishesUnsetEmptyAndSet) {
  ::unsetenv("BYC_TEST_RAW");
  EXPECT_FALSE(Raw("BYC_TEST_RAW").has_value());
  {
    ScopedEnv env("BYC_TEST_RAW", "");
    EXPECT_FALSE(Raw("BYC_TEST_RAW").has_value());
  }
  {
    ScopedEnv env("BYC_TEST_RAW", "value");
    ASSERT_TRUE(Raw("BYC_TEST_RAW").has_value());
    EXPECT_EQ("value", *Raw("BYC_TEST_RAW"));
  }
}

TEST(EnvTest, ParseIntAcceptsStrictDecimals) {
  EXPECT_EQ(0, ParseInt("0", 0, 100).value());
  EXPECT_EQ(42, ParseInt("42", 0, 100).value());
  EXPECT_EQ(-7, ParseInt("-7", -10, 10).value());
  EXPECT_EQ(INT64_MAX,
            ParseInt("9223372036854775807", 0, INT64_MAX).value());
}

TEST(EnvTest, ParseIntRejectsJunk) {
  for (const char* bad :
       {"", " 8", "8 ", "+8", "8x", "x8", "0x10", "3.5", "--2", "8\n",
        "eight", "1e3", "๔"}) {
    EXPECT_FALSE(ParseInt(bad, INT64_MIN, INT64_MAX).ok())
        << "accepted '" << bad << "'";
  }
}

TEST(EnvTest, ParseIntRejectsOverflowAndRange) {
  // One past INT64_MAX: overflow, not silent truncation.
  EXPECT_FALSE(ParseInt("9223372036854775808", INT64_MIN, INT64_MAX).ok());
  EXPECT_FALSE(ParseInt("-9223372036854775809", INT64_MIN, INT64_MAX).ok());
  EXPECT_FALSE(ParseInt("101", 0, 100).ok());
  EXPECT_FALSE(ParseInt("-1", 0, 100).ok());
}

TEST(EnvTest, ParseDurationUnits) {
  EXPECT_EQ(250, ParseDurationMs("250", 0, INT64_MAX).value());
  EXPECT_EQ(250, ParseDurationMs("250ms", 0, INT64_MAX).value());
  EXPECT_EQ(2000, ParseDurationMs("2s", 0, INT64_MAX).value());
  EXPECT_EQ(120000, ParseDurationMs("2m", 0, INT64_MAX).value());
  EXPECT_EQ(0, ParseDurationMs("0s", 0, INT64_MAX).value());
}

TEST(EnvTest, ParseDurationRejectsJunk) {
  for (const char* bad : {"", "ms", "-5ms", "+2s", "2.5s", "2 s", "2sec",
                          "2h", "s2", "2ss", "2m3"}) {
    EXPECT_FALSE(ParseDurationMs(bad, 0, INT64_MAX).ok())
        << "accepted '" << bad << "'";
  }
}

TEST(EnvTest, ParseDurationRejectsScaledOverflowAndRange) {
  // Fits as an integer, overflows once scaled to milliseconds.
  EXPECT_FALSE(ParseDurationMs("9223372036854775807m", 0, INT64_MAX).ok());
  EXPECT_FALSE(ParseDurationMs("2s", 0, 1999).ok());
  EXPECT_FALSE(ParseDurationMs("5", 10, 100).ok());
}

TEST(EnvTest, ParseHostPortForms) {
  Result<HostPort> full = ParseHostPort("10.1.2.3:8080");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ("10.1.2.3", full->host);
  EXPECT_EQ(8080, full->port);

  // Bare ":port" defaults to loopback.
  Result<HostPort> bare = ParseHostPort(":9000");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ("127.0.0.1", bare->host);
  EXPECT_EQ(9000, bare->port);

  EXPECT_EQ(0, ParseHostPort("localhost:0").value().port);
}

TEST(EnvTest, ParseHostPortRejectsJunk) {
  for (const char* bad : {"", "host", "host:", "host:x", "host:-1",
                          "host:65536", "ho st:80", "host:80x", ":"}) {
    EXPECT_FALSE(ParseHostPort(bad).ok()) << "accepted '" << bad << "'";
  }
}

TEST(EnvTest, IntOrFallsBackOnlyWhenUnset) {
  ::unsetenv("BYC_TEST_INT");
  EXPECT_EQ(7, IntOr("BYC_TEST_INT", 7, 0, 100).value());
  {
    ScopedEnv env("BYC_TEST_INT", "");
    EXPECT_EQ(7, IntOr("BYC_TEST_INT", 7, 0, 100).value());
  }
  {
    ScopedEnv env("BYC_TEST_INT", "13");
    EXPECT_EQ(13, IntOr("BYC_TEST_INT", 7, 0, 100).value());
  }
  {
    // A typo'd knob is an error, never a silent fallback.
    ScopedEnv env("BYC_TEST_INT", "13x");
    Result<int64_t> r = IntOr("BYC_TEST_INT", 7, 0, 100);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(std::string::npos,
              r.status().message().find("BYC_TEST_INT"));
  }
}

TEST(EnvTest, ParsePathAcceptsPlainPaths) {
  EXPECT_EQ("/var/lib/byc", ParsePath("/var/lib/byc").value());
  EXPECT_EQ("snapshots", ParsePath("snapshots").value());
  EXPECT_EQ("./x", ParsePath("./x").value());
  // Trailing slashes are normalized away; the root itself survives.
  EXPECT_EQ("/var/lib/byc", ParsePath("/var/lib/byc/").value());
  EXPECT_EQ("/", ParsePath("/").value());
  // Existence is NOT required — the service creates the directory.
  EXPECT_TRUE(ParsePath("/definitely/not/created/yet").ok());
}

TEST(EnvTest, ParsePathRejectsJunk) {
  for (const char* bad :
       {"", " ", "/var/li b", " /var", "/var ", "/var\tlib", "/var\n"}) {
    EXPECT_FALSE(ParsePath(bad).ok()) << "accepted '" << bad << "'";
  }
  EXPECT_FALSE(ParsePath(std::string("/var\x01lib")).ok());
}

TEST(EnvTest, PathOrFallsBackOnlyWhenUnset) {
  ::unsetenv("BYC_TEST_PATH");
  EXPECT_EQ("/tmp/d", PathOr("BYC_TEST_PATH", "/tmp/d").value());
  {
    ScopedEnv env("BYC_TEST_PATH", "/data/snaps/");
    EXPECT_EQ("/data/snaps", PathOr("BYC_TEST_PATH", "/tmp/d").value());
  }
  {
    // A typo'd knob is an error that names the variable, never a silent
    // fallback.
    ScopedEnv env("BYC_TEST_PATH", "two words");
    Result<std::string> r = PathOr("BYC_TEST_PATH", "/tmp/d");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(std::string::npos,
              r.status().message().find("BYC_TEST_PATH"));
  }
}

TEST(EnvTest, DurationMsOrParsesAndPropagatesErrors) {
  ::unsetenv("BYC_TEST_MS");
  EXPECT_EQ(2000,
            DurationMsOr("BYC_TEST_MS", 2000, 1, 600000).value());
  {
    ScopedEnv env("BYC_TEST_MS", "3s");
    EXPECT_EQ(3000,
              DurationMsOr("BYC_TEST_MS", 2000, 1, 600000).value());
  }
  {
    ScopedEnv env("BYC_TEST_MS", "fast");
    EXPECT_FALSE(DurationMsOr("BYC_TEST_MS", 2000, 1, 600000).ok());
  }
}

}  // namespace
}  // namespace byc::env
