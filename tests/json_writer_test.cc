#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace byc {
namespace {

TEST(JsonEscapedTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscaped("hello world"), "hello world");
  EXPECT_EQ(JsonEscaped(""), "");
  EXPECT_EQ(JsonEscaped("PhotoObj.objID"), "PhotoObj.objID");
}

TEST(JsonEscapedTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscaped("a\\b"), "a\\\\b");
}

TEST(JsonEscapedTest, EscapesNamedControlCharacters) {
  EXPECT_EQ(JsonEscaped("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscaped("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscaped("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscaped("a\bb"), "a\\bb");
  EXPECT_EQ(JsonEscaped("a\fb"), "a\\fb");
}

TEST(JsonEscapedTest, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(JsonEscaped(std::string_view("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscaped(std::string_view("\x1f", 1)), "\\u001f");
  EXPECT_EQ(JsonEscaped(std::string_view("x\0y", 3)), "x\\u0000y");
}

TEST(JsonEscapedTest, LeavesHighBytesAlone) {
  // UTF-8 multibyte sequences pass through unmodified.
  EXPECT_EQ(JsonEscaped("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, CompactObject) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.BeginObject();
  w.Key("name");
  w.String("edr");
  w.Key("threads");
  w.UInt(8);
  w.Key("ok");
  w.Bool(true);
  w.EndObject();
  EXPECT_EQ(out, "{\"name\": \"edr\", \"threads\": 8, \"ok\": true}");
}

TEST(JsonWriterTest, CompactArray) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.BeginArray();
  w.Int(1);
  w.Int(-2);
  w.Null();
  w.EndArray();
  EXPECT_EQ(out, "[1, -2, null]");
}

TEST(JsonWriterTest, EmptyContainers) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/true);
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.Key("b");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(out, "{\n  \"a\": [],\n  \"b\": {}\n}");
}

TEST(JsonWriterTest, PrettyNesting) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/true);
  w.BeginObject();
  w.Key("config");
  w.BeginObject();
  w.Key("release");
  w.String("edr");
  w.EndObject();
  w.Key("values");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(out,
            "{\n"
            "  \"config\": {\n"
            "    \"release\": \"edr\"\n"
            "  },\n"
            "  \"values\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}");
}

TEST(JsonWriterTest, DoubleFixedDecimals) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.BeginArray();
  w.Double(3.14159, 3);
  w.Double(2.0, 1);
  w.Double(1216.94, 2);
  w.EndArray();
  EXPECT_EQ(out, "[3.142, 2.0, 1216.94]");
}

TEST(JsonWriterTest, DoubleShortestRoundTrip) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.BeginArray();
  w.Double(0.5);
  w.Double(1e21);
  w.EndArray();
  EXPECT_EQ(out, "[0.5, 1e+21]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  EXPECT_EQ(out, "[null, null, null]");
}

TEST(JsonWriterTest, KeysAreEscaped) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.BeginObject();
  w.Key("we\"ird");
  w.Int(1);
  w.EndObject();
  EXPECT_EQ(out, "{\"we\\\"ird\": 1}");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.BeginArray();
  for (int i = 0; i < 2; ++i) {
    w.BeginObject();
    w.Key("i");
    w.Int(i);
    w.EndObject();
  }
  w.EndArray();
  EXPECT_EQ(out, "[{\"i\": 0}, {\"i\": 1}]");
}

TEST(JsonWriterTest, RootScalar) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/false);
  w.Int(42);
  EXPECT_EQ(out, "42");
}

}  // namespace
}  // namespace byc
