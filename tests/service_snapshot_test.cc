// Service-layer crash-recovery tests: the kill-at-query-N contract over
// loopback (restore a mid-trace snapshot, finish the trace, ledger
// bitwise-equal to the uninterrupted run), damaged-snapshot cold starts,
// torn-write fallback to the previous snapshot, and Stop() racing
// in-flight batches with a snapshot directory configured.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/sdss.h"
#include "common/check.h"
#include "core/policy_factory.h"
#include "persist/snapshot.h"
#include "service/backend_server.h"
#include "service/fault.h"
#include "service/mediator_server.h"
#include "service/replay_client.h"
#include "service_test_util.h"
#include "workload/generator.h"

namespace byc::service {
namespace {

using testutil::BackendFleet;
using testutil::ExpectedLedger;
using testutil::ExpectLedgerEq;
using testutil::FastConfig;

workload::Trace Slice(const workload::Trace& trace, size_t begin,
                      size_t end) {
  workload::Trace out;
  out.name = trace.name;
  out.queries.assign(trace.queries.begin() + begin,
                     trace.queries.begin() + end);
  return out;
}

class ServiceSnapshotTest : public ::testing::Test {
 protected:
  ServiceSnapshotTest()
      : federation_(federation::Federation::SingleSite(
            catalog::MakeSdssEdrCatalog())) {
    workload::GeneratorOptions options;
    options.num_queries = 80;
    options.target_sequence_cost = 0;
    workload::TraceGenerator gen(&federation_.catalog(), options);
    trace_ = gen.Generate();
    config_.kind = core::PolicyKind::kRateProfile;
    config_.capacity_bytes =
        federation_.catalog().total_size_bytes() * 3 / 10;
    char tmpl[] = "/tmp/byc_snapshot_test.XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }

  ~ServiceSnapshotTest() override {
    ::unlink((dir_ + "/mediator.snap").c_str());
    ::unlink((dir_ + "/mediator.snap.tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  ServiceConfig PersistingConfig() const {
    ServiceConfig config = FastConfig();
    config.snapshot_dir = dir_;
    return config;
  }

  StatsReply Oracle() const {
    return ExpectedLedger(federation_, config_.granularity, config_,
                          trace_, {});
  }

  federation::Federation federation_;
  workload::Trace trace_;
  core::PolicyConfig config_;
  std::string dir_;
};

TEST_F(ServiceSnapshotTest, KillAtQueryNResumesBitwiseIdentical) {
  const size_t kill_at = trace_.queries.size() / 2;
  BackendFleet fleet(federation_);
  ServiceConfig svc = PersistingConfig();
  FaultPlan faults;
  MediatorServer::Options options;
  options.config = svc;
  options.faults = &faults;

  {
    MediatorServer mediator(&federation_, config_, fleet.addresses(),
                            options);
    ASSERT_TRUE(mediator.Start().ok());
    ReplayClient client("127.0.0.1", mediator.port(), svc);
    ASSERT_TRUE(client.Replay(Slice(trace_, 0, kill_at)).ok());
    Result<SnapshotReply> snap = client.TriggerSnapshot();
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    EXPECT_EQ(kill_at, snap->queries);
    EXPECT_EQ(1, snap->persisted);
    EXPECT_LT(0u, snap->snapshot_bytes);
    // Crash: nothing after the explicit snapshot reaches the file.
    faults.snapshot_skip_rename.store(true);
    mediator.Stop();
    faults.snapshot_skip_rename.store(false);
  }

  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  EXPECT_EQ(1u, mediator.snapshot_restores());
  EXPECT_EQ(0u, mediator.snapshot_restore_failures());
  ReplayClient client("127.0.0.1", mediator.port(), svc);
  Result<StatsReply> restored = client.FetchStats();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(kill_at, restored->queries);
  Result<ReplayReport> rest =
      client.Replay(Slice(trace_, kill_at, trace_.queries.size()));
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  mediator.Stop();
  ExpectLedgerEq(Oracle(), rest->ledger);
}

TEST_F(ServiceSnapshotTest, TruncatedSnapshotColdStartsCleanly) {
  BackendFleet fleet(federation_);
  ServiceConfig svc = PersistingConfig();
  FaultPlan faults;
  MediatorServer::Options options;
  options.config = svc;
  options.faults = &faults;

  {
    MediatorServer mediator(&federation_, config_, fleet.addresses(),
                            options);
    ASSERT_TRUE(mediator.Start().ok());
    ReplayClient client("127.0.0.1", mediator.port(), svc);
    ASSERT_TRUE(client.Replay(Slice(trace_, 0, 30)).ok());
    // The snapshot lands but loses its tail — a torn write discovered
    // at the next load.
    faults.snapshot_truncate.store(48);
    ASSERT_TRUE(client.TriggerSnapshot().ok());
    faults.snapshot_truncate.store(-1);
    faults.snapshot_skip_rename.store(true);
    mediator.Stop();
    faults.snapshot_skip_rename.store(false);
  }

  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok())
      << "a corrupt snapshot must never take the service down";
  EXPECT_EQ(0u, mediator.snapshot_restores());
  EXPECT_EQ(1u, mediator.snapshot_restore_failures());
  ReplayClient client("127.0.0.1", mediator.port(), svc);
  Result<StatsReply> stats = client.FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(0u, stats->queries);  // clean cold start
  Result<ReplayReport> full = client.Replay(trace_);
  ASSERT_TRUE(full.ok());
  mediator.Stop();
  ExpectLedgerEq(Oracle(), full->ledger);
}

TEST_F(ServiceSnapshotTest, BitFlippedSnapshotColdStartsCleanly) {
  BackendFleet fleet(federation_);
  ServiceConfig svc = PersistingConfig();
  FaultPlan faults;
  MediatorServer::Options options;
  options.config = svc;
  options.faults = &faults;

  {
    MediatorServer mediator(&federation_, config_, fleet.addresses(),
                            options);
    ASSERT_TRUE(mediator.Start().ok());
    ReplayClient client("127.0.0.1", mediator.port(), svc);
    ASSERT_TRUE(client.Replay(Slice(trace_, 0, 20)).ok());
    faults.snapshot_flip_bit.store(1003);
    ASSERT_TRUE(client.TriggerSnapshot().ok());
    faults.snapshot_flip_bit.store(-1);
    faults.snapshot_skip_rename.store(true);
    mediator.Stop();
    faults.snapshot_skip_rename.store(false);
  }

  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  EXPECT_EQ(1u, mediator.snapshot_restore_failures());
  mediator.Stop();
}

TEST_F(ServiceSnapshotTest, TornWriteKeepsPreviousSnapshotLoadable) {
  BackendFleet fleet(federation_);
  ServiceConfig svc = PersistingConfig();
  FaultPlan faults;
  MediatorServer::Options options;
  options.config = svc;
  options.faults = &faults;
  const size_t n1 = 25;
  const size_t n2 = 55;

  {
    MediatorServer mediator(&federation_, config_, fleet.addresses(),
                            options);
    ASSERT_TRUE(mediator.Start().ok());
    ReplayClient client("127.0.0.1", mediator.port(), svc);
    ASSERT_TRUE(client.Replay(Slice(trace_, 0, n1)).ok());
    ASSERT_TRUE(client.TriggerSnapshot().ok());  // the survivor
    ASSERT_TRUE(client.Replay(Slice(trace_, n1, n2)).ok());
    // The N2 snapshot dies between the temp write and the rename.
    faults.snapshot_skip_rename.store(true);
    ASSERT_TRUE(client.TriggerSnapshot().ok());
    mediator.Stop();
    faults.snapshot_skip_rename.store(false);
  }

  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  EXPECT_EQ(1u, mediator.snapshot_restores());
  ReplayClient client("127.0.0.1", mediator.port(), svc);
  Result<StatsReply> stats = client.FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(n1, stats->queries) << "must resume from the N1 snapshot";
  Result<ReplayReport> rest =
      client.Replay(Slice(trace_, n1, trace_.queries.size()));
  ASSERT_TRUE(rest.ok());
  mediator.Stop();
  ExpectLedgerEq(Oracle(), rest->ledger);
}

TEST_F(ServiceSnapshotTest, SnapshotWithoutDirIsFailedPrecondition) {
  BackendFleet fleet(federation_);
  ServiceConfig svc = FastConfig();  // no snapshot_dir
  MediatorServer::Options options;
  options.config = svc;
  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  ReplayClient client("127.0.0.1", mediator.port(), svc);
  Result<SnapshotReply> snap = client.TriggerSnapshot();
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, snap.status().code())
      << snap.status().ToString();
  mediator.Stop();
}

TEST_F(ServiceSnapshotTest, PeriodicCheckpointerWritesWithoutRequests) {
  BackendFleet fleet(federation_);
  ServiceConfig svc = PersistingConfig();
  svc.snapshot_every_ms = 10;
  MediatorServer::Options options;
  options.config = svc;
  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  ReplayClient client("127.0.0.1", mediator.port(), svc);
  ASSERT_TRUE(client.Replay(Slice(trace_, 0, 10)).ok());
  // Give the checkpointer a few periods.
  for (int i = 0; i < 200 && mediator.snapshot_writes() == 0; ++i) {
    ::usleep(5'000);
  }
  EXPECT_LT(0u, mediator.snapshot_writes());
  mediator.Stop();
  Result<std::vector<uint8_t>> file =
      persist::ReadFile(dir_ + "/mediator.snap");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(persist::ParseSnapshot(*file).ok());
}

// The Stop()-vs-in-flight-batches regression: shutdown drains admitted
// work, then writes the final snapshot BEFORE closing backend channels.
// The snapshot on disk must always parse and reflect a between-queries
// cut that a fresh mediator can restore.
TEST_F(ServiceSnapshotTest, StopRacingInFlightBatchesSnapshotsACleanCut) {
  BackendFleet fleet(federation_);
  ServiceConfig svc = PersistingConfig();
  svc.batch_size = 4;
  MediatorServer::Options options;
  options.config = svc;
  const size_t num_clients = 3;

  std::atomic<uint64_t> sent{0};
  {
    MediatorServer mediator(&federation_, config_, fleet.addresses(),
                            options);
    ASSERT_TRUE(mediator.Start().ok());
    std::vector<std::thread> clients;
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c]() {
        ReplayClient client("127.0.0.1", mediator.port(), svc);
        Result<ReplayClient::ShardReport> report =
            client.ReplayShard(trace_, c, num_clients);
        // A shard cut off by shutdown reports a transport error; that is
        // the expected outcome of this race, not a failure.
        if (report.ok()) {
          sent.fetch_add(report->queries_sent);
        }
      });
    }
    // Stop while batches are (very likely) still in flight.
    ::usleep(2'000);
    mediator.Stop();
    for (std::thread& t : clients) t.join();
  }

  // Whatever the race produced, the final snapshot is a valid,
  // restorable between-queries cut.
  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  EXPECT_EQ(1u, mediator.snapshot_restores());
  EXPECT_EQ(0u, mediator.snapshot_restore_failures());
  ReplayClient client("127.0.0.1", mediator.port(), svc);
  Result<StatsReply> stats = client.FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->queries, trace_.queries.size());
  mediator.Stop();
}

}  // namespace
}  // namespace byc::service
