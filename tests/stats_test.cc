#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace byc {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 4.0, 1e-12);  // classic example set
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(StatAccumulatorTest, SingleValue) {
  StatAccumulator acc;
  acc.Add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulatorTest, NegativeValues) {
  StatAccumulator acc;
  acc.Add(-10);
  acc.Add(10);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -10.0);
  EXPECT_DOUBLE_EQ(acc.max(), 10.0);
}

TEST(StatAccumulatorTest, ToStringMentionsCount) {
  StatAccumulator acc;
  acc.Add(1);
  EXPECT_NE(acc.ToString().find("count=1"), std::string::npos);
}

TEST(QuantileSketchTest, EmptyReturnsZero) {
  QuantileSketch q;
  EXPECT_EQ(q.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, ExactOrderStatistics) {
  QuantileSketch q;
  for (int i = 1; i <= 101; ++i) q.Add(i);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 101.0);
}

TEST(QuantileSketchTest, InterpolatesBetweenValues) {
  QuantileSketch q;
  q.Add(0);
  q.Add(10);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.25), 2.5);
}

TEST(QuantileSketchTest, ClampsOutOfRangeQ) {
  QuantileSketch q;
  q.Add(1);
  q.Add(2);
  EXPECT_DOUBLE_EQ(q.Quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.5), 2.0);
}

TEST(QuantileSketchTest, InterleavedAddAndQuery) {
  QuantileSketch q;
  q.Add(3);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 3.0);
  q.Add(1);
  q.Add(2);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 2.0);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0, 10, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(4), 10.0);
}

TEST(HistogramTest, CountsFallInCorrectBuckets) {
  Histogram h(0, 10, 5);
  h.Add(0.5);
  h.Add(1.9);
  h.Add(2.0);
  h.Add(9.9);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0, 10, 5);
  h.Add(-100);
  h.Add(100);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
}

TEST(BytesTest, FormatPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3.5 * kMB), "3.50 MB");
  EXPECT_EQ(FormatBytes(1.25 * kGB), "1.25 GB");
}

TEST(BytesTest, FormatGBMatchesPaperStyle) {
  EXPECT_EQ(FormatGB(1216.94 * kGB), "1216.94");
  EXPECT_EQ(FormatGB(0), "0.00");
}

}  // namespace
}  // namespace byc
