#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.h"

namespace byc {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 4.0, 1e-12);  // classic example set
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(StatAccumulatorTest, SingleValue) {
  StatAccumulator acc;
  acc.Add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulatorTest, NegativeValues) {
  StatAccumulator acc;
  acc.Add(-10);
  acc.Add(10);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -10.0);
  EXPECT_DOUBLE_EQ(acc.max(), 10.0);
}

TEST(StatAccumulatorTest, ToStringMentionsCount) {
  StatAccumulator acc;
  acc.Add(1);
  EXPECT_NE(acc.ToString().find("count=1"), std::string::npos);
}

TEST(QuantileSketchTest, EmptyReturnsZero) {
  QuantileSketch q;
  EXPECT_EQ(q.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, ExactOrderStatistics) {
  QuantileSketch q;
  for (int i = 1; i <= 101; ++i) q.Add(i);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 101.0);
}

TEST(QuantileSketchTest, InterpolatesBetweenValues) {
  QuantileSketch q;
  q.Add(0);
  q.Add(10);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.25), 2.5);
}

TEST(QuantileSketchTest, ClampsOutOfRangeQ) {
  QuantileSketch q;
  q.Add(1);
  q.Add(2);
  EXPECT_DOUBLE_EQ(q.Quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.5), 2.0);
}

TEST(QuantileSketchTest, InterleavedAddAndQuery) {
  QuantileSketch q;
  q.Add(3);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 3.0);
  q.Add(1);
  q.Add(2);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 2.0);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0, 10, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(4), 10.0);
}

TEST(HistogramTest, CountsFallInCorrectBuckets) {
  Histogram h(0, 10, 5);
  h.Add(0.5);
  h.Add(1.9);
  h.Add(2.0);
  h.Add(9.9);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0, 10, 5);
  h.Add(-100);
  h.Add(100);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
}

TEST(LogHistogramTest, EmptyReportsZeroEverywhere) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  // Matches StatAccumulator's documented empty behaviour.
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(LogHistogramTest, OneSampleIsEveryQuantile) {
  LogHistogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
  // Quantiles clamp into [min, max], so a single sample is exact.
  EXPECT_EQ(h.Quantile(0.0), 42.0);
  EXPECT_EQ(h.p50(), 42.0);
  EXPECT_EQ(h.p90(), 42.0);
  EXPECT_EQ(h.p99(), 42.0);
  EXPECT_EQ(h.Quantile(1.0), 42.0);
}

TEST(LogHistogramTest, UniformDistributionQuantiles) {
  LogHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 10000.0);
  // Log-bucketing at 2^(1/8) growth bounds relative error at ~±4.5%;
  // allow 10% slack.
  EXPECT_NEAR(h.p50(), 5000.0, 500.0);
  EXPECT_NEAR(h.p90(), 9000.0, 900.0);
  EXPECT_NEAR(h.p99(), 9900.0, 990.0);
  EXPECT_NEAR(h.mean(), 5000.5, 1e-6);
}

TEST(LogHistogramTest, GeometricDistributionQuantiles) {
  // Samples at powers of two: 1 appears 512 times, 2 appears 256, ...
  // so the median sits at the smallest values and p99 near the top.
  LogHistogram h;
  size_t total = 0;
  for (int exp = 0; exp <= 9; ++exp) {
    size_t copies = static_cast<size_t>(512 >> exp);
    for (size_t i = 0; i < copies; ++i) h.Add(std::pow(2.0, exp));
    total += copies;
  }
  EXPECT_EQ(h.count(), total);  // 1023
  EXPECT_NEAR(h.p50(), 1.0, 0.1);
  // rank ceil(0.9*1023) = 921 -> within the 8-valued bucket run [8,16).
  EXPECT_GE(h.p90(), 4.0);
  EXPECT_LE(h.p90(), 16.0);
  // rank 1013 falls on the 8 copies of 64; 64 = 2^6 is an exact bucket
  // boundary, so the representative is the geometric midpoint just
  // below it (2^(47.5/8) ~ 61.3) — within the ±4.5% bucket error.
  EXPECT_NEAR(h.p99(), 64.0, 64.0 * 0.045);
  EXPECT_LE(h.max(), 512.0);
}

TEST(LogHistogramTest, NonPositiveValuesLandInUnderflowBucket) {
  LogHistogram h;
  h.Add(-5.0);
  h.Add(0.0);
  h.Add(-1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 0.0);
  // All mass in the underflow bucket: quantiles report min, clamped.
  EXPECT_EQ(h.p50(), -5.0);
}

TEST(LogHistogramTest, MergeMatchesCombinedStream) {
  LogHistogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    a.Add(static_cast<double>(i));
    combined.Add(static_cast<double>(i));
  }
  for (int i = 1000; i <= 2000; i += 10) {
    b.Add(static_cast<double>(i));
    combined.Add(static_cast<double>(i));
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.p50(), combined.p50());
  EXPECT_EQ(a.p90(), combined.p90());
  EXPECT_EQ(a.p99(), combined.p99());
}

TEST(LogHistogramTest, MergeWithEmptyIsIdentity) {
  LogHistogram a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.p50(), 3.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.p50(), 3.0);
}

TEST(LogHistogramTest, ToStringCarriesQuantiles) {
  LogHistogram h;
  h.Add(10.0);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(BytesTest, FormatPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3.5 * kMB), "3.50 MB");
  EXPECT_EQ(FormatBytes(1.25 * kGB), "1.25 GB");
}

TEST(BytesTest, FormatGBMatchesPaperStyle) {
  EXPECT_EQ(FormatGB(1216.94 * kGB), "1216.94");
  EXPECT_EQ(FormatGB(0), "0.00");
}

}  // namespace
}  // namespace byc
