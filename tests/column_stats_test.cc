#include "query/column_stats.h"

#include <gtest/gtest.h>

#include "catalog/sdss.h"
#include "query/binder.h"
#include "query/parser.h"
#include "query/selectivity.h"

namespace byc::query {
namespace {

class ColumnStatsTest : public ::testing::Test {
 protected:
  ColumnStatsTest()
      : catalog_(catalog::MakeSdssEdrCatalog()),
        photo_(catalog_.table(*catalog_.FindTable("PhotoObj"))),
        spec_(catalog_.table(*catalog_.FindTable("SpecObj"))) {}

  catalog::Catalog catalog_;
  const catalog::Table& photo_;
  const catalog::Table& spec_;
};

TEST_F(ColumnStatsTest, CdfIsMonotoneAndNormalized) {
  for (int c = 0; c < photo_.num_columns(); c += 7) {
    ColumnDistribution d = ColumnDistribution::For(photo_, c);
    EXPECT_DOUBLE_EQ(d.Cdf(d.min() - 1), 0.0);
    EXPECT_DOUBLE_EQ(d.Cdf(d.max() + 1), 1.0);
    double prev = -1;
    for (int i = 0; i <= 20; ++i) {
      double v = d.min() + (d.max() - d.min()) * i / 20.0;
      double cdf = d.Cdf(v);
      EXPECT_GE(cdf, prev);
      EXPECT_GE(cdf, 0);
      EXPECT_LE(cdf, 1);
      prev = cdf;
    }
  }
}

TEST_F(ColumnStatsTest, RaIsUniformOverTheSky) {
  int ra = photo_.FindColumn("ra");
  ColumnDistribution d = ColumnDistribution::For(photo_, ra);
  EXPECT_NEAR(d.Cdf(180.0), 0.5, 1e-9);
  EXPECT_NEAR(d.Cdf(90.0), 0.25, 1e-9);
}

TEST_F(ColumnStatsTest, MagnitudesCenterNearTwenty) {
  int mag = photo_.FindColumn("modelMag_g");
  ColumnDistribution d = ColumnDistribution::For(photo_, mag);
  EXPECT_NEAR(d.Cdf(20.0), 0.5, 0.02);
  // The bright tail is small: few objects brighter than 15th magnitude.
  EXPECT_LT(d.Cdf(15.0), 0.05);
}

TEST_F(ColumnStatsTest, RedshiftHugsZero) {
  int z = spec_.FindColumn("z");
  ColumnDistribution d = ColumnDistribution::For(spec_, z);
  EXPECT_GT(d.Cdf(0.5), 0.7);  // most objects at low redshift
  EXPECT_LT(d.Cdf(0.05), 0.3);
}

TEST_F(ColumnStatsTest, KeysHaveRowCountDistincts) {
  ColumnDistribution d = ColumnDistribution::For(photo_, 0);  // objID
  EXPECT_DOUBLE_EQ(d.distinct_values(),
                   static_cast<double>(photo_.row_count()));
}

TEST_F(ColumnStatsTest, HistogramTracksAnalyticCdf) {
  TableHistograms hist(photo_, 64);
  int mag = photo_.FindColumn("modelMag_g");
  ColumnDistribution d = ColumnDistribution::For(photo_, mag);
  for (double v : {14.0, 17.0, 20.0, 23.0, 26.0}) {
    double analytic = 1.0 - d.Cdf(v);
    double from_hist = hist.Selectivity(mag, CmpOp::kGt, v);
    EXPECT_NEAR(from_hist, analytic, 0.02) << "v=" << v;
  }
}

TEST_F(ColumnStatsTest, BucketMassesSumToOne) {
  TableHistograms hist(spec_, 32);
  for (int c = 0; c < spec_.num_columns(); c += 5) {
    double sum = 0;
    for (int b = 0; b < hist.num_buckets(); ++b) {
      sum += hist.BucketMass(c, b);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << spec_.column(c).name;
  }
}

TEST_F(ColumnStatsTest, ComplementaryOperatorsSumToOne) {
  TableHistograms hist(photo_, 64);
  int mag = photo_.FindColumn("psfMag_r");
  for (double v : {16.0, 19.5, 22.0}) {
    double lt = hist.Selectivity(mag, CmpOp::kLt, v);
    double ge = hist.Selectivity(mag, CmpOp::kGe, v);
    EXPECT_NEAR(lt + ge, 1.0, 1e-6);
    double le = hist.Selectivity(mag, CmpOp::kLe, v);
    double gt = hist.Selectivity(mag, CmpOp::kGt, v);
    EXPECT_NEAR(le + gt, 1.0, 1e-6);
  }
}

TEST_F(ColumnStatsTest, EqualityUsesDistinctCount) {
  TableHistograms hist(photo_, 64);
  // objID equality: one row.
  EXPECT_NEAR(hist.Selectivity(0, CmpOp::kEq, 12345),
              1.0 / static_cast<double>(photo_.row_count()), 1e-12);
  // int16 class codes: 1/16.
  int type_col = photo_.FindColumn("type");
  EXPECT_NEAR(hist.Selectivity(type_col, CmpOp::kEq, 3), 1.0 / 16, 1e-9);
}

TEST_F(ColumnStatsTest, SelectivityAlwaysPositive) {
  TableHistograms hist(photo_, 64);
  for (double v : {-1e9, 0.0, 20.0, 1e9}) {
    for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe,
                     CmpOp::kEq, CmpOp::kNe}) {
      double sel = hist.Selectivity(5, op, v);
      EXPECT_GT(sel, 0);
      EXPECT_LE(sel, 1);
    }
  }
}

TEST_F(ColumnStatsTest, HistogramModelPlugsIntoBinder) {
  HistogramSelectivityModel model;
  Binder binder(&catalog_, &model);
  auto parsed = ParseSelect(
      "select p.ra from PhotoObj p where p.modelMag_g > 17 and p.ra < 90");
  ASSERT_TRUE(parsed.ok());
  auto bound = binder.Bind(*parsed);
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->filters.size(), 2u);
  // mag > 17 keeps most of the (faint-dominated) survey.
  EXPECT_GT(bound->filters[0].selectivity, 0.85);
  // ra < 90 keeps a quarter of the sky.
  EXPECT_NEAR(bound->filters[1].selectivity, 0.25, 0.02);
}

TEST_F(ColumnStatsTest, HistogramModelIsDeterministicAndCached) {
  HistogramSelectivityModel model;
  double a = model.FilterSelectivity(photo_, 2, CmpOp::kLt, 40.0);
  double b = model.FilterSelectivity(photo_, 2, CmpOp::kLt, 40.0);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace byc::query
