#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "catalog/sdss.h"
#include "workload/generator.h"

namespace byc::workload {
namespace {

TraceQuery MakeSimpleQuery() {
  TraceQuery tq;
  tq.klass = QueryClass::kRange;
  tq.query.tables = {0};
  tq.query.select.push_back({{0, 1}, query::Aggregate::kNone});
  tq.query.select.push_back({{0, 2}, query::Aggregate::kAvg});
  query::ResolvedFilter f;
  f.column = {0, 3};
  f.op = query::CmpOp::kGt;
  f.value = 17.25;
  f.selectivity = 0.125;
  tq.query.filters.push_back(f);
  tq.cells = {100, 101, 102};
  return tq;
}

TEST(TraceIoTest, RoundTripsSimpleTrace) {
  auto catalog = catalog::MakeSdssEdrCatalog();
  Trace trace;
  trace.name = "EDR";
  trace.queries.push_back(MakeSimpleQuery());

  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(trace, buffer).ok());
  auto read = ReadTrace(catalog, buffer);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->queries.size(), 1u);
  EXPECT_EQ(read->name, "EDR");
  const TraceQuery& tq = read->queries[0];
  EXPECT_EQ(tq.klass, QueryClass::kRange);
  EXPECT_EQ(tq.query.tables, std::vector<int>{0});
  ASSERT_EQ(tq.query.select.size(), 2u);
  EXPECT_EQ(tq.query.select[1].aggregate, query::Aggregate::kAvg);
  ASSERT_EQ(tq.query.filters.size(), 1u);
  EXPECT_DOUBLE_EQ(tq.query.filters[0].value, 17.25);
  EXPECT_DOUBLE_EQ(tq.query.filters[0].selectivity, 0.125);
  EXPECT_EQ(tq.cells, (std::vector<int64_t>{100, 101, 102}));
}

TEST(TraceIoTest, RoundTripsGeneratedTraceExactly) {
  auto catalog = catalog::MakeSdssEdrCatalog();
  GeneratorOptions options = MakeEdrOptions();
  options.num_queries = 300;
  options.target_sequence_cost = 0;  // skip calibration for speed
  TraceGenerator gen(&catalog, options);
  Trace trace = gen.Generate();

  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(trace, buffer).ok());
  auto read = ReadTrace(catalog, buffer);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->queries.size(), trace.queries.size());
  for (size_t i = 0; i < trace.queries.size(); ++i) {
    const TraceQuery& orig = trace.queries[i];
    const TraceQuery& got = read->queries[i];
    ASSERT_EQ(got.klass, orig.klass) << i;
    ASSERT_EQ(got.query.tables, orig.query.tables) << i;
    ASSERT_EQ(got.query.select.size(), orig.query.select.size()) << i;
    ASSERT_EQ(got.query.filters.size(), orig.query.filters.size()) << i;
    for (size_t f = 0; f < orig.query.filters.size(); ++f) {
      ASSERT_DOUBLE_EQ(got.query.filters[f].selectivity,
                       orig.query.filters[f].selectivity);
      ASSERT_DOUBLE_EQ(got.query.filters[f].value,
                       orig.query.filters[f].value);
    }
    ASSERT_EQ(got.query.joins.size(), orig.query.joins.size()) << i;
    ASSERT_EQ(got.cells, orig.cells) << i;
  }
}

TEST(TraceIoTest, IgnoresCommentsAndBlankLines) {
  auto catalog = catalog::MakeSdssEdrCatalog();
  std::stringstream buffer;
  buffer << "# a comment\n\ntrace test\nR|0|0:1:0||,|\n";
  // Note the cells section contains ",". That is invalid; use a clean one.
  std::stringstream ok;
  ok << "# comment\n\ntrace test\nR|0|0:1:0|||\n";
  auto read = ReadTrace(catalog, ok);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->name, "test");
  EXPECT_EQ(read->queries.size(), 1u);
}

TEST(TraceIoTest, RejectsMalformedLines) {
  auto catalog = catalog::MakeSdssEdrCatalog();
  for (const char* bad : {
           "X|0|0:1:0|||",      // unknown class
           "R|999|0:1:0|||",    // table out of range
           "R|0|0:9999:0|||",   // column out of range
           "R|0|0:1:7|||",      // bad aggregate code
           "R|0|0:1:0|0:1:9:1:0.5||",  // bad op code
           "R|0|0:1:0|0:1:2:1:1.5||",  // selectivity > 1
           "R|0|0:1:0|0:1:2:1:0||",    // selectivity 0
           "R|0|0:1:0||0:1:0|",        // join with too few fields
           "R|0||||",           // empty select list
           "R||0:1:0|||",       // no tables
           "R|0|0:1:0||",       // wrong section count
       }) {
    std::stringstream in;
    in << bad << "\n";
    auto read = ReadTrace(catalog, in);
    EXPECT_FALSE(read.ok()) << bad;
  }
}

TEST(TraceIoTest, QueryClassNames) {
  EXPECT_EQ(QueryClassName(QueryClass::kRange), "range");
  EXPECT_EQ(QueryClassName(QueryClass::kSpatial), "spatial");
  EXPECT_EQ(QueryClassName(QueryClass::kIdentity), "identity");
  EXPECT_EQ(QueryClassName(QueryClass::kAggregate), "aggregate");
  EXPECT_EQ(QueryClassName(QueryClass::kJoin), "join");
}

}  // namespace
}  // namespace byc::workload
