// End-to-end reproduction checks: scaled-down EDR traces replayed through
// every algorithm, asserting the *shapes* the paper reports in §6 — who
// wins, by roughly what factor, and the accounting invariants that tie
// the system together.

#include <gtest/gtest.h>

#include <map>

#include "catalog/sdss.h"
#include "common/bytes.h"
#include "core/policy_factory.h"
#include "core/static_policy.h"
#include "federation/federation.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace byc {
namespace {

struct Scenario {
  federation::Federation federation;
  workload::Trace trace;
  double sequence_cost = 0;
};

Scenario MakeScaledEdrScenario(size_t num_queries) {
  auto catalog = catalog::MakeSdssEdrCatalog();
  workload::GeneratorOptions options = workload::MakeEdrOptions();
  options.num_queries = num_queries;
  options.target_sequence_cost = 1216.94 * kGB *
                                 static_cast<double>(num_queries) / 27663.0;
  workload::TraceGenerator gen(&catalog, options);
  workload::Trace trace = gen.Generate();
  double cost = gen.SequenceCost(trace);
  return Scenario{federation::Federation::SingleSite(std::move(catalog)),
               std::move(trace), cost};
}

class PaperShapeTest
    : public ::testing::TestWithParam<catalog::Granularity> {
 protected:
  static constexpr size_t kQueries = 6000;

  static Scenario& GetScenario() {
    static Scenario* setup = new Scenario(MakeScaledEdrScenario(kQueries));
    return *setup;
  }

  std::map<core::PolicyKind, sim::SimResult> RunAll() {
    Scenario& setup = GetScenario();
    sim::Simulator simulator(&setup.federation, GetParam());
    auto queries = simulator.DecomposeTrace(setup.trace);
    auto flat = sim::Simulator::Flatten(queries);
    uint64_t capacity =
        setup.federation.catalog().total_size_bytes() * 3 / 10;

    std::map<core::PolicyKind, sim::SimResult> results;
    for (core::PolicyKind kind :
         {core::PolicyKind::kNoCache, core::PolicyKind::kGds,
          core::PolicyKind::kStatic, core::PolicyKind::kRateProfile,
          core::PolicyKind::kOnlineBy, core::PolicyKind::kSpaceEffBy}) {
      core::PolicyConfig config;
      config.kind = kind;
      config.capacity_bytes = capacity;
      if (kind == core::PolicyKind::kStatic) {
        config.static_contents = core::SelectStaticSet(flat, capacity);
      }
      auto policy = core::MakePolicy(config);
      results.emplace(kind, simulator.Run(*policy, queries));
    }
    return results;
  }
};

TEST_P(PaperShapeTest, BypassYieldBeatsNoCacheByLargeFactor) {
  auto results = RunAll();
  double no_cache = results.at(core::PolicyKind::kNoCache).totals.total_wan();
  // "All variants of bypass-yield caching reduce network load by a factor
  // of five to ten when compared with GDS and no caching" (§6.2).
  for (core::PolicyKind kind :
       {core::PolicyKind::kRateProfile, core::PolicyKind::kOnlineBy,
        core::PolicyKind::kSpaceEffBy}) {
    double cost = results.at(kind).totals.total_wan();
    EXPECT_GT(no_cache / cost, 3.0) << core::PolicyKindName(kind);
  }
}

TEST_P(PaperShapeTest, BypassYieldBeatsInlineGds) {
  auto results = RunAll();
  double gds = results.at(core::PolicyKind::kGds).totals.total_wan();
  for (core::PolicyKind kind :
       {core::PolicyKind::kRateProfile, core::PolicyKind::kOnlineBy,
        core::PolicyKind::kSpaceEffBy}) {
    double cost = results.at(kind).totals.total_wan();
    EXPECT_GT(gds / cost, 2.0) << core::PolicyKindName(kind);
  }
}

TEST_P(PaperShapeTest, GdsIsNoBetterThanHalfOfNoCache) {
  // GDS "performs poorly because it caches all requests": its cost stays
  // within the no-cache order of magnitude instead of winning big.
  auto results = RunAll();
  double no_cache = results.at(core::PolicyKind::kNoCache).totals.total_wan();
  double gds = results.at(core::PolicyKind::kGds).totals.total_wan();
  EXPECT_GT(gds, no_cache * 0.3);
}

TEST_P(PaperShapeTest, RateProfileApproachesStaticCaching) {
  // "Bypass-yield algorithms approach the performance of static table
  // caching" (§6.2); Rate-Profile tracks it closely.
  auto results = RunAll();
  double rate = results.at(core::PolicyKind::kRateProfile).totals.total_wan();
  double static_cost =
      results.at(core::PolicyKind::kStatic).totals.total_wan();
  EXPECT_LT(rate, static_cost * 1.5);
}

TEST_P(PaperShapeTest, AlgorithmOrderingMatchesPaper) {
  // "In most cases, the rate-based algorithm exceeds the on-line
  // algorithm ... The on-line randomized algorithm always lags behind."
  auto results = RunAll();
  double rate = results.at(core::PolicyKind::kRateProfile).totals.total_wan();
  double online = results.at(core::PolicyKind::kOnlineBy).totals.total_wan();
  double space = results.at(core::PolicyKind::kSpaceEffBy).totals.total_wan();
  EXPECT_LT(rate, online);
  EXPECT_LT(online, space * 1.1);  // SpaceEffBY lags (small tolerance)
}

TEST_P(PaperShapeTest, BypassYieldPoliciesActuallyBypass) {
  // The essential feature: a non-trivial share of accesses is bypassed
  // (unlike GDS, which loads everything it can).
  auto results = RunAll();
  for (core::PolicyKind kind :
       {core::PolicyKind::kRateProfile, core::PolicyKind::kOnlineBy}) {
    const auto& totals = results.at(kind).totals;
    EXPECT_GT(totals.bypasses, totals.accesses / 100)
        << core::PolicyKindName(kind);
    EXPECT_GT(totals.hits, totals.accesses / 4)
        << core::PolicyKindName(kind);
  }
  EXPECT_EQ(results.at(core::PolicyKind::kGds).totals.hits +
                results.at(core::PolicyKind::kGds).totals.loads +
                results.at(core::PolicyKind::kGds).totals.bypasses,
            results.at(core::PolicyKind::kGds).totals.accesses);
}

TEST_P(PaperShapeTest, EveryPolicyDeliversTheFullResultSet) {
  auto results = RunAll();
  Scenario& setup = GetScenario();
  for (const auto& [kind, result] : results) {
    EXPECT_NEAR(result.totals.delivered(), setup.sequence_cost,
                1e-6 * setup.sequence_cost)
        << core::PolicyKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, PaperShapeTest,
    ::testing::Values(catalog::Granularity::kTable,
                      catalog::Granularity::kColumn),
    [](const ::testing::TestParamInfo<catalog::Granularity>& info) {
      return info.param == catalog::Granularity::kTable ? "Tables"
                                                        : "Columns";
    });

TEST(CacheSizeSweepTest, LargerCachesNeverHurtStaticCaching) {
  Scenario setup = MakeScaledEdrScenario(3000);
  sim::Simulator simulator(&setup.federation, catalog::Granularity::kTable);
  auto queries = simulator.DecomposeTrace(setup.trace);
  auto flat = sim::Simulator::Flatten(queries);
  double prev = -1;
  for (double frac : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    uint64_t capacity = static_cast<uint64_t>(
        frac *
        static_cast<double>(setup.federation.catalog().total_size_bytes()));
    core::PolicyConfig config;
    config.kind = core::PolicyKind::kStatic;
    config.capacity_bytes = capacity;
    config.static_contents = core::SelectStaticSet(flat, capacity);
    auto policy = core::MakePolicy(config);
    double cost = simulator.Run(*policy, queries).totals.total_wan();
    if (prev >= 0) {
      EXPECT_LE(cost, prev * 1.001);
    }
    prev = cost;
  }
}

TEST(CacheSizeSweepTest, BypassCachesNeedModerateSize) {
  // Fig. 9's conclusion: "bypass caches need to be relatively large, 20%
  // to 30% of the database, to be effective". At 30% Rate-Profile is
  // within a small factor of its full-database performance; at 5% it is
  // far worse.
  Scenario setup = MakeScaledEdrScenario(3000);
  sim::Simulator simulator(&setup.federation, catalog::Granularity::kTable);
  auto queries = simulator.DecomposeTrace(setup.trace);
  auto run_at = [&](double frac) {
    core::PolicyConfig config;
    config.kind = core::PolicyKind::kRateProfile;
    config.capacity_bytes = static_cast<uint64_t>(
        frac *
        static_cast<double>(setup.federation.catalog().total_size_bytes()));
    auto policy = core::MakePolicy(config);
    return simulator.Run(*policy, queries).totals.total_wan();
  };
  double no_cache = [&] {
    core::PolicyConfig config;
    config.kind = core::PolicyKind::kNoCache;
    auto policy = core::MakePolicy(config);
    return simulator.Run(*policy, queries).totals.total_wan();
  }();
  double at_5 = run_at(0.05);
  double at_30 = run_at(0.30);
  double at_100 = run_at(1.0);
  // Small caches thrash; 30% already realizes the bulk of the
  // achievable traffic reduction (the paper's Fig. 9 knee).
  EXPECT_GT(at_5, 2.0 * at_30);
  double reduction_30 = (no_cache - at_30) / (no_cache - at_100);
  EXPECT_GT(reduction_30, 0.85);
}

}  // namespace
}  // namespace byc
