#include "service/mediator_server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "catalog/sdss.h"
#include "common/check.h"
#include "core/policy_factory.h"
#include "exec/table_data.h"
#include "query/binder.h"
#include "service/backend_server.h"
#include "service/replay_client.h"
#include "service_test_util.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace byc::service {
namespace {

using testutil::BackendFleet;
using testutil::ExpectedLedger;
using testutil::ExpectLedgerEq;
using testutil::FastConfig;
using testutil::SameBits;

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : federation_(federation::Federation::SingleSite(
            catalog::MakeSdssEdrCatalog())) {
    workload::GeneratorOptions options;
    options.num_queries = 80;
    options.target_sequence_cost = 0;
    workload::TraceGenerator gen(&federation_.catalog(), options);
    trace_ = gen.Generate();
    config_.kind = core::PolicyKind::kRateProfile;
    config_.capacity_bytes =
        federation_.catalog().total_size_bytes() * 3 / 10;
  }

  /// Multi-site variant of the same catalog: tables striped across 3
  /// sites with heterogeneous per-byte link costs.
  static federation::Federation MakeMultiSite() {
    auto catalog = catalog::MakeSdssEdrCatalog();
    std::vector<int> table_site(static_cast<size_t>(catalog.num_tables()));
    for (size_t t = 0; t < table_site.size(); ++t) {
      table_site[t] = static_cast<int>(t % 3);
    }
    auto fed = federation::Federation::MultiSite(std::move(catalog),
                                                 table_site, {1.0, 2.5, 0.5});
    BYC_CHECK(fed.ok());
    return std::move(fed).value();
  }

  /// Starts a fleet + mediator over `federation`, replays the fixture
  /// trace, returns the report (backends/mediator torn down on return).
  Result<ReplayReport> Replay(const federation::Federation& federation,
                              catalog::Granularity granularity,
                              const ServiceConfig& config) {
    BackendFleet fleet(federation);
    core::PolicyConfig policy_config = config_;
    policy_config.granularity = granularity;
    MediatorServer::Options options;
    options.config = config;
    MediatorServer mediator(&federation, policy_config, fleet.addresses(),
                            options);
    BYC_CHECK(mediator.Start().ok());
    ReplayClient client("127.0.0.1", mediator.port(), config);
    return client.Replay(trace_);
  }

  federation::Federation federation_;
  workload::Trace trace_;
  core::PolicyConfig config_;
};

// ---- The headline: wire replay == in-process simulator ----------------

TEST_F(ServiceTest, LoopbackLedgerMatchesSimulatorBitForBit) {
  sim::Simulator::Options sim_options;
  sim_options.sample_every = 0;
  sim::Simulator simulator(&federation_, catalog::Granularity::kTable,
                           sim_options);
  auto policy = core::MakePolicy(config_);
  sim::SimResult expected = simulator.Run(*policy, trace_);

  Result<ReplayReport> report =
      Replay(federation_, catalog::Granularity::kTable, ServiceConfig{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const StatsReply& ledger = report->ledger;
  EXPECT_EQ(expected.totals.accesses, ledger.accesses);
  EXPECT_EQ(expected.totals.hits, ledger.hits);
  EXPECT_EQ(expected.totals.bypasses, ledger.bypasses);
  EXPECT_EQ(expected.totals.loads, ledger.loads);
  EXPECT_EQ(expected.totals.evictions, ledger.evictions);
  EXPECT_EQ(0u, ledger.degraded_accesses);
  EXPECT_TRUE(SameBits(expected.totals.bypass_cost, ledger.bypass_cost));
  EXPECT_TRUE(SameBits(expected.totals.fetch_cost, ledger.fetch_cost));
  EXPECT_TRUE(SameBits(expected.totals.served_cost, ledger.served_cost));
  // The client's own per-query deltas agree on every counter.
  EXPECT_EQ(ledger.accesses, report->client_totals.accesses);
  EXPECT_EQ(ledger.hits, report->client_totals.hits);
  EXPECT_EQ(ledger.bypasses, report->client_totals.bypasses);
  EXPECT_EQ(ledger.loads, report->client_totals.loads);
}

TEST_F(ServiceTest, MultiSitePerSiteCostsMatchSimulator) {
  federation::Federation multi = MakeMultiSite();
  sim::Simulator::Options sim_options;
  sim_options.sample_every = 0;
  sim::Simulator simulator(&multi, catalog::Granularity::kColumn,
                           sim_options);
  auto policy = core::MakePolicy(config_);
  sim::SimResult expected = simulator.Run(*policy, trace_);

  Result<ReplayReport> report =
      Replay(multi, catalog::Granularity::kColumn, ServiceConfig{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(expected.totals.accesses, report->ledger.accesses);
  EXPECT_TRUE(
      SameBits(expected.totals.bypass_cost, report->ledger.bypass_cost));
  EXPECT_TRUE(
      SameBits(expected.totals.fetch_cost, report->ledger.fetch_cost));
  EXPECT_TRUE(
      SameBits(expected.totals.served_cost, report->ledger.served_cost));
}

// ---- Degraded mode ----------------------------------------------------

TEST_F(ServiceTest, DeadBackendDegradesExactlyAndNeverHangs) {
  federation::Federation multi = MakeMultiSite();
  BackendFleet fleet(multi);
  ServiceConfig config = FastConfig();
  MediatorServer::Options options;
  options.config = config;
  MediatorServer mediator(&multi, config_, fleet.addresses(), options);
  ASSERT_TRUE(mediator.Start().ok());

  fleet.server(1).Kill();  // Site 1 disappears before the replay.

  ReplayClient client("127.0.0.1", mediator.port(), config);
  Result<ReplayReport> report = client.Replay(trace_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  StatsReply want = ExpectedLedger(multi, catalog::Granularity::kTable,
                                   config_, trace_, {1});
  ASSERT_GT(want.degraded_accesses, 0u)
      << "trace never touches site 1; test is vacuous";
  ExpectLedgerEq(want, report->ledger);
  // Every degraded call burned the full retry budget.
  EXPECT_EQ(want.degraded_accesses * (config.retry.max_attempts - 1),
            report->ledger.retries);
}

TEST_F(ServiceTest, DropFaultRetriesThenDegrades) {
  federation::Federation multi = MakeMultiSite();
  BackendFleet fleet(multi);
  // Site 2 reads every request and never answers.
  fleet.server(2).faults().drop.store(true);
  ServiceConfig config = FastConfig();
  MediatorServer::Options options;
  options.config = config;
  MediatorServer mediator(&multi, config_, fleet.addresses(), options);
  ASSERT_TRUE(mediator.Start().ok());

  ReplayClient client("127.0.0.1", mediator.port(), config);
  Result<ReplayReport> report = client.Replay(trace_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  StatsReply want = ExpectedLedger(multi, catalog::Granularity::kTable,
                                   config_, trace_, {2});
  ASSERT_GT(want.degraded_accesses, 0u);
  ExpectLedgerEq(want, report->ledger);
  EXPECT_GT(report->ledger.retries, 0u);
  EXPECT_GT(report->ledger.reconnects, 0u);
}

TEST_F(ServiceTest, SlowBackendHitsDeadlineAndDegrades) {
  workload::Trace short_trace;
  short_trace.name = trace_.name;
  short_trace.queries.assign(trace_.queries.begin(),
                             trace_.queries.begin() + 2);

  BackendFleet fleet(federation_);
  fleet.server(0).faults().delay_ms.store(400);
  ServiceConfig mediator_config = FastConfig();
  mediator_config.deadline_ms = 50;  // well under the injected 400ms
  mediator_config.retry.max_attempts = 1;
  MediatorServer::Options options;
  options.config = mediator_config;
  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());

  ServiceConfig client_config;
  client_config.deadline_ms = 30000;  // the slowness is backend-side
  ReplayClient client("127.0.0.1", mediator.port(), client_config);
  Result<ReplayReport> report = client.Replay(short_trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  StatsReply want = ExpectedLedger(federation_, catalog::Granularity::kTable,
                                   config_, short_trace, {0});
  // Cache hits still work; every WAN call times out and degrades.
  EXPECT_EQ(want.degraded_accesses, report->ledger.degraded_accesses);
  ASSERT_GT(report->ledger.degraded_accesses, 0u);
  EXPECT_TRUE(
      SameBits(want.degraded_cost, report->ledger.degraded_cost));
  EXPECT_EQ(0u, report->ledger.bypasses);
  EXPECT_EQ(0u, report->ledger.loads);
}

// ---- Error paths over the wire ---------------------------------------

TEST_F(ServiceTest, OversizedFrameGetsTypedErrorThenClose) {
  BackendFleet fleet(federation_);
  Result<Socket> sock = Socket::Connect("127.0.0.1", fleet.server(0).port(),
                                        Deadline::After(2000));
  ASSERT_TRUE(sock.ok());
  // Header claiming a payload beyond kMaxPayload.
  uint32_t huge = kMaxPayload + 1;
  uint8_t header[5];
  std::memcpy(header, &huge, 4);
  header[4] = static_cast<uint8_t>(FrameType::kPing);
  ASSERT_TRUE(
      sock->SendAll(header, sizeof(header), Deadline::After(2000)).ok());
  Result<Frame> reply = ReadFrame(*sock, Deadline::After(2000));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(FrameType::kError, reply->type);
  EXPECT_TRUE(ParseErrorFrame(*reply).IsInvalidArgument());
  // The poisoned connection is closed by the server.
  Result<Frame> next = ReadFrame(*sock, Deadline::After(2000));
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsUnavailable());
}

TEST_F(ServiceTest, UnknownFrameTypeRejected) {
  BackendFleet fleet(federation_);
  Result<Socket> sock = Socket::Connect("127.0.0.1", fleet.server(0).port(),
                                        Deadline::After(2000));
  ASSERT_TRUE(sock.ok());
  uint8_t header[5] = {0, 0, 0, 0, 250};  // type 250 does not exist
  ASSERT_TRUE(
      sock->SendAll(header, sizeof(header), Deadline::After(2000)).ok());
  Result<Frame> reply = ReadFrame(*sock, Deadline::After(2000));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(FrameType::kError, reply->type);
  EXPECT_TRUE(ParseErrorFrame(*reply).IsInvalidArgument());
}

TEST_F(ServiceTest, UnknownObjectIsNotFoundAndConnectionSurvives) {
  BackendFleet fleet(federation_);
  Result<Socket> sock = Socket::Connect("127.0.0.1", fleet.server(0).port(),
                                        Deadline::After(2000));
  ASSERT_TRUE(sock.ok());
  FetchRequest req;
  req.table = 9999;
  ASSERT_TRUE(
      WriteFrame(*sock, MakeFetchFrame(req), Deadline::After(2000)).ok());
  Result<Frame> reply = ReadFrame(*sock, Deadline::After(2000));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(FrameType::kError, reply->type);
  EXPECT_TRUE(ParseErrorFrame(*reply).IsNotFound());
  // Semantic errors do not poison the connection: ping still answers.
  Frame ping;
  ping.type = FrameType::kPing;
  ASSERT_TRUE(WriteFrame(*sock, ping, Deadline::After(2000)).ok());
  Result<Frame> pong = ReadFrame(*sock, Deadline::After(2000));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(FrameType::kPong, pong->type);
  EXPECT_EQ(1u, fleet.server(0).requests_rejected());
}

TEST_F(ServiceTest, MidRequestDisconnectLeavesServerServing) {
  BackendFleet fleet(federation_);
  {
    Result<Socket> sock = Socket::Connect(
        "127.0.0.1", fleet.server(0).port(), Deadline::After(2000));
    ASSERT_TRUE(sock.ok());
    // Header promising 100 payload bytes, then vanish after 10.
    uint8_t torn[15] = {100, 0, 0, 0, static_cast<uint8_t>(FrameType::kQuery)};
    ASSERT_TRUE(
        sock->SendAll(torn, sizeof(torn), Deadline::After(2000)).ok());
  }  // closed mid-frame
  // The server must shrug it off and serve the next client.
  Result<Socket> sock = Socket::Connect("127.0.0.1", fleet.server(0).port(),
                                        Deadline::After(2000));
  ASSERT_TRUE(sock.ok());
  Frame ping;
  ping.type = FrameType::kPing;
  ASSERT_TRUE(WriteFrame(*sock, ping, Deadline::After(2000)).ok());
  Result<Frame> pong = ReadFrame(*sock, Deadline::After(2000));
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(FrameType::kPong, pong->type);
}

TEST_F(ServiceTest, BadQueryTextKeepsMediatorConnectionUsable) {
  BackendFleet fleet(federation_);
  MediatorServer::Options options;
  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  Result<Socket> sock = Socket::Connect("127.0.0.1", mediator.port(),
                                        Deadline::After(2000));
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(WriteFrame(*sock, MakeQueryFrame("not|a|query"),
                         Deadline::After(2000))
                  .ok());
  Result<Frame> reply = ReadFrame(*sock, Deadline::After(5000));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(FrameType::kError, reply->type);
  EXPECT_FALSE(ParseErrorFrame(*reply).ok());
  // A real query on the same connection still goes through.
  Frame good =
      MakeQueryFrame(workload::FormatTraceQuery(trace_.queries[0]));
  ASSERT_TRUE(WriteFrame(*sock, good, Deadline::After(2000)).ok());
  Result<Frame> qr = ReadFrame(*sock, Deadline::After(10000));
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  EXPECT_EQ(FrameType::kQueryReply, qr->type);
}

// ---- Real execution over the wire ------------------------------------

TEST_F(ServiceTest, ExecutesQueriesAtTheBackend) {
  catalog::Catalog catalog("svc-exec");
  catalog::Table photo("PhotoObj", 4);
  photo.AddColumn("objID", catalog::ColumnType::kInt64);
  photo.AddColumn("mag", catalog::ColumnType::kFloat64);
  BYC_CHECK(catalog.AddTable(std::move(photo)).ok());
  auto data = exec::TableData::FromColumns(catalog.table(0),
                                           {{0, 1, 2, 3}, {15, 17, 19, 21}});
  exec::Executor executor({&data});
  auto fed = federation::Federation::SingleSite(std::move(catalog));
  BackendFleet fleet(fed, &executor);

  auto bound =
      query::ParseAndBind(fed.catalog(),
                          "SELECT objID FROM PhotoObj WHERE mag > 16");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  Result<exec::ExecutionResult> direct = executor.Execute(*bound);
  ASSERT_TRUE(direct.ok());

  workload::TraceQuery tq;
  tq.query = *bound;
  Result<Socket> sock = Socket::Connect("127.0.0.1", fleet.server(0).port(),
                                        Deadline::After(2000));
  ASSERT_TRUE(sock.ok());
  Frame request;
  request.type = FrameType::kExec;
  std::string line = workload::FormatTraceQuery(tq);
  request.payload.assign(line.begin(), line.end());
  ASSERT_TRUE(WriteFrame(*sock, request, Deadline::After(2000)).ok());
  Result<Frame> reply = ReadFrame(*sock, Deadline::After(5000));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(FrameType::kExecReply, reply->type);
  PayloadReader r(reply->payload);
  Result<uint64_t> rows = r.ReadU64();
  Result<double> bytes = r.ReadF64();
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(direct->result_rows, *rows);
  EXPECT_TRUE(SameBits(direct->result_bytes, *bytes));
}

TEST_F(ServiceTest, ExecWithoutDataFailsPrecondition) {
  BackendFleet fleet(federation_);  // no executor wired
  Result<Socket> sock = Socket::Connect("127.0.0.1", fleet.server(0).port(),
                                        Deadline::After(2000));
  ASSERT_TRUE(sock.ok());
  Frame request;
  request.type = FrameType::kExec;
  std::string line = workload::FormatTraceQuery(trace_.queries[0]);
  request.payload.assign(line.begin(), line.end());
  ASSERT_TRUE(WriteFrame(*sock, request, Deadline::After(2000)).ok());
  Result<Frame> reply = ReadFrame(*sock, Deadline::After(5000));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(FrameType::kError, reply->type);
  EXPECT_EQ(StatusCode::kFailedPrecondition,
            ParseErrorFrame(*reply).code());
}

// ---- Lifecycle --------------------------------------------------------

TEST_F(ServiceTest, StartupValidatesBackendCoverage) {
  federation::Federation multi = MakeMultiSite();
  MediatorServer::Options options;
  MediatorServer mediator(&multi, config_,
                          {{"127.0.0.1", 1}, {"127.0.0.1", 2}}, options);
  Status started = mediator.Start();
  EXPECT_TRUE(started.IsInvalidArgument()) << started.ToString();
}

TEST_F(ServiceTest, StopIsIdempotentAndStatsAccessibleAfter) {
  BackendFleet fleet(federation_);
  MediatorServer::Options options;
  MediatorServer mediator(&federation_, config_, fleet.addresses(),
                          options);
  ASSERT_TRUE(mediator.Start().ok());
  EXPECT_TRUE(mediator.running());
  mediator.Stop();
  mediator.Stop();
  EXPECT_FALSE(mediator.running());
  EXPECT_EQ(0u, mediator.stats().queries);
}

}  // namespace
}  // namespace byc::service
